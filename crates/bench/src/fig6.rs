//! Figure 6 — routing-table size vs. number of XPath queries.
//!
//! The paper inserts 100,000 NITF queries from two data sets (Set A
//! with ≈90 % covering rate, Set B with ≈50 %) and plots the routing
//! table size with and without the covering optimization. Covering
//! shrinks the table "by up to 90 %" on Set A.

use crate::{Scale, SEED};
use xdn_core::subtree::SubscriptionTree;
use xdn_workloads::{nitf_dtd, sets};

/// One sampled point of the Figure 6 series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig6Row {
    /// Queries inserted so far.
    pub queries: usize,
    /// Routing table size without covering (= `queries`).
    pub no_covering: usize,
    /// Effective table size for Set A under covering.
    pub set_a: usize,
    /// Effective table size for Set B under covering.
    pub set_b: usize,
}

/// Runs the experiment, sampling `points` evenly spaced checkpoints.
pub fn run(scale: &Scale, points: usize) -> Vec<Fig6Row> {
    let dtd = nitf_dtd();
    let n = scale.fig6_queries;
    let a = sets::set_a(&dtd, n, SEED);
    let b = sets::set_b(&dtd, n, SEED + 1);
    let n = a.len().min(b.len());
    let step = (n / points.max(1)).max(1);

    let mut tree_a: SubscriptionTree<()> = SubscriptionTree::new();
    let mut tree_b: SubscriptionTree<()> = SubscriptionTree::new();
    let mut rows = Vec::new();
    let mut next_checkpoint = step;
    for i in 0..n {
        tree_a.insert(a[i].clone(), ());
        tree_b.insert(b[i].clone(), ());
        if i + 1 == next_checkpoint || i + 1 == n {
            rows.push(Fig6Row {
                queries: i + 1,
                no_covering: i + 1,
                set_a: tree_a.root_count(),
                set_b: tree_b.root_count(),
            });
            next_checkpoint += step;
        }
    }
    rows.dedup_by_key(|r| r.queries);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_shrinks_tables_with_set_a_strongest() {
        let rows = run(&Scale::quick(), 4);
        assert!(rows.len() >= 3);
        let last = rows.last().unwrap();
        // Set A reduction must be strong, Set B moderate; both below
        // the uncovered baseline (the Figure 6 ordering).
        assert!(
            last.set_a < last.set_b,
            "set A ({}) < set B ({})",
            last.set_a,
            last.set_b
        );
        assert!(last.set_b < last.no_covering);
        assert!(
            (last.set_a as f64) < 0.4 * last.no_covering as f64,
            "set A should cut the table strongly: {} of {}",
            last.set_a,
            last.no_covering
        );
        // Series are non-decreasing in n.
        for w in rows.windows(2) {
            assert!(w[0].queries < w[1].queries);
            assert!(w[0].set_a <= w[1].set_a + 1);
        }
    }
}
