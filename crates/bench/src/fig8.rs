//! Figure 8 — per-XPE processing time with and without covering.
//!
//! Processing a subscription means deciding where to forward it. With
//! covering, an XPE covered by an existing one is dropped before any
//! advertisement matching happens; without covering, every XPE is
//! matched against every advertisement. The effect is strongest for
//! NITF, whose advertisement set is ~35× the PSD's (§5).

use crate::{Scale, SEED};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xdn_core::adv::{derive_advertisements, DeriveOptions};
use xdn_core::advmatch::PreparedAdv;
use xdn_core::subtree::SubscriptionTree;
use xdn_obs::{Histogram, Stopwatch};
use xdn_workloads::{nitf_dtd, psd_dtd, sets};
use xdn_xpath::generate::generate_distinct_xpes;
use xdn_xpath::Xpe;

/// One averaged batch (the paper averages every 500 XPEs). Timings
/// come from per-XPE latency [`Histogram`]s, so each point also
/// carries a tail quantile alongside the paper's mean.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Point {
    /// Index of the last XPE in the batch.
    pub batch_end: usize,
    /// Mean per-XPE time with covering, microseconds.
    pub with_covering_us: f64,
    /// Mean per-XPE time without covering, microseconds.
    pub without_covering_us: f64,
    /// 95th-percentile per-XPE time with covering, microseconds.
    pub with_covering_p95_us: f64,
    /// 95th-percentile per-XPE time without covering, microseconds.
    pub without_covering_p95_us: f64,
}

/// The Figure 8 result for both DTDs.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Result {
    /// NITF-like series.
    pub nitf: Vec<Fig8Point>,
    /// PSD-like series.
    pub psd: Vec<Fig8Point>,
    /// Advertisement counts, for the paper's 35× observation.
    pub nitf_advs: usize,
    /// PSD advertisement count.
    pub psd_advs: usize,
}

/// Runs both DTD series with `batches` averaged points each.
pub fn run(scale: &Scale, batches: usize) -> Fig8Result {
    let nitf = series(&nitf_dtd(), scale.fig8_queries, batches, SEED + 3);
    let psd = series(&psd_dtd(), scale.fig8_queries, batches, SEED + 4);
    Fig8Result {
        nitf: nitf.0,
        psd: psd.0,
        nitf_advs: nitf.1,
        psd_advs: psd.1,
    }
}

fn series(dtd: &xdn_xml::dtd::Dtd, n: usize, batches: usize, seed: u64) -> (Vec<Fig8Point>, usize) {
    let advs: Vec<PreparedAdv> = derive_advertisements(dtd, &DeriveOptions::default())
        .into_iter()
        .map(|a| PreparedAdv::new(a, 16))
        .collect();
    // A high-covering workload: the paper reports 90 % of the PSD XPEs
    // covered.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let xpes = generate_distinct_xpes(dtd, n, &sets::set_a_config(), &mut rng);
    let n = xpes.len();
    let batch = (n / batches.max(1)).max(1);

    let mut tree: SubscriptionTree<()> = SubscriptionTree::new();
    let mut points = Vec::new();
    let mut i = 0;
    while i < n {
        let end = (i + batch).min(n);
        let slice = &xpes[i..end];

        // Without covering: match every XPE against every advertisement.
        let mut without = Histogram::new();
        for x in slice {
            let sw = Stopwatch::start();
            std::hint::black_box(match_all(&advs, x));
            without.record(sw.elapsed());
        }

        // With covering: only uncovered XPEs reach advertisement
        // matching.
        let mut with = Histogram::new();
        for x in slice {
            let sw = Stopwatch::start();
            let insertion = tree.insert(x.clone(), ());
            if insertion.forward() {
                std::hint::black_box(match_all(&advs, x));
            }
            with.record(sw.elapsed());
        }

        points.push(Fig8Point {
            batch_end: end,
            with_covering_us: micros(with.mean()),
            without_covering_us: micros(without.mean()),
            with_covering_p95_us: micros(with.p95()),
            without_covering_p95_us: micros(without.p95()),
        });
        i = end;
    }
    (points, advs.len())
}

fn match_all(advs: &[PreparedAdv], x: &Xpe) -> usize {
    advs.iter().filter(|a| a.overlaps(x)).count()
}

fn micros(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_processing_is_cheaper_where_it_matters() {
        let r = run(&Scale::quick(), 4);
        assert!(
            r.nitf_advs > 10 * r.psd_advs,
            "NITF adv set must dwarf PSD's"
        );
        // Aggregate over batches: covering must win on NITF (the large
        // advertisement set) — the paper's headline Figure 8 effect.
        let total = |pts: &[Fig8Point], f: fn(&Fig8Point) -> f64| -> f64 {
            pts.iter().map(f).sum::<f64>() / pts.len() as f64
        };
        let nitf_with = total(&r.nitf, |p| p.with_covering_us);
        let nitf_without = total(&r.nitf, |p| p.without_covering_us);
        assert!(
            nitf_with < nitf_without,
            "covering should cut NITF processing: {nitf_with:.1}us vs {nitf_without:.1}us"
        );
    }
}
