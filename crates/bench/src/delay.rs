//! Figures 10 and 11 — notification delay vs. broker hops on a
//! PlanetLab-like WAN, for several document sizes, with and without
//! covering.
//!
//! A 7-broker chain carries documents from a publisher at one end to
//! subscribers 2–6 hops away. Every broker also hosts background
//! subscribers that load its routing table; covering compacts those
//! tables along the path, so the per-hop matching cost — and with it
//! the notification delay — drops (the paper reports up to 74 %).

use crate::{Scale, SEED};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;
use xdn_broker::{BrokerId, RoutingConfig};
use xdn_core::adv::{derive_advertisements, DeriveOptions};
use xdn_net::latency::PlanetLabWan;
use xdn_net::sim::{Network, ProcessingModel};
use xdn_net::topology::chain;
use xdn_workloads::{docs, nitf_dtd, psd_dtd, sets};

/// Which DTD drives the experiment (Figure 10 = PSD, Figure 11 = NITF).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayDtd {
    /// Figure 10.
    Psd,
    /// Figure 11.
    Nitf,
}

/// One measured point.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayPoint {
    /// Broker hops between publisher and subscriber.
    pub hops: u32,
    /// Target document size in bytes.
    pub doc_bytes: usize,
    /// Covering enabled?
    pub covering: bool,
    /// Mean notification delay.
    pub delay: Duration,
}

/// The paper's document sizes for each figure.
pub fn paper_sizes(dtd: DelayDtd) -> Vec<usize> {
    match dtd {
        DelayDtd::Psd => vec![2_000, 10_000, 20_000],
        DelayDtd::Nitf => vec![2_000, 20_000, 40_000],
    }
}

/// Runs one figure: hops 2–6, the given document sizes, covering on
/// and off, attributing measured wall-clock compute time to each hop
/// (the paper's testbed behaviour).
pub fn run(which: DelayDtd, sizes: &[usize], scale: &Scale) -> Vec<DelayPoint> {
    run_with_processing(which, sizes, scale, ProcessingModel::Measured)
}

/// [`run`] with an explicit [`ProcessingModel`]. Tests use
/// [`ProcessingModel::modeled`], which charges a deterministic
/// per-frame cost proportional to the effective routing-table size —
/// the covering-vs-hops shape survives, but host scheduling noise
/// cannot flip an assertion.
pub fn run_with_processing(
    which: DelayDtd,
    sizes: &[usize],
    scale: &Scale,
    processing: ProcessingModel,
) -> Vec<DelayPoint> {
    let dtd = match which {
        DelayDtd::Psd => psd_dtd(),
        DelayDtd::Nitf => nitf_dtd(),
    };
    let advertisements = derive_advertisements(&dtd, &DeriveOptions::default());
    // The measured subscription: a concrete expression every document
    // satisfies (`header/uid` is required in PSD; `body/body-content`
    // in NITF), long enough not to swallow the background load.
    let measured_xpe: xdn_xpath::Xpe = match which {
        DelayDtd::Psd => "/ProteinDatabase/ProteinEntry/header/uid"
            .parse()
            .expect("valid"),
        DelayDtd::Nitf => "/nitf/body/body-content".parse().expect("valid"),
    };

    let mut out = Vec::new();
    for covering in [true, false] {
        let config = if covering {
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build()
        } else {
            RoutingConfig::builder().advertisements(true).build()
        };
        const BROKERS: u32 = 7;
        let mut net: Network = chain(BROKERS, config, PlanetLabWan::default());
        net.set_processing_model(processing);
        let publisher = net.attach_client(BrokerId(0));
        net.advertise_all(publisher, advertisements.clone());
        net.run();

        // Background load at every broker.
        for b in 0..BROKERS {
            let client = net.attach_client(BrokerId(b));
            let mut rng = ChaCha8Rng::seed_from_u64(SEED + 13 + b as u64);
            let queries = xdn_xpath::generate::generate_distinct_xpes(
                &dtd,
                scale.delay_bg_queries,
                &sets::set_a_config(),
                &mut rng,
            );
            for q in queries {
                net.subscribe(client, q);
            }
        }
        // Measured subscribers at hop distances 2..=6.
        let mut measured = Vec::new();
        for hops in 2..=6u32 {
            let subscriber = net.attach_client(BrokerId(hops - 1));
            net.subscribe(subscriber, measured_xpe.clone());
            measured.push((hops, subscriber));
        }
        net.run();

        for &size in sizes {
            net.metrics_mut().reset();
            let documents =
                docs::sized_documents(&dtd, &vec![size; scale.delay_docs_per_size], SEED + 14);
            for d in &documents {
                net.publish_document(publisher, d);
            }
            net.run();
            for &(hops, subscriber) in &measured {
                let delays: Vec<Duration> = net
                    .metrics()
                    .notifications
                    .iter()
                    .filter(|n| n.client == subscriber)
                    .map(|n| n.delay)
                    .collect();
                if !delays.is_empty() {
                    // Exact nanosecond arithmetic — dividing a Duration
                    // by `len as u32` silently truncates large counts.
                    let total: u128 = delays.iter().map(Duration::as_nanos).sum();
                    let mean = Duration::from_nanos(
                        u64::try_from(total / delays.len() as u128).unwrap_or(u64::MAX),
                    );
                    out.push(DelayPoint {
                        hops,
                        doc_bytes: size,
                        covering,
                        delay: mean,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_with_hops_and_covering_wins() {
        let scale = Scale::quick();
        // Virtual-time processing: per-frame cost is an analytic
        // function of the routing table, not host wall-clock, so this
        // test cannot flake under CI scheduling jitter.
        let points =
            run_with_processing(DelayDtd::Psd, &[2_000], &scale, ProcessingModel::modeled());
        // Every (covering, hops) pair measured.
        assert!(points.len() >= 8, "got {} points", points.len());
        for covering in [true, false] {
            let series: Vec<&DelayPoint> =
                points.iter().filter(|p| p.covering == covering).collect();
            let first = series.iter().find(|p| p.hops == 2).unwrap();
            let last = series.iter().find(|p| p.hops == 6).unwrap();
            assert!(
                last.delay > first.delay,
                "delay must grow with hops (covering={covering}): {:?} vs {:?}",
                first.delay,
                last.delay
            );
        }
        // Covering must not lose: compare total delay across hops.
        let sum = |covering: bool| -> Duration {
            points
                .iter()
                .filter(|p| p.covering == covering)
                .map(|p| p.delay)
                .sum()
        };
        assert!(
            sum(true) <= sum(false),
            "covering should reduce end-to-end delay: {:?} vs {:?}",
            sum(true),
            sum(false)
        );
    }
}
