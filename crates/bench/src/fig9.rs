//! Figure 9 — false positives introduced by imperfect merging.
//!
//! An imperfect merger forwarded upstream attracts publications that
//! none of its constituent subscriptions wants; those publications
//! travel one broker hop too far (they are never delivered to
//! clients). The experiment sweeps the tolerated imperfect degree
//! `D_imperfect` and measures the percentage of upstream forwards that
//! are false.

use crate::{Scale, SEED};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xdn_core::merge::MergeConfig;
use xdn_core::rtable::{Prt, PublicationRouter, SubId};
use xdn_workloads::{docs, nitf_dtd};
use xdn_xpath::generate::XpeGeneratorConfig;
use xdn_xpath::Xpe;

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Point {
    /// Tolerated `D_imperfect`.
    pub degree: f64,
    /// Percentage of upstream forwards that were false positives.
    pub false_positive_pct: f64,
    /// Total upstream forwards observed.
    pub forwards: u64,
}

/// Runs the sweep over the given degrees (the paper plots 0 … 0.2).
pub fn run(scale: &Scale, degrees: &[f64]) -> Vec<Fig9Point> {
    // NITF: its path universe is large enough that subscriber groups do
    // not saturate it (a saturated universe makes every merger
    // vacuously perfect and hides the effect).
    let dtd = nitf_dtd();
    // Score mergers against the *publication distribution* rather than
    // a uniform DTD enumeration: brokers estimating D_imperfect from
    // the DTD alone systematically underestimate the false positives
    // their actual document workload will see (§4.3 notes the element
    // distribution must be taken into account). A disjoint document
    // sample stands in for that distribution.
    let estimation_docs = docs::documents(&dtd, scale.fig9_docs.max(40), SEED + 77);
    let universe: Vec<Vec<String>> = docs::publication_paths(&estimation_docs)
        .into_iter()
        .map(|p| p.elements)
        .collect();
    let documents = docs::documents(&dtd, scale.fig9_docs, SEED + 11);
    let pubs: Vec<Vec<String>> = docs::publication_paths(&documents)
        .into_iter()
        .map(|p| p.elements)
        .collect();

    // Independent subscriber groups, each modelling the subscription
    // table a downstream broker exports upstream.
    // A mid-generality workload (between Sets A and B): enough near-
    // miss sibling groups that the degree budget actually selects how
    // aggressively to merge.
    let qcfg = XpeGeneratorConfig {
        max_length: 10,
        min_length: 10,
        stop_p: 0.0,
        wildcard_p: 0.18,
        descendant_p: 0.0,
        relative_p: 0.0,
        first_concrete: true,
        max_wildcards: 2,
        max_descendants: 0,
        generalize_min_walk: 6,
        ..XpeGeneratorConfig::default()
    };
    let groups: Vec<Vec<Xpe>> = (0..scale.fig9_groups)
        .map(|g| {
            let mut rng = ChaCha8Rng::seed_from_u64(SEED + 12 + g as u64);
            xdn_xpath::generate::generate_distinct_xpes(
                &dtd,
                scale.fig9_queries_per_group,
                &qcfg,
                &mut rng,
            )
        })
        .collect();

    degrees
        .iter()
        .map(|&degree| {
            let mut forwards = 0u64;
            let mut false_forwards = 0u64;
            for group in &groups {
                // Build the downstream table and merge at this degree.
                let mut prt: Prt<u32> = Prt::new();
                for (i, q) in group.iter().enumerate() {
                    prt.insert(SubId(i as u64), q.clone(), 0);
                }
                if degree > 0.0 {
                    let cfg = MergeConfig {
                        max_degree: degree,
                        ..MergeConfig::default()
                    };
                    let mut seq = 1_000_000u64;
                    prt.apply_merging(&universe, &cfg, || {
                        seq += 1;
                        SubId(seq)
                    });
                }
                // What the upstream broker sees is the top-level set.
                let exported: Vec<Xpe> = prt
                    .forwarded_subs()
                    .into_iter()
                    .map(|(_, x, _)| x)
                    .collect();
                for p in &pubs {
                    let forwarded = exported.iter().any(|x| x.matches_path(p));
                    if forwarded {
                        forwards += 1;
                        let wanted = group.iter().any(|x| x.matches_path(p));
                        if !wanted {
                            false_forwards += 1;
                        }
                    }
                }
            }
            Fig9Point {
                degree,
                false_positive_pct: if forwards == 0 {
                    0.0
                } else {
                    100.0 * false_forwards as f64 / forwards as f64
                },
                forwards,
            }
        })
        .collect()
}

/// The paper's sweep points.
pub fn paper_degrees() -> Vec<f64> {
    vec![0.0, 0.05, 0.10, 0.15, 0.20]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_positives_grow_with_degree_and_vanish_at_zero() {
        let points = run(&Scale::quick(), &paper_degrees());
        assert_eq!(points.len(), 5);
        assert_eq!(
            points[0].false_positive_pct, 0.0,
            "perfect merging introduces no false positives"
        );
        let last = points.last().unwrap();
        assert!(
            last.false_positive_pct >= points[1].false_positive_pct,
            "false positives must not shrink as the degree grows: {points:?}"
        );
        // Forward counts only grow as mergers get looser.
        for w in points.windows(2) {
            assert!(w[1].forwards >= w[0].forwards);
        }
    }
}
