//! Minimal fixed-width table rendering for the `repro` binary.

/// Renders a table: header row plus data rows, columns padded to the
/// widest cell. Returns the formatted string (callers print it).
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch in table {title:?}");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    out.push_str(&fmt_row(&header_cells));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out
}

/// Formats a `Duration` as fractional milliseconds.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render_table(
            "T",
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "23".into()],
            ],
        );
        assert!(t.contains("== T =="));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[3].contains("a") && lines[4].contains("long-name"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let _ = render_table("T", &["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn ms_format() {
        assert_eq!(ms(std::time::Duration::from_micros(1500)), "1.500");
    }
}
