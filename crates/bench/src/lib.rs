#![forbid(unsafe_code)]
//! # xdn-bench — the reproduction harness
//!
//! One module per table/figure of the paper's evaluation (§5). Every
//! experiment is a plain function from a [`Scale`] to a typed result,
//! so the same code backs
//!
//! * the `repro` binary (`cargo run -p xdn-bench --release --bin repro`),
//!   which prints paper-style tables,
//! * the Criterion micro-benchmarks in `benches/`,
//! * the cross-crate integration tests, which assert the paper's
//!   qualitative shapes (who wins, by roughly what factor).
//!
//! Absolute numbers differ from the paper — its testbed was a 2003-era
//! cluster and PlanetLab — but each experiment preserves the relation
//! the paper reports (see `EXPERIMENTS.md`).

pub mod delay;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod report;
pub mod scale;
pub mod table1;
pub mod traffic;

pub use scale::Scale;

/// Base seed for every experiment; sub-experiments derive from it.
pub const SEED: u64 = 0x1cdc_5200;

/// A deterministic sample of a DTD's path universe, used where the
/// full universe would make `D_imperfect` scoring needlessly slow.
pub fn universe_sample(dtd: &xdn_xml::dtd::Dtd, cap: usize) -> Vec<Vec<String>> {
    let full = xdn_workloads::universe(dtd);
    if full.len() <= cap {
        return full;
    }
    let stride = full.len() / cap;
    full.into_iter().step_by(stride.max(1)).take(cap).collect()
}
