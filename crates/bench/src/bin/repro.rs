//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale quick|default|paper] [fig6|fig7|fig8|fig9|fig10|fig11|table1|table2|table3|all]
//! ```
//!
//! Each subcommand prints the corresponding table/series in the
//! paper's layout. Absolute times depend on this machine; the shapes
//! (who wins, by what factor) are the reproduction target — see
//! `EXPERIMENTS.md` for the side-by-side reading.

use std::time::Instant;
use xdn_bench::report::{ms, render_table};
use xdn_bench::{delay, fig6, fig7, fig8, fig9, table1, traffic, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default();
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("quick") => Scale::quick(),
                    Some("default") => Scale::default(),
                    Some("paper") => Scale::paper(),
                    other => {
                        eprintln!("unknown scale {other:?} (quick|default|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale quick|default|paper] \
                     [fig6|fig7|fig8|fig9|fig10|fig11|table1|table2|table3|all]..."
                );
                return;
            }
            t => targets.push(t.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = [
            "fig6", "fig7", "fig8", "table1", "table2", "table3", "fig9", "fig10", "fig11",
        ]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    }

    for t in targets {
        let started = Instant::now();
        match t.as_str() {
            "fig6" => run_fig6(&scale),
            "fig7" => run_fig7(&scale),
            "fig8" => run_fig8(&scale),
            "table1" => run_table1(&scale),
            "table2" => run_traffic(3, "Table 2. 7 Broker Network", &scale),
            "table3" => run_traffic(7, "Table 3. 127 Broker Network", &scale),
            "fig9" => run_fig9(&scale),
            "fig10" => run_delay(delay::DelayDtd::Psd, "Figure 10. PSD XML", &scale),
            "fig11" => run_delay(delay::DelayDtd::Nitf, "Figure 11. NITF XML", &scale),
            other => {
                eprintln!("unknown target {other:?}");
                std::process::exit(2);
            }
        }
        eprintln!("[{t} took {:.1}s]\n", started.elapsed().as_secs_f64());
    }
}

fn run_fig6(scale: &Scale) {
    // Workload summary: the realized W/DO/covering parameters.
    let dtd = xdn_workloads::nitf_dtd();
    for (name, queries) in [
        (
            "Set A",
            xdn_workloads::sets::set_a(&dtd, scale.fig6_queries.min(5_000), 1),
        ),
        (
            "Set B",
            xdn_workloads::sets::set_b(&dtd, scale.fig6_queries.min(5_000), 1),
        ),
    ] {
        let st = xdn_workloads::analyze::query_set_stats(&queries);
        let rate = xdn_workloads::sets::covering_rate(&queries);
        println!(
            "{name}: mean length {:.1}, wildcard rate {:.2}, descendant rate {:.2},              covering rate {:.2} (sampled over {} queries)",
            st.mean_length, st.wildcard_rate, st.descendant_rate, rate, st.count
        );
    }
    let rows = fig6::run(scale, 5);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.queries.to_string(),
                r.no_covering.to_string(),
                format!(
                    "{} ({:.0}%)",
                    r.set_a,
                    100.0 * r.set_a as f64 / r.queries as f64
                ),
                format!(
                    "{} ({:.0}%)",
                    r.set_b,
                    100.0 * r.set_b as f64 / r.queries as f64
                ),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Figure 6. Routing Table Size vs XPath Queries (NITF)",
            &[
                "queries",
                "no covering",
                "covering (Set A)",
                "covering (Set B)"
            ],
            &table,
        )
    );
}

fn run_fig7(scale: &Scale) {
    let rows = fig7::run(scale, 5);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.queries.to_string(),
                r.covering.to_string(),
                format!(
                    "{} ({:.0}%)",
                    r.perfect,
                    100.0 * r.perfect as f64 / r.covering as f64
                ),
                format!(
                    "{} ({:.0}%)",
                    r.imperfect,
                    100.0 * r.imperfect as f64 / r.covering as f64
                ),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Figure 7. Routing Table Size with Merging (Set B)",
            &[
                "queries",
                "covering",
                "perfect merging",
                "imperfect merging (D=0.1)"
            ],
            &table,
        )
    );
}

fn run_fig8(scale: &Scale) {
    let r = fig8::run(scale, 10);
    println!(
        "advertisements: NITF {} vs PSD {} ({:.0}x)",
        r.nitf_advs,
        r.psd_advs,
        r.nitf_advs as f64 / r.psd_advs as f64
    );
    for (name, series) in [("NITF", &r.nitf), ("PSD", &r.psd)] {
        let table: Vec<Vec<String>> = series
            .iter()
            .map(|p| {
                vec![
                    p.batch_end.to_string(),
                    format!("{:.1}", p.with_covering_us),
                    format!("{:.1}", p.without_covering_us),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &format!("Figure 8. XPE Processing Time ({name})"),
                &[
                    "subscriptions",
                    "with covering (us)",
                    "without covering (us)"
                ],
                &table,
            )
        );
    }
}

fn run_table1(scale: &Scale) {
    let t = table1::run(scale);
    let rows: Vec<Vec<String>> = (0..4)
        .map(|i| {
            vec![
                t.methods[i].to_string(),
                ms(t.set_a[i].mean()),
                ms(t.set_a[i].p95()),
                ms(t.set_b[i].mean()),
                ms(t.set_b[i].p95()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!(
                "Table 1. Publication Routing Performance ({} publications)",
                t.publications
            ),
            &[
                "Method",
                "Set A mean (ms)",
                "Set A p95 (ms)",
                "Set B mean (ms)",
                "Set B p95 (ms)"
            ],
            &rows,
        )
    );
}

fn run_traffic(levels: u32, title: &str, scale: &Scale) {
    let rows = traffic::run(levels, scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.strategy.to_string(),
                r.traffic.to_string(),
                ms(r.delay),
                r.notifications.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            title,
            &["Method", "Network Traffic", "Delay (ms)", "Deliveries"],
            &table
        )
    );
}

fn run_fig9(scale: &Scale) {
    let points = fig9::run(scale, &fig9::paper_degrees());
    let table: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.degree),
                format!("{:.2}", p.false_positive_pct),
                p.forwards.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Figure 9. False Positives vs Imperfect Degree",
            &["D_imperfect", "false positives (%)", "forwards"],
            &table,
        )
    );
}

fn run_delay(which: delay::DelayDtd, title: &str, scale: &Scale) {
    let sizes = delay::paper_sizes(which);
    let points = delay::run(which, &sizes, scale);
    let mut table = Vec::new();
    for &size in &sizes {
        for covering in [true, false] {
            let mut row = vec![format!(
                "{}K {}",
                size / 1000,
                if covering {
                    "with covering"
                } else {
                    "without covering"
                }
            )];
            for hops in 2..=6u32 {
                let cell = points
                    .iter()
                    .find(|p| p.hops == hops && p.doc_bytes == size && p.covering == covering)
                    .map_or_else(|| "-".to_string(), |p| ms(p.delay));
                row.push(cell);
            }
            table.push(row);
        }
    }
    print!(
        "{}",
        render_table(
            &format!("{title} — notification delay (ms) by hops"),
            &["document", "2 hops", "3 hops", "4 hops", "5 hops", "6 hops"],
            &table,
        )
    );
}
