//! Experiment scales.

/// Workload sizes for every experiment. The paper's sizes are large
/// (100,000 XPEs, 127 brokers, PlanetLab); [`Scale::default`] is a
/// laptop-scale configuration that finishes in minutes and preserves
/// every qualitative relation; [`Scale::paper`] restores the paper's
/// numbers; [`Scale::quick`] is for CI and integration tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scale {
    /// Figure 6: queries per data set (paper: 100,000).
    pub fig6_queries: usize,
    /// Figure 7: Set B queries (paper: 100,000).
    pub fig7_queries: usize,
    /// Figure 8: XPEs processed (paper: 5,000).
    pub fig8_queries: usize,
    /// Table 1: subscriptions in the routing table (paper: 100,000).
    pub table1_queries: usize,
    /// Table 1: published documents (paper: 500 → 23,098 paths).
    pub table1_docs: usize,
    /// Tables 2/3: distinct XPEs per leaf subscriber (paper: 1,000).
    pub traffic_queries_per_sub: usize,
    /// Tables 2/3: published documents (paper: 50 → 4,182 paths).
    pub traffic_docs: usize,
    /// Figure 9: subscriber groups (models distinct downstream hops).
    pub fig9_groups: usize,
    /// Figure 9: queries per group.
    pub fig9_queries_per_group: usize,
    /// Figure 9: published documents.
    pub fig9_docs: usize,
    /// Figures 10/11: background queries loading each broker's table.
    pub delay_bg_queries: usize,
    /// Figures 10/11: documents published per (size, hop) point
    /// (paper: averaged over four runs).
    pub delay_docs_per_size: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            fig6_queries: 20_000,
            fig7_queries: 10_000,
            fig8_queries: 2_000,
            table1_queries: 10_000,
            table1_docs: 100,
            traffic_queries_per_sub: 100,
            traffic_docs: 10,
            fig9_groups: 8,
            fig9_queries_per_group: 700,
            fig9_docs: 30,
            delay_bg_queries: 1_000,
            delay_docs_per_size: 4,
        }
    }
}

impl Scale {
    /// The paper's workload sizes. Expect long runtimes (the flat
    /// no-covering baselines are quadratic by design — that is the
    /// point of the paper).
    pub fn paper() -> Self {
        Scale {
            fig6_queries: 100_000,
            fig7_queries: 100_000,
            fig8_queries: 5_000,
            table1_queries: 100_000,
            table1_docs: 500,
            traffic_queries_per_sub: 1_000,
            traffic_docs: 50,
            fig9_groups: 16,
            fig9_queries_per_group: 1_000,
            fig9_docs: 50,
            delay_bg_queries: 4_000,
            delay_docs_per_size: 4,
        }
    }

    /// A seconds-scale configuration for CI and integration tests.
    pub fn quick() -> Self {
        Scale {
            fig6_queries: 2_000,
            fig7_queries: 1_500,
            fig8_queries: 400,
            table1_queries: 1_500,
            table1_docs: 20,
            traffic_queries_per_sub: 25,
            traffic_docs: 4,
            fig9_groups: 4,
            fig9_queries_per_group: 400,
            fig9_docs: 10,
            delay_bg_queries: 200,
            delay_docs_per_size: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let q = Scale::quick();
        let d = Scale::default();
        let p = Scale::paper();
        assert!(q.fig6_queries < d.fig6_queries && d.fig6_queries < p.fig6_queries);
        assert!(q.traffic_docs <= d.traffic_docs && d.traffic_docs <= p.traffic_docs);
    }
}
