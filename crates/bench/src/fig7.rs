//! Figure 7 — routing-table size under covering, perfect merging, and
//! imperfect merging (Set B).
//!
//! The paper reports perfect merging compacting the covering table to
//! ≈87 % of its size, and imperfect merging with `D = 0.1` to ≈67 %.

use crate::{universe_sample, Scale, SEED};
use xdn_core::merge::MergeConfig;
use xdn_core::subtree::SubscriptionTree;
use xdn_workloads::{nitf_dtd, sets};

/// One sampled point of the Figure 7 series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig7Row {
    /// Queries inserted so far.
    pub queries: usize,
    /// Effective table size after covering only.
    pub covering: usize,
    /// After covering + perfect merging.
    pub perfect: usize,
    /// After covering + imperfect merging (`D = 0.1`).
    pub imperfect: usize,
}

/// Runs the experiment, sampling `points` evenly spaced checkpoints.
pub fn run(scale: &Scale, points: usize) -> Vec<Fig7Row> {
    let dtd = nitf_dtd();
    // Degrees are scored against the DTD's own path universe: "perfect"
    // must mean provably-no-false-positives, so a (finite) document
    // sample would over-merge. On our synthetic DTD the (0, 0.1] degree
    // band is sparse — mergers are mostly exactly perfect or far over
    // budget — so the imperfect line tracks the perfect one closely;
    // the tested invariant is imperfect <= perfect.
    let universe = universe_sample(&dtd, 4_000);
    let queries = sets::set_b(&dtd, scale.fig7_queries, SEED + 2);
    let n = queries.len();
    let step = (n / points.max(1)).max(1);

    let mut tree: SubscriptionTree<()> = SubscriptionTree::new();
    let mut rows = Vec::new();
    let mut next_checkpoint = step;
    let perfect_cfg = MergeConfig {
        max_degree: 0.0,
        ..MergeConfig::default()
    };
    let imperfect_cfg = MergeConfig {
        max_degree: 0.1,
        ..MergeConfig::default()
    };
    for (i, q) in queries.iter().enumerate() {
        tree.insert(q.clone(), ());
        if i + 1 == next_checkpoint || i + 1 == n {
            let covering = tree.root_count();
            let mut pm = tree.clone();
            xdn_core::merge::merge_tree(&mut pm, &universe, &perfect_cfg);
            let mut ipm = tree.clone();
            xdn_core::merge::merge_tree(&mut ipm, &universe, &imperfect_cfg);
            rows.push(Fig7Row {
                queries: i + 1,
                covering,
                perfect: pm.root_count(),
                imperfect: ipm.root_count(),
            });
            next_checkpoint += step;
        }
    }
    rows.dedup_by_key(|r| r.queries);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_compacts_beyond_covering() {
        let rows = run(&Scale::quick(), 3);
        let last = rows.last().unwrap();
        assert!(
            last.perfect < last.covering,
            "perfect merging must shrink the table: {} vs {}",
            last.perfect,
            last.covering
        );
        assert!(
            last.imperfect <= last.perfect,
            "imperfect merging admits every perfect merger and more: {} vs {}",
            last.imperfect,
            last.perfect
        );
    }
}
