//! Table 1 — publication routing time per message.
//!
//! Publications (paths of 500 NITF documents) are routed against
//! 100,000 XPEs under four table organizations: flat (no covering),
//! covering, covering + perfect merging, covering + imperfect merging
//! (`D = 0.1`). The paper reports covering cutting Set A's routing
//! time by 84.6 % and Set B's by 47.5 %, with merging improving both
//! further.
//!
//! Each publication is routed through a
//! [`xdn_core::rtable::TimedRouter`], so every cell carries a full
//! per-publication latency [`Histogram`] (mean, p50/p95/p99) instead
//! of a single averaged duration.

use crate::{universe_sample, Scale, SEED};
use xdn_core::merge::MergeConfig;
use xdn_core::rtable::{FlatPrt, Prt, PublicationRouter, SubId, TimedRouter};
use xdn_obs::Histogram;
use xdn_workloads::{docs, nitf_dtd, sets};
use xdn_xpath::Xpe;

/// Per-publication routing-time distribution for one (method, set)
/// cell. [`Histogram::mean`] reproduces the paper's reported figure;
/// the tail quantiles are this reproduction's addition.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Methods in paper order: no covering, covering, perfect merging,
    /// imperfect merging.
    pub methods: [&'static str; 4],
    /// Per-publication routing-time histogram for Set A.
    pub set_a: [Histogram; 4],
    /// Per-publication routing-time histogram for Set B.
    pub set_b: [Histogram; 4],
    /// Number of publications routed.
    pub publications: usize,
}

/// Runs the experiment.
pub fn run(scale: &Scale) -> Table1 {
    let dtd = nitf_dtd();
    let universe = universe_sample(&dtd, 4_000);
    let documents = docs::documents(&dtd, scale.table1_docs, SEED + 5);
    let paths = docs::publication_paths(&documents);
    let pubs: Vec<Vec<String>> = paths.into_iter().map(|p| p.elements).collect();

    let a = sets::set_a(&dtd, scale.table1_queries, SEED + 6);
    let b = sets::set_b(&dtd, scale.table1_queries, SEED + 7);

    Table1 {
        methods: [
            "No Covering",
            "Covering",
            "Perfect Merging",
            "Imperfect Merging",
        ],
        set_a: run_set(&a, &pubs, &universe),
        set_b: run_set(&b, &pubs, &universe),
        publications: pubs.len(),
    }
}

/// Routes every publication and returns the timing decorator's
/// per-publication histogram, cleared for the next pass.
fn route_all<H: Clone + Ord, R: PublicationRouter<H>>(
    router: &TimedRouter<R>,
    pubs: &[Vec<String>],
) -> Histogram {
    for p in pubs {
        std::hint::black_box(router.matching_hops(p, &[]).len());
    }
    let hist = router.route_times();
    router.reset_times();
    hist
}

fn run_set(queries: &[Xpe], pubs: &[Vec<String>], universe: &[Vec<String>]) -> [Histogram; 4] {
    // Flat baseline.
    let mut flat: TimedRouter<FlatPrt<u32>> = TimedRouter::new(FlatPrt::new());
    for (i, q) in queries.iter().enumerate() {
        flat.insert(SubId(i as u64), q.clone(), i as u32);
    }
    let flat_hist = route_all(&flat, pubs);

    // Covering.
    let mut prt: TimedRouter<Prt<u32>> = TimedRouter::new(Prt::new());
    for (i, q) in queries.iter().enumerate() {
        prt.insert(SubId(i as u64), q.clone(), i as u32);
    }
    let cov_hist = route_all(&prt, pubs);

    // Covering + perfect merging.
    let mut seq = 1_000_000u64;
    let pm_cfg = MergeConfig {
        max_degree: 0.0,
        ..MergeConfig::default()
    };
    prt.apply_merging(universe, &pm_cfg, &mut || {
        seq += 1;
        SubId(seq)
    });
    let pm_hist = route_all(&prt, pubs);

    // Covering + imperfect merging (on top of the perfect pass, as in
    // a broker that relaxes its degree budget).
    let ipm_cfg = MergeConfig {
        max_degree: 0.1,
        ..MergeConfig::default()
    };
    prt.apply_merging(universe, &ipm_cfg, &mut || {
        seq += 1;
        SubId(seq)
    });
    let ipm_hist = route_all(&prt, pubs);

    [flat_hist, cov_hist, pm_hist, ipm_hist]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_beats_flat_on_both_sets() {
        let t = run(&Scale::quick());
        assert!(t.publications > 100);
        // Table 1's ordering: covering < no covering, merging <= covering
        // (allowing jitter headroom on the small quick scale).
        for set in [&t.set_a, &t.set_b] {
            assert_eq!(set[0].count(), t.publications as u64);
            assert!(
                set[1].mean() < set[0].mean(),
                "covering ({:?}) must beat flat ({:?})",
                set[1].mean(),
                set[0].mean()
            );
            let merged_ok = set[2].mean() <= set[1].mean() + set[1].mean() / 2;
            assert!(merged_ok, "merging should not regress much");
            // The distribution is populated, not just its mean.
            assert!(set[0].p95() >= set[0].p50());
        }
    }
}
