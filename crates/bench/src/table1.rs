//! Table 1 — publication routing time per message.
//!
//! Publications (paths of 500 NITF documents) are routed against
//! 100,000 XPEs under four table organizations: flat (no covering),
//! covering, covering + perfect merging, covering + imperfect merging
//! (`D = 0.1`). The paper reports covering cutting Set A's routing
//! time by 84.6 % and Set B's by 47.5 %, with merging improving both
//! further.

use crate::{universe_sample, Scale, SEED};
use std::time::{Duration, Instant};
use xdn_core::merge::MergeConfig;
use xdn_core::rtable::{FlatPrt, Prt, SubId};
use xdn_workloads::{docs, nitf_dtd, sets};
use xdn_xpath::Xpe;

/// Mean routing time per publication for one (method, set) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Methods in paper order: no covering, covering, perfect merging,
    /// imperfect merging.
    pub methods: [&'static str; 4],
    /// Per-publication mean for Set A.
    pub set_a: [Duration; 4],
    /// Per-publication mean for Set B.
    pub set_b: [Duration; 4],
    /// Number of publications routed.
    pub publications: usize,
}

/// Runs the experiment.
pub fn run(scale: &Scale) -> Table1 {
    let dtd = nitf_dtd();
    let universe = universe_sample(&dtd, 4_000);
    let documents = docs::documents(&dtd, scale.table1_docs, SEED + 5);
    let paths = docs::publication_paths(&documents);
    let pubs: Vec<Vec<String>> = paths.into_iter().map(|p| p.elements).collect();

    let a = sets::set_a(&dtd, scale.table1_queries, SEED + 6);
    let b = sets::set_b(&dtd, scale.table1_queries, SEED + 7);

    Table1 {
        methods: [
            "No Covering",
            "Covering",
            "Perfect Merging",
            "Imperfect Merging",
        ],
        set_a: run_set(&a, &pubs, &universe),
        set_b: run_set(&b, &pubs, &universe),
        publications: pubs.len(),
    }
}

fn run_set(queries: &[Xpe], pubs: &[Vec<String>], universe: &[Vec<String>]) -> [Duration; 4] {
    // Flat baseline.
    let mut flat: FlatPrt<u32> = FlatPrt::new();
    for (i, q) in queries.iter().enumerate() {
        flat.subscribe(SubId(i as u64), q.clone(), i as u32);
    }
    let flat_time = time_per_pub(pubs, |p| flat.route(p).len());

    // Covering.
    let mut prt: Prt<u32> = Prt::new();
    for (i, q) in queries.iter().enumerate() {
        prt.subscribe(SubId(i as u64), q.clone(), i as u32);
    }
    let cov_time = time_per_pub(pubs, |p| prt.route(p).len());

    // Covering + perfect merging.
    let mut seq = 1_000_000u64;
    let pm_cfg = MergeConfig {
        max_degree: 0.0,
        ..MergeConfig::default()
    };
    prt.apply_merging(universe, &pm_cfg, || {
        seq += 1;
        SubId(seq)
    });
    let pm_time = time_per_pub(pubs, |p| prt.route(p).len());

    // Covering + imperfect merging (on top of the perfect pass, as in
    // a broker that relaxes its degree budget).
    let ipm_cfg = MergeConfig {
        max_degree: 0.1,
        ..MergeConfig::default()
    };
    prt.apply_merging(universe, &ipm_cfg, || {
        seq += 1;
        SubId(seq)
    });
    let ipm_time = time_per_pub(pubs, |p| prt.route(p).len());

    [flat_time, cov_time, pm_time, ipm_time]
}

fn time_per_pub(pubs: &[Vec<String>], mut route: impl FnMut(&[String]) -> usize) -> Duration {
    let started = Instant::now();
    for p in pubs {
        std::hint::black_box(route(p));
    }
    started.elapsed() / pubs.len().max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_beats_flat_on_both_sets() {
        let t = run(&Scale::quick());
        assert!(t.publications > 100);
        // Table 1's ordering: covering < no covering, merging <= covering
        // (allowing jitter headroom on the small quick scale).
        for set in [&t.set_a, &t.set_b] {
            assert!(
                set[1] < set[0],
                "covering ({:?}) must beat flat ({:?})",
                set[1],
                set[0]
            );
            let merged_ok = set[2] <= set[1] + set[1] / 2;
            assert!(merged_ok, "merging should not regress much: {set:?}");
        }
    }
}
