//! Tables 2 and 3 — network traffic and notification delay in the
//! 7-broker and 127-broker tree overlays.
//!
//! Each leaf broker hosts one subscriber with 1,000 distinct PSD XPEs;
//! one publisher connects to a random broker and publishes 50 PSD
//! documents (≈4,200 publications). All six routing strategies are
//! compared on total broker-received messages (advertisements +
//! subscriptions + unsubscriptions + publications) and on mean
//! notification delay.

use crate::{universe_sample, Scale, SEED};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use xdn_broker::{MessageKind, RoutingConfig};
use xdn_core::adv::{derive_advertisements, DeriveOptions};
use xdn_net::latency::ClusterLan;
use xdn_net::topology::{binary_tree, binary_tree_leaves};
use xdn_workloads::{docs, psd_dtd, sets};
use xdn_xpath::generate::generate_distinct_xpes;

/// One strategy's row of Table 2 or 3.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficRow {
    /// Strategy name, paper spelling.
    pub strategy: &'static str,
    /// Total messages received by brokers.
    pub traffic: u64,
    /// Subscription messages received by brokers (scoped by
    /// advertisements, trimmed by covering).
    pub subscribe_traffic: u64,
    /// Publication messages received by brokers.
    pub publish_traffic: u64,
    /// Advertisement-flood messages received by brokers.
    pub advertise_traffic: u64,
    /// Mean notification delay.
    pub delay: std::time::Duration,
    /// Documents delivered (sanity: equal across strategies).
    pub notifications: usize,
}

/// Runs all six strategies on a binary-tree overlay with `levels`
/// levels (3 → Table 2's 7 brokers, 7 → Table 3's 127 brokers).
pub fn run(levels: u32, scale: &Scale) -> Vec<TrafficRow> {
    let dtd = psd_dtd();
    let advertisements = derive_advertisements(&dtd, &DeriveOptions::default());
    let universe = Arc::new(universe_sample(&dtd, 4_000));
    let leaves = binary_tree_leaves(levels);
    let documents = docs::documents(&dtd, scale.traffic_docs, SEED + 8);

    RoutingConfig::all_strategies()
        .into_iter()
        .map(|(name, config)| {
            let mut net = binary_tree(levels, config, ClusterLan::default());
            // One publisher at a random broker (seeded per the run, not
            // per strategy, so every strategy sees the same placement).
            let mut rng = ChaCha8Rng::seed_from_u64(SEED + 9);
            let ids = net.broker_ids();
            let pub_home = ids[rng.gen_range(0..ids.len())];
            let publisher = net.attach_client(pub_home);

            if config.merging.is_some() {
                for id in net.broker_ids() {
                    net.broker_mut(id).set_universe(universe.clone());
                }
            }

            // Advertisement phase (strategies without advertisements
            // skip it — subscriptions flood instead).
            if config.advertisements {
                net.advertise_all(publisher, advertisements.clone());
                net.run();
            }

            // Subscription phase: distinct queries per leaf subscriber,
            // with the merging pass applied periodically (as in §4.3 —
            // "we periodically apply the above merging rules") so that
            // later subscriptions are absorbed by installed mergers.
            let mut pending: Vec<(xdn_broker::ClientId, xdn_xpath::Xpe)> = Vec::new();
            for (i, &leaf) in leaves.iter().enumerate() {
                let subscriber = net.attach_client(leaf);
                let mut qrng = ChaCha8Rng::seed_from_u64(SEED + 10 + i as u64);
                let queries = generate_distinct_xpes(
                    &dtd,
                    scale.traffic_queries_per_sub,
                    &sets::set_a_config(),
                    &mut qrng,
                );
                pending.extend(queries.into_iter().map(|q| (subscriber, q)));
            }
            const MERGE_ROUNDS: usize = 4;
            let chunk = (pending.len() / MERGE_ROUNDS).max(1);
            for batch in pending.chunks(chunk) {
                for (subscriber, q) in batch {
                    net.subscribe(*subscriber, q.clone());
                }
                net.run();
                if config.merging.is_some() {
                    net.apply_merging();
                    net.run();
                }
            }

            // Publish phase.
            for d in &documents {
                net.publish_document(publisher, d);
            }
            net.run();

            TrafficRow {
                strategy: name,
                traffic: net.metrics().network_traffic(),
                subscribe_traffic: net.metrics().traffic_of(MessageKind::Subscribe)
                    + net.metrics().traffic_of(MessageKind::Unsubscribe),
                publish_traffic: net.metrics().traffic_of(MessageKind::Publish),
                advertise_traffic: net.metrics().traffic_of(MessageKind::Advertise),
                delay: net.metrics().mean_notification_delay().unwrap_or_default(),
                notifications: net.metrics().notifications.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_ordering_matches_table_2() {
        let rows = run(3, &Scale::quick());
        assert_eq!(rows.len(), 6);
        let by_name = |n: &str| rows.iter().find(|r| r.strategy == n).unwrap();
        let no_adv_no_cov = by_name("no-Adv-no-Cov");
        let no_adv_cov = by_name("no-Adv-with-Cov");
        let adv_no_cov = by_name("with-Adv-no-Cov");
        let adv_cov = by_name("with-Adv-with-Cov");
        let pm = by_name("with-Adv-with-CovPM");

        // Covering cuts total traffic under flooding (Table 2's first
        // two rows).
        assert!(no_adv_cov.traffic < no_adv_no_cov.traffic);
        // Advertisement scoping cuts subscription traffic relative to
        // flooding; at paper scale this dominates the totals. (The
        // quick scale used here cannot amortize the advertisement
        // flood itself, so totals are compared per component.)
        assert!(adv_no_cov.subscribe_traffic <= no_adv_no_cov.subscribe_traffic);
        assert!(adv_cov.subscribe_traffic <= no_adv_cov.subscribe_traffic);
        // Periodic merging absorbs later subscriptions; with the
        // retraction control messages included it must stay at worst
        // marginally above plain covering even at this tiny scale, and
        // wins clearly at paper scale.
        assert!(
            pm.traffic as f64 <= adv_cov.traffic as f64 * 1.25,
            "merging exploded traffic: {} vs {}",
            pm.traffic,
            adv_cov.traffic
        );

        // Deliveries must be identical across strategies — the
        // optimizations must never lose a notification.
        for r in &rows {
            assert_eq!(
                r.notifications, no_adv_no_cov.notifications,
                "{} delivered a different set",
                r.strategy
            );
        }
    }
}
