//! Cores-vs-throughput bench for the sharded parallel matching engine.
//!
//! Routes the NITF `set_a` publication workload through
//! [`ShardedRouter`]`<IndexedPrt>` at growing shard counts (one pool
//! worker per shard) and compares against the sequential single-shard
//! path, writing `BENCH_parallel.json` at the workspace root.
//! Criterion's offline stand-in emits no reports, so this self-times
//! with `Instant` like the matching bench.
//!
//! Speedup is bounded by the host's available parallelism, which the
//! artifact records; on a single-core runner the curve is flat and the
//! measurement degenerates to the pool's coordination overhead.
//!
//! Environment knobs (for CI smoke runs):
//! * `XDN_BENCH_SUBS` — subscription count (default `50000`);
//! * `XDN_BENCH_ITERS` — timed passes over the publication set
//!   (default `3`);
//! * `XDN_BENCH_SHARDS` — comma-separated shard counts
//!   (default `1,2,4,8`).

use std::time::Instant;
use xdn_bench::SEED;
use xdn_core::index::IndexedPrt;
use xdn_core::rtable::{PublicationRouter, RouteRequest, SubId};
use xdn_core::shard::ShardedRouter;
use xdn_workloads::{docs, nitf_dtd, sets};

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");

struct Level {
    shards: usize,
    threads: usize,
    ns_per_pub: f64,
    pubs_per_sec: f64,
    speedup_vs_sequential: f64,
}

fn env_usize_list(key: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(key) {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => default.to_vec(),
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn main() {
    let subs_n = env_usize("XDN_BENCH_SUBS", 50_000).max(1);
    let iters = env_usize("XDN_BENCH_ITERS", 3).max(1);
    let shard_counts = env_usize_list("XDN_BENCH_SHARDS", &[1, 2, 4, 8]);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let dtd = nitf_dtd();
    let queries = sets::set_a(&dtd, subs_n, SEED + 30);
    let documents = docs::documents(&dtd, 40, SEED + 31);
    let paths: Vec<Vec<String>> = docs::publication_paths(&documents)
        .into_iter()
        .map(|p| p.elements)
        .collect();
    let requests: Vec<RouteRequest<'_>> = paths
        .iter()
        .map(|p| RouteRequest {
            path: p,
            attrs: &[],
        })
        .collect();
    let routed = (iters * paths.len()) as u64;

    // The sequential single-shard path every shard count must agree
    // with — one IndexedPrt, one matching_hops call per publication.
    let mut reference: IndexedPrt<u32> = IndexedPrt::new();
    for (i, q) in queries.iter().enumerate() {
        reference.insert(SubId(i as u64), q.clone(), i as u32);
    }
    let mut seq_matches = 0u64;
    let started = Instant::now();
    for _ in 0..iters {
        for p in &paths {
            seq_matches += reference.matching_hops(std::hint::black_box(p), &[]).len() as u64;
        }
    }
    let seq_ns = started.elapsed().as_nanos() as f64 / routed as f64;
    println!(
        "bench parallel subs={subs_n}: sequential {seq_ns:.0} ns/pub \
         ({seq_matches} matches, {cores} cores)"
    );

    let mut levels = Vec::new();
    for &shards in &shard_counts {
        let shards = shards.max(1);
        let mut router: ShardedRouter<IndexedPrt<u32>> =
            ShardedRouter::with_threads(shards, shards);
        for (i, q) in queries.iter().enumerate() {
            router.insert(SubId(i as u64), q.clone(), i as u32);
        }

        let mut matches = 0u64;
        let started = Instant::now();
        for _ in 0..iters {
            for set in router.route_batch(std::hint::black_box(&requests)) {
                matches += set.len() as u64;
            }
        }
        let ns = started.elapsed().as_nanos() as f64 / routed as f64;

        assert_eq!(
            matches, seq_matches,
            "sharded routing must select exactly the sequential matches at shards={shards}"
        );
        let speedup = seq_ns / ns.max(f64::EPSILON);
        let pubs_per_sec = 1e9 / ns.max(f64::EPSILON);
        println!(
            "bench parallel shards={shards}: {ns:.0} ns/pub, \
             {pubs_per_sec:.0} pubs/s, speedup {speedup:.2}x vs sequential"
        );
        levels.push(Level {
            shards,
            threads: router.threads(),
            ns_per_pub: ns,
            pubs_per_sec,
            speedup_vs_sequential: speedup,
        });
    }

    let json = render_json(&levels, subs_n, paths.len(), iters, cores, seq_ns);
    match std::fs::write(OUT_PATH, &json) {
        Ok(()) => println!("wrote {OUT_PATH}"),
        Err(e) => eprintln!("failed to write {OUT_PATH}: {e}"),
    }
}

fn render_json(
    levels: &[Level],
    subs: usize,
    paths: usize,
    iters: usize,
    cores: usize,
    seq_ns: f64,
) -> String {
    let rows: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "    {{\"shards\": {}, \"threads\": {}, \"ns_per_pub\": {:.1}, \
                 \"pubs_per_sec\": {:.0}, \"speedup_vs_sequential\": {:.2}}}",
                l.shards, l.threads, l.ns_per_pub, l.pubs_per_sec, l.speedup_vs_sequential,
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"parallel\",\n  \"workload\": \"nitf set_a\",\n  \
         \"subscriptions\": {subs},\n  \"publication_paths\": {paths},\n  \
         \"iters\": {iters},\n  \"host_cores\": {cores},\n  \
         \"sequential_ns_per_pub\": {seq_ns:.1},\n  \"levels\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}
