//! Criterion bench behind Figure 6: routing-table maintenance cost.
//!
//! Compares inserting a query workload into the flat table, the lazy
//! covering tree (the default), and the eager-super-pointer tree (the
//! paper's §4.1 remark that eager maintenance "becomes expensive" —
//! the ablation measures how much).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use xdn_bench::SEED;
use xdn_core::subtree::SubscriptionTree;
use xdn_workloads::{nitf_dtd, sets};

fn bench_insert(c: &mut Criterion) {
    let dtd = nitf_dtd();
    let mut group = c.benchmark_group("rts_insert");
    for &n in &[500usize, 2_000] {
        let set_a = sets::set_a(&dtd, n, SEED);
        let set_b = sets::set_b(&dtd, n, SEED + 1);
        for (set_name, queries) in [("setA", &set_a), ("setB", &set_b)] {
            group.bench_with_input(
                BenchmarkId::new(format!("covering_lazy_{set_name}"), n),
                queries,
                |b, qs| {
                    b.iter_batched(
                        SubscriptionTree::<()>::new,
                        |mut tree| {
                            for q in qs {
                                tree.insert(q.clone(), ());
                            }
                            tree.root_count()
                        },
                        BatchSize::SmallInput,
                    );
                },
            );
            // Eager super-pointer maintenance is O(n) per insert (a
            // full-tree scan); bench it only at the small size or the
            // ablation itself dominates the suite's runtime.
            if n <= 500 {
                group.bench_with_input(
                    BenchmarkId::new(format!("covering_eager_supers_{set_name}"), n),
                    queries,
                    |b, qs| {
                        b.iter_batched(
                            SubscriptionTree::<()>::with_eager_super_pointers,
                            |mut tree| {
                                for q in qs {
                                    tree.insert(q.clone(), ());
                                }
                                tree.root_count()
                            },
                            BatchSize::SmallInput,
                        );
                    },
                );
            }
            group.bench_with_input(
                BenchmarkId::new(format!("flat_{set_name}"), n),
                queries,
                |b, qs| {
                    b.iter_batched(
                        Vec::new,
                        |mut v: Vec<xdn_xpath::Xpe>| {
                            for q in qs {
                                v.push(q.clone());
                            }
                            v.len()
                        },
                        BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_insert
}
criterion_main!(benches);
