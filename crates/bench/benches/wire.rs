//! Encode-once fan-out bench for the zero-copy wire data plane.
//!
//! Routes NITF publication paths toward 2/8/32 peers and compares the
//! two ways of producing the per-peer sequenced frames:
//!
//! * **flat** — the pre-`FrameBuf` send path: build one
//!   `Message::Sequenced` per peer and encode the *whole* frame (outer
//!   header plus nested inner frame) per peer;
//! * **shared** — the `FrameBuf` path: encode the payload body once,
//!   then stamp each peer's 29-byte sequencing header over the shared
//!   body with a vectored write.
//!
//! Encode calls and encoded bytes are measured from the codec's own
//! process-wide counters ([`wire::codec_stats`]) as deltas around each
//! timed section, so the artifact proves the "exactly one encode per
//! fan-out" property rather than asserting it from first principles.
//! Writes `BENCH_wire.json` at the workspace root. Criterion's offline
//! stand-in emits no reports, so this self-times with `Instant` like
//! the other benches.
//!
//! Environment knobs (for CI smoke runs):
//! * `XDN_BENCH_ITERS` — timed passes over the publication set
//!   (default `50`);
//! * `XDN_BENCH_PEERS` — comma-separated fan-out widths
//!   (default `2,8,32`).

use std::io::Write;
use std::sync::Arc;
use std::time::Instant;
use xdn_bench::SEED;
use xdn_broker::wire::{self, FrameBuf, SeqHeader};
use xdn_broker::{Message, Publication};
use xdn_workloads::{docs, nitf_dtd};

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json");

/// Byte-counting null writer: the frames go nowhere, but every byte is
/// "sent", exercising the same `write_to` path the TCP transport uses.
struct NullWriter {
    written: u64,
}

impl Write for NullWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.written += buf.len() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct Side {
    ns_per_fanout: f64,
    encode_calls_per_fanout: f64,
    encoded_bytes_per_fanout: f64,
    wire_bytes_per_fanout: f64,
}

struct Level {
    peers: usize,
    flat: Side,
    shared: Side,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_usize_list(key: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(key) {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => default.to_vec(),
    }
}

/// Encodes every frame of the flat (per-peer re-encode) fan-out: a
/// fresh buffer and a full body encode per peer, the pre-`FrameBuf`
/// data plane this bench exists to compare against.
fn flat_fanout(msg: &Message, peers: usize, epoch: u64, seq0: u64, sink: &mut NullWriter) {
    for p in 0..peers {
        let framed = Message::Sequenced {
            epoch,
            seq: seq0 + p as u64,
            low: seq0,
            inner: Arc::new(msg.clone()),
        };
        let mut bytes = Vec::new();
        wire::encode_into(std::hint::black_box(&framed), &mut bytes);
        sink.write_all(&bytes).expect("null writer");
    }
}

/// Encodes the body once, then stamps each peer's header over it.
fn shared_fanout(msg: &Message, peers: usize, epoch: u64, seq0: u64, sink: &mut NullWriter) {
    let base = FrameBuf::from_payload(Arc::new(msg.clone()));
    for p in 0..peers {
        let framed = base.stamped(SeqHeader {
            epoch,
            seq: seq0 + p as u64,
            low: seq0,
        });
        std::hint::black_box(&framed)
            .write_to(sink)
            .expect("null writer");
    }
}

fn measure(
    msgs: &[Message],
    peers: usize,
    iters: usize,
    fanout: impl Fn(&Message, usize, u64, u64, &mut NullWriter),
) -> Side {
    let fanouts = (iters * msgs.len()) as f64;
    let mut sink = NullWriter { written: 0 };
    let before = wire::codec_stats();
    let started = Instant::now();
    let mut seq = 0u64;
    for _ in 0..iters {
        for msg in msgs {
            fanout(msg, peers, 7, seq, &mut sink);
            seq += peers as u64;
        }
    }
    let elapsed = started.elapsed();
    let after = wire::codec_stats();
    Side {
        ns_per_fanout: elapsed.as_nanos() as f64 / fanouts,
        encode_calls_per_fanout: (after.encode_calls - before.encode_calls) as f64 / fanouts,
        encoded_bytes_per_fanout: (after.encoded_bytes - before.encoded_bytes) as f64 / fanouts,
        wire_bytes_per_fanout: sink.written as f64 / fanouts,
    }
}

fn main() {
    let iters = env_usize("XDN_BENCH_ITERS", 50).max(1);
    let peer_counts = env_usize_list("XDN_BENCH_PEERS", &[2, 8, 32]);

    let dtd = nitf_dtd();
    let documents = docs::documents(&dtd, 40, SEED + 50);
    let msgs: Vec<Message> = docs::publication_paths(&documents)
        .iter()
        .map(|p| Message::Publish(Publication::from_doc_path(p, 512)))
        .collect();
    assert!(!msgs.is_empty(), "workload produced no publications");

    let mut levels = Vec::new();
    for &peers in &peer_counts {
        let peers = peers.max(1);
        // Warm both paths (and the thread-local pool) outside the
        // timed sections.
        let mut warm = NullWriter { written: 0 };
        flat_fanout(&msgs[0], peers, 7, 0, &mut warm);
        shared_fanout(&msgs[0], peers, 7, 0, &mut warm);

        let flat = measure(msgs.as_slice(), peers, iters, flat_fanout);
        let shared = measure(msgs.as_slice(), peers, iters, shared_fanout);

        // The identical frames must reach the wire either way.
        assert!(
            (flat.wire_bytes_per_fanout - shared.wire_bytes_per_fanout).abs() < 0.5,
            "flat and shared fan-out must put identical bytes on the wire \
             ({} vs {})",
            flat.wire_bytes_per_fanout,
            shared.wire_bytes_per_fanout,
        );
        println!(
            "bench wire peers={peers}: flat {:.0} ns/fanout ({:.1} encodes, {:.0} B), \
             shared {:.0} ns/fanout ({:.1} encodes, {:.0} B), \
             {:.2}x fewer encoded bytes",
            flat.ns_per_fanout,
            flat.encode_calls_per_fanout,
            flat.encoded_bytes_per_fanout,
            shared.ns_per_fanout,
            shared.encode_calls_per_fanout,
            shared.encoded_bytes_per_fanout,
            flat.encoded_bytes_per_fanout / shared.encoded_bytes_per_fanout.max(f64::EPSILON),
        );
        levels.push(Level {
            peers,
            flat,
            shared,
        });
    }

    let json = render_json(&levels, msgs.len(), iters);
    match std::fs::write(OUT_PATH, &json) {
        Ok(()) => println!("wrote {OUT_PATH}"),
        Err(e) => eprintln!("failed to write {OUT_PATH}: {e}"),
    }
}

fn side_json(s: &Side) -> String {
    format!(
        "{{\"ns_per_fanout\": {:.1}, \"encode_calls_per_fanout\": {:.2}, \
         \"encoded_bytes_per_fanout\": {:.1}, \"wire_bytes_per_fanout\": {:.1}}}",
        s.ns_per_fanout,
        s.encode_calls_per_fanout,
        s.encoded_bytes_per_fanout,
        s.wire_bytes_per_fanout,
    )
}

fn render_json(levels: &[Level], paths: usize, iters: usize) -> String {
    let rows: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "    {{\"peers\": {}, \"flat\": {}, \"shared\": {}, \
                 \"encoded_bytes_ratio\": {:.2}, \"speedup\": {:.2}}}",
                l.peers,
                side_json(&l.flat),
                side_json(&l.shared),
                l.flat.encoded_bytes_per_fanout
                    / l.shared.encoded_bytes_per_fanout.max(f64::EPSILON),
                l.flat.ns_per_fanout / l.shared.ns_per_fanout.max(f64::EPSILON),
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"wire\",\n  \"workload\": \"nitf publication paths\",\n  \
         \"publication_paths\": {paths},\n  \"iters\": {iters},\n  \"levels\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}
