//! Criterion bench behind Figure 8: per-subscription processing.
//!
//! Measures the forwarding decision for one subscription against the
//! NITF-like and PSD-like advertisement sets, with the covering check
//! short-circuiting advertisement matching, plus the prepared-vs-
//! dynamic advertisement matching ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xdn_bench::SEED;
use xdn_core::adv::{derive_advertisements, Advertisement, DeriveOptions};
use xdn_core::advmatch::{adv_overlaps_sub, PreparedAdv};
use xdn_core::subtree::SubscriptionTree;
use xdn_workloads::{nitf_dtd, psd_dtd, sets};
use xdn_xpath::generate::generate_distinct_xpes;
use xdn_xpath::Xpe;

fn setup(dtd: &xdn_xml::dtd::Dtd, n: usize, seed: u64) -> (Vec<Advertisement>, Vec<Xpe>) {
    let advs = derive_advertisements(dtd, &DeriveOptions::default());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let xpes = generate_distinct_xpes(dtd, n, &sets::set_a_config(), &mut rng);
    (advs, xpes)
}

fn bench_processing(c: &mut Criterion) {
    let mut group = c.benchmark_group("xpe_processing");
    for (name, dtd) in [("nitf", nitf_dtd()), ("psd", psd_dtd())] {
        let (advs, xpes) = setup(&dtd, 400, SEED + 20);
        let prepared: Vec<PreparedAdv> = advs
            .iter()
            .map(|a| PreparedAdv::new(a.clone(), 16))
            .collect();

        // Dynamic advertisement matching (no preparation) — the
        // paper's baseline shape, and our ablation's slow side.
        group.bench_with_input(BenchmarkId::new("match_dynamic", name), &xpes, |b, xs| {
            let mut i = 0;
            b.iter(|| {
                let x = &xs[i % xs.len()];
                i += 1;
                advs.iter().filter(|a| adv_overlaps_sub(a, x)).count()
            });
        });

        // Prepared advertisement matching.
        group.bench_with_input(BenchmarkId::new("match_prepared", name), &xpes, |b, xs| {
            let mut i = 0;
            b.iter(|| {
                let x = &xs[i % xs.len()];
                i += 1;
                prepared.iter().filter(|a| a.overlaps(x)).count()
            });
        });

        // Covering-first processing: the Figure 8 "with covering" path.
        group.bench_with_input(BenchmarkId::new("covering_first", name), &xpes, |b, xs| {
            let mut tree: SubscriptionTree<()> = SubscriptionTree::new();
            for x in xs {
                tree.insert(x.clone(), ());
            }
            let mut i = 0;
            b.iter(|| {
                let x = &xs[i % xs.len()];
                i += 1;
                if tree.find_root_coverer(x).is_none() {
                    prepared.iter().filter(|a| a.overlaps(x)).count()
                } else {
                    0
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_processing
}
criterion_main!(benches);
