//! Micro-benchmarks of the §3.2/§4.2 algorithms, including the
//! KMP-vs-naive ablation the paper motivates ("the KMP algorithm is
//! applied to reduce the number of comparisons to O(n)"), plus the
//! three-way linear-scan vs candidate-pruning-index vs shared-automaton
//! matching comparison, whose results are written to
//! `BENCH_matching.json` at the workspace root.
//!
//! Environment knobs (for CI smoke runs):
//! * `XDN_BENCH_SUBS` — comma-separated subscription counts
//!   (default `1000,10000,50000`);
//! * `XDN_BENCH_ITERS` — timed passes over the publication set
//!   (default `3`).

use criterion::{criterion_group, Criterion};
use xdn_core::adv::AdvPath;
use xdn_core::advmatch::{
    abs_expr_and_adv, abs_expr_and_sim_rec_adv, des_expr_and_adv, rel_expr_and_adv,
    rel_expr_and_adv_naive,
};
use xdn_core::cover::{covers, des_cov, rel_sim_cov, rel_sim_cov_naive};
use xdn_xpath::Xpe;

fn xpe(s: &str) -> Xpe {
    s.parse().expect("valid bench expression")
}

fn bench_overlap(c: &mut Criterion) {
    // A pathological periodic advertisement rewards the KMP shift.
    let adv = AdvPath::from_names(&[
        "a", "a", "a", "b", "a", "a", "a", "b", "a", "a", "a", "b", "a", "a", "a", "c",
    ]);
    let sub = xpe("a/a/a/c");

    let mut group = c.benchmark_group("overlap");
    group.bench_function("rel_naive", |b| {
        b.iter(|| rel_expr_and_adv_naive(std::hint::black_box(&adv), std::hint::black_box(&sub)));
    });
    group.bench_function("rel_kmp", |b| {
        b.iter(|| rel_expr_and_adv(std::hint::black_box(&adv), std::hint::black_box(&sub)));
    });

    let abs_adv = AdvPath::from_names(&["a", "*", "c", "d", "e", "f", "g", "h"]);
    let abs_sub = xpe("/a/b/c/d/e");
    group.bench_function("abs", |b| {
        b.iter(|| {
            abs_expr_and_adv(
                std::hint::black_box(&abs_adv),
                std::hint::black_box(&abs_sub),
            )
        });
    });

    let des_sub = xpe("*/a//d/*/c//b");
    let des_adv = AdvPath::from_names(&["a", "x", "e", "y", "d", "z", "c", "b"]);
    group.bench_function("descendant", |b| {
        b.iter(|| {
            des_expr_and_adv(
                std::hint::black_box(&des_adv),
                std::hint::black_box(&des_sub),
            )
        });
    });

    let a1 = AdvPath::from_names(&["a", "*", "c"]);
    let a2 = AdvPath::from_names(&["e", "d"]);
    let a3 = AdvPath::from_names(&["*", "c", "e"]);
    let rec_sub = xpe("/*/a/c/*/d/e/d/*");
    group.bench_function("simple_recursive", |b| {
        b.iter(|| abs_expr_and_sim_rec_adv(&a1, &a2, &a3, std::hint::black_box(&rec_sub)));
    });
    group.finish();
}

fn bench_covering(c: &mut Criterion) {
    let mut group = c.benchmark_group("covering");
    let wide = xpe("a/a/a");
    let narrow = xpe("/x/a/a/a/b/a/a/a/c");
    group.bench_function("rel_naive", |b| {
        b.iter(|| rel_sim_cov_naive(std::hint::black_box(&wide), std::hint::black_box(&narrow)));
    });
    group.bench_function("rel_kmp", |b| {
        b.iter(|| rel_sim_cov(std::hint::black_box(&wide), std::hint::black_box(&narrow)));
    });

    let des1 = xpe("/a/*//*/d");
    let des2 = xpe("/a//b/c/d");
    group.bench_function("descendant", |b| {
        b.iter(|| des_cov(std::hint::black_box(&des1), std::hint::black_box(&des2)));
    });

    let abs1 = xpe("/a/*/c/d");
    let abs2 = xpe("/a/b/c/d/e/f");
    group.bench_function("abs_dispatch", |b| {
        b.iter(|| covers(std::hint::black_box(&abs1), std::hint::black_box(&abs2)));
    });
    group.finish();
}

criterion_group!(benches, bench_overlap, bench_covering);

mod scaling {
    //! Flat linear scan vs the candidate-pruning `IndexedPrt` vs the
    //! shared-NFA `AutomatonPrt`, at growing subscription counts, over
    //! the NITF `set_a` workload (Table 1's setting). Criterion's
    //! offline stand-in emits no reports, so this self-times with
    //! `Instant` and writes the JSON artifact directly.
    //!
    //! Before timing, every level asserts the three routers report
    //! bit-identical match sets per publication path (the automaton's
    //! equivalence is additionally property-tested in
    //! `crates/core/tests/automaton_props.rs`), and a warm
    //! re-subscription pass exercises the `PreparedXpe` cache so the
    //! recorded hit/miss stats reflect a steady-state broker rather
    //! than a cold first boot.

    use std::time::Instant;
    use xdn_bench::SEED;
    use xdn_core::automaton::AutomatonPrt;
    use xdn_core::index::IndexedPrt;
    use xdn_core::rtable::{FlatPrt, PublicationRouter, SubId};
    use xdn_workloads::{docs, nitf_dtd, sets};

    const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matching.json");

    struct Level {
        subscriptions: usize,
        flat_ns_per_pub: f64,
        indexed_ns_per_pub: f64,
        automaton_ns_per_pub: f64,
        speedup: f64,
        automaton_speedup_vs_indexed: f64,
        matches: u64,
        cache_hits: u64,
        cache_misses: u64,
    }

    fn env_usize_list(key: &str, default: &[usize]) -> Vec<usize> {
        match std::env::var(key) {
            Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
            Err(_) => default.to_vec(),
        }
    }

    fn env_usize(key: &str, default: usize) -> usize {
        std::env::var(key)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(default)
    }

    pub fn run() {
        let levels = env_usize_list("XDN_BENCH_SUBS", &[1_000, 10_000, 50_000]);
        let iters = env_usize("XDN_BENCH_ITERS", 3).max(1);
        let max_subs = levels.iter().copied().max().unwrap_or(0);
        if max_subs == 0 {
            eprintln!("XDN_BENCH_SUBS is empty; nothing to measure");
            return;
        }

        let dtd = nitf_dtd();
        let queries = sets::set_a(&dtd, max_subs, SEED + 30);
        let documents = docs::documents(&dtd, 40, SEED + 31);
        let paths: Vec<Vec<String>> = docs::publication_paths(&documents)
            .into_iter()
            .map(|p| p.elements)
            .collect();
        let routed = (iters * paths.len()) as u64;

        let mut results = Vec::new();
        for &n in &levels {
            let subs = &queries[..n.min(queries.len())];
            let mut flat: FlatPrt<u32> = FlatPrt::new();
            let mut indexed: IndexedPrt<u32> = IndexedPrt::new();
            let mut automaton: AutomatonPrt<u32> = AutomatonPrt::new();
            for (i, q) in subs.iter().enumerate() {
                flat.insert(SubId(i as u64), q.clone(), i as u32);
                indexed.subscribe(SubId(i as u64), q.clone(), i as u32);
                automaton.insert(SubId(i as u64), q.clone(), i as u32);
            }
            // Warm re-subscription pass: register the same expressions
            // under fresh ids (every one a `PreparedXpe` cache hit),
            // then retract them, leaving the table unchanged. The
            // recorded stats now show steady-state reuse instead of
            // the cold-boot `cache_hits: 0`.
            for (i, q) in subs.iter().enumerate() {
                indexed.subscribe(SubId((n + i) as u64), q.clone(), i as u32);
            }
            for i in 0..subs.len() {
                indexed.unsubscribe(SubId((n + i) as u64));
            }

            // Untimed equivalence gate: the three routers must agree
            // on the exact match set of every publication path.
            fn match_set(r: &dyn PublicationRouter<u32>, p: &[String]) -> Vec<(SubId, u32)> {
                let mut out = Vec::new();
                r.for_each_matching_with_attrs(p, &[], &mut |id, h| out.push((id, *h)));
                out.sort_unstable();
                out
            }
            for p in &paths {
                let want = match_set(&flat, p);
                assert_eq!(
                    match_set(&indexed, p),
                    want,
                    "indexed diverges from flat at n={n} on {p:?}"
                );
                assert_eq!(
                    match_set(&automaton, p),
                    want,
                    "automaton diverges from flat at n={n} on {p:?}"
                );
            }

            let mut flat_matches = 0u64;
            let started = Instant::now();
            for _ in 0..iters {
                for p in &paths {
                    flat_matches += flat.matching_hops(std::hint::black_box(p), &[]).len() as u64;
                }
            }
            let flat_ns = started.elapsed().as_nanos() as f64 / routed as f64;

            let mut indexed_matches = 0u64;
            let started = Instant::now();
            for _ in 0..iters {
                for p in &paths {
                    indexed_matches += indexed.route(std::hint::black_box(p)).len() as u64;
                }
            }
            let indexed_ns = started.elapsed().as_nanos() as f64 / routed as f64;

            let mut automaton_matches = 0u64;
            let started = Instant::now();
            for _ in 0..iters {
                for p in &paths {
                    automaton_matches +=
                        automaton.matching_hops(std::hint::black_box(p), &[]).len() as u64;
                }
            }
            let automaton_ns = started.elapsed().as_nanos() as f64 / routed as f64;

            assert_eq!(
                flat_matches, indexed_matches,
                "index must select exactly the scan's matches at n={n}"
            );
            assert_eq!(
                flat_matches, automaton_matches,
                "automaton must select exactly the scan's matches at n={n}"
            );
            let (cache_hits, cache_misses) = indexed.cache().stats();
            let speedup = flat_ns / indexed_ns.max(f64::EPSILON);
            let automaton_speedup_vs_indexed = indexed_ns / automaton_ns.max(f64::EPSILON);
            println!(
                "bench matching/scaling subs={n}: flat {flat_ns:.0} ns/pub, \
                 indexed {indexed_ns:.0} ns/pub, automaton {automaton_ns:.0} ns/pub, \
                 speedup {speedup:.1}x, automaton-vs-indexed \
                 {automaton_speedup_vs_indexed:.1}x"
            );
            results.push(Level {
                subscriptions: n,
                flat_ns_per_pub: flat_ns,
                indexed_ns_per_pub: indexed_ns,
                automaton_ns_per_pub: automaton_ns,
                speedup,
                automaton_speedup_vs_indexed,
                matches: flat_matches / iters as u64,
                cache_hits,
                cache_misses,
            });
        }

        let json = render_json(&results, paths.len(), iters);
        match std::fs::write(OUT_PATH, &json) {
            Ok(()) => println!("wrote {OUT_PATH}"),
            Err(e) => eprintln!("failed to write {OUT_PATH}: {e}"),
        }
    }

    fn render_json(levels: &[Level], paths: usize, iters: usize) -> String {
        let rows: Vec<String> = levels
            .iter()
            .map(|l| {
                format!(
                    "    {{\"subscriptions\": {}, \"flat_ns_per_pub\": {:.1}, \
                     \"indexed_ns_per_pub\": {:.1}, \"automaton_ns_per_pub\": {:.1}, \
                     \"speedup\": {:.2}, \"automaton_speedup_vs_indexed\": {:.2}, \
                     \"matches_per_pass\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}",
                    l.subscriptions,
                    l.flat_ns_per_pub,
                    l.indexed_ns_per_pub,
                    l.automaton_ns_per_pub,
                    l.speedup,
                    l.automaton_speedup_vs_indexed,
                    l.matches,
                    l.cache_hits,
                    l.cache_misses,
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"matching\",\n  \"workload\": \"nitf set_a\",\n  \
             \"publication_paths\": {paths},\n  \"iters\": {iters},\n  \"levels\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        )
    }
}

fn main() {
    benches();
    scaling::run();
}
