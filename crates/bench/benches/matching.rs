//! Micro-benchmarks of the §3.2/§4.2 algorithms, including the
//! KMP-vs-naive ablation the paper motivates ("the KMP algorithm is
//! applied to reduce the number of comparisons to O(n)").

use criterion::{criterion_group, criterion_main, Criterion};
use xdn_core::adv::AdvPath;
use xdn_core::advmatch::{
    abs_expr_and_adv, abs_expr_and_sim_rec_adv, des_expr_and_adv, rel_expr_and_adv,
    rel_expr_and_adv_naive,
};
use xdn_core::cover::{covers, des_cov, rel_sim_cov, rel_sim_cov_naive};
use xdn_xpath::Xpe;

fn xpe(s: &str) -> Xpe {
    s.parse().expect("valid bench expression")
}

fn bench_overlap(c: &mut Criterion) {
    // A pathological periodic advertisement rewards the KMP shift.
    let adv = AdvPath::from_names(&[
        "a", "a", "a", "b", "a", "a", "a", "b", "a", "a", "a", "b", "a", "a", "a", "c",
    ]);
    let sub = xpe("a/a/a/c");

    let mut group = c.benchmark_group("overlap");
    group.bench_function("rel_naive", |b| {
        b.iter(|| rel_expr_and_adv_naive(std::hint::black_box(&adv), std::hint::black_box(&sub)))
    });
    group.bench_function("rel_kmp", |b| {
        b.iter(|| rel_expr_and_adv(std::hint::black_box(&adv), std::hint::black_box(&sub)))
    });

    let abs_adv = AdvPath::from_names(&["a", "*", "c", "d", "e", "f", "g", "h"]);
    let abs_sub = xpe("/a/b/c/d/e");
    group.bench_function("abs", |b| {
        b.iter(|| {
            abs_expr_and_adv(
                std::hint::black_box(&abs_adv),
                std::hint::black_box(&abs_sub),
            )
        })
    });

    let des_sub = xpe("*/a//d/*/c//b");
    let des_adv = AdvPath::from_names(&["a", "x", "e", "y", "d", "z", "c", "b"]);
    group.bench_function("descendant", |b| {
        b.iter(|| {
            des_expr_and_adv(
                std::hint::black_box(&des_adv),
                std::hint::black_box(&des_sub),
            )
        })
    });

    let a1 = AdvPath::from_names(&["a", "*", "c"]);
    let a2 = AdvPath::from_names(&["e", "d"]);
    let a3 = AdvPath::from_names(&["*", "c", "e"]);
    let rec_sub = xpe("/*/a/c/*/d/e/d/*");
    group.bench_function("simple_recursive", |b| {
        b.iter(|| abs_expr_and_sim_rec_adv(&a1, &a2, &a3, std::hint::black_box(&rec_sub)))
    });
    group.finish();
}

fn bench_covering(c: &mut Criterion) {
    let mut group = c.benchmark_group("covering");
    let wide = xpe("a/a/a");
    let narrow = xpe("/x/a/a/a/b/a/a/a/c");
    group.bench_function("rel_naive", |b| {
        b.iter(|| rel_sim_cov_naive(std::hint::black_box(&wide), std::hint::black_box(&narrow)))
    });
    group.bench_function("rel_kmp", |b| {
        b.iter(|| rel_sim_cov(std::hint::black_box(&wide), std::hint::black_box(&narrow)))
    });

    let des1 = xpe("/a/*//*/d");
    let des2 = xpe("/a//b/c/d");
    group.bench_function("descendant", |b| {
        b.iter(|| des_cov(std::hint::black_box(&des1), std::hint::black_box(&des2)))
    });

    let abs1 = xpe("/a/*/c/d");
    let abs2 = xpe("/a/b/c/d/e/f");
    group.bench_function("abs_dispatch", |b| {
        b.iter(|| covers(std::hint::black_box(&abs1), std::hint::black_box(&abs2)))
    });
    group.finish();
}

criterion_group!(benches, bench_overlap, bench_covering);
criterion_main!(benches);
