//! Criterion bench behind Table 1: per-publication routing time.
//!
//! Routes NITF publication paths against a loaded routing table in
//! four organizations: flat scan, covering tree, covering + perfect
//! merging, covering + imperfect merging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xdn_bench::{universe_sample, SEED};
use xdn_core::merge::MergeConfig;
use xdn_core::rtable::{FlatPrt, Prt, PublicationRouter, SubId};
use xdn_workloads::{docs, nitf_dtd, sets};

fn bench_routing(c: &mut Criterion) {
    let dtd = nitf_dtd();
    let queries = sets::set_a(&dtd, 4_000, SEED + 30);
    let documents = docs::documents(&dtd, 40, SEED + 31);
    let pubs: Vec<Vec<String>> = docs::publication_paths(&documents)
        .into_iter()
        .map(|p| p.elements)
        .collect();
    let universe = universe_sample(&dtd, 2_000);

    let mut flat: FlatPrt<u32> = FlatPrt::new();
    let mut covering: Prt<u32> = Prt::new();
    let mut merged: Prt<u32> = Prt::new();
    for (i, q) in queries.iter().enumerate() {
        flat.insert(SubId(i as u64), q.clone(), i as u32);
        covering.insert(SubId(i as u64), q.clone(), i as u32);
        merged.insert(SubId(i as u64), q.clone(), i as u32);
    }
    let mut seq = 1_000_000u64;
    merged.apply_merging(
        &universe,
        &MergeConfig {
            max_degree: 0.1,
            ..Default::default()
        },
        || {
            seq += 1;
            SubId(seq)
        },
    );

    let mut group = c.benchmark_group("pub_routing");
    group.bench_with_input(BenchmarkId::new("flat", pubs.len()), &pubs, |b, ps| {
        let mut i = 0;
        b.iter(|| {
            let p = &ps[i % ps.len()];
            i += 1;
            flat.matching_hops(p, &[]).len()
        });
    });
    group.bench_with_input(BenchmarkId::new("covering", pubs.len()), &pubs, |b, ps| {
        let mut i = 0;
        b.iter(|| {
            let p = &ps[i % ps.len()];
            i += 1;
            covering.matching_hops(p, &[]).len()
        });
    });
    group.bench_with_input(
        BenchmarkId::new("merged_ipm", pubs.len()),
        &pubs,
        |b, ps| {
            let mut i = 0;
            b.iter(|| {
                let p = &ps[i % ps.len()];
                i += 1;
                merged.matching_hops(p, &[]).len()
            });
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_routing
}
criterion_main!(benches);
