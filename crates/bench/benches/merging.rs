//! Criterion bench behind Figure 7 / §4.3: the merging engine and the
//! imperfect-degree computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xdn_bench::{universe_sample, SEED};
use xdn_core::merge::{imperfect_degree, merge_tree, MergeConfig};
use xdn_core::subtree::SubscriptionTree;
use xdn_workloads::{nitf_dtd, sets, universe};
use xdn_xpath::Xpe;

fn bench_merge_tree(c: &mut Criterion) {
    let dtd = nitf_dtd();
    let universe = universe_sample(&dtd, 2_000);
    let mut group = c.benchmark_group("merge_tree");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        let queries = sets::set_b(&dtd, n, SEED + 40);
        let mut base: SubscriptionTree<()> = SubscriptionTree::new();
        for q in &queries {
            base.insert(q.clone(), ());
        }
        for (label, degree) in [("perfect", 0.0), ("imperfect_0.1", 0.1)] {
            let cfg = MergeConfig {
                max_degree: degree,
                ..MergeConfig::default()
            };
            group.bench_with_input(BenchmarkId::new(label, n), &base, |b, tree| {
                b.iter_batched(
                    || tree.clone(),
                    |mut t| {
                        merge_tree(&mut t, &universe, &cfg);
                        t.root_count()
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

fn bench_degree(c: &mut Criterion) {
    let dtd = nitf_dtd();
    let full = universe(&dtd);
    let merger: Xpe = "/nitf/body/body-content/block/*".parse().expect("valid");
    let s1: Xpe = "/nitf/body/body-content/block/p".parse().expect("valid");
    let s2: Xpe = "/nitf/body/body-content/block/table"
        .parse()
        .expect("valid");
    let mut group = c.benchmark_group("imperfect_degree");
    for &cap in &[500usize, 4_000] {
        let sample: Vec<Vec<String>>;
        let u: &[Vec<String>] = if full.len() > cap {
            let stride = full.len() / cap;
            sample = full
                .iter()
                .step_by(stride.max(1))
                .take(cap)
                .cloned()
                .collect();
            &sample
        } else {
            &full
        };
        group.bench_with_input(BenchmarkId::from_parameter(cap), u, |b, u| {
            b.iter(|| imperfect_degree(&merger, &[&s1, &s2], u));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge_tree, bench_degree);
criterion_main!(benches);
