//! Per-link reliable-delivery primitives: retransmit buffers and
//! dedup windows.
//!
//! The overlay's delivery decision lives in the PRT, but the decision
//! is only as good as the links that carry it: a crash, redial, or
//! backpressure shed between two brokers silently breaks the reverse
//! path a subscription paid to establish. This module provides the two
//! halves of the at-least-once repair loop:
//!
//! * [`OutboundLink`] — the sender side. Every payload frame toward a
//!   neighbour is wrapped in a `(epoch, seq)` header and held in a
//!   bounded buffer until the neighbour's cumulative
//!   [`crate::Message::Ack`] covers it. On a neighbour's
//!   `SyncRequest` (sent on every reconnect and restart) the whole
//!   buffer replays.
//! * [`DedupWindow`] — the receiver side. Tracks the highest
//!   contiguously-processed sequence number per `(peer, epoch)` and
//!   classifies each arriving frame as fresh, duplicate, or stale so
//!   replays are idempotent against routing tables and delivery sets.
//!
//! Epochs identify sender incarnations: a broker that restarts with a
//! fresh (higher) epoch implicitly retires its old sequence space.
//! Each sequenced frame also carries the sender's `low` watermark (its
//! lowest unacked seq); a receiver may safely fast-forward its dedup
//! floor to `low - 1` because everything below `low` was cumulatively
//! acknowledged by some receiver incarnation — this is what lets a
//! restarted receiver rejoin an ongoing epoch without either dropping
//! live frames as false duplicates or re-processing acked ones.

use crate::message::{BrokerId, Dest, Message};
use crate::wire::{FrameBuf, SeqHeader};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;
use xdn_obs::Stopwatch;

/// Default bound on an [`OutboundLink`]'s unacked buffer. Sized so the
/// chaos workloads never overflow; an overflow sheds the oldest frame
/// (counted, never silent) and weakens at-least-once for that frame.
pub const DEFAULT_RETRANSMIT_CAPACITY: usize = 4096;

/// Default bound on a [`DedupWindow`]'s out-of-order set.
pub const DEFAULT_WINDOW_CAPACITY: usize = 65536;

/// Classification of a sequenced frame by a [`DedupWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// First sighting: process the payload and ack.
    Fresh,
    /// Already processed (replay): drop the payload but re-ack so the
    /// sender can prune its buffer.
    Duplicate,
    /// Carries an epoch older than the window's current one: the
    /// sender incarnation that produced it is gone; drop silently.
    Stale,
}

/// Sender-side state for one broker→broker link: the epoch, the next
/// sequence number, and the bounded buffer of unacked frames.
#[derive(Debug, Clone)]
pub struct OutboundLink {
    epoch: u64,
    next_seq: u64,
    capacity: usize,
    /// `(seq, payload frame, sent-at)` in ascending seq order. The
    /// frames are unsequenced [`FrameBuf`]s, so the buffered copy
    /// shares its payload and encoded body with every fan-out sibling
    /// instead of owning a deep `Message` clone.
    unacked: VecDeque<(u64, FrameBuf, Stopwatch)>,
    overflow: u64,
}

impl OutboundLink {
    /// Creates a link in `epoch` with an empty buffer.
    pub fn new(epoch: u64, capacity: usize) -> Self {
        OutboundLink {
            epoch,
            next_seq: 1,
            capacity: capacity.max(1),
            unacked: VecDeque::new(),
            overflow: 0,
        }
    }

    /// The sender incarnation this link stamps on frames.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of frames awaiting acknowledgement.
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    /// Frames shed from a full buffer — each one is a frame the
    /// reliability layer can no longer guarantee.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The lowest unacked sequence number (everything below it has
    /// been cumulatively acknowledged), or the next seq if nothing is
    /// outstanding.
    pub fn low(&self) -> u64 {
        self.unacked.front().map_or(self.next_seq, |(s, _, _)| *s)
    }

    /// Stamps `frame` with the next `(epoch, seq)` header, buffers a
    /// body-sharing copy for retransmission, and returns the sequenced
    /// frame to send. The buffered copy and the returned frame share
    /// one payload `Arc` and (once encoded) one body — sequencing no
    /// longer clones the payload per neighbour. A full buffer sheds its
    /// oldest frame first (counted via [`OutboundLink::overflow`]).
    pub fn wrap_frame(&mut self, frame: FrameBuf) -> FrameBuf {
        debug_assert!(
            frame.seq_header().is_none(),
            "wrap_frame takes unsequenced payload frames"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.unacked.len() >= self.capacity {
            self.unacked.pop_front();
            self.overflow += 1;
        }
        self.unacked
            .push_back((seq, frame.clone(), Stopwatch::start()));
        frame.stamped(SeqHeader {
            epoch: self.epoch,
            seq,
            low: self.low(),
        })
    }

    /// Wraps `inner` in the next `(epoch, seq)` header, buffers a copy
    /// for retransmission, and returns the frame to send.
    ///
    /// Message-typed shim over [`OutboundLink::wrap_frame`], kept for
    /// one release while callers migrate to the frame data plane.
    pub fn wrap(&mut self, inner: Message) -> Message {
        self.wrap_frame(FrameBuf::from_message(inner))
            .into_message()
    }

    /// Applies a cumulative ack, pruning every frame with
    /// `seq <= acked_seq` of the matching epoch. Returns the age of
    /// each pruned frame (send-to-ack lag) for the histogram; acks for
    /// other epochs are ignored.
    pub fn on_ack(&mut self, epoch: u64, acked_seq: u64) -> Vec<Duration> {
        if epoch != self.epoch {
            return Vec::new();
        }
        let mut lags = Vec::new();
        while let Some((seq, _, sent)) = self.unacked.front() {
            if *seq > acked_seq {
                break;
            }
            lags.push(sent.elapsed());
            self.unacked.pop_front();
        }
        lags
    }

    /// Re-stamps every unacked frame for replay after the peer asks to
    /// re-sync. Frames keep their original sequence numbers (so the
    /// receiver's window drops any it already processed) and share the
    /// buffered bodies — only the 29-byte headers are fresh, carrying
    /// the current `low` watermark.
    pub fn replay_frames(&self) -> Vec<FrameBuf> {
        let low = self.low();
        self.unacked
            .iter()
            .map(|(seq, frame, _)| {
                frame.stamped(SeqHeader {
                    epoch: self.epoch,
                    seq: *seq,
                    low,
                })
            })
            .collect()
    }

    /// Message-typed shim over [`OutboundLink::replay_frames`], kept
    /// for one release while callers migrate to the frame data plane.
    pub fn replay(&self) -> Vec<Message> {
        self.replay_frames()
            .into_iter()
            .map(FrameBuf::into_message)
            .collect()
    }
}

/// Receiver-side dedup state for one inbound link.
///
/// Tracks `cumulative` — the highest seq with every frame at or below
/// it processed — plus a bounded set of out-of-order seqs above it.
/// If the out-of-order set overflows, the window abandons the oldest
/// gap (favouring the no-duplicate half of the invariant over
/// no-loss); the default capacity makes this unreachable in practice.
#[derive(Debug, Clone)]
pub struct DedupWindow {
    epoch: u64,
    cumulative: u64,
    seen: BTreeSet<u64>,
    capacity: usize,
}

impl Default for DedupWindow {
    fn default() -> Self {
        DedupWindow::new(DEFAULT_WINDOW_CAPACITY)
    }
}

impl DedupWindow {
    /// Creates an empty window that accepts any first epoch.
    pub fn new(capacity: usize) -> Self {
        DedupWindow {
            epoch: 0,
            cumulative: 0,
            seen: BTreeSet::new(),
            capacity: capacity.max(1),
        }
    }

    /// The epoch this window currently tracks.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The `(epoch, seq)` to acknowledge: the highest contiguously
    /// processed sequence number of the current epoch.
    pub fn ack_value(&self) -> (u64, u64) {
        (self.epoch, self.cumulative)
    }

    /// Classifies a frame and, when [`Admit::Fresh`], records it as
    /// processed. `low` is the sender's watermark from the frame
    /// header; the floor advances to `low - 1` because everything
    /// below `low` was already acked by some incarnation of us.
    pub fn observe(&mut self, epoch: u64, seq: u64, low: u64) -> Admit {
        if epoch < self.epoch {
            return Admit::Stale;
        }
        if epoch > self.epoch {
            // New sender incarnation: its sequence space starts fresh.
            self.epoch = epoch;
            self.cumulative = low.saturating_sub(1);
            self.seen.clear();
        } else if low.saturating_sub(1) > self.cumulative {
            self.cumulative = low - 1;
            self.seen = match self.cumulative.checked_add(1) {
                Some(next) => self.seen.split_off(&next),
                None => BTreeSet::new(),
            };
            self.compact();
        }
        if seq <= self.cumulative || self.seen.contains(&seq) {
            return Admit::Duplicate;
        }
        self.seen.insert(seq);
        self.compact();
        if self.seen.len() > self.capacity {
            // Abandon the lowest gap to stay bounded.
            if let Some(&lowest) = self.seen.iter().next() {
                self.cumulative = lowest;
                self.seen.remove(&lowest);
                self.compact();
            }
        }
        Admit::Fresh
    }

    fn compact(&mut self) {
        while self.cumulative < u64::MAX && self.seen.remove(&(self.cumulative + 1)) {
            self.cumulative += 1;
        }
    }
}

/// A broker's complete reliability state, detachable so a transport
/// with durable storage (or the simulator modelling one) can carry it
/// across a crash-restart. Routing state is *not* carried — that is
/// rebuilt by the existing `SyncRequest`/`SyncState` exchange.
#[derive(Debug, Clone, Default)]
pub struct ReliabilityState {
    /// The broker's sender epoch.
    pub epoch: u64,
    /// Per-neighbour outbound links (retransmit buffers).
    pub links: BTreeMap<BrokerId, OutboundLink>,
    /// Per-source dedup windows.
    pub windows: BTreeMap<Dest, DedupWindow>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb() -> Message {
        Message::Heartbeat
    }

    #[test]
    fn wrap_assigns_increasing_seqs_and_acks_prune() {
        let mut link = OutboundLink::new(3, 16);
        let f1 = link.wrap(hb());
        let f2 = link.wrap(hb());
        match (&f1, &f2) {
            (
                Message::Sequenced {
                    epoch: 3, seq: 1, ..
                },
                Message::Sequenced {
                    epoch: 3,
                    seq: 2,
                    low,
                    ..
                },
            ) => assert_eq!(*low, 1),
            other => panic!("unexpected frames: {other:?}"),
        }
        assert_eq!(link.unacked_len(), 2);
        // An ack for a foreign epoch is ignored.
        assert!(link.on_ack(2, 2).is_empty());
        assert_eq!(link.unacked_len(), 2);
        let lags = link.on_ack(3, 1);
        assert_eq!(lags.len(), 1);
        assert_eq!(link.unacked_len(), 1);
        assert_eq!(link.low(), 2);
        link.on_ack(3, 2);
        assert_eq!(link.unacked_len(), 0);
        assert_eq!(link.low(), 3, "low is next_seq when nothing is unacked");
    }

    #[test]
    fn replay_preserves_original_seqs() {
        let mut link = OutboundLink::new(1, 16);
        for _ in 0..3 {
            link.wrap(hb());
        }
        link.on_ack(1, 1);
        let replayed = link.replay();
        let seqs: Vec<u64> = replayed
            .iter()
            .map(|m| match m {
                Message::Sequenced { seq, low, .. } => {
                    assert_eq!(*low, 2);
                    *seq
                }
                other => panic!("not sequenced: {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![2, 3]);
    }

    #[test]
    fn overflow_sheds_oldest_and_counts() {
        let mut link = OutboundLink::new(1, 2);
        for _ in 0..5 {
            link.wrap(hb());
        }
        assert_eq!(link.unacked_len(), 2);
        assert_eq!(link.overflow(), 3);
        assert_eq!(link.low(), 4);
    }

    #[test]
    fn window_dedups_and_acks_cumulatively() {
        let mut w = DedupWindow::new(64);
        assert_eq!(w.observe(1, 1, 1), Admit::Fresh);
        assert_eq!(w.observe(1, 1, 1), Admit::Duplicate);
        // Out of order: 3 before 2.
        assert_eq!(w.observe(1, 3, 1), Admit::Fresh);
        assert_eq!(w.ack_value(), (1, 1), "3 is not contiguous yet");
        assert_eq!(w.observe(1, 2, 1), Admit::Fresh);
        assert_eq!(w.ack_value(), (1, 3));
        assert_eq!(w.observe(1, 2, 1), Admit::Duplicate);
    }

    #[test]
    fn stale_epochs_dropped_new_epochs_reset() {
        let mut w = DedupWindow::new(64);
        assert_eq!(w.observe(5, 1, 1), Admit::Fresh);
        assert_eq!(w.observe(4, 9, 1), Admit::Stale);
        // Epoch bump: old seq space retired, floor from the watermark.
        assert_eq!(w.observe(6, 8, 8), Admit::Fresh);
        assert_eq!(w.epoch(), 6);
        assert_eq!(w.ack_value(), (6, 8), "floor 7 plus contiguous 8");
        assert_eq!(w.observe(6, 7, 8), Admit::Duplicate, "below the floor");
    }

    #[test]
    fn watermark_advances_floor_within_epoch() {
        let mut w = DedupWindow::new(64);
        assert_eq!(w.observe(1, 1, 1), Admit::Fresh);
        // Sender says everything below 10 was acked by a previous
        // incarnation of us: seqs 2..=9 must not be re-processed.
        assert_eq!(w.observe(1, 10, 10), Admit::Fresh);
        assert_eq!(w.ack_value(), (1, 10));
        assert_eq!(w.observe(1, 5, 10), Admit::Duplicate);
    }

    #[test]
    fn seq_wraparound_extremes_handled() {
        let mut w = DedupWindow::new(64);
        assert_eq!(w.observe(1, u64::MAX, u64::MAX), Admit::Fresh);
        assert_eq!(w.observe(1, u64::MAX, u64::MAX), Admit::Duplicate);
        assert_eq!(w.ack_value(), (1, u64::MAX));
        let mut link = OutboundLink::new(u64::MAX, 4);
        let f = link.wrap(hb());
        assert!(matches!(
            f,
            Message::Sequenced {
                epoch: u64::MAX,
                seq: 1,
                ..
            }
        ));
    }

    #[test]
    fn window_overflow_abandons_lowest_gap() {
        let mut w = DedupWindow::new(2);
        // All frames out of order with gaps: 10, 20, 30.
        assert_eq!(w.observe(1, 10, 1), Admit::Fresh);
        assert_eq!(w.observe(1, 20, 1), Admit::Fresh);
        assert_eq!(w.observe(1, 30, 1), Admit::Fresh);
        // The window stayed bounded; the abandoned gap below 10 now
        // reads as duplicate (no-duplicate wins over no-loss here).
        assert_eq!(w.observe(1, 5, 1), Admit::Duplicate);
        assert_eq!(w.observe(1, 21, 1), Admit::Fresh);
    }
}
