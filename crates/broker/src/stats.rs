//! Per-broker performance counters backing the paper's metrics.

use crate::message::MessageKind;
use std::time::Duration;

/// Counters a broker accumulates while processing messages. These feed
/// the evaluation directly: routing-table size (Figures 6/7), XPE
/// processing time (Figure 8), and publication routing time (Table 1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Messages received, by kind.
    pub received_advertise: u64,
    /// Unadvertise messages received.
    pub received_unadvertise: u64,
    /// Subscribe messages received.
    pub received_subscribe: u64,
    /// Unsubscribe messages received.
    pub received_unsubscribe: u64,
    /// Publish messages received.
    pub received_publish: u64,
    /// Heartbeat probes received (transport liveness, not routing).
    pub received_heartbeat: u64,
    /// Sync requests received from (re)connecting neighbours.
    pub received_sync_request: u64,
    /// Sync snapshots received and installed.
    pub received_sync_state: u64,
    /// Messages emitted toward neighbours or clients.
    pub sent: u64,
    /// Publications delivered to locally attached clients.
    pub deliveries: u64,
    /// Wall-clock time spent processing subscriptions (covering check +
    /// advertisement matching) — Figure 8's metric.
    pub sub_processing: Duration,
    /// Wall-clock time spent routing publications against the PRT —
    /// Table 1's metric.
    pub pub_routing: Duration,
}

impl BrokerStats {
    /// Counts one received message of `kind`.
    pub fn record_received(&mut self, kind: MessageKind) {
        *self.received_mut(kind) += 1;
    }

    /// The received counter for `kind`.
    pub fn received_of(&self, kind: MessageKind) -> u64 {
        match kind {
            MessageKind::Advertise => self.received_advertise,
            MessageKind::Unadvertise => self.received_unadvertise,
            MessageKind::Subscribe => self.received_subscribe,
            MessageKind::Unsubscribe => self.received_unsubscribe,
            MessageKind::Publish => self.received_publish,
            MessageKind::Heartbeat => self.received_heartbeat,
            MessageKind::SyncRequest => self.received_sync_request,
            MessageKind::SyncState => self.received_sync_state,
        }
    }

    fn received_mut(&mut self, kind: MessageKind) -> &mut u64 {
        match kind {
            MessageKind::Advertise => &mut self.received_advertise,
            MessageKind::Unadvertise => &mut self.received_unadvertise,
            MessageKind::Subscribe => &mut self.received_subscribe,
            MessageKind::Unsubscribe => &mut self.received_unsubscribe,
            MessageKind::Publish => &mut self.received_publish,
            MessageKind::Heartbeat => &mut self.received_heartbeat,
            MessageKind::SyncRequest => &mut self.received_sync_request,
            MessageKind::SyncState => &mut self.received_sync_state,
        }
    }

    /// Total messages received.
    pub fn received_total(&self) -> u64 {
        self.received_advertise
            + self.received_unadvertise
            + self.received_subscribe
            + self.received_unsubscribe
            + self.received_publish
            + self.received_heartbeat
            + self.received_sync_request
            + self.received_sync_state
    }

    /// Mean time per processed subscription.
    pub fn mean_sub_processing(&self) -> Duration {
        if self.received_subscribe == 0 {
            Duration::ZERO
        } else {
            self.sub_processing / self.received_subscribe as u32
        }
    }

    /// Mean time per routed publication.
    pub fn mean_pub_routing(&self) -> Duration {
        if self.received_publish == 0 {
            Duration::ZERO
        } else {
            self.pub_routing / self.received_publish as u32
        }
    }

    /// Merges another broker's counters into this one (network-wide
    /// aggregation).
    pub fn merge(&mut self, other: &BrokerStats) {
        self.received_advertise += other.received_advertise;
        self.received_unadvertise += other.received_unadvertise;
        self.received_subscribe += other.received_subscribe;
        self.received_unsubscribe += other.received_unsubscribe;
        self.received_publish += other.received_publish;
        self.received_heartbeat += other.received_heartbeat;
        self.received_sync_request += other.received_sync_request;
        self.received_sync_state += other.received_sync_state;
        self.sent += other.sent;
        self.deliveries += other.deliveries;
        self.sub_processing += other.sub_processing;
        self.pub_routing += other.pub_routing;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_means() {
        let s = BrokerStats {
            received_subscribe: 4,
            sub_processing: Duration::from_millis(8),
            received_publish: 2,
            pub_routing: Duration::from_millis(10),
            ..Default::default()
        };
        assert_eq!(s.received_total(), 6);
        assert_eq!(s.mean_sub_processing(), Duration::from_millis(2));
        assert_eq!(s.mean_pub_routing(), Duration::from_millis(5));
    }

    #[test]
    fn typed_counters_cover_every_kind() {
        let mut s = BrokerStats::default();
        for (i, kind) in MessageKind::ALL.into_iter().enumerate() {
            for _ in 0..=i {
                s.record_received(kind);
            }
        }
        for (i, kind) in MessageKind::ALL.into_iter().enumerate() {
            assert_eq!(s.received_of(kind), i as u64 + 1, "{kind}");
        }
        assert_eq!(s.received_total(), (1..=8).sum::<u64>());
        assert_eq!(s.received_of(MessageKind::Subscribe), s.received_subscribe);
    }

    #[test]
    fn zero_counts_give_zero_means() {
        let s = BrokerStats::default();
        assert_eq!(s.mean_sub_processing(), Duration::ZERO);
        assert_eq!(s.mean_pub_routing(), Duration::ZERO);
    }

    #[test]
    fn merge_adds() {
        let mut a = BrokerStats {
            received_publish: 1,
            sent: 2,
            ..Default::default()
        };
        let b = BrokerStats {
            received_publish: 3,
            deliveries: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.received_publish, 4);
        assert_eq!(a.sent, 2);
        assert_eq!(a.deliveries, 1);
    }
}
