//! Per-broker performance counters backing the paper's metrics.

use crate::message::MessageKind;
use std::time::Duration;
use xdn_obs::Histogram;

/// Message counts by [`MessageKind`], stored as a flat array indexed by
/// [`MessageKind::index`].
///
/// This is the one per-kind data structure in the workspace:
/// [`BrokerStats::received`] and `NetMetrics::broker_messages` both use
/// it, replacing the eight parallel `received_*` fields and the
/// `HashMap<MessageKind, u64>` that used to duplicate the same
/// bookkeeping. Adding a `MessageKind` variant extends
/// [`MessageKind::ALL`] and `index()`, and every counter follows —
/// there is no match ladder left to forget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounters([u64; MessageKind::ALL.len()]);

impl KindCounters {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one to the counter for `kind`.
    #[inline]
    pub fn record(&mut self, kind: MessageKind) {
        // xtask: allow(panic-path) index() < MessageKind::ALL.len() by construction
        self.0[kind.index()] += 1;
    }

    /// Adds `n` to the counter for `kind`.
    #[inline]
    pub fn add(&mut self, kind: MessageKind, n: u64) {
        self.0[kind.index()] += n;
    }

    /// The count for `kind`.
    #[inline]
    pub fn get(&self, kind: MessageKind) -> u64 {
        self.0[kind.index()]
    }

    /// Sum over every kind.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// `(kind, count)` pairs in protocol order.
    pub fn iter(&self) -> impl Iterator<Item = (MessageKind, u64)> + '_ {
        MessageKind::ALL.into_iter().map(|k| (k, self.get(k)))
    }

    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &KindCounters) {
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine += theirs;
        }
    }

    /// Zeroes every counter.
    pub fn clear(&mut self) {
        self.0 = [0; MessageKind::ALL.len()];
    }
}

/// Counters a broker accumulates while processing messages. These feed
/// the evaluation directly: routing-table size (Figures 6/7), XPE
/// processing time (Figure 8), and publication routing time (Table 1).
///
/// Processing times are full [`Histogram`]s (p50/p95/p99, exact u128
/// means), not bare `Duration` sums — the old mean helpers divided by
/// `count as u32` and silently corrupted the divisor past `u32::MAX`
/// observations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Messages received, by kind.
    pub received: KindCounters,
    /// Messages emitted toward neighbours or clients.
    pub sent: u64,
    /// Publications delivered to locally attached clients.
    pub deliveries: u64,
    /// Wall-clock time per processed subscription (covering check +
    /// advertisement matching) — Figure 8's metric.
    pub sub_processing: Histogram,
    /// Wall-clock time per routed publication — Table 1's metric.
    pub pub_routing: Histogram,
    /// Sequenced frames replayed from a retransmit buffer in answer to
    /// a neighbour's [`MessageKind::SyncRequest`].
    pub retransmits: u64,
    /// Sequenced frames dropped as already-processed duplicates by the
    /// per-peer dedup window.
    pub dup_frames: u64,
    /// Sequenced frames dropped because they carried an epoch older
    /// than the window's current one.
    pub stale_frames: u64,
    /// Time between sending a sequenced frame and its cumulative
    /// acknowledgement — the ack-lag / retransmit-latency histogram.
    pub ack_lag: Histogram,
    /// Payload frames shed from a full warm-up buffer while the broker
    /// awaited neighbour sync. Shed frames were never acknowledged, so
    /// their senders replay them once sync completes.
    pub warmup_shed: u64,
}

impl BrokerStats {
    /// Counts one received message of `kind`.
    pub fn record_received(&mut self, kind: MessageKind) {
        self.received.record(kind);
    }

    /// The received counter for `kind`.
    pub fn received_of(&self, kind: MessageKind) -> u64 {
        self.received.get(kind)
    }

    /// Total messages received.
    pub fn received_total(&self) -> u64 {
        self.received.total()
    }

    /// Exact mean time per processed subscription.
    pub fn mean_sub_processing(&self) -> Duration {
        self.sub_processing.mean()
    }

    /// Exact mean time per routed publication.
    pub fn mean_pub_routing(&self) -> Duration {
        self.pub_routing.mean()
    }

    /// Merges another broker's counters into this one (network-wide
    /// aggregation).
    pub fn merge(&mut self, other: &BrokerStats) {
        self.received.merge(&other.received);
        self.sent += other.sent;
        self.deliveries += other.deliveries;
        self.sub_processing.merge(&other.sub_processing);
        self.pub_routing.merge(&other.pub_routing);
        self.retransmits += other.retransmits;
        self.dup_frames += other.dup_frames;
        self.stale_frames += other.stale_frames;
        self.ack_lag.merge(&other.ack_lag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_means() {
        let mut s = BrokerStats::default();
        for _ in 0..4 {
            s.record_received(MessageKind::Subscribe);
            s.sub_processing.record(Duration::from_millis(2));
        }
        for _ in 0..2 {
            s.record_received(MessageKind::Publish);
            s.pub_routing.record(Duration::from_millis(5));
        }
        assert_eq!(s.received_total(), 6);
        assert_eq!(s.mean_sub_processing(), Duration::from_millis(2));
        assert_eq!(s.mean_pub_routing(), Duration::from_millis(5));
        assert_eq!(s.sub_processing.count(), 4);
        assert_eq!(s.pub_routing.p99(), Duration::from_millis(5));
    }

    #[test]
    fn typed_counters_cover_every_kind() {
        let mut s = BrokerStats::default();
        for (i, kind) in MessageKind::ALL.into_iter().enumerate() {
            for _ in 0..=i {
                s.record_received(kind);
            }
        }
        for (i, kind) in MessageKind::ALL.into_iter().enumerate() {
            assert_eq!(s.received_of(kind), i as u64 + 1, "{kind}");
        }
        assert_eq!(s.received_total(), (1..=9).sum::<u64>());
        assert_eq!(
            s.received_of(MessageKind::Subscribe),
            s.received.get(MessageKind::Subscribe)
        );
    }

    #[test]
    fn kind_counters_iterate_in_protocol_order() {
        let mut c = KindCounters::new();
        c.add(MessageKind::Publish, 5);
        c.record(MessageKind::Advertise);
        let collected: Vec<(MessageKind, u64)> = c.iter().collect();
        assert_eq!(collected.len(), MessageKind::ALL.len());
        assert_eq!(collected[0], (MessageKind::Advertise, 1));
        assert_eq!(collected[4], (MessageKind::Publish, 5));
        assert_eq!(c.total(), 6);
        c.clear();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn zero_counts_give_zero_means() {
        let s = BrokerStats::default();
        assert_eq!(s.mean_sub_processing(), Duration::ZERO);
        assert_eq!(s.mean_pub_routing(), Duration::ZERO);
    }

    #[test]
    fn merge_adds() {
        let mut a = BrokerStats {
            sent: 2,
            ..Default::default()
        };
        a.record_received(MessageKind::Publish);
        a.pub_routing.record(Duration::from_micros(10));
        let mut b = BrokerStats {
            deliveries: 1,
            ..Default::default()
        };
        for _ in 0..3 {
            b.record_received(MessageKind::Publish);
        }
        b.pub_routing.record(Duration::from_micros(30));
        a.merge(&b);
        assert_eq!(a.received_of(MessageKind::Publish), 4);
        assert_eq!(a.sent, 2);
        assert_eq!(a.deliveries, 1);
        assert_eq!(a.pub_routing.count(), 2);
        assert_eq!(a.mean_pub_routing(), Duration::from_micros(20));
    }
}
