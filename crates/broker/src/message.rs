//! Message and addressing types of the dissemination network.

use std::fmt;
use std::sync::Arc;
use xdn_core::adv::Advertisement;
pub use xdn_core::rtable::{AdvId, SubId};
use xdn_xml::{DocId, PathId};
use xdn_xpath::Xpe;

/// Identifier of a broker in the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BrokerId(pub u32);

/// Identifier of a client (publisher or subscriber).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(pub u64);

impl fmt::Display for BrokerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A message destination or source: a neighbouring broker or a locally
/// attached client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dest {
    /// A neighbouring broker.
    Broker(BrokerId),
    /// A locally attached client.
    Client(ClientId),
}

impl Dest {
    /// The broker id, if this destination is a broker.
    pub fn as_broker(&self) -> Option<BrokerId> {
        match self {
            Dest::Broker(b) => Some(*b),
            Dest::Client(_) => None,
        }
    }

    /// True if this destination is a client.
    pub fn is_client(&self) -> bool {
        matches!(self, Dest::Client(_))
    }
}

impl fmt::Display for Dest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dest::Broker(b) => write!(f, "{b}"),
            Dest::Client(c) => write!(f, "{c}"),
        }
    }
}

/// A publication on the wire: one root-to-leaf path of an XML document
/// (§3.1), annotated with the document id, the path id, and the size of
/// the document it belongs to (clients receive whole documents; the
/// size drives the transmission-delay model).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Publication {
    /// Document the path was extracted from.
    pub doc_id: DocId,
    /// Position of the path within the document.
    pub path_id: PathId,
    /// Element names from root to leaf.
    pub elements: Vec<String>,
    /// Per-element attributes aligned with `elements` (may be empty —
    /// only subscriptions using the attribute-predicate extension read
    /// them).
    pub attributes: Vec<Vec<(String, String)>>,
    /// Serialized size in bytes of the whole document.
    pub doc_bytes: usize,
}

impl Publication {
    /// Builds a publication from an extracted document path.
    pub fn from_doc_path(path: &xdn_xml::DocPath, doc_bytes: usize) -> Self {
        Publication {
            doc_id: path.doc_id,
            path_id: path.path_id,
            elements: path.elements.clone(),
            attributes: path.attributes.clone(),
            doc_bytes,
        }
    }
}

impl fmt::Display for Publication {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.elements {
            write!(f, "/{e}")?;
        }
        write!(f, " [{} {}]", self.doc_id, self.path_id)
    }
}

/// The kind of a [`Message`], as a first-class enum.
///
/// Statistics and metrics key on this instead of string tags, so a
/// typo'd kind is a compile error rather than a silently-zero counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MessageKind {
    /// [`Message::Advertise`].
    Advertise,
    /// [`Message::Unadvertise`].
    Unadvertise,
    /// [`Message::Subscribe`].
    Subscribe,
    /// [`Message::Unsubscribe`].
    Unsubscribe,
    /// [`Message::Publish`].
    Publish,
    /// [`Message::Heartbeat`].
    Heartbeat,
    /// [`Message::SyncRequest`].
    SyncRequest,
    /// [`Message::SyncState`].
    SyncState,
    /// [`Message::Ack`].
    Ack,
}

impl MessageKind {
    /// Every kind, in protocol order — for exhaustive reports.
    pub const ALL: [MessageKind; 9] = [
        MessageKind::Advertise,
        MessageKind::Unadvertise,
        MessageKind::Subscribe,
        MessageKind::Unsubscribe,
        MessageKind::Publish,
        MessageKind::Heartbeat,
        MessageKind::SyncRequest,
        MessageKind::SyncState,
        MessageKind::Ack,
    ];

    /// Position of this kind in [`MessageKind::ALL`] — the array index
    /// behind [`crate::stats::KindCounters`].
    pub const fn index(self) -> usize {
        match self {
            MessageKind::Advertise => 0,
            MessageKind::Unadvertise => 1,
            MessageKind::Subscribe => 2,
            MessageKind::Unsubscribe => 3,
            MessageKind::Publish => 4,
            MessageKind::Heartbeat => 5,
            MessageKind::SyncRequest => 6,
            MessageKind::SyncState => 7,
            MessageKind::Ack => 8,
        }
    }

    /// The stable snake_case tag (wire logs, JSON reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            MessageKind::Advertise => "advertise",
            MessageKind::Unadvertise => "unadvertise",
            MessageKind::Subscribe => "subscribe",
            MessageKind::Unsubscribe => "unsubscribe",
            MessageKind::Publish => "publish",
            MessageKind::Heartbeat => "heartbeat",
            MessageKind::SyncRequest => "sync_request",
            MessageKind::SyncState => "sync_state",
            MessageKind::Ack => "ack",
        }
    }
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A protocol message exchanged between brokers and clients.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A producer announces future publications (flooded).
    Advertise {
        /// Network-wide advertisement id.
        id: AdvId,
        /// The advertised path language.
        adv: Advertisement,
    },
    /// A producer retracts an advertisement (flooded).
    Unadvertise {
        /// The advertisement to retract.
        id: AdvId,
    },
    /// A consumer registers interest (routed along advertisements).
    Subscribe {
        /// Network-wide subscription id.
        id: SubId,
        /// The filter expression.
        xpe: Xpe,
    },
    /// A consumer (or a covering optimization) retracts a subscription.
    Unsubscribe {
        /// The subscription to retract.
        id: SubId,
    },
    /// A publication routed toward matching subscribers.
    Publish(Publication),
    /// A transport keep-alive probe between connected peers. Carries no
    /// routing information; brokers ignore it.
    Heartbeat,
    /// A broker asks a neighbour to resend the routing state relevant
    /// to their link, sent whenever a broker⇄broker connection is
    /// (re-)established.
    SyncRequest,
    /// A neighbour's answer to [`Message::SyncRequest`]: the
    /// advertisements it would have flooded over the link plus the
    /// subscriptions it had forwarded over the link. Installing it is
    /// idempotent — entries are keyed by their network-wide ids.
    SyncState {
        /// Advertisements to reinstall as if flooded by the sender.
        advs: Vec<(AdvId, Advertisement)>,
        /// Subscriptions to reinstall as if forwarded by the sender.
        subs: Vec<(SubId, Xpe)>,
    },
    /// Cumulative acknowledgement of sequenced frames: "I have
    /// processed every frame of `epoch` up to and including `seq`".
    /// Senders prune their retransmit buffers on receipt.
    Ack {
        /// The sender incarnation being acknowledged.
        epoch: u64,
        /// Highest contiguously-processed sequence number.
        seq: u64,
    },
    /// A payload message wrapped with a per-link reliability header.
    /// `epoch` identifies the sender's incarnation, `seq` orders frames
    /// within it, and `low` is the sender's lowest unacknowledged
    /// sequence number — receivers use it to advance their dedup floor
    /// after a restart without risking false-duplicate drops.
    Sequenced {
        /// Sender incarnation the sequence numbers belong to.
        epoch: u64,
        /// Per-link sequence number, starting at 1 within an epoch.
        seq: u64,
        /// The sender's lowest unacked seq (everything below it was
        /// cumulatively acknowledged by some receiver incarnation).
        low: u64,
        /// The wrapped payload message. Shared (`Arc`) because the same
        /// payload is simultaneously held by the sender's retransmit
        /// buffer and by every per-peer frame of a fan-out — sequencing
        /// stamps a header around the payload, it never copies it.
        inner: Arc<Message>,
    },
}

impl Message {
    /// Convenience constructor for [`Message::Advertise`].
    pub fn advertise(id: AdvId, adv: Advertisement) -> Self {
        Message::Advertise { id, adv }
    }

    /// Convenience constructor for [`Message::Subscribe`].
    pub fn subscribe(id: SubId, xpe: Xpe) -> Self {
        Message::Subscribe { id, xpe }
    }

    /// Convenience constructor for [`Message::Publish`].
    pub fn publish(p: Publication) -> Self {
        Message::Publish(p)
    }

    /// Approximate wire size in bytes, used by the latency models. For
    /// publications this is the *document* size — the paper's delay
    /// experiments transfer whole documents between brokers.
    pub fn wire_bytes(&self) -> usize {
        const HEADER: usize = 24;
        match self {
            Message::Advertise { adv, .. } => HEADER + adv.to_string().len(),
            Message::Unadvertise { .. } => HEADER,
            Message::Subscribe { xpe, .. } => HEADER + xpe.to_string().len(),
            Message::Unsubscribe { .. } => HEADER,
            Message::Publish(p) => HEADER + p.doc_bytes,
            Message::Heartbeat | Message::SyncRequest => HEADER,
            Message::SyncState { advs, subs } => {
                HEADER
                    + advs
                        .iter()
                        .map(|(_, a)| 8 + a.to_string().len())
                        .sum::<usize>()
                    + subs
                        .iter()
                        .map(|(_, x)| 8 + x.to_string().len())
                        .sum::<usize>()
            }
            Message::Ack { .. } => HEADER,
            Message::Sequenced { inner, .. } => HEADER + inner.wire_bytes(),
        }
    }

    /// The message's kind, for statistics and metrics.
    ///
    /// A [`Message::Sequenced`] frame reports its *inner* kind: the
    /// reliability header is transparent to traffic accounting, so the
    /// paper's per-kind message counts are unchanged by sequencing.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Advertise { .. } => MessageKind::Advertise,
            Message::Unadvertise { .. } => MessageKind::Unadvertise,
            Message::Subscribe { .. } => MessageKind::Subscribe,
            Message::Unsubscribe { .. } => MessageKind::Unsubscribe,
            Message::Publish(_) => MessageKind::Publish,
            Message::Heartbeat => MessageKind::Heartbeat,
            Message::SyncRequest => MessageKind::SyncRequest,
            Message::SyncState { .. } => MessageKind::SyncState,
            Message::Ack { .. } => MessageKind::Ack,
            Message::Sequenced { inner, .. } => inner.kind(),
        }
    }

    /// True for messages that carry routing or publication payload (as
    /// opposed to liveness/recovery control traffic). Supervisors use
    /// this to decide what is worth queueing across a reconnect.
    pub fn is_payload(&self) -> bool {
        match self {
            Message::Heartbeat
            | Message::SyncRequest
            | Message::SyncState { .. }
            | Message::Ack { .. } => false,
            Message::Sequenced { inner, .. } => inner.is_payload(),
            Message::Advertise { .. }
            | Message::Unadvertise { .. }
            | Message::Subscribe { .. }
            | Message::Unsubscribe { .. }
            | Message::Publish(_) => true,
        }
    }

    /// The payload behind any reliability framing: the inner message of
    /// a [`Message::Sequenced`] wrapper, or the message itself. Shed
    /// policies and delivery paths match on this so a wrapped
    /// publication is still recognised as a publication.
    pub fn payload(&self) -> &Message {
        match self {
            Message::Sequenced { inner, .. } => inner,
            // xtask: allow(kind-match) identity for every unwrapped variant — Sequenced is the only framing layer
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdn_core::adv::AdvPath;

    #[test]
    fn wire_bytes_scale_with_content() {
        let small = Message::publish(Publication {
            doc_id: DocId(1),
            path_id: PathId(0),
            elements: vec!["a".into()],
            attributes: Vec::new(),
            doc_bytes: 100,
        });
        let big = Message::publish(Publication {
            doc_id: DocId(1),
            path_id: PathId(0),
            elements: vec!["a".into()],
            attributes: Vec::new(),
            doc_bytes: 10_000,
        });
        assert!(big.wire_bytes() > small.wire_bytes());
    }

    #[test]
    fn kinds() {
        let adv = Advertisement::non_recursive(AdvPath::from_names(&["a"]));
        assert_eq!(
            Message::advertise(AdvId(1), adv).kind(),
            MessageKind::Advertise
        );
        assert_eq!(
            Message::Unsubscribe { id: SubId(1) }.kind(),
            MessageKind::Unsubscribe
        );
        assert_eq!(MessageKind::SyncRequest.as_str(), "sync_request");
        assert_eq!(MessageKind::Publish.to_string(), "publish");
        assert_eq!(MessageKind::Ack.as_str(), "ack");
        assert_eq!(MessageKind::ALL.len(), 9);
    }

    #[test]
    fn sequenced_is_transparent_to_kind_and_payload() {
        let p = Message::publish(Publication {
            doc_id: DocId(1),
            path_id: PathId(0),
            elements: vec!["a".into()],
            attributes: Vec::new(),
            doc_bytes: 128,
        });
        let wrapped = Message::Sequenced {
            epoch: 7,
            seq: 3,
            low: 1,
            inner: Arc::new(p.clone()),
        };
        assert_eq!(wrapped.kind(), MessageKind::Publish);
        assert!(wrapped.is_payload());
        assert_eq!(wrapped.payload(), &p);
        assert_eq!(wrapped.wire_bytes(), 24 + p.wire_bytes());

        let ack = Message::Ack { epoch: 7, seq: 3 };
        assert_eq!(ack.kind(), MessageKind::Ack);
        assert!(!ack.is_payload());
        assert_eq!(ack.payload(), &ack);
        assert_eq!(ack.wire_bytes(), 24);
    }

    #[test]
    fn index_round_trips_through_all() {
        for (i, kind) in MessageKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i, "{kind}");
            assert_eq!(MessageKind::ALL[kind.index()], kind);
        }
    }

    #[test]
    fn dest_accessors() {
        assert_eq!(Dest::Broker(BrokerId(3)).as_broker(), Some(BrokerId(3)));
        assert_eq!(Dest::Client(ClientId(1)).as_broker(), None);
        assert!(Dest::Client(ClientId(1)).is_client());
        assert_eq!(Dest::Broker(BrokerId(2)).to_string(), "B2");
        assert_eq!(Dest::Client(ClientId(9)).to_string(), "C9");
    }

    #[test]
    fn publication_from_doc_path() {
        let doc = xdn_xml::parse_document("<a><b/></a>").unwrap();
        let paths = xdn_xml::paths::extract_paths(&doc, DocId(5));
        let p = Publication::from_doc_path(&paths[0], 42);
        assert_eq!(p.doc_id, DocId(5));
        assert_eq!(p.elements, vec!["a", "b"]);
        assert_eq!(p.doc_bytes, 42);
        assert_eq!(p.to_string(), "/a/b [doc5 path0]");
    }
}
