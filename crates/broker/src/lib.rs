#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # xdn-broker — the content-based XML router
//!
//! A [`Broker`] is one node of the dissemination overlay (Figure 1):
//! it holds a subscription routing table (SRT) and a publication
//! routing table (PRT) and forwards messages purely on content. This
//! crate composes the algorithms of [`xdn_core`] into the six routing
//! strategies evaluated in Tables 2 and 3 of the paper:
//!
//! | strategy                | advertisements | covering | merging |
//! |-------------------------|----------------|----------|---------|
//! | `no-Adv-no-Cov`         | –              | –        | –       |
//! | `no-Adv-with-Cov`       | –              | ✓        | –       |
//! | `with-Adv-no-Cov`       | ✓              | –        | –       |
//! | `with-Adv-with-Cov`     | ✓              | ✓        | –       |
//! | `with-Adv-with-CovPM`   | ✓              | ✓        | perfect |
//! | `with-Adv-with-CovIPM`  | ✓              | ✓        | imperfect |
//!
//! ```
//! use xdn_broker::{Broker, BrokerId, ClientId, Dest, Message, RoutingConfig};
//! use xdn_core::rtable::{AdvId, SubId};
//! use xdn_core::adv::{AdvPath, Advertisement};
//!
//! let config = RoutingConfig::builder()
//!     .advertisements(true)
//!     .covering(true)
//!     .build();
//! let mut broker = Broker::new(BrokerId(0), config);
//! broker.add_neighbor(BrokerId(1));
//!
//! // A producer behind neighbor 1 advertises /quotes/nyse/price.
//! let adv = Advertisement::non_recursive(AdvPath::from_names(&["quotes", "nyse", "price"]));
//! broker.handle_frames(Dest::Broker(BrokerId(1)), Message::advertise(AdvId(1), adv));
//!
//! // A local client subscribes; the subscription is forwarded toward
//! // the advertisement's last hop as an outbound frame.
//! let out = broker.handle_frames(
//!     Dest::Client(ClientId(7)),
//!     Message::subscribe(SubId(1), "/quotes/*/price".parse().unwrap()),
//! );
//! assert_eq!(out.len(), 1);
//! assert_eq!(out[0].dest, Dest::Broker(BrokerId(1)));
//! ```

pub mod broker;
pub mod message;
pub mod reliable;
pub mod stats;
pub mod wire;

pub use broker::{Broker, MatchStrategy, Merging, RoutingConfig, RoutingConfigBuilder};
pub use message::{BrokerId, ClientId, Dest, Message, MessageKind, Publication};
pub use reliable::{Admit, DedupWindow, OutboundLink, ReliabilityState};
pub use stats::{BrokerStats, KindCounters};
pub use wire::{FrameBuf, Outbound, SeqHeader};
