//! Binary wire codec for broker messages.
//!
//! The simulator and the threaded transport move [`Message`] values in
//! memory; a TCP deployment needs them on the wire. This module
//! provides a compact, length-prefixed binary framing:
//!
//! ```text
//! frame   := u32 length (BE) | u8 tag | body
//! body    := varies by tag; strings are u16-length-prefixed UTF-8
//! ```
//!
//! Advertisements and XPEs travel in their canonical textual forms —
//! both round-trip losslessly through their parsers, the encodings are
//! compact (a location step costs its name plus one or two operator
//! bytes), and the text doubles as a cross-implementation contract.
//!
//! ```
//! use xdn_broker::wire::{decode, encode};
//! use xdn_broker::Message;
//! use xdn_core::rtable::SubId;
//!
//! let msg = Message::subscribe(SubId(7), "/news//headline".parse().unwrap());
//! let bytes = encode(&msg);
//! assert_eq!(decode(&bytes).unwrap().0, msg);
//! ```

use crate::message::{Message, Publication};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;
use xdn_core::adv::Advertisement;
use xdn_core::rtable::{AdvId, SubId};
use xdn_xml::{DocId, PathId};

/// Frames whose declared body length exceeds this are a protocol
/// violation: [`decode`] rejects them before allocating, and every
/// transport (TCP readers, future substrates) must enforce the same
/// cap when reading a length prefix off a socket.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

const TAG_ADVERTISE: u8 = 1;
const TAG_UNADVERTISE: u8 = 2;
const TAG_SUBSCRIBE: u8 = 3;
const TAG_UNSUBSCRIBE: u8 = 4;
const TAG_PUBLISH: u8 = 5;
const TAG_HEARTBEAT: u8 = 6;
const TAG_SYNC_REQUEST: u8 = 7;
const TAG_SYNC_STATE: u8 = 8;
const TAG_ACK: u8 = 9;
const TAG_SEQUENCED: u8 = 10;

/// An error produced while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid wire frame: {}", self.message)
    }
}

impl Error for WireError {}

/// Encodes a message as one length-prefixed frame.
pub fn encode(msg: &Message) -> Bytes {
    let mut body = BytesMut::with_capacity(64);
    match msg {
        Message::Advertise { id, adv } => {
            body.put_u8(TAG_ADVERTISE);
            body.put_u64(id.0);
            put_str(&mut body, &adv.to_string());
        }
        Message::Unadvertise { id } => {
            body.put_u8(TAG_UNADVERTISE);
            body.put_u64(id.0);
        }
        Message::Subscribe { id, xpe } => {
            body.put_u8(TAG_SUBSCRIBE);
            body.put_u64(id.0);
            put_str(&mut body, &xpe.to_string());
        }
        Message::Unsubscribe { id } => {
            body.put_u8(TAG_UNSUBSCRIBE);
            body.put_u64(id.0);
        }
        Message::Publish(p) => {
            body.put_u8(TAG_PUBLISH);
            body.put_u64(p.doc_id.0);
            body.put_u32(p.path_id.0);
            body.put_u64(p.doc_bytes as u64);
            body.put_u16(p.elements.len() as u16);
            for (i, e) in p.elements.iter().enumerate() {
                put_str(&mut body, e);
                let attrs: &[(String, String)] = p.attributes.get(i).map_or(&[], Vec::as_slice);
                body.put_u8(attrs.len() as u8);
                for (k, v) in attrs {
                    put_str(&mut body, k);
                    put_str(&mut body, v);
                }
            }
        }
        Message::Heartbeat => body.put_u8(TAG_HEARTBEAT),
        Message::SyncRequest => body.put_u8(TAG_SYNC_REQUEST),
        Message::SyncState { advs, subs } => {
            body.put_u8(TAG_SYNC_STATE);
            body.put_u32(advs.len() as u32);
            for (id, adv) in advs {
                body.put_u64(id.0);
                put_str(&mut body, &adv.to_string());
            }
            body.put_u32(subs.len() as u32);
            for (id, xpe) in subs {
                body.put_u64(id.0);
                put_str(&mut body, &xpe.to_string());
            }
        }
        Message::Ack { epoch, seq } => {
            body.put_u8(TAG_ACK);
            body.put_u64(*epoch);
            body.put_u64(*seq);
        }
        Message::Sequenced {
            epoch,
            seq,
            low,
            inner,
        } => {
            body.put_u8(TAG_SEQUENCED);
            body.put_u64(*epoch);
            body.put_u64(*seq);
            body.put_u64(*low);
            // The payload travels as a complete nested frame so the
            // decoder reuses the whole codec, length checks included.
            body.extend_from_slice(&encode(inner));
        }
    }
    let mut frame = BytesMut::with_capacity(4 + body.len());
    frame.put_u32(body.len() as u32);
    frame.extend_from_slice(&body);
    frame.freeze()
}

/// Decodes one frame from the front of `buf`, returning the message
/// and the number of bytes consumed.
///
/// # Errors
///
/// Returns [`WireError`] on truncated input, unknown tags, invalid
/// UTF-8, or an unparsable advertisement/XPE body.
pub fn decode(buf: &[u8]) -> Result<(Message, usize), WireError> {
    let mut b = buf;
    if b.remaining() < 4 {
        return Err(WireError::new("truncated length prefix"));
    }
    let len = b.get_u32() as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::new(format!(
            "frame body of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    if b.remaining() < len {
        return Err(WireError::new(format!(
            "truncated body: need {len}, have {}",
            b.remaining()
        )));
    }
    let mut body = &b[..len];
    let consumed = 4 + len;
    if body.remaining() < 1 {
        return Err(WireError::new("empty body"));
    }
    let tag = body.get_u8();
    let msg = match tag {
        TAG_ADVERTISE => {
            let id = AdvId(get_u64(&mut body)?);
            let text = get_str(&mut body)?;
            let adv = Advertisement::parse(&text)
                .map_err(|e| WireError::new(format!("bad advertisement: {e}")))?;
            Message::Advertise { id, adv }
        }
        TAG_UNADVERTISE => Message::Unadvertise {
            id: AdvId(get_u64(&mut body)?),
        },
        TAG_SUBSCRIBE => {
            let id = SubId(get_u64(&mut body)?);
            let text = get_str(&mut body)?;
            let xpe = text
                .parse()
                .map_err(|e| WireError::new(format!("bad expression: {e}")))?;
            Message::Subscribe { id, xpe }
        }
        TAG_UNSUBSCRIBE => Message::Unsubscribe {
            id: SubId(get_u64(&mut body)?),
        },
        TAG_PUBLISH => {
            let doc_id = DocId(get_u64(&mut body)?);
            if body.remaining() < 4 + 8 + 2 {
                return Err(WireError::new("truncated publication header"));
            }
            let path_id = PathId(body.get_u32());
            let doc_bytes = body.get_u64() as usize;
            let n = body.get_u16() as usize;
            let mut elements = Vec::with_capacity(n);
            let mut attributes = Vec::with_capacity(n);
            for _ in 0..n {
                elements.push(get_str(&mut body)?);
                if body.remaining() < 1 {
                    return Err(WireError::new("truncated attribute count"));
                }
                let na = body.get_u8() as usize;
                let mut attrs = Vec::with_capacity(na);
                for _ in 0..na {
                    let k = get_str(&mut body)?;
                    let v = get_str(&mut body)?;
                    attrs.push((k, v));
                }
                attributes.push(attrs);
            }
            if elements.is_empty() {
                return Err(WireError::new("publication with no elements"));
            }
            Message::Publish(Publication {
                doc_id,
                path_id,
                elements,
                attributes,
                doc_bytes,
            })
        }
        TAG_HEARTBEAT => Message::Heartbeat,
        TAG_SYNC_REQUEST => Message::SyncRequest,
        TAG_SYNC_STATE => {
            let na = get_u32(&mut body)? as usize;
            let mut advs = Vec::new();
            for _ in 0..na {
                let id = AdvId(get_u64(&mut body)?);
                let text = get_str(&mut body)?;
                let adv = Advertisement::parse(&text)
                    .map_err(|e| WireError::new(format!("bad sync advertisement: {e}")))?;
                advs.push((id, adv));
            }
            let ns = get_u32(&mut body)? as usize;
            let mut subs = Vec::new();
            for _ in 0..ns {
                let id = SubId(get_u64(&mut body)?);
                let text = get_str(&mut body)?;
                let xpe = text
                    .parse()
                    .map_err(|e| WireError::new(format!("bad sync expression: {e}")))?;
                subs.push((id, xpe));
            }
            Message::SyncState { advs, subs }
        }
        TAG_ACK => {
            let epoch = get_u64(&mut body)?;
            let seq = get_u64(&mut body)?;
            Message::Ack { epoch, seq }
        }
        TAG_SEQUENCED => {
            let epoch = get_u64(&mut body)?;
            let seq = get_u64(&mut body)?;
            let low = get_u64(&mut body)?;
            let (inner, used) = decode(body)?;
            // The reliability header wraps exactly one payload frame:
            // nested reliability messages would let a hostile peer
            // build recursion bombs and double-count sequence space.
            if matches!(inner, Message::Sequenced { .. } | Message::Ack { .. }) {
                return Err(WireError::new("reliability frame nested in sequenced"));
            }
            body.advance(used);
            Message::Sequenced {
                epoch,
                seq,
                low,
                inner: Box::new(inner),
            }
        }
        other => return Err(WireError::new(format!("unknown tag {other}"))),
    };
    if body.has_remaining() {
        return Err(WireError::new(format!(
            "{} trailing bytes",
            body.remaining()
        )));
    }
    Ok((msg, consumed))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    debug_assert!(
        s.len() <= u16::MAX as usize,
        "wire strings are u16-prefixed"
    );
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_u32(b: &mut &[u8]) -> Result<u32, WireError> {
    if b.remaining() < 4 {
        return Err(WireError::new("truncated u32"));
    }
    Ok(b.get_u32())
}

fn get_u64(b: &mut &[u8]) -> Result<u64, WireError> {
    if b.remaining() < 8 {
        return Err(WireError::new("truncated u64"));
    }
    Ok(b.get_u64())
}

fn get_str(b: &mut &[u8]) -> Result<String, WireError> {
    if b.remaining() < 2 {
        return Err(WireError::new("truncated string length"));
    }
    let n = b.get_u16() as usize;
    if b.remaining() < n {
        return Err(WireError::new("truncated string body"));
    }
    let s = std::str::from_utf8(&b[..n])
        .map_err(|_| WireError::new("invalid UTF-8"))?
        .to_owned();
    b.advance(n);
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdn_core::adv::AdvPath;

    fn samples() -> Vec<Message> {
        vec![
            Message::advertise(
                AdvId(42),
                Advertisement::parse("/a/b(/c/d)+/e").expect("valid"),
            ),
            Message::advertise(
                AdvId(1),
                Advertisement::non_recursive(AdvPath::from_names(&["x", "*", "z"])),
            ),
            Message::Unadvertise { id: AdvId(7) },
            Message::subscribe(SubId(9), "/news/*//headline".parse().unwrap()),
            Message::subscribe(SubId(10), "section/article".parse().unwrap()),
            Message::Unsubscribe {
                id: SubId(u64::MAX),
            },
            Message::Publish(Publication {
                doc_id: DocId(3),
                path_id: PathId(14),
                elements: vec!["nitf".into(), "body".into(), "body-content".into()],
                attributes: vec![
                    vec![("version".into(), "3.0".into())],
                    Vec::new(),
                    vec![("lang".into(), "en".into()), ("id".into(), "7".into())],
                ],
                doc_bytes: 20_480,
            }),
            Message::Heartbeat,
            Message::SyncRequest,
            Message::SyncState {
                advs: Vec::new(),
                subs: Vec::new(),
            },
            Message::SyncState {
                advs: vec![
                    (
                        AdvId(3),
                        Advertisement::parse("/a/b(/c/d)+/e").expect("valid"),
                    ),
                    (
                        AdvId(4),
                        Advertisement::non_recursive(AdvPath::from_names(&["x"])),
                    ),
                ],
                subs: vec![
                    (SubId(5), "/news//headline".parse().unwrap()),
                    (SubId(6), "section/article".parse().unwrap()),
                ],
            },
            Message::Ack {
                epoch: 3,
                seq: u64::MAX,
            },
            Message::Sequenced {
                epoch: u64::MAX,
                seq: 1,
                low: 1,
                inner: Box::new(Message::subscribe(
                    SubId(11),
                    "/news//headline".parse().unwrap(),
                )),
            },
            Message::Sequenced {
                epoch: 1,
                seq: 9,
                low: 4,
                inner: Box::new(Message::Publish(Publication {
                    doc_id: DocId(8),
                    path_id: PathId(2),
                    elements: vec!["a".into(), "b".into()],
                    attributes: vec![vec![("v".into(), "1".into())], Vec::new()],
                    doc_bytes: 512,
                })),
            },
        ]
    }

    #[test]
    fn roundtrip_every_kind() {
        for msg in samples() {
            let bytes = encode(&msg);
            let (decoded, consumed) = decode(&bytes).expect("decode");
            assert_eq!(decoded, msg);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn frames_concatenate() {
        let msgs = samples();
        let mut stream = BytesMut::new();
        for m in &msgs {
            stream.extend_from_slice(&encode(m));
        }
        let mut off = 0;
        let mut decoded = Vec::new();
        while off < stream.len() {
            let (m, used) = decode(&stream[off..]).expect("decode stream");
            decoded.push(m);
            off += used;
        }
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&samples()[0]);
        for cut in [0, 2, 4, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn oversized_declared_frame_rejected() {
        let mut frame = BytesMut::new();
        frame.put_u32((MAX_FRAME_BYTES + 1) as u32);
        // No body needed: the cap check fires on the prefix alone,
        // before any allocation.
        let err = decode(&frame).expect_err("cap must reject");
        assert!(err.to_string().contains("cap"));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut frame = BytesMut::new();
        frame.put_u32(1);
        frame.put_u8(99);
        assert!(decode(&frame).is_err());
    }

    #[test]
    fn garbage_expression_rejected() {
        let mut body = BytesMut::new();
        body.put_u8(TAG_SUBSCRIBE);
        body.put_u64(1);
        body.put_u16(3);
        body.put_slice(b"a//");
        let mut frame = BytesMut::new();
        frame.put_u32(body.len() as u32);
        frame.extend_from_slice(&body);
        assert!(decode(&frame).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let bytes = encode(&Message::Unsubscribe { id: SubId(1) });
        let mut grown = BytesMut::new();
        grown.put_u32(bytes.len() as u32 - 4 + 1);
        grown.extend_from_slice(&bytes[4..]);
        grown.put_u8(0);
        assert!(decode(&grown).is_err());
    }

    #[test]
    fn nested_reliability_frames_rejected() {
        // Hand-build sequenced(sequenced(heartbeat)) and
        // sequenced(ack): both must be refused by the depth guard.
        let seq_hb = Message::Sequenced {
            epoch: 1,
            seq: 1,
            low: 1,
            inner: Box::new(Message::Heartbeat),
        };
        for evil_inner in [seq_hb, Message::Ack { epoch: 1, seq: 1 }] {
            let mut body = BytesMut::new();
            body.put_u8(TAG_SEQUENCED);
            body.put_u64(2);
            body.put_u64(5);
            body.put_u64(1);
            body.extend_from_slice(&encode(&evil_inner));
            let mut frame = BytesMut::new();
            frame.put_u32(body.len() as u32);
            frame.extend_from_slice(&body);
            let err = decode(&frame).expect_err("nested reliability frame must fail");
            assert!(err.to_string().contains("nested"), "{err}");
        }
    }

    #[test]
    fn sequenced_truncated_inner_rejected() {
        let msg = Message::Sequenced {
            epoch: 1,
            seq: 2,
            low: 1,
            inner: Box::new(Message::Heartbeat),
        };
        let bytes = encode(&msg);
        for cut in [5, 13, 29, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn publish_size_overhead_is_small() {
        let p = Message::Publish(Publication {
            doc_id: DocId(1),
            path_id: PathId(0),
            elements: vec!["a".into(); 10],
            attributes: Vec::new(),
            doc_bytes: 0,
        });
        let frame = encode(&p);
        // 4 len + 1 tag + 8 doc + 4 path + 8 bytes + 2 count +
        // 10 * (2 len + 1 name + 1 attr-count)
        assert_eq!(frame.len(), 4 + 1 + 8 + 4 + 8 + 2 + 40);
    }
}
