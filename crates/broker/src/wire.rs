//! Binary wire codec and the zero-copy frame data plane.
//!
//! The simulator and the threaded transport move [`Message`] values in
//! memory; a TCP deployment needs them on the wire. This module
//! provides a compact, length-prefixed binary framing:
//!
//! ```text
//! frame   := u32 length (BE) | u8 tag | body
//! body    := varies by tag; strings are u16-length-prefixed UTF-8
//! ```
//!
//! Advertisements and XPEs travel in their canonical textual forms —
//! both round-trip losslessly through their parsers, the encodings are
//! compact (a location step costs its name plus one or two operator
//! bytes), and the text doubles as a cross-implementation contract.
//!
//! # Encode-once fan-out
//!
//! A publication routed to *k* neighbours used to be encoded *k* times:
//! once per peer, and for sequenced frames the inner payload was
//! encoded into a temporary and copied into the outer body a second
//! time. [`FrameBuf`] fixes both. It holds the payload's encoded bytes
//! in one immutable shared body (`Arc<[u8]>`, produced lazily by
//! [`encode_into`]) plus a small per-peer [`SeqHeader`]; stamping a
//! frame for another peer ([`FrameBuf::stamped`]) shares the body and
//! rewrites only the 29-byte `Sequenced` header region. Scratch buffers
//! come from a bounded thread-local pool ([`pool_acquire`] /
//! [`pool_release`]) whose hit/miss/discard counters — together with
//! encode-call and encoded-byte totals — are exposed through
//! [`codec_stats`].
//!
//! ```
//! use xdn_broker::wire::{decode_frame, FrameBuf};
//! use xdn_broker::Message;
//! use xdn_core::rtable::SubId;
//!
//! let msg = Message::subscribe(SubId(7), "/news//headline".parse().unwrap());
//! let frame = FrameBuf::from(msg.clone());
//! let bytes = frame.to_wire_bytes(); // encoded exactly once, however many peers
//! assert_eq!(decode_frame(&bytes).unwrap().0, msg);
//! ```

use crate::message::{Dest, Message, MessageKind, Publication};
use bytes::{Buf, BufMut};
use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::io::{self, IoSlice, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use xdn_core::adv::Advertisement;
use xdn_core::rtable::{AdvId, SubId};
use xdn_xml::{DocId, PathId};

/// Frames whose declared body length exceeds this are a protocol
/// violation: [`decode_frame`] rejects them before allocating, and
/// every transport (TCP readers, future substrates) must enforce the
/// same cap when reading a length prefix off a socket.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Size of the mutable per-peer header region of a sequenced frame:
/// `u32 len | u8 tag | u64 epoch | u64 seq | u64 low`. Everything after
/// it is the shared, immutable inner frame.
pub const SEQ_HEADER_BYTES: usize = 4 + 1 + 8 + 8 + 8;

const TAG_ADVERTISE: u8 = 1;
const TAG_UNADVERTISE: u8 = 2;
const TAG_SUBSCRIBE: u8 = 3;
const TAG_UNSUBSCRIBE: u8 = 4;
const TAG_PUBLISH: u8 = 5;
const TAG_HEARTBEAT: u8 = 6;
const TAG_SYNC_REQUEST: u8 = 7;
const TAG_SYNC_STATE: u8 = 8;
const TAG_ACK: u8 = 9;
const TAG_SEQUENCED: u8 = 10;

/// An error produced while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid wire frame: {}", self.message)
    }
}

impl Error for WireError {}

// ---------------------------------------------------------------------
// Codec statistics and the scratch-buffer pool
// ---------------------------------------------------------------------

static ENCODE_CALLS: AtomicU64 = AtomicU64::new(0);
static ENCODED_BYTES: AtomicU64 = AtomicU64::new(0);
static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);
static POOL_DISCARDS: AtomicU64 = AtomicU64::new(0);

/// Buffers a thread retains between frames. Each is capped at
/// [`POOL_RETAIN_BYTES`], bounding the per-thread pool at
/// `POOL_MAX_BUFFERS * POOL_RETAIN_BYTES` (512 KiB).
const POOL_MAX_BUFFERS: usize = 8;

/// A released buffer that grew beyond this (an oversized `SyncState`,
/// a huge document path) is dropped rather than pinned in the pool.
const POOL_RETAIN_BYTES: usize = 64 * 1024;

thread_local! {
    static FRAME_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a cleared scratch buffer from the thread-local frame pool
/// (falling back to a fresh allocation on a pool miss). Both the encode
/// path and transport frame readers draw from the same pool; return the
/// buffer with [`pool_release`] when the frame is done.
pub fn pool_acquire() -> Vec<u8> {
    FRAME_POOL.with(|p| match p.borrow_mut().pop() {
        Some(mut buf) => {
            POOL_HITS.fetch_add(1, Ordering::Relaxed);
            buf.clear();
            buf
        }
        None => {
            POOL_MISSES.fetch_add(1, Ordering::Relaxed);
            Vec::with_capacity(256)
        }
    })
}

/// Returns a scratch buffer to the thread-local pool. Buffers that grew
/// beyond [`POOL_RETAIN_BYTES`], and any overflow past
/// [`POOL_MAX_BUFFERS`], are discarded (and counted) instead of pinned.
pub fn pool_release(buf: Vec<u8>) {
    if buf.capacity() > POOL_RETAIN_BYTES {
        POOL_DISCARDS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    FRAME_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() >= POOL_MAX_BUFFERS {
            POOL_DISCARDS.fetch_add(1, Ordering::Relaxed);
        } else {
            pool.push(buf);
        }
    });
}

/// Process-wide codec counters: encode work and frame-pool behaviour.
/// Totals are cumulative since process start; consumers (benches, the
/// metrics exporter) report them as Prometheus-style counters or take
/// deltas across a measured phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecStats {
    /// [`encode_into`] invocations (one per uniquely encoded frame —
    /// fan-out sharing through [`FrameBuf`] does not re-encode).
    pub encode_calls: u64,
    /// Bytes produced by those encodes.
    pub encoded_bytes: u64,
    /// Scratch-buffer requests served from the thread-local pool.
    pub pool_hits: u64,
    /// Requests that fell back to a fresh allocation.
    pub pool_misses: u64,
    /// Released buffers dropped (oversized, or the pool was full).
    pub pool_discards: u64,
}

/// A snapshot of the process-wide [`CodecStats`].
pub fn codec_stats() -> CodecStats {
    CodecStats {
        encode_calls: ENCODE_CALLS.load(Ordering::Relaxed),
        encoded_bytes: ENCODED_BYTES.load(Ordering::Relaxed),
        pool_hits: POOL_HITS.load(Ordering::Relaxed),
        pool_misses: POOL_MISSES.load(Ordering::Relaxed),
        pool_discards: POOL_DISCARDS.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Appends one complete length-prefixed frame for `msg` to `out`,
/// in place — no temporaries, including for the nested payload of a
/// [`Message::Sequenced`] frame (the length prefixes are backfilled).
///
/// This is the one counting entry point of the encoder: each call adds
/// one to [`CodecStats::encode_calls`] and the frame's size to
/// [`CodecStats::encoded_bytes`], so "exactly one encode per fan-out"
/// is measurable.
pub fn encode_into(msg: &Message, out: &mut Vec<u8>) {
    let before = out.len();
    encode_frame(msg, out);
    ENCODE_CALLS.fetch_add(1, Ordering::Relaxed);
    ENCODED_BYTES.fetch_add((out.len() - before) as u64, Ordering::Relaxed);
}

/// Writes `frame := u32 len | u8 tag | body` directly into `out`,
/// recursing in place for sequenced payloads and backfilling the
/// length prefix once the body size is known.
fn encode_frame(msg: &Message, out: &mut Vec<u8>) {
    let len_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    match msg {
        Message::Advertise { id, adv } => {
            out.put_u8(TAG_ADVERTISE);
            out.put_u64(id.0);
            put_str(out, &adv.to_string());
        }
        Message::Unadvertise { id } => {
            out.put_u8(TAG_UNADVERTISE);
            out.put_u64(id.0);
        }
        Message::Subscribe { id, xpe } => {
            out.put_u8(TAG_SUBSCRIBE);
            out.put_u64(id.0);
            put_str(out, &xpe.to_string());
        }
        Message::Unsubscribe { id } => {
            out.put_u8(TAG_UNSUBSCRIBE);
            out.put_u64(id.0);
        }
        Message::Publish(p) => {
            out.put_u8(TAG_PUBLISH);
            out.put_u64(p.doc_id.0);
            out.put_u32(p.path_id.0);
            out.put_u64(p.doc_bytes as u64);
            out.put_u16(p.elements.len() as u16);
            for (i, e) in p.elements.iter().enumerate() {
                put_str(out, e);
                let attrs: &[(String, String)] = p.attributes.get(i).map_or(&[], Vec::as_slice);
                out.put_u8(attrs.len() as u8);
                for (k, v) in attrs {
                    put_str(out, k);
                    put_str(out, v);
                }
            }
        }
        Message::Heartbeat => out.put_u8(TAG_HEARTBEAT),
        Message::SyncRequest => out.put_u8(TAG_SYNC_REQUEST),
        Message::SyncState { advs, subs } => {
            out.put_u8(TAG_SYNC_STATE);
            out.put_u32(advs.len() as u32);
            for (id, adv) in advs {
                out.put_u64(id.0);
                put_str(out, &adv.to_string());
            }
            out.put_u32(subs.len() as u32);
            for (id, xpe) in subs {
                out.put_u64(id.0);
                put_str(out, &xpe.to_string());
            }
        }
        Message::Ack { epoch, seq } => {
            out.put_u8(TAG_ACK);
            out.put_u64(*epoch);
            out.put_u64(*seq);
        }
        Message::Sequenced {
            epoch,
            seq,
            low,
            inner,
        } => {
            out.put_u8(TAG_SEQUENCED);
            out.put_u64(*epoch);
            out.put_u64(*seq);
            out.put_u64(*low);
            // The payload travels as a complete nested frame so the
            // decoder reuses the whole codec, length checks included —
            // written in place, not through a temporary.
            encode_frame(inner, out);
        }
    }
    let body_len = (out.len() - len_at - 4) as u32;
    if let Some(slot) = out.get_mut(len_at..len_at + 4) {
        slot.copy_from_slice(&body_len.to_be_bytes());
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Decodes one frame from the front of `buf`, returning the message
/// and the number of bytes consumed.
///
/// # Errors
///
/// Returns [`WireError`] on truncated input, unknown tags, invalid
/// UTF-8, or an unparsable advertisement/XPE body.
pub fn decode_frame(buf: &[u8]) -> Result<(Message, usize), WireError> {
    let mut b = buf;
    if b.remaining() < 4 {
        return Err(WireError::new("truncated length prefix"));
    }
    let len = b.get_u32() as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::new(format!(
            "frame body of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    if b.remaining() < len {
        return Err(WireError::new(format!(
            "truncated body: need {len}, have {}",
            b.remaining()
        )));
    }
    let mut body = &b[..len];
    let consumed = 4 + len;
    if body.remaining() < 1 {
        return Err(WireError::new("empty body"));
    }
    let tag = body.get_u8();
    let msg = match tag {
        TAG_ADVERTISE => {
            let id = AdvId(get_u64(&mut body)?);
            let text = get_str(&mut body)?;
            let adv = Advertisement::parse(&text)
                .map_err(|e| WireError::new(format!("bad advertisement: {e}")))?;
            Message::Advertise { id, adv }
        }
        TAG_UNADVERTISE => Message::Unadvertise {
            id: AdvId(get_u64(&mut body)?),
        },
        TAG_SUBSCRIBE => {
            let id = SubId(get_u64(&mut body)?);
            let text = get_str(&mut body)?;
            let xpe = text
                .parse()
                .map_err(|e| WireError::new(format!("bad expression: {e}")))?;
            Message::Subscribe { id, xpe }
        }
        TAG_UNSUBSCRIBE => Message::Unsubscribe {
            id: SubId(get_u64(&mut body)?),
        },
        TAG_PUBLISH => {
            let doc_id = DocId(get_u64(&mut body)?);
            if body.remaining() < 4 + 8 + 2 {
                return Err(WireError::new("truncated publication header"));
            }
            let path_id = PathId(body.get_u32());
            let doc_bytes = body.get_u64() as usize;
            let n = body.get_u16() as usize;
            let mut elements = Vec::with_capacity(n);
            let mut attributes = Vec::with_capacity(n);
            for _ in 0..n {
                elements.push(get_str(&mut body)?);
                if body.remaining() < 1 {
                    return Err(WireError::new("truncated attribute count"));
                }
                let na = body.get_u8() as usize;
                let mut attrs = Vec::with_capacity(na);
                for _ in 0..na {
                    let k = get_str(&mut body)?;
                    let v = get_str(&mut body)?;
                    attrs.push((k, v));
                }
                attributes.push(attrs);
            }
            if elements.is_empty() {
                return Err(WireError::new("publication with no elements"));
            }
            Message::Publish(Publication {
                doc_id,
                path_id,
                elements,
                attributes,
                doc_bytes,
            })
        }
        TAG_HEARTBEAT => Message::Heartbeat,
        TAG_SYNC_REQUEST => Message::SyncRequest,
        TAG_SYNC_STATE => {
            let na = get_u32(&mut body)? as usize;
            let mut advs = Vec::new();
            for _ in 0..na {
                let id = AdvId(get_u64(&mut body)?);
                let text = get_str(&mut body)?;
                let adv = Advertisement::parse(&text)
                    .map_err(|e| WireError::new(format!("bad sync advertisement: {e}")))?;
                advs.push((id, adv));
            }
            let ns = get_u32(&mut body)? as usize;
            let mut subs = Vec::new();
            for _ in 0..ns {
                let id = SubId(get_u64(&mut body)?);
                let text = get_str(&mut body)?;
                let xpe = text
                    .parse()
                    .map_err(|e| WireError::new(format!("bad sync expression: {e}")))?;
                subs.push((id, xpe));
            }
            Message::SyncState { advs, subs }
        }
        TAG_ACK => {
            let epoch = get_u64(&mut body)?;
            let seq = get_u64(&mut body)?;
            Message::Ack { epoch, seq }
        }
        TAG_SEQUENCED => {
            let epoch = get_u64(&mut body)?;
            let seq = get_u64(&mut body)?;
            let low = get_u64(&mut body)?;
            let (inner, used) = decode_frame(body)?;
            // The reliability header wraps exactly one payload frame:
            // nested reliability messages would let a hostile peer
            // build recursion bombs and double-count sequence space.
            if matches!(inner, Message::Sequenced { .. } | Message::Ack { .. }) {
                return Err(WireError::new("reliability frame nested in sequenced"));
            }
            body.advance(used);
            Message::Sequenced {
                epoch,
                seq,
                low,
                inner: Arc::new(inner),
            }
        }
        other => return Err(WireError::new(format!("unknown tag {other}"))),
    };
    if body.has_remaining() {
        return Err(WireError::new(format!(
            "{} trailing bytes",
            body.remaining()
        )));
    }
    Ok((msg, consumed))
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(
        s.len() <= u16::MAX as usize,
        "wire strings are u16-prefixed"
    );
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_u32(b: &mut &[u8]) -> Result<u32, WireError> {
    if b.remaining() < 4 {
        return Err(WireError::new("truncated u32"));
    }
    Ok(b.get_u32())
}

fn get_u64(b: &mut &[u8]) -> Result<u64, WireError> {
    if b.remaining() < 8 {
        return Err(WireError::new("truncated u64"));
    }
    Ok(b.get_u64())
}

fn get_str(b: &mut &[u8]) -> Result<String, WireError> {
    if b.remaining() < 2 {
        return Err(WireError::new("truncated string length"));
    }
    let n = b.get_u16() as usize;
    if b.remaining() < n {
        return Err(WireError::new("truncated string body"));
    }
    let s = std::str::from_utf8(&b[..n])
        .map_err(|_| WireError::new("invalid UTF-8"))?
        .to_owned();
    b.advance(n);
    Ok(s)
}

// ---------------------------------------------------------------------
// FrameBuf: encode-once, shared-body frames
// ---------------------------------------------------------------------

/// The per-peer mutable header of a sequenced frame: the three
/// reliability counters stamped around the shared payload body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqHeader {
    /// Sender incarnation the sequence numbers belong to.
    pub epoch: u64,
    /// Per-link sequence number, starting at 1 within an epoch.
    pub seq: u64,
    /// The sender's lowest unacked sequence number.
    pub low: u64,
}

/// An outbound frame with an encode-once shared body.
///
/// A `FrameBuf` separates what the old code conflated: the *payload*
/// (an unsequenced [`Message`], shared via `Arc` by every peer's frame
/// and the retransmit buffer), its *encoding* (produced lazily, at most
/// once, shared as `Arc<[u8]>` by every clone), and the per-peer
/// [`SeqHeader`] (29 bytes, rewritten per destination without touching
/// the body). Cloning or [re-stamping](FrameBuf::stamped) a `FrameBuf`
/// is O(1) and allocation-free.
///
/// The payload is never [`Message::Sequenced`]: constructing a frame
/// from a sequenced message normalizes it into payload + header, so
/// nesting is unrepresentable here just as the decoder rejects it.
#[derive(Debug, Clone)]
pub struct FrameBuf {
    /// The unsequenced payload message.
    inner: Arc<Message>,
    /// The payload's encoded frame, produced at most once per fan-out.
    enc: Arc<OnceLock<Arc<[u8]>>>,
    /// Per-peer reliability header, if the frame is sequenced.
    seq: Option<SeqHeader>,
    /// The payload's kind, precomputed at construction.
    kind: MessageKind,
}

impl PartialEq for FrameBuf {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq && self.inner == other.inner
    }
}

impl From<Message> for FrameBuf {
    fn from(msg: Message) -> Self {
        FrameBuf::from_message(msg)
    }
}

impl FrameBuf {
    /// Builds a frame from a message, normalizing [`Message::Sequenced`]
    /// into payload + [`SeqHeader`] (sharing its payload `Arc`, not
    /// cloning it).
    pub fn from_message(msg: Message) -> FrameBuf {
        match msg {
            Message::Sequenced {
                epoch,
                seq,
                low,
                inner,
            } => FrameBuf {
                kind: inner.kind(),
                inner,
                enc: Arc::new(OnceLock::new()),
                seq: Some(SeqHeader { epoch, seq, low }),
            },
            // xtask: allow(kind-match) Sequenced is the only framing variant; every payload variant is the identity arm
            other => FrameBuf {
                kind: other.kind(),
                inner: Arc::new(other),
                enc: Arc::new(OnceLock::new()),
                seq: None,
            },
        }
    }

    /// Builds an unsequenced frame around an already-shared payload —
    /// the fan-out entry point: one `Arc<Message>` feeds every peer's
    /// frame. The payload must not be [`Message::Sequenced`] (use
    /// [`FrameBuf::from_message`] to normalize one).
    pub fn from_payload(inner: Arc<Message>) -> FrameBuf {
        debug_assert!(
            !matches!(*inner, Message::Sequenced { .. }),
            "sequenced messages are normalized by from_message"
        );
        FrameBuf {
            kind: inner.kind(),
            inner,
            enc: Arc::new(OnceLock::new()),
            seq: None,
        }
    }

    /// This frame re-stamped with a per-peer reliability header: the
    /// payload `Arc` and the encoded body are shared, only the 29-byte
    /// header region differs.
    pub fn stamped(&self, seq: SeqHeader) -> FrameBuf {
        FrameBuf {
            inner: Arc::clone(&self.inner),
            enc: Arc::clone(&self.enc),
            seq: Some(seq),
            kind: self.kind,
        }
    }

    /// The payload's kind (precomputed; the reliability header is
    /// transparent, exactly like [`Message::kind`]).
    pub fn kind(&self) -> MessageKind {
        self.kind
    }

    /// The per-peer reliability header, if the frame is sequenced.
    pub fn seq_header(&self) -> Option<SeqHeader> {
        self.seq
    }

    /// The unsequenced payload message.
    pub fn payload(&self) -> &Message {
        &self.inner
    }

    /// The shared payload handle (for fan-out siblings and retransmit
    /// buffers).
    pub fn payload_arc(&self) -> &Arc<Message> {
        &self.inner
    }

    /// True for frames carrying routing/publication payload, matching
    /// [`Message::is_payload`].
    pub fn is_payload(&self) -> bool {
        self.inner.is_payload()
    }

    /// The *modeled* wire size in bytes ([`Message::wire_bytes`]) —
    /// what the simulator's latency models charge, not the encoded
    /// length (see [`FrameBuf::encoded_len`]).
    pub fn wire_bytes(&self) -> usize {
        match self.seq {
            Some(_) => 24 + self.inner.wire_bytes(),
            None => self.inner.wire_bytes(),
        }
    }

    /// The payload's encoded frame, produced on first use and shared by
    /// every clone/stamp of this frame thereafter.
    pub fn encoded_payload(&self) -> Arc<[u8]> {
        Arc::clone(self.enc.get_or_init(|| {
            let mut scratch = pool_acquire();
            encode_into(&self.inner, &mut scratch);
            let body: Arc<[u8]> = Arc::from(scratch.as_slice());
            pool_release(scratch);
            body
        }))
    }

    /// The sequenced header region (`len | tag | epoch | seq | low`),
    /// or `None` for unsequenced frames. Stamping is 29 bytes of header
    /// arithmetic; the shared body is untouched.
    pub fn header_bytes(&self) -> Option<[u8; SEQ_HEADER_BYTES]> {
        let h = self.seq?;
        let body_len = self.encoded_payload().len();
        let len = ((SEQ_HEADER_BYTES - 4 + body_len) as u32).to_be_bytes();
        let epoch = h.epoch.to_be_bytes();
        let seq = h.seq.to_be_bytes();
        let low = h.low.to_be_bytes();
        let mut hdr = [0u8; SEQ_HEADER_BYTES];
        let fields = len
            .iter()
            .chain(std::iter::once(&TAG_SEQUENCED))
            .chain(&epoch)
            .chain(&seq)
            .chain(&low);
        for (dst, src) in hdr.iter_mut().zip(fields) {
            *dst = *src;
        }
        Some(hdr)
    }

    /// The exact on-the-wire length of this frame.
    pub fn encoded_len(&self) -> usize {
        let body = self.encoded_payload().len();
        match self.seq {
            Some(_) => SEQ_HEADER_BYTES + body,
            None => body,
        }
    }

    /// Writes the complete frame to `w` without assembling it: the
    /// header region and the shared body go out as one vectored
    /// (`write_vectored`) write where possible.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error from the underlying writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let body = self.encoded_payload();
        match self.header_bytes() {
            Some(hdr) => write_all_vectored(w, &hdr, &body),
            None => w.write_all(&body),
        }
    }

    /// Assembles the complete frame into one owned buffer (tests,
    /// transports without vectored writers).
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let body = self.encoded_payload();
        match self.header_bytes() {
            Some(hdr) => {
                let mut out = Vec::with_capacity(hdr.len() + body.len());
                out.extend_from_slice(&hdr);
                out.extend_from_slice(&body);
                out
            }
            None => body.to_vec(),
        }
    }

    /// The frame as a [`Message`] (sequenced frames share the payload
    /// `Arc`; unsequenced ones clone the payload for the caller).
    pub fn to_message(&self) -> Message {
        match self.seq {
            Some(SeqHeader { epoch, seq, low }) => Message::Sequenced {
                epoch,
                seq,
                low,
                inner: Arc::clone(&self.inner),
            },
            None => (*self.inner).clone(),
        }
    }

    /// Consumes the frame into a [`Message`], avoiding the payload
    /// clone when this frame holds the last reference.
    pub fn into_message(self) -> Message {
        match self.seq {
            Some(SeqHeader { epoch, seq, low }) => Message::Sequenced {
                epoch,
                seq,
                low,
                inner: self.inner,
            },
            None => Arc::try_unwrap(self.inner).unwrap_or_else(|shared| (*shared).clone()),
        }
    }
}

/// Write-all loop over `[header, body]` using vectored I/O: most
/// writers take both slices in one syscall; short writes resume at the
/// right offset. (`Write::write_all_vectored` is still unstable.)
fn write_all_vectored(w: &mut impl Write, head: &[u8], body: &[u8]) -> io::Result<()> {
    let total = head.len() + body.len();
    let mut written = 0usize;
    while written < total {
        let n = if written < head.len() {
            let head_rest = head.get(written..).unwrap_or_default();
            w.write_vectored(&[IoSlice::new(head_rest), IoSlice::new(body)])?
        } else {
            let body_rest = body.get(written - head.len()..).unwrap_or_default();
            w.write(body_rest)?
        };
        if n == 0 {
            return Err(io::ErrorKind::WriteZero.into());
        }
        written += n;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Outbound: the typed broker→transport output
// ---------------------------------------------------------------------

/// One routed output of a broker: the destination, the frame, and the
/// payload kind precomputed so stats/metrics stop re-deriving
/// [`Message::kind`] per hop. This replaces the ad-hoc
/// `Vec<(Dest, Message)>` convention at the broker→transport boundary;
/// `From` shims in both directions keep tuple-based callers working
/// for one release.
#[derive(Debug, Clone, PartialEq)]
pub struct Outbound {
    /// Where the frame goes.
    pub dest: Dest,
    /// The payload kind (the reliability header is transparent).
    pub kind: MessageKind,
    /// The encode-once frame.
    pub frame: FrameBuf,
}

impl Outbound {
    /// Builds an output, precomputing the kind from the frame.
    pub fn new(dest: Dest, frame: FrameBuf) -> Outbound {
        Outbound {
            dest,
            kind: frame.kind(),
            frame,
        }
    }
}

impl From<(Dest, Message)> for Outbound {
    fn from((dest, msg): (Dest, Message)) -> Self {
        Outbound::new(dest, FrameBuf::from_message(msg))
    }
}

impl From<Outbound> for (Dest, Message) {
    fn from(out: Outbound) -> Self {
        (out.dest, out.frame.into_message())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdn_core::adv::AdvPath;

    fn samples() -> Vec<Message> {
        vec![
            Message::advertise(
                AdvId(42),
                Advertisement::parse("/a/b(/c/d)+/e").expect("valid"),
            ),
            Message::advertise(
                AdvId(1),
                Advertisement::non_recursive(AdvPath::from_names(&["x", "*", "z"])),
            ),
            Message::Unadvertise { id: AdvId(7) },
            Message::subscribe(SubId(9), "/news/*//headline".parse().unwrap()),
            Message::subscribe(SubId(10), "section/article".parse().unwrap()),
            Message::Unsubscribe {
                id: SubId(u64::MAX),
            },
            Message::Publish(Publication {
                doc_id: DocId(3),
                path_id: PathId(14),
                elements: vec!["nitf".into(), "body".into(), "body-content".into()],
                attributes: vec![
                    vec![("version".into(), "3.0".into())],
                    Vec::new(),
                    vec![("lang".into(), "en".into()), ("id".into(), "7".into())],
                ],
                doc_bytes: 20_480,
            }),
            Message::Heartbeat,
            Message::SyncRequest,
            Message::SyncState {
                advs: Vec::new(),
                subs: Vec::new(),
            },
            Message::SyncState {
                advs: vec![
                    (
                        AdvId(3),
                        Advertisement::parse("/a/b(/c/d)+/e").expect("valid"),
                    ),
                    (
                        AdvId(4),
                        Advertisement::non_recursive(AdvPath::from_names(&["x"])),
                    ),
                ],
                subs: vec![
                    (SubId(5), "/news//headline".parse().unwrap()),
                    (SubId(6), "section/article".parse().unwrap()),
                ],
            },
            Message::Ack {
                epoch: 3,
                seq: u64::MAX,
            },
            Message::Sequenced {
                epoch: u64::MAX,
                seq: 1,
                low: 1,
                inner: Arc::new(Message::subscribe(
                    SubId(11),
                    "/news//headline".parse().unwrap(),
                )),
            },
            Message::Sequenced {
                epoch: 1,
                seq: 9,
                low: 4,
                inner: Arc::new(Message::Publish(Publication {
                    doc_id: DocId(8),
                    path_id: PathId(2),
                    elements: vec!["a".into(), "b".into()],
                    attributes: vec![vec![("v".into(), "1".into())], Vec::new()],
                    doc_bytes: 512,
                })),
            },
        ]
    }

    fn frame_of(msg: &Message) -> Vec<u8> {
        let mut out = Vec::new();
        encode_into(msg, &mut out);
        out
    }

    #[test]
    fn roundtrip_every_kind() {
        for msg in samples() {
            let bytes = frame_of(&msg);
            let (decoded, consumed) = decode_frame(&bytes).expect("decode");
            assert_eq!(decoded, msg);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn frames_concatenate() {
        let msgs = samples();
        let mut stream = Vec::new();
        for m in &msgs {
            encode_into(m, &mut stream);
        }
        let mut off = 0;
        let mut decoded = Vec::new();
        while off < stream.len() {
            let (m, used) = decode_frame(&stream[off..]).expect("decode stream");
            decoded.push(m);
            off += used;
        }
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = frame_of(&samples()[0]);
        for cut in [0, 2, 4, bytes.len() - 1] {
            assert!(
                decode_frame(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn oversized_declared_frame_rejected() {
        let mut frame = Vec::new();
        frame.put_u32((MAX_FRAME_BYTES + 1) as u32);
        // No body needed: the cap check fires on the prefix alone,
        // before any allocation.
        let err = decode_frame(&frame).expect_err("cap must reject");
        assert!(err.to_string().contains("cap"));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut frame = Vec::new();
        frame.put_u32(1);
        frame.put_u8(99);
        assert!(decode_frame(&frame).is_err());
    }

    #[test]
    fn garbage_expression_rejected() {
        let mut body = Vec::new();
        body.put_u8(TAG_SUBSCRIBE);
        body.put_u64(1);
        body.put_u16(3);
        body.put_slice(b"a//");
        let mut frame = Vec::new();
        frame.put_u32(body.len() as u32);
        frame.extend_from_slice(&body);
        assert!(decode_frame(&frame).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let bytes = frame_of(&Message::Unsubscribe { id: SubId(1) });
        let mut grown = Vec::new();
        grown.put_u32(bytes.len() as u32 - 4 + 1);
        grown.extend_from_slice(&bytes[4..]);
        grown.put_u8(0);
        assert!(decode_frame(&grown).is_err());
    }

    #[test]
    fn nested_reliability_frames_rejected() {
        // Hand-build sequenced(sequenced(heartbeat)) and
        // sequenced(ack): both must be refused by the depth guard.
        let seq_hb = Message::Sequenced {
            epoch: 1,
            seq: 1,
            low: 1,
            inner: Arc::new(Message::Heartbeat),
        };
        for evil_inner in [seq_hb, Message::Ack { epoch: 1, seq: 1 }] {
            let mut body = Vec::new();
            body.put_u8(TAG_SEQUENCED);
            body.put_u64(2);
            body.put_u64(5);
            body.put_u64(1);
            encode_into(&evil_inner, &mut body);
            let mut frame = Vec::new();
            frame.put_u32(body.len() as u32);
            frame.extend_from_slice(&body);
            let err = decode_frame(&frame).expect_err("nested reliability frame must fail");
            assert!(err.to_string().contains("nested"), "{err}");
        }
    }

    #[test]
    fn sequenced_truncated_inner_rejected() {
        let msg = Message::Sequenced {
            epoch: 1,
            seq: 2,
            low: 1,
            inner: Arc::new(Message::Heartbeat),
        };
        let bytes = frame_of(&msg);
        for cut in [5, 13, 29, bytes.len() - 1] {
            assert!(
                decode_frame(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn publish_size_overhead_is_small() {
        let p = Message::Publish(Publication {
            doc_id: DocId(1),
            path_id: PathId(0),
            elements: vec!["a".into(); 10],
            attributes: Vec::new(),
            doc_bytes: 0,
        });
        let frame = frame_of(&p);
        // 4 len + 1 tag + 8 doc + 4 path + 8 bytes + 2 count +
        // 10 * (2 len + 1 name + 1 attr-count)
        assert_eq!(frame.len(), 4 + 1 + 8 + 4 + 8 + 2 + 40);
    }

    #[test]
    fn framebuf_matches_flat_encoding_and_shares_one_body() {
        for msg in samples() {
            let frame = FrameBuf::from_message(msg.clone());
            assert_eq!(frame.to_wire_bytes(), frame_of(&msg), "{msg:?}");
            assert_eq!(frame.encoded_len(), frame_of(&msg).len());
            assert_eq!(frame.kind(), msg.kind());
            assert_eq!(frame.to_message(), msg);
            assert_eq!(frame.clone().into_message(), msg);
        }
        // Stamping k peers encodes the payload exactly once.
        let payload = Arc::new(samples()[6].clone());
        let base = FrameBuf::from_payload(Arc::clone(&payload));
        let before = codec_stats().encode_calls;
        let frames: Vec<FrameBuf> = (1..=8)
            .map(|seq| {
                base.stamped(SeqHeader {
                    epoch: 2,
                    seq,
                    low: 1,
                })
            })
            .collect();
        for (i, f) in frames.iter().enumerate() {
            let (decoded, used) = decode_frame(&f.to_wire_bytes()).expect("decode");
            assert_eq!(used, f.encoded_len());
            match decoded {
                Message::Sequenced { seq, inner, .. } => {
                    assert_eq!(seq, i as u64 + 1);
                    assert_eq!(*inner, *payload);
                }
                other => panic!("expected sequenced, got {other:?}"),
            }
            // All stamps share the base's body allocation.
            assert!(Arc::ptr_eq(&f.encoded_payload(), &base.encoded_payload()));
        }
        assert_eq!(
            codec_stats().encode_calls - before,
            1,
            "eight stamps, one encode"
        );
    }

    #[test]
    fn framebuf_write_to_is_byte_identical() {
        for msg in samples() {
            let frame = FrameBuf::from_message(msg.clone());
            let mut sink = Vec::new();
            frame.write_to(&mut sink).expect("write");
            assert_eq!(sink, frame_of(&msg));
        }
    }

    #[test]
    fn write_all_vectored_survives_short_writes() {
        /// A writer that accepts one byte per call.
        struct Trickle(Vec<u8>);
        impl Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                self.0.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let msg = Message::Sequenced {
            epoch: 3,
            seq: 7,
            low: 2,
            inner: Arc::new(Message::Heartbeat),
        };
        let frame = FrameBuf::from_message(msg.clone());
        let mut w = Trickle(Vec::new());
        frame.write_to(&mut w).expect("trickled write");
        assert_eq!(w.0, frame_of(&msg));
    }

    #[test]
    fn pool_round_trips_and_discards_oversized() {
        let before = codec_stats();
        let buf = pool_acquire();
        pool_release(buf);
        let buf = pool_acquire();
        pool_release(buf);
        let after = codec_stats();
        assert!(after.pool_hits + after.pool_misses >= before.pool_hits + before.pool_misses + 2);
        // An oversized buffer must not be pinned in the pool.
        let discards = codec_stats().pool_discards;
        pool_release(Vec::with_capacity(POOL_RETAIN_BYTES + 1));
        assert_eq!(codec_stats().pool_discards, discards + 1);
    }

    #[test]
    fn outbound_precomputes_kind_and_round_trips() {
        use crate::message::{BrokerId, ClientId};
        let msg = Message::Sequenced {
            epoch: 1,
            seq: 2,
            low: 1,
            inner: Arc::new(Message::Heartbeat),
        };
        let out = Outbound::from((Dest::Broker(BrokerId(3)), msg.clone()));
        assert_eq!(out.kind, MessageKind::Heartbeat);
        assert_eq!(out.frame.seq_header().map(|h| h.seq), Some(2));
        let (dest, back): (Dest, Message) = out.into();
        assert_eq!(dest, Dest::Broker(BrokerId(3)));
        assert_eq!(back, msg);
        let plain = Outbound::new(
            Dest::Client(ClientId(9)),
            FrameBuf::from_message(Message::SyncRequest),
        );
        assert_eq!(plain.kind, MessageKind::SyncRequest);
        assert!(plain.frame.seq_header().is_none());
    }
}
