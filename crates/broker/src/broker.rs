//! The broker: routing state plus the message-handling state machine.

use crate::message::{BrokerId, Dest, Message, MessageKind, Publication};
use crate::reliable::{Admit, DedupWindow, OutboundLink, ReliabilityState};
use crate::stats::BrokerStats;
use crate::wire::{FrameBuf, Outbound};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use xdn_core::automaton::{AutomatonPrt, AutomatonStats};
use xdn_core::index::IndexedPrt;
use xdn_core::merge::MergeConfig;
use xdn_core::rtable::{FlatPrt, Prt, PublicationRouter, RouteRequest, Srt, SubId};
use xdn_core::shard::{ShardStats, ShardedRouter};
use xdn_obs::{Stopwatch, TraceEvent, Tracer};
use xdn_xpath::Xpe;

/// Which merging variant a broker runs (requires covering).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Merging {
    /// Only mergers with `D_imperfect = 0` are applied.
    Perfect,
    /// Mergers up to `max_degree` are applied (the paper uses `0.1` in
    /// Tables 1–3).
    Imperfect {
        /// The largest imperfect-merging degree accepted.
        max_degree: f64,
    },
}

impl Merging {
    fn max_degree(self) -> f64 {
        match self {
            Merging::Perfect => 0.0,
            Merging::Imperfect { max_degree } => max_degree,
        }
    }
}

/// How a non-covering broker matches publications against its
/// subscription table. Every variant returns identical destination
/// sets; only the publication routing time changes. Ignored when
/// [`RoutingConfig::covering`] is set (the covering tree is its own
/// organization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchStrategy {
    /// Linear scan over every subscription (`FlatPrt`) — the paper's
    /// baseline.
    Flat,
    /// Candidate-pruning inverted index (`IndexedPrt`). The default.
    Indexed,
    /// Subscriptions hash-partitioned across `shards` independent
    /// `IndexedPrt` tables, matched in parallel on the scoped worker
    /// pool (`XDN_MATCH_THREADS` workers).
    Sharded {
        /// Number of shards (zero is clamped to one).
        shards: usize,
    },
    /// The whole subscription set compiled into one shared NFA
    /// (`AutomatonPrt`): a publication is matched in a single
    /// traversal, independent of the candidate count.
    Automaton,
    /// Subscriptions hash-partitioned across `shards` independent
    /// `AutomatonPrt` tables, matched in parallel on the worker pool.
    ShardedAutomaton {
        /// Number of shards (zero is clamped to one).
        shards: usize,
    },
}

/// A broker's routing strategy — the experiment axis of Tables 2/3.
///
/// Build one with [`RoutingConfig::builder`]:
///
/// ```
/// use xdn_broker::broker::{MatchStrategy, Merging, RoutingConfig};
///
/// let cfg = RoutingConfig::builder()
///     .advertisements(true)
///     .covering(true)
///     .merging(Merging::Imperfect { max_degree: 0.1 })
///     .build();
/// assert!(cfg.advertisements && cfg.covering);
///
/// let parallel = RoutingConfig::builder()
///     .strategy(MatchStrategy::Sharded { shards: 4 })
///     .build();
/// assert_eq!(parallel.strategy, MatchStrategy::Sharded { shards: 4 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingConfig {
    /// Use advertisement-based subscription routing; without it,
    /// subscriptions are flooded to every neighbour.
    pub advertisements: bool,
    /// Use the covering subscription tree; without it, a flat table.
    pub covering: bool,
    /// Merging mode, if any.
    pub merging: Option<Merging>,
    /// Matching organization for non-covering tables. Replaces the old
    /// boolean `indexing` knob.
    pub strategy: MatchStrategy,
}

/// Staged construction of a [`RoutingConfig`]; see
/// [`RoutingConfig::builder`].
///
/// Starts from the paper's baseline (`no-Adv-no-Cov`, no merging) with
/// the match index enabled; each method switches one axis on.
#[derive(Debug, Clone, Copy)]
pub struct RoutingConfigBuilder {
    advertisements: bool,
    covering: bool,
    merging: Option<Merging>,
    strategy: MatchStrategy,
}

impl Default for RoutingConfigBuilder {
    fn default() -> Self {
        RoutingConfigBuilder {
            advertisements: false,
            covering: false,
            merging: None,
            strategy: MatchStrategy::Indexed,
        }
    }
}

impl RoutingConfigBuilder {
    /// Enables or disables advertisement-based subscription routing.
    pub fn advertisements(mut self, on: bool) -> Self {
        self.advertisements = on;
        self
    }

    /// Enables or disables the covering subscription tree.
    pub fn covering(mut self, on: bool) -> Self {
        self.covering = on;
        self
    }

    /// Selects a merging mode (implies covering at the broker level;
    /// the builder does not force it, matching the paper's independent
    /// axes).
    pub fn merging(mut self, merging: Merging) -> Self {
        self.merging = Some(merging);
        self
    }

    /// Selects the matching organization for non-covering tables.
    pub fn strategy(mut self, strategy: MatchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> RoutingConfig {
        RoutingConfig {
            advertisements: self.advertisements,
            covering: self.covering,
            merging: self.merging,
            strategy: self.strategy,
        }
    }
}

impl RoutingConfig {
    /// Starts building a configuration from the `no-Adv-no-Cov`
    /// baseline.
    pub fn builder() -> RoutingConfigBuilder {
        RoutingConfigBuilder::default()
    }

    /// All six strategies in the paper's order, for experiment sweeps.
    pub fn all_strategies() -> [(&'static str, RoutingConfig); 6] {
        let base = Self::builder();
        [
            ("no-Adv-no-Cov", base.build()),
            ("no-Adv-with-Cov", base.covering(true).build()),
            ("with-Adv-no-Cov", base.advertisements(true).build()),
            (
                "with-Adv-with-Cov",
                base.advertisements(true).covering(true).build(),
            ),
            (
                "with-Adv-with-CovPM",
                base.advertisements(true)
                    .covering(true)
                    .merging(Merging::Perfect)
                    .build(),
            ),
            (
                "with-Adv-with-CovIPM",
                base.advertisements(true)
                    .covering(true)
                    .merging(Merging::Imperfect { max_degree: 0.1 })
                    .build(),
            ),
        ]
    }

    /// Looks a strategy up by its Tables 2/3 name.
    pub fn by_name(name: &str) -> Option<RoutingConfig> {
        Self::all_strategies()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, cfg)| cfg)
    }
}

/// One content-based XML router.
///
/// A broker owns no I/O: [`Broker::handle_frames`] consumes one incoming
/// message and returns the frames to put on the wire, which makes the
/// same implementation drivable by the discrete-event simulator, the
/// threaded live transport, unit tests, and benchmarks.
#[derive(Debug)]
pub struct Broker {
    id: BrokerId,
    neighbors: Vec<BrokerId>,
    config: RoutingConfig,
    srt: Srt<Dest>,
    /// The publication routing table behind the strategy-agnostic
    /// [`PublicationRouter`] interface: covering tree, linear scan, or
    /// candidate-pruning index, per [`RoutingConfig`].
    prt: Box<dyn PublicationRouter<Dest> + Send>,
    /// DTD path universe for computing `D_imperfect` (merging).
    universe: Option<Arc<Vec<Vec<String>>>>,
    merger_seq: u64,
    /// Hops each forwarded subscription was sent to; deduplicates
    /// re-forwarding when advertisements arrive after subscriptions.
    sent_to: std::collections::HashMap<SubId, std::collections::BTreeSet<Dest>>,
    stats: BrokerStats,
    /// Structured trace sink; `None` (the default) costs one branch on
    /// the hot paths and constructs no events.
    tracer: Option<TracerHandle>,
    /// This incarnation's epoch, stamped on every sequenced frame.
    epoch: u64,
    /// Per-neighbour retransmit buffers for frames we sent.
    links: BTreeMap<BrokerId, OutboundLink>,
    /// Per-source dedup windows for sequenced frames we received.
    windows: BTreeMap<Dest, DedupWindow>,
    /// Neighbours whose [`Message::SyncState`] this broker still awaits
    /// after a cold (re)start. While non-empty the broker is *warming
    /// up* and defers payload frames instead of routing them.
    sync_pending: BTreeSet<BrokerId>,
    /// Payload frames deferred during warm-up, in arrival order. They
    /// are *not* acknowledged while held, so a crash loses nothing the
    /// senders cannot replay.
    warmup: VecDeque<(Dest, Message)>,
    /// Neighbours whose [`Message::SyncRequest`] arrived while this
    /// broker was warming up. Answering immediately would hand them a
    /// cold, possibly-empty snapshot they would then treat as complete;
    /// the answer is held until every *other* awaited snapshot has
    /// arrived. In a tree overlay the deferral wave resolves from the
    /// leaves inward and cannot deadlock.
    deferred_sync: BTreeSet<BrokerId>,
}

/// Most payload frames a warming broker will hold before shedding.
/// Shed frames are unacknowledged, so the senders' retransmit buffers
/// replay them after sync — the cap bounds memory, not correctness.
const WARMUP_CAPACITY: usize = 4096;

/// One admitted batch entry awaiting the parallel routing flush in
/// [`Broker::handle_batch`].
enum PendingEntry {
    /// A publication to route; `ack` is the cumulative ack owed for its
    /// sequenced envelope (already computed at admission, when the
    /// dedup window was advanced), emitted after the routed copies.
    Route {
        from: Dest,
        publication: Publication,
        ack: Option<Message>,
    },
    /// Pre-computed output (e.g. a duplicate's re-ack) held back so the
    /// batch's output order matches sequential processing.
    Emit(Vec<Outbound>),
}

/// An installed [`Tracer`], opaque to `Debug` (trace sinks carry
/// writers and buffers that have no useful debug form).
struct TracerHandle(Arc<dyn Tracer>);

impl std::fmt::Debug for TracerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TracerHandle(..)")
    }
}

impl std::ops::Deref for TracerHandle {
    type Target = dyn Tracer;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl Broker {
    /// Creates a broker with no neighbours.
    pub fn new(id: BrokerId, config: RoutingConfig) -> Self {
        let prt: Box<dyn PublicationRouter<Dest> + Send> = if config.covering {
            Box::new(Prt::new())
        } else {
            match config.strategy {
                MatchStrategy::Flat => Box::new(FlatPrt::new()),
                MatchStrategy::Indexed => Box::new(IndexedPrt::new()),
                MatchStrategy::Sharded { shards } => {
                    Box::new(ShardedRouter::<IndexedPrt<Dest>>::new(shards))
                }
                MatchStrategy::Automaton => Box::new(AutomatonPrt::new()),
                MatchStrategy::ShardedAutomaton { shards } => {
                    Box::new(ShardedRouter::<AutomatonPrt<Dest>>::new(shards))
                }
            }
        };
        Broker {
            id,
            neighbors: Vec::new(),
            config,
            srt: Srt::new(),
            prt,
            universe: None,
            merger_seq: 0,
            sent_to: std::collections::HashMap::new(),
            stats: BrokerStats::default(),
            tracer: None,
            epoch: 1,
            links: BTreeMap::new(),
            windows: BTreeMap::new(),
            sync_pending: BTreeSet::new(),
            warmup: VecDeque::new(),
            deferred_sync: BTreeSet::new(),
        }
    }

    /// This broker's id.
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// The configured routing strategy.
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// Registers a neighbouring broker.
    pub fn add_neighbor(&mut self, n: BrokerId) {
        if !self.neighbors.contains(&n) {
            self.neighbors.push(n);
        }
    }

    /// The neighbouring brokers.
    pub fn neighbors(&self) -> &[BrokerId] {
        &self.neighbors
    }

    /// Supplies the producer-DTD path universe used to score imperfect
    /// mergers (§4.3 assumes each broker knows the producer's DTD).
    pub fn set_universe(&mut self, universe: Arc<Vec<Vec<String>>>) {
        self.universe = Some(universe);
    }

    /// Performance counters.
    pub fn stats(&self) -> &BrokerStats {
        &self.stats
    }

    /// Installs a structured trace sink (see [`xdn_obs::trace`] for the
    /// event vocabulary). Tracing is off by default.
    pub fn set_tracer(&mut self, tracer: Arc<dyn Tracer>) {
        self.tracer = Some(TracerHandle(tracer));
    }

    /// Removes the trace sink, restoring the zero-cost disabled path.
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    /// Resets the performance counters.
    pub fn reset_stats(&mut self) {
        self.stats = BrokerStats::default();
    }

    /// Sets this incarnation's epoch and resets the outbound links so
    /// every neighbour sees a fresh sequence space. Call once at node
    /// start, before any traffic; transports that restart with a
    /// higher epoch (e.g. wall-clock-derived) implicitly retire frames
    /// of their previous incarnation.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch.max(1);
        self.links.clear();
    }

    /// The epoch stamped on outgoing sequenced frames.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Detaches the reliability state (epoch, retransmit buffers, dedup
    /// windows) so a transport with durable storage can carry it across
    /// a crash-restart. The broker is left with empty buffers in the
    /// same epoch.
    pub fn take_reliability_state(&mut self) -> ReliabilityState {
        ReliabilityState {
            epoch: self.epoch,
            links: std::mem::take(&mut self.links),
            windows: std::mem::take(&mut self.windows),
        }
    }

    /// Restores reliability state detached by
    /// [`Broker::take_reliability_state`]. Routing state is *not*
    /// restored — that is rebuilt via `SyncRequest`/`SyncState`.
    pub fn restore_reliability_state(&mut self, state: ReliabilityState) {
        self.epoch = state.epoch.max(1);
        self.links = state.links;
        self.windows = state.windows;
    }

    /// Declares that this broker has requested sync from `peer` and
    /// must not route payload until the answering
    /// [`Message::SyncState`] arrives.
    ///
    /// A restarted broker's routing tables are empty until its
    /// neighbours' snapshots land; publications processed before then
    /// would be acknowledged yet silently unroutable — exactly the
    /// window in which at-least-once quietly becomes at-most-once.
    /// Transports call this for every reachable neighbour when they
    /// issue the (re)connect `SyncRequest`; until each one has
    /// answered, [`Broker::handle_frames`] defers payload frames unacked and
    /// replays them through the normal dedup/routing path once the
    /// last snapshot is installed.
    pub fn expect_sync_from(&mut self, peer: BrokerId) {
        self.sync_pending.insert(peer);
    }

    /// True while the broker defers payload awaiting neighbour sync.
    pub fn is_warming(&self) -> bool {
        !self.sync_pending.is_empty()
    }

    /// Total sequenced frames still awaiting acknowledgement across
    /// every neighbour link.
    pub fn unacked_total(&self) -> usize {
        self.links.values().map(OutboundLink::unacked_len).sum()
    }

    /// Total frames shed from full retransmit buffers — each one a
    /// frame the reliability layer can no longer guarantee.
    pub fn retransmit_overflow_total(&self) -> u64 {
        self.links.values().map(OutboundLink::overflow).sum()
    }

    /// Number of advertisements in the SRT.
    pub fn srt_size(&self) -> usize {
        self.srt.len()
    }

    /// Compacts the SRT by dropping advertisements covered by another
    /// one from the same hop (§4.2's advertisement-covering remark).
    /// Returns the number of entries removed. Routing is unchanged.
    pub fn compact_srt(&mut self) -> usize {
        self.srt.compact()
    }

    /// Number of subscriptions stored in the PRT.
    pub fn prt_size(&self) -> usize {
        self.prt.len()
    }

    /// Effective routing-table size: top-level subscriptions after
    /// covering (equals [`Self::prt_size`] for flat tables).
    pub fn prt_effective_size(&self) -> usize {
        self.prt.effective_size()
    }

    /// Processes one message and returns the [`Outbound`] frames to
    /// transmit. Never returns a frame to `from`.
    ///
    /// This is the reliable entry point: payload frames bound for
    /// neighbouring brokers come back stamped with sequenced headers
    /// and buffered for retransmission, inbound sequenced frames are
    /// deduplicated and acknowledged, [`Message::Ack`]s prune the
    /// retransmit buffers, and a neighbour's [`Message::SyncRequest`]
    /// additionally triggers a replay of every frame it has not
    /// acknowledged. A publication fanned out to `k` next-hops yields
    /// `k` frames sharing one payload `Arc` (and, on the wire, one
    /// encoded body).
    pub fn handle_frames(&mut self, from: Dest, msg: Message) -> Vec<Outbound> {
        if !self.sync_pending.is_empty() && msg.is_payload() {
            // Warming up: routing tables are not rebuilt yet, so
            // defer (without acking) rather than ack-and-misroute.
            if self.warmup.len() < WARMUP_CAPACITY {
                self.warmup.push_back((from, msg));
            } else {
                self.stats.warmup_shed += 1;
            }
            return Vec::new();
        }
        let sync_peer = match (&msg, from.as_broker()) {
            (Message::SyncState { .. }, Some(nb)) => Some(nb),
            _ => None,
        };
        let out = match msg {
            Message::Ack { epoch, seq } => {
                self.stats.record_received(MessageKind::Ack);
                if let Some(nb) = from.as_broker() {
                    if let Some(link) = self.links.get_mut(&nb) {
                        for lag in link.on_ack(epoch, seq) {
                            self.stats.ack_lag.record(lag);
                        }
                    }
                }
                return Vec::new();
            }
            Message::Sequenced {
                epoch,
                seq,
                low,
                inner,
            } => {
                let admit = self
                    .windows
                    .entry(from)
                    .or_default()
                    .observe(epoch, seq, low);
                match admit {
                    Admit::Stale => {
                        // A dead incarnation's frame; its successor
                        // re-sends anything that still matters.
                        self.stats.stale_frames += 1;
                        return Vec::new();
                    }
                    Admit::Duplicate => {
                        // Already processed: suppress the payload but
                        // re-ack so the sender can prune its buffer.
                        self.stats.dup_frames += 1;
                        let ack = self.ack_for(from, epoch, seq);
                        self.stats.sent += 1;
                        return vec![Outbound::from((from, ack))];
                    }
                    Admit::Fresh => {
                        // Usually the sole owner (frames arrive freshly
                        // decoded); fall back to a clone when shared.
                        let inner =
                            Arc::try_unwrap(inner).unwrap_or_else(|shared| (*shared).clone());
                        let mut out = self.handle_core(from, inner);
                        let ack = self.ack_for(from, epoch, seq);
                        self.stats.sent += 1;
                        out.push(Outbound::from((from, ack)));
                        out
                    }
                }
            }
            Message::SyncRequest => match from.as_broker() {
                Some(nb) => {
                    if self.sync_pending.iter().any(|p| *p != nb) {
                        // Warming up ourselves: our snapshot is still
                        // incomplete, and the peer would install it as
                        // if it were whole. Hold the answer until every
                        // snapshot we await from *other* neighbours has
                        // arrived (excluding the requester breaks the
                        // mutual-wait a freshly synced pair would
                        // otherwise deadlock on).
                        self.deferred_sync.insert(nb);
                        return Vec::new();
                    }
                    self.answer_sync(nb)
                }
                None => self.handle_core(from, Message::SyncRequest),
            },
            other => self.handle_core(from, other),
        };
        let mut out = self.wrap_outputs(out);
        if let Some(nb) = sync_peer {
            if self.sync_pending.remove(&nb) {
                // Snapshots held back while we were colder than the
                // requester may be ready now.
                let ready: Vec<BrokerId> = self
                    .deferred_sync
                    .iter()
                    .copied()
                    .filter(|r| self.sync_pending.iter().all(|p| p == r))
                    .collect();
                for r in ready {
                    self.deferred_sync.remove(&r);
                    out.extend(self.answer_sync(r));
                }
                if self.sync_pending.is_empty() {
                    // Last awaited snapshot installed: replay the
                    // deferred frames through the normal handle path
                    // (dedup, acks, sequencing all apply as if they
                    // had just arrived).
                    let held: Vec<_> = self.warmup.drain(..).collect();
                    for (h_from, h_msg) in held {
                        out.extend(self.handle_frames(h_from, h_msg));
                    }
                }
            }
        }
        out
    }

    /// Processes a whole transport drain in one call, returning exactly
    /// the frames [`Broker::handle_frames`] would have produced for the
    /// same sequence: `handle_batch_frames(batch)` is observably
    /// equivalent to concatenating `handle_frames(from, msg)` over the
    /// batch in order.
    ///
    /// Control traffic (advertisements, subscriptions, sync, acks) is
    /// order-sensitive and processed sequentially, acting as a flush
    /// barrier; runs of publications between barriers are routed in one
    /// [`PublicationRouter::route_batch`] call, which a sharded table
    /// fans across its worker pool. Reliability bookkeeping happens at
    /// admission time in arrival order (dedup windows advance and acks
    /// are computed as each frame is scanned) and per-link sequencing
    /// headers are assigned at flush time in arrival order, so the
    /// sequencing/ack layer sees the same frame stream either way.
    pub fn handle_batch_frames(&mut self, batch: Vec<(Dest, Message)>) -> Vec<Outbound> {
        let mut out = Vec::new();
        let mut pending: Vec<PendingEntry> = Vec::new();
        for (from, msg) in batch {
            if self.sync_pending.is_empty() {
                match msg {
                    Message::Publish(p) => {
                        pending.push(PendingEntry::Route {
                            from,
                            publication: p,
                            ack: None,
                        });
                        continue;
                    }
                    Message::Sequenced {
                        epoch,
                        seq,
                        low,
                        inner,
                    } if matches!(*inner, Message::Publish(_)) => {
                        // The guard proved the frame carries a
                        // publication; move it out once, before any
                        // bookkeeping, so no arm re-proves it. Should
                        // the two ever disagree, dropping the frame
                        // beats panicking the broker mid-drain.
                        let Message::Publish(p) =
                            Arc::try_unwrap(inner).unwrap_or_else(|shared| (*shared).clone())
                        else {
                            continue;
                        };
                        let admit = self
                            .windows
                            .entry(from)
                            .or_default()
                            .observe(epoch, seq, low);
                        match admit {
                            Admit::Stale => {
                                self.stats.stale_frames += 1;
                            }
                            Admit::Duplicate => {
                                self.stats.dup_frames += 1;
                                let ack = self.ack_for(from, epoch, seq);
                                self.stats.sent += 1;
                                pending.push(PendingEntry::Emit(vec![Outbound::from((from, ack))]));
                            }
                            Admit::Fresh => {
                                let ack = self.ack_for(from, epoch, seq);
                                self.stats.sent += 1;
                                pending.push(PendingEntry::Route {
                                    from,
                                    publication: p,
                                    ack: Some(ack),
                                });
                            }
                        }
                        continue;
                    }
                    other => {
                        // Order-sensitive traffic: flush the routed run,
                        // then process sequentially as today.
                        self.flush_publications(&mut pending, &mut out);
                        out.extend(self.handle_frames(from, other));
                    }
                }
            } else {
                self.flush_publications(&mut pending, &mut out);
                out.extend(self.handle_frames(from, msg));
            }
        }
        self.flush_publications(&mut pending, &mut out);
        out
    }

    /// Routes the pending publication run in one batched call and emits
    /// its outputs (and held-back acks) in admission order.
    fn flush_publications(&mut self, pending: &mut Vec<PendingEntry>, out: &mut Vec<Outbound>) {
        if pending.is_empty() {
            return;
        }
        let entries = std::mem::take(pending);
        let requests: Vec<RouteRequest<'_>> = entries
            .iter()
            .filter_map(|e| match e {
                PendingEntry::Route { publication, .. } => Some(RouteRequest {
                    path: &publication.elements,
                    attrs: &publication.attributes,
                }),
                PendingEntry::Emit(_) => None,
            })
            .collect();
        let sw = Stopwatch::start();
        let dest_sets = if requests.is_empty() {
            Vec::new()
        } else {
            self.prt.route_batch(&requests)
        };
        // Spread the batch's wall time over its publications so the
        // routing histogram keeps one sample per publication.
        let n = requests.len().max(1) as u32;
        let per_pub = sw.elapsed() / n;
        let per_pub_ns = sw.elapsed_ns() / u64::from(n);
        let mut sets = dest_sets.into_iter();
        for entry in entries {
            match entry {
                PendingEntry::Emit(msgs) => out.extend(msgs),
                PendingEntry::Route {
                    from,
                    publication: p,
                    ack,
                } => {
                    self.stats.record_received(MessageKind::Publish);
                    self.stats.pub_routing.record(per_pub);
                    let dests = sets.next().unwrap_or_default();
                    let doc_id = p.doc_id.0;
                    if let Some(tracer) = &self.tracer {
                        tracer.record(&TraceEvent::span(
                            "pub.route",
                            self.id.0,
                            "publish",
                            doc_id,
                            dests.len() as u64,
                            per_pub_ns,
                        ));
                    }
                    // One shared payload for the whole fan-out: every
                    // next-hop frame clones the `Arc`, not the paths.
                    let payload = Arc::new(Message::Publish(p));
                    let routed: Vec<Outbound> = dests
                        .into_iter()
                        .filter(|d| *d != from)
                        .map(|d| {
                            if let Dest::Client(c) = d {
                                self.stats.deliveries += 1;
                                if let Some(tracer) = &self.tracer {
                                    tracer.record(&TraceEvent::point(
                                        "pub.deliver",
                                        self.id.0,
                                        "publish",
                                        doc_id,
                                        c.0,
                                    ));
                                }
                            }
                            Outbound::new(d, FrameBuf::from_payload(Arc::clone(&payload)))
                        })
                        .collect();
                    self.stats.sent += routed.len() as u64;
                    out.extend(self.wrap_outputs(routed));
                    if let Some(ack) = ack {
                        out.push(Outbound::from((from, ack)));
                    }
                }
            }
        }
    }

    /// Parallel-matching metrics from the routing table, when the
    /// configured [`MatchStrategy`] is sharded (`None` otherwise).
    pub fn shard_stats(&self) -> Option<ShardStats> {
        self.prt.shard_stats()
    }

    /// Shared-automaton metrics from the routing table, when the
    /// configured [`MatchStrategy`] is automaton-backed (`None`
    /// otherwise; sharded automatons report merged shard stats).
    pub fn automaton_stats(&self) -> Option<AutomatonStats> {
        self.prt.automaton_stats()
    }

    /// The full answer to a neighbour's [`Message::SyncRequest`]: the
    /// routing snapshot plus a replay of every sequenced frame the peer
    /// has not acknowledged (the reconnect may have eaten them).
    fn answer_sync(&mut self, nb: BrokerId) -> Vec<Outbound> {
        let from = Dest::Broker(nb);
        let mut out = self.handle_core(from, Message::SyncRequest);
        if let Some(link) = self.links.get(&nb) {
            let replayed = link.replay_frames();
            self.stats.retransmits += replayed.len() as u64;
            self.stats.sent += replayed.len() as u64;
            out.extend(replayed.into_iter().map(|f| Outbound::new(from, f)));
        }
        out
    }

    /// The cumulative ack for `from`'s window (falling back to the
    /// observed frame if the window vanished, which cannot happen in
    /// practice — `observe` just created it).
    fn ack_for(&self, from: Dest, epoch: u64, seq: u64) -> Message {
        let (e, s) = self
            .windows
            .get(&from)
            .map_or((epoch, seq), DedupWindow::ack_value);
        Message::Ack { epoch: e, seq: s }
    }

    /// Stamps broker-bound payload frames with sequenced headers,
    /// buffering each (body shared, not cloned) for retransmission.
    /// Control traffic, client deliveries, and already-sequenced frames
    /// pass through untouched.
    fn wrap_outputs(&mut self, out: Vec<Outbound>) -> Vec<Outbound> {
        let epoch = self.epoch;
        out.into_iter()
            .map(|ob| match ob.dest {
                Dest::Broker(nb) if ob.frame.is_payload() && ob.frame.seq_header().is_none() => {
                    let link = self.links.entry(nb).or_insert_with(|| {
                        OutboundLink::new(epoch, crate::reliable::DEFAULT_RETRANSMIT_CAPACITY)
                    });
                    Outbound::new(ob.dest, link.wrap_frame(ob.frame))
                }
                _ => ob,
            })
            .collect()
    }

    /// The routing state machine, below the reliability layer.
    fn handle_core(&mut self, from: Dest, msg: Message) -> Vec<Outbound> {
        self.stats.record_received(msg.kind());
        let out: Vec<Outbound> = match msg {
            Message::Advertise { id, adv } => {
                self.srt.insert(id, adv.clone(), from);
                if let Some(tracer) = &self.tracer {
                    tracer.record(&TraceEvent::point(
                        "adv.process",
                        self.id.0,
                        "advertise",
                        id.0,
                        0,
                    ));
                }
                // Advertisements are flooded through the overlay.
                let mut out = self.broadcast_except(
                    from,
                    Message::Advertise {
                        id,
                        adv: adv.clone(),
                    },
                );
                // Subscriptions that arrived before this advertisement
                // were not forwarded toward it; re-evaluate the stored
                // (top-level) subscriptions so the reverse path exists.
                if self.config.advertisements && !from.is_client() {
                    for (sid, xpe, hops) in self.prt.forwarded_subs() {
                        let only_from_there = hops.iter().all(|h| *h == from);
                        let already_sent = self
                            .sent_to
                            .get(&sid)
                            .is_some_and(|dests| dests.contains(&from));
                        if !only_from_there
                            && !already_sent
                            && xdn_core::advmatch::adv_overlaps_sub(&adv, &xpe)
                        {
                            out.push(Outbound::from((from, Message::Subscribe { id: sid, xpe })));
                            self.sent_to.entry(sid).or_default().insert(from);
                        }
                    }
                }
                out
            }
            Message::Unadvertise { id } => {
                self.srt.remove(id);
                self.broadcast_except(from, Message::Unadvertise { id })
            }
            Message::Subscribe { id, xpe } => self
                .handle_subscribe(from, id, xpe)
                .into_iter()
                .map(Outbound::from)
                .collect(),
            Message::Unsubscribe { id } => self
                .handle_unsubscribe(from, id)
                .into_iter()
                .map(Outbound::from)
                .collect(),
            Message::Publish(p) => {
                let sw = Stopwatch::start();
                let dests = self.prt.matching_hops(&p.elements, &p.attributes);
                self.stats.pub_routing.record(sw.elapsed());
                let doc_id = p.doc_id.0;
                if let Some(tracer) = &self.tracer {
                    tracer.record(&TraceEvent::span(
                        "pub.route",
                        self.id.0,
                        "publish",
                        doc_id,
                        dests.len() as u64,
                        sw.elapsed_ns(),
                    ));
                }
                // One shared payload for the whole fan-out: every
                // next-hop frame clones the `Arc`, not the paths.
                let payload = Arc::new(Message::Publish(p));
                dests
                    .into_iter()
                    .filter(|d| *d != from)
                    .map(|d| {
                        if let Dest::Client(c) = d {
                            self.stats.deliveries += 1;
                            if let Some(tracer) = &self.tracer {
                                tracer.record(&TraceEvent::point(
                                    "pub.deliver",
                                    self.id.0,
                                    "publish",
                                    doc_id,
                                    c.0,
                                ));
                            }
                        }
                        Outbound::new(d, FrameBuf::from_payload(Arc::clone(&payload)))
                    })
                    .collect()
            }
            Message::Heartbeat => {
                // Liveness probes are consumed by the transport layer;
                // one reaching the broker is normally a no-op. From a
                // still-sync-pending neighbour, though, it doubles as a
                // retry tick: the single SyncRequest sent on (re)connect
                // can be lost, and a warming broker would otherwise
                // defer payload forever. Re-asking is idempotent — the
                // peer just answers with a fresh snapshot.
                match from.as_broker() {
                    Some(nb) if self.sync_pending.contains(&nb) => {
                        vec![Outbound::from((from, Message::SyncRequest))]
                    }
                    _ => Vec::new(),
                }
            }
            Message::SyncRequest => match from.as_broker() {
                Some(nb) => vec![Outbound::from((from, self.export_routing_for(nb)))],
                None => Vec::new(),
            },
            Message::SyncState { advs, subs } => {
                // Replay each entry through the normal handlers so the
                // snapshot re-propagates exactly like live traffic
                // would. Installation is idempotent: the SRT replaces
                // entries by AdvId and the PRT dedups (id, xpe, hop).
                // Advertisements first — re-forwarded subscriptions
                // route along them.
                let mut out = Vec::new();
                for (id, adv) in advs {
                    out.extend(self.handle_core(from, Message::Advertise { id, adv }));
                }
                for (id, xpe) in subs {
                    out.extend(self.handle_core(from, Message::Subscribe { id, xpe }));
                }
                // The recursive calls counted their own sends; the
                // top-level `handle` wraps the combined output once.
                return out;
            }
            Message::Ack { .. } | Message::Sequenced { .. } => {
                // Reliability frames are consumed by `handle` before
                // the routing layer; one reaching here is a no-op.
                Vec::new()
            }
        };
        self.stats.sent += out.len() as u64;
        out
    }

    /// Exports the routing state a (re)connecting `neighbor` needs from
    /// this broker: every SRT advertisement this broker would have
    /// flooded over the link (last hop ≠ the neighbour) and every
    /// subscription the neighbour needs to route publications back
    /// through this broker. The receiver installs it via
    /// [`Message::SyncState`] handling.
    ///
    /// The subscription export is recomputed from the routing tables,
    /// not read from forwarding history: a broker that itself restarted
    /// has no `sent_to` memory, yet its snapshot must still carry the
    /// subscriptions it holds, or a twice-faulted overlay acks frames
    /// it cannot route. When this broker has advertisements learned via
    /// the neighbour, the export is scoped exactly like live
    /// forwarding (only overlapping subscriptions); on a cold link —
    /// no advertisements from that side yet — every non-echo
    /// subscription is exported. The superset is safe: installation is
    /// idempotent and an extra PRT entry only routes matching
    /// publications toward a subscriber that genuinely sits behind this
    /// broker.
    pub fn export_routing_for(&self, neighbor: BrokerId) -> Message {
        let hop = Dest::Broker(neighbor);
        let mut advs: Vec<_> = self
            .srt
            .iter()
            .filter(|(_, _, h)| **h != hop)
            .map(|(id, adv, _)| (id, adv.clone()))
            .collect();
        advs.sort_by_key(|(id, _)| id.0);
        let scope: Vec<&xdn_core::adv::Advertisement> = self
            .srt
            .iter()
            .filter(|(_, _, h)| **h == hop)
            .map(|(_, adv, _)| adv)
            .collect();
        let mut subs: Vec<_> = self
            .prt
            .forwarded_subs()
            .into_iter()
            .filter(|(_, _, hops)| hops.iter().all(|h| *h != hop))
            .filter(|(_, xpe, _)| {
                !self.config.advertisements
                    || scope.is_empty()
                    || scope
                        .iter()
                        .any(|adv| xdn_core::advmatch::adv_overlaps_sub(adv, xpe))
            })
            .map(|(id, xpe, _)| (id, xpe))
            .collect();
        subs.sort_by_key(|(id, _)| id.0);
        Message::SyncState { advs, subs }
    }

    /// A canonical textual digest of the routing tables (sorted SRT
    /// entries plus sorted top-level PRT subscriptions with their
    /// origin hops). Two brokers with equal signatures route
    /// identically; fault-tolerance tests compare a recovered broker
    /// against a never-failed run with this.
    pub fn routing_signature(&self) -> String {
        let mut lines: Vec<String> = self
            .srt
            .iter()
            .map(|(id, adv, hop)| format!("adv {} {} via {}", id.0, adv, hop))
            .collect();
        for (id, xpe, hops) in self.prt.forwarded_subs() {
            let mut from: Vec<String> = hops.iter().map(std::string::ToString::to_string).collect();
            from.sort();
            from.dedup();
            lines.push(format!("sub {} {} from {}", id.0, xpe, from.join(",")));
        }
        lines.sort();
        lines.join("\n")
    }

    fn handle_subscribe(&mut self, from: Dest, id: SubId, xpe: Xpe) -> Vec<(Dest, Message)> {
        let sw = Stopwatch::start();
        let outcome = self.prt.insert(id, xpe.clone(), from);
        if !outcome.forward {
            if let Some(tracer) = &self.tracer {
                tracer.record(&TraceEvent::point(
                    "sub.covered",
                    self.id.0,
                    "subscribe",
                    id.0,
                    0,
                ));
            }
        }
        let mut out = Vec::new();
        if outcome.forward {
            // Covered subscriptions skip advertisement matching
            // entirely — the Figure 8 effect.
            let targets = self.sub_targets(&xpe, Some(from));
            for rid in &outcome.retract {
                // The covered subscription's targets are a subset of
                // the new subscription's (covering implies overlap
                // containment over the same SRT), so retracting along
                // the new targets reaches every broker that stores it.
                for t in &targets {
                    out.push((*t, Message::Unsubscribe { id: *rid }));
                }
                self.sent_to.remove(rid);
            }
            for t in &targets {
                out.push((
                    *t,
                    Message::Subscribe {
                        id,
                        xpe: xpe.clone(),
                    },
                ));
            }
            self.sent_to
                .entry(id)
                .or_default()
                .extend(targets.iter().copied());
        } else {
            // Covering suppression is only valid toward hops the
            // coverer was itself sent to; it was never sent toward its
            // own origins, so those directions are still owed.
            let owed: Vec<Dest> = outcome
                .covered_root_hops
                .iter()
                .filter(|h| !h.is_client() && **h != from)
                .copied()
                .collect();
            if !owed.is_empty() {
                let targets = self.sub_targets(&xpe, Some(from));
                for t in owed {
                    if targets.contains(&t) {
                        out.push((
                            t,
                            Message::Subscribe {
                                id,
                                xpe: xpe.clone(),
                            },
                        ));
                        self.sent_to.entry(id).or_default().insert(t);
                    }
                }
            }
        }
        self.stats.sub_processing.record(sw.elapsed());
        if let Some(tracer) = &self.tracer {
            tracer.record(&TraceEvent::span(
                "sub.process",
                self.id.0,
                "subscribe",
                id.0,
                out.len() as u64,
                sw.elapsed_ns(),
            ));
        }
        out
    }

    fn handle_unsubscribe(&mut self, from: Dest, id: SubId) -> Vec<(Dest, Message)> {
        let mut out = Vec::new();
        if self.config.covering {
            let xpe = self.prt.xpe_of(id).cloned();
            let outcome = self.prt.remove(id);
            // Re-forward newly uncovered subscriptions first so no
            // window without routing state opens upstream.
            let promotions: Vec<(SubId, Xpe)> = outcome
                .promote
                .iter()
                .filter_map(|pid| self.prt.xpe_of(*pid).map(|x| (*pid, x.clone())))
                .collect();
            for (pid, pxpe) in promotions {
                let targets = self.sub_targets(&pxpe, Some(from));
                for t in &targets {
                    out.push((
                        *t,
                        Message::Subscribe {
                            id: pid,
                            xpe: pxpe.clone(),
                        },
                    ));
                }
                self.sent_to.entry(pid).or_default().extend(targets);
            }
            if outcome.forward {
                if let Some(xpe) = xpe {
                    for t in self.sub_targets(&xpe, Some(from)) {
                        out.push((t, Message::Unsubscribe { id }));
                    }
                }
            }
            self.sent_to.remove(&id);
        } else {
            let outcome = self.prt.remove(id);
            if outcome.forward {
                // Without covering the unsubscription is flooded like
                // the subscription was.
                for t in self.flood_targets(Some(from)) {
                    out.push((t, Message::Unsubscribe { id }));
                }
            }
        }
        out
    }

    /// Where to forward a subscription: the last hops of overlapping
    /// advertisements (advertisement-based routing) or every neighbour
    /// (flooding). Client hops never receive subscriptions.
    fn sub_targets(&self, xpe: &Xpe, exclude: Option<Dest>) -> Vec<Dest> {
        if self.config.advertisements {
            self.srt
                .match_sub(xpe)
                .into_iter()
                .filter(|d| !d.is_client())
                .filter(|d| Some(*d) != exclude)
                .collect()
        } else {
            self.flood_targets(exclude)
        }
    }

    fn flood_targets(&self, exclude: Option<Dest>) -> Vec<Dest> {
        self.neighbors
            .iter()
            .map(|&n| Dest::Broker(n))
            .filter(|d| Some(*d) != exclude)
            .collect()
    }

    fn broadcast_except(&self, from: Dest, msg: Message) -> Vec<Outbound> {
        // One frame, cloned per neighbour: the flood shares a payload
        // `Arc` (and, on the wire, one encoded body).
        let frame = FrameBuf::from_message(msg);
        self.flood_targets(Some(from))
            .into_iter()
            .map(|d| Outbound::new(d, frame.clone()))
            .collect()
    }

    /// Runs the merging pass (§4.3) if the strategy enables it, and
    /// returns the control traffic as [`Outbound`] frames: merger
    /// subscriptions plus retractions of absorbed subscriptions.
    ///
    /// Requires [`Broker::set_universe`]; without a universe only
    /// structural perfect mergers could be scored, so the pass is
    /// skipped entirely.
    pub fn apply_merging_frames(&mut self) -> Vec<Outbound> {
        let Some(mode) = self.config.merging else {
            return Vec::new();
        };
        let Some(universe) = self.universe.clone() else {
            return Vec::new();
        };
        let cfg = MergeConfig {
            max_degree: mode.max_degree(),
            ..MergeConfig::default()
        };
        let broker_bits = (self.id.0 as u64) << 32;
        let seq = &mut self.merger_seq;
        // Non-covering tables have nothing to merge; their trait impl
        // returns no applications.
        let apps = self.prt.apply_merging(&universe, &cfg, &mut || {
            *seq += 1;
            SubId((1 << 63) | broker_bits | *seq)
        });
        let mut out = Vec::new();
        for app in apps {
            let targets = self.sub_targets(&app.xpe, None);
            for t in &targets {
                out.push(Outbound::from((
                    *t,
                    Message::Subscribe {
                        id: app.merger_id,
                        xpe: app.xpe.clone(),
                    },
                )));
            }
            self.sent_to
                .entry(app.merger_id)
                .or_default()
                .extend(targets.iter().copied());
            for rid in app.retract {
                for t in &targets {
                    out.push(Outbound::from((*t, Message::Unsubscribe { id: rid })));
                }
                self.sent_to.remove(&rid);
            }
        }
        self.stats.sent += out.len() as u64;
        self.wrap_outputs(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClientId, MessageKind, Publication};
    use xdn_core::adv::{AdvPath, Advertisement};
    use xdn_core::rtable::AdvId;
    use xdn_xml::{DocId, PathId};

    /// Message-typed views of the frame data plane, so assertions can
    /// pattern-match `(Dest, Message)` pairs instead of unpacking
    /// [`Outbound`] frames at every call site. Test-only: transports
    /// use the frame API directly.
    pub(crate) trait MessageView {
        fn handle(&mut self, from: Dest, msg: Message) -> Vec<(Dest, Message)>;
        fn handle_batch(&mut self, batch: Vec<(Dest, Message)>) -> Vec<(Dest, Message)>;
        fn apply_merging(&mut self) -> Vec<(Dest, Message)>;
    }

    impl MessageView for Broker {
        fn handle(&mut self, from: Dest, msg: Message) -> Vec<(Dest, Message)> {
            self.handle_frames(from, msg)
                .into_iter()
                .map(Into::into)
                .collect()
        }

        fn handle_batch(&mut self, batch: Vec<(Dest, Message)>) -> Vec<(Dest, Message)> {
            self.handle_batch_frames(batch)
                .into_iter()
                .map(Into::into)
                .collect()
        }

        fn apply_merging(&mut self) -> Vec<(Dest, Message)> {
            self.apply_merging_frames()
                .into_iter()
                .map(Into::into)
                .collect()
        }
    }

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    fn adv(names: &[&str]) -> Advertisement {
        Advertisement::non_recursive(AdvPath::from_names(names))
    }

    fn publication(elements: &[&str]) -> Publication {
        Publication {
            doc_id: DocId(1),
            path_id: PathId(0),
            elements: elements
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            attributes: Vec::new(),
            doc_bytes: 1000,
        }
    }

    fn client(n: u64) -> Dest {
        Dest::Client(ClientId(n))
    }

    fn broker_hop(n: u32) -> Dest {
        Dest::Broker(BrokerId(n))
    }

    #[test]
    fn advertisement_flooded_except_origin() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(2));
        let out = b.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, broker_hop(2));
        assert_eq!(b.srt_size(), 1);
    }

    #[test]
    fn subscription_routed_toward_advertiser() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        for n in 1..=3 {
            b.add_neighbor(BrokerId(n));
        }
        b.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        b.handle(
            broker_hop(2),
            Message::advertise(AdvId(2), adv(&["x", "y"])),
        );
        let out = b.handle(client(9), Message::subscribe(SubId(1), xpe("/a/*")));
        assert_eq!(out.len(), 1, "only toward the overlapping advertisement");
        assert_eq!(out[0].0, broker_hop(1));
    }

    #[test]
    fn subscription_flooded_without_advertisements() {
        let mut b = Broker::new(BrokerId(0), RoutingConfig::builder().build());
        for n in 1..=3 {
            b.add_neighbor(BrokerId(n));
        }
        let out = b.handle(broker_hop(3), Message::subscribe(SubId(1), xpe("/a")));
        assert_eq!(out.len(), 2, "all neighbours except the origin");
        assert!(out.iter().all(|(d, _)| *d != broker_hop(3)));
    }

    #[test]
    fn covered_subscription_not_forwarded() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        let first = b.handle(client(1), Message::subscribe(SubId(1), xpe("/a/*")));
        assert_eq!(first.len(), 1);
        let second = b.handle(client(2), Message::subscribe(SubId(2), xpe("/a/b")));
        assert!(second.is_empty(), "covered by /a/*");
    }

    #[test]
    fn takeover_retracts_covered_subscriptions() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        b.handle(client(1), Message::subscribe(SubId(1), xpe("/a/b")));
        let out = b.handle(client(2), Message::subscribe(SubId(2), xpe("/a/*")));
        let unsubs: Vec<_> = out
            .iter()
            .filter(|(_, m)| matches!(m.payload(), Message::Unsubscribe { .. }))
            .collect();
        let subs: Vec<_> = out
            .iter()
            .filter(|(_, m)| matches!(m.payload(), Message::Subscribe { .. }))
            .collect();
        assert_eq!(unsubs.len(), 1);
        assert_eq!(subs.len(), 1);
    }

    #[test]
    fn publication_routed_to_matching_hops_only() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(2));
        b.handle(broker_hop(2), Message::subscribe(SubId(1), xpe("/a/b")));
        b.handle(client(7), Message::subscribe(SubId(2), xpe("//c")));
        let out = b.handle(broker_hop(1), Message::Publish(publication(&["a", "b"])));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, broker_hop(2));
        let out = b.handle(broker_hop(1), Message::Publish(publication(&["a", "c"])));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, client(7));
        assert_eq!(b.stats().deliveries, 1);
    }

    #[test]
    fn publication_never_returns_to_sender() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.handle(broker_hop(1), Message::subscribe(SubId(1), xpe("/a")));
        let out = b.handle(broker_hop(1), Message::Publish(publication(&["a"])));
        assert!(out.is_empty());
    }

    #[test]
    fn unsubscribe_promotes_covered() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        b.handle(client(1), Message::subscribe(SubId(1), xpe("/a/*")));
        b.handle(client(2), Message::subscribe(SubId(2), xpe("/a/b")));
        let out = b.handle(client(1), Message::Unsubscribe { id: SubId(1) });
        let kinds: Vec<MessageKind> = out.iter().map(|(_, m)| m.kind()).collect();
        assert!(
            kinds.contains(&MessageKind::Subscribe),
            "promoted /a/b re-forwarded: {kinds:?}"
        );
        assert!(kinds.contains(&MessageKind::Unsubscribe));
    }

    #[test]
    fn flat_unsubscribe_floods() {
        let mut b = Broker::new(BrokerId(0), RoutingConfig::builder().build());
        b.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(2));
        b.handle(client(1), Message::subscribe(SubId(1), xpe("/a")));
        let out = b.handle(client(1), Message::Unsubscribe { id: SubId(1) });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn merging_emits_merger_and_retractions() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .merging(Merging::Perfect)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b", "*"])),
        );
        // Universe: /a/b/{b,c} — subscribing to both makes /a/b/* perfect.
        let universe = Arc::new(vec![
            vec!["a".to_string(), "b".into(), "b".into()],
            vec!["a".to_string(), "b".into(), "c".into()],
        ]);
        b.set_universe(universe);
        b.handle(client(1), Message::subscribe(SubId(1), xpe("/a/b/b")));
        b.handle(client(2), Message::subscribe(SubId(2), xpe("/a/b/c")));
        assert_eq!(b.prt_effective_size(), 2);
        let out = b.apply_merging();
        assert_eq!(b.prt_effective_size(), 1);
        let subs: Vec<_> = out
            .iter()
            .filter_map(|(_, m)| match m.payload() {
                Message::Subscribe { xpe, .. } => Some(xpe.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(subs, vec!["/a/b/*".to_string()]);
        let unsubs = out
            .iter()
            .filter(|(_, m)| matches!(m.payload(), Message::Unsubscribe { .. }))
            .count();
        assert_eq!(unsubs, 2);
    }

    #[test]
    fn merging_skipped_without_universe() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .merging(Merging::Perfect)
                .build(),
        );
        b.handle(client(1), Message::subscribe(SubId(1), xpe("/a/b")));
        assert!(b.apply_merging().is_empty());
    }

    #[test]
    fn merging_disabled_for_plain_covering() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.set_universe(Arc::new(vec![]));
        assert!(b.apply_merging().is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let mut b = Broker::new(BrokerId(0), RoutingConfig::builder().build());
        b.add_neighbor(BrokerId(1));
        b.handle(client(1), Message::subscribe(SubId(1), xpe("/a")));
        b.handle(broker_hop(1), Message::Publish(publication(&["a"])));
        assert_eq!(b.stats().received_of(MessageKind::Subscribe), 1);
        assert_eq!(b.stats().received_of(MessageKind::Publish), 1);
        assert_eq!(b.stats().sub_processing.count(), 1);
        assert_eq!(b.stats().pub_routing.count(), 1);
        assert!(b.stats().received_total() >= 2);
        b.reset_stats();
        assert_eq!(b.stats().received_total(), 0);
    }

    #[test]
    fn sync_request_answers_with_link_state() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(2));
        // One advertisement from B2 (exported to B1), one from B1 (not
        // exported back to B1).
        b.handle(
            broker_hop(2),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        b.handle(
            broker_hop(1),
            Message::advertise(AdvId(2), adv(&["x", "y"])),
        );
        // A local subscription forwarded toward B2's advertisement.
        b.handle(client(9), Message::subscribe(SubId(7), xpe("/a/*")));
        let out = b.handle(broker_hop(1), Message::SyncRequest);
        // The answer carries the routing snapshot plus a replay of the
        // unacked frames B1 may have lost (the flooded advertisement).
        assert!(out.iter().all(|(d, _)| *d == broker_hop(1)));
        let syncs: Vec<_> = out
            .iter()
            .filter_map(|(_, m)| match m {
                Message::SyncState { advs, subs } => Some((advs, subs)),
                _ => None,
            })
            .collect();
        assert_eq!(syncs.len(), 1);
        let (advs, subs) = &syncs[0];
        assert_eq!(
            advs.len(),
            1,
            "only the advertisement B1 does not already own"
        );
        assert_eq!(advs[0].0, AdvId(1));
        assert!(subs.is_empty(), "the subscription went toward B2, not B1");
        let replays = out
            .iter()
            .filter(|(_, m)| matches!(m, Message::Sequenced { .. }))
            .count();
        assert_eq!(replays, 1, "the unacked flooded advertisement replays");
        assert_eq!(b.stats().retransmits, 1);
        let out = b.handle(broker_hop(2), Message::SyncRequest);
        let Some(Message::SyncState { advs, subs }) = out
            .iter()
            .map(|(_, m)| m)
            .find(|m| matches!(m, Message::SyncState { .. }))
        else {
            panic!("expected a SyncState answer")
        };
        assert_eq!(advs[0].0, AdvId(2));
        assert_eq!(subs, &[(SubId(7), xpe("/a/*"))]);
    }

    #[test]
    fn sync_state_install_is_idempotent() {
        let mut healthy = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        healthy.add_neighbor(BrokerId(1));
        healthy.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        healthy.handle(broker_hop(1), Message::subscribe(SubId(2), xpe("/a/b")));

        // A restarted replacement learns the same state from a sync
        // snapshot, and installing it twice changes nothing.
        let mut restarted = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        restarted.add_neighbor(BrokerId(1));
        let snapshot = Message::SyncState {
            advs: vec![(AdvId(1), adv(&["a", "b"]))],
            subs: vec![(SubId(2), xpe("/a/b"))],
        };
        restarted.handle(broker_hop(1), snapshot.clone());
        assert_eq!(restarted.routing_signature(), healthy.routing_signature());
        restarted.handle(broker_hop(1), snapshot);
        assert_eq!(restarted.routing_signature(), healthy.routing_signature());
        assert_eq!(restarted.srt_size(), 1);
        assert_eq!(restarted.prt_size(), 1);
    }

    #[test]
    fn warming_broker_defers_sync_answer_until_other_snapshots_arrive() {
        let mut b = Broker::new(
            BrokerId(1),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(0));
        b.add_neighbor(BrokerId(2));
        b.expect_sync_from(BrokerId(0));
        b.expect_sync_from(BrokerId(2));
        // A request from B2 while B0's snapshot is still missing must
        // not be answered with a cold, possibly-empty snapshot.
        let out = b.handle(broker_hop(2), Message::SyncRequest);
        assert!(out.is_empty(), "cold snapshot handed out: {out:?}");
        // B0's snapshot arrives: the broker now knows everything B2's
        // side cannot tell it, so the held answer is released.
        let out = b.handle(
            broker_hop(0),
            Message::SyncState {
                advs: vec![(AdvId(1), adv(&["a", "b"]))],
                subs: Vec::new(),
            },
        );
        let answers = out
            .iter()
            .filter(|(d, m)| *d == broker_hop(2) && matches!(m, Message::SyncState { .. }))
            .count();
        assert_eq!(answers, 1, "deferred answer not released: {out:?}");
        assert!(b.is_warming(), "B2's own snapshot is still awaited");
    }

    #[test]
    fn cold_restarted_broker_still_exports_its_subscriptions() {
        // A restarted broker has no forwarding history, so the export
        // must be recomputed from the tables: subscriptions re-learned
        // from one side are handed to the other side's sync (full
        // non-echo set — no advertisements to scope by yet), and never
        // echoed back to the side they came from.
        let mut b = Broker::new(
            BrokerId(2),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(3));
        b.handle(
            broker_hop(3),
            Message::SyncState {
                advs: Vec::new(),
                subs: vec![(SubId(5), xpe("/a/*"))],
            },
        );
        let Message::SyncState { subs, .. } = b.export_routing_for(BrokerId(1)) else {
            panic!("export must be a SyncState")
        };
        assert_eq!(subs, vec![(SubId(5), xpe("/a/*"))]);
        let Message::SyncState { subs, .. } = b.export_routing_for(BrokerId(3)) else {
            panic!("export must be a SyncState")
        };
        assert!(subs.is_empty(), "subscription echoed to its source");
    }

    #[test]
    fn heartbeat_is_inert() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        assert!(b.handle(broker_hop(1), Message::Heartbeat).is_empty());
        assert_eq!(b.stats().received_of(MessageKind::Heartbeat), 1);
        assert_eq!(b.routing_signature(), "");
    }

    #[test]
    fn unadvertise_removes_and_floods() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(2));
        b.handle(broker_hop(1), Message::advertise(AdvId(1), adv(&["a"])));
        let out = b.handle(broker_hop(1), Message::Unadvertise { id: AdvId(1) });
        assert_eq!(b.srt_size(), 0);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn broker_traffic_is_sequenced_and_acked() {
        let cfg = RoutingConfig::builder().build();
        let mut a = Broker::new(BrokerId(0), cfg);
        let mut b = Broker::new(BrokerId(1), cfg);
        a.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(0));

        // A client subscription floods from A toward B, wrapped.
        let out = a.handle(client(1), Message::subscribe(SubId(1), xpe("/a")));
        assert_eq!(out.len(), 1);
        let (dest, frame) = out.into_iter().next().unwrap();
        assert_eq!(dest, broker_hop(1));
        assert!(matches!(
            frame,
            Message::Sequenced {
                epoch: 1,
                seq: 1,
                ..
            }
        ));
        assert_eq!(a.unacked_total(), 1);

        // B processes it exactly once and acknowledges.
        let replies = b.handle(broker_hop(0), frame.clone());
        assert_eq!(b.prt_size(), 1);
        let acks: Vec<_> = replies
            .iter()
            .filter(|(_, m)| matches!(m, Message::Ack { epoch: 1, seq: 1 }))
            .collect();
        assert_eq!(acks.len(), 1);

        // The ack prunes A's retransmit buffer and records the lag.
        for (d, m) in replies {
            if d == broker_hop(0) {
                a.handle(broker_hop(1), m);
            }
        }
        assert_eq!(a.unacked_total(), 0);
        assert_eq!(a.stats().ack_lag.count(), 1);
    }

    #[test]
    fn replayed_frames_are_idempotent() {
        let cfg = RoutingConfig::builder().build();
        let mut a = Broker::new(BrokerId(0), cfg);
        let mut b = Broker::new(BrokerId(1), cfg);
        a.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(0));

        let out = a.handle(client(1), Message::subscribe(SubId(1), xpe("/a")));
        let frame = out.into_iter().next().unwrap().1;
        b.handle(broker_hop(0), frame.clone());
        let sig = b.routing_signature();

        // The same frame again (a retransmission): no routing change,
        // no re-forwarding, just a fresh cumulative ack.
        let replies = b.handle(broker_hop(0), frame);
        assert_eq!(b.routing_signature(), sig);
        assert_eq!(b.stats().dup_frames, 1);
        assert_eq!(replies.len(), 1);
        assert!(matches!(replies[0].1, Message::Ack { epoch: 1, seq: 1 }));
    }

    #[test]
    fn stale_epoch_frames_counted() {
        let cfg = RoutingConfig::builder().build();
        let mut b = Broker::new(BrokerId(1), cfg);
        b.add_neighbor(BrokerId(0));
        // Epoch 5 first, then a leftover epoch-3 frame.
        b.handle(
            broker_hop(0),
            Message::Sequenced {
                epoch: 5,
                seq: 1,
                low: 1,
                inner: Arc::new(Message::Heartbeat),
            },
        );
        let out = b.handle(
            broker_hop(0),
            Message::Sequenced {
                epoch: 3,
                seq: 7,
                low: 1,
                inner: Arc::new(Message::Heartbeat),
            },
        );
        assert!(out.is_empty(), "stale frames are dropped silently");
        assert_eq!(b.stats().stale_frames, 1);
    }

    #[test]
    fn reliability_state_survives_detach_and_restore() {
        let cfg = RoutingConfig::builder().build();
        let mut a = Broker::new(BrokerId(0), cfg);
        a.add_neighbor(BrokerId(1));
        a.set_epoch(9);
        a.handle(client(1), Message::subscribe(SubId(1), xpe("/a")));
        assert_eq!(a.unacked_total(), 1);

        // Crash: the durable reliability state moves to the successor.
        let state = a.take_reliability_state();
        assert_eq!(a.unacked_total(), 0);
        let mut a2 = Broker::new(BrokerId(0), cfg);
        a2.add_neighbor(BrokerId(1));
        a2.restore_reliability_state(state);
        assert_eq!(a2.epoch(), 9);
        assert_eq!(a2.unacked_total(), 1);

        // A neighbour's sync request replays the inherited frame with
        // its original (epoch, seq).
        let out = a2.handle(broker_hop(1), Message::SyncRequest);
        assert!(out.iter().any(|(_, m)| matches!(
            m,
            Message::Sequenced {
                epoch: 9,
                seq: 1,
                ..
            }
        )));
        assert_eq!(a2.stats().retransmits, 1);
    }
}

#[cfg(test)]
mod srt_compact_tests {
    use super::tests::MessageView;
    use super::*;
    use crate::message::{ClientId, Publication};
    use xdn_core::adv::{AdvPath, Advertisement};
    use xdn_core::rtable::AdvId;
    use xdn_xml::{DocId, PathId};

    #[test]
    fn compaction_preserves_subscription_routing() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        let from = Dest::Broker(BrokerId(1));
        b.handle(
            from,
            Message::advertise(
                AdvId(1),
                Advertisement::non_recursive(AdvPath::from_names(&["a", "*"])),
            ),
        );
        b.handle(
            from,
            Message::advertise(
                AdvId(2),
                Advertisement::non_recursive(AdvPath::from_names(&["a", "b"])),
            ),
        );
        assert_eq!(b.srt_size(), 2);
        assert_eq!(b.compact_srt(), 1);
        assert_eq!(b.srt_size(), 1);

        // The subscription still routes toward the surviving entry.
        let out = b.handle(
            Dest::Client(ClientId(9)),
            Message::subscribe(SubId(1), "/a/b".parse().expect("xpe")),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, from);

        // And publications still flow to the subscriber.
        let out = b.handle(
            from,
            Message::Publish(Publication {
                doc_id: DocId(1),
                path_id: PathId(0),
                elements: vec!["a".into(), "b".into()],
                attributes: Vec::new(),
                doc_bytes: 10,
            }),
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].0.is_client());
    }
}

#[cfg(test)]
mod batch_tests {
    use super::tests::MessageView;
    use super::*;
    use crate::message::{ClientId, MessageKind, Publication};
    use xdn_xml::{DocId, PathId};

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    fn publication(elements: &[&str]) -> Publication {
        Publication {
            doc_id: DocId(1),
            path_id: PathId(0),
            elements: elements
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            attributes: Vec::new(),
            doc_bytes: 1000,
        }
    }

    fn client(n: u64) -> Dest {
        Dest::Client(ClientId(n))
    }

    fn broker_hop(n: u32) -> Dest {
        Dest::Broker(BrokerId(n))
    }

    /// A broker with neighbours and subscriptions installed, identical
    /// on every call — the fixture both sides of the batch-equivalence
    /// tests start from.
    fn batch_fixture(strategy: MatchStrategy) -> Broker {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder().strategy(strategy).build(),
        );
        b.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(2));
        b.handle(broker_hop(2), Message::subscribe(SubId(1), xpe("/a/b")));
        b.handle(client(7), Message::subscribe(SubId(2), xpe("//c")));
        b
    }

    /// Sequenced publication frames as a real neighbour would emit
    /// them: produced by a peer broker whose table routes toward this
    /// one, so epochs, sequence numbers, and low-watermarks are the
    /// reliability layer's own.
    fn sequenced_publications(n: usize) -> Vec<Message> {
        let mut sender = Broker::new(BrokerId(1), RoutingConfig::builder().build());
        sender.add_neighbor(BrokerId(0));
        sender.handle(broker_hop(0), Message::subscribe(SubId(9), xpe("//b")));
        (0..n)
            .map(|i| {
                let mut p = publication(&["a", "b"]);
                p.doc_id = DocId(100 + i as u64);
                let mut out = sender.handle(client(1), Message::Publish(p));
                assert_eq!(out.len(), 1, "publication routes to broker 0");
                out.remove(0).1
            })
            .collect()
    }

    /// The batch every equivalence test replays: a run of bare
    /// publications, a control-plane barrier, fresh sequenced
    /// publications, and a duplicated sequenced frame.
    fn mixed_batch() -> Vec<(Dest, Message)> {
        let seqs = sequenced_publications(2);
        vec![
            (broker_hop(1), Message::Publish(publication(&["a", "b"]))),
            (broker_hop(1), Message::Publish(publication(&["a", "c"]))),
            (client(9), Message::subscribe(SubId(3), xpe("/z"))),
            (broker_hop(1), seqs[0].clone()),
            (broker_hop(1), seqs[1].clone()),
            (broker_hop(1), seqs[0].clone()),
        ]
    }

    fn assert_batch_equivalent(strategy: MatchStrategy) {
        let mut batched = batch_fixture(strategy);
        let batched_out = batched.handle_batch(mixed_batch());

        let mut sequential = batch_fixture(strategy);
        let mut sequential_out = Vec::new();
        for (from, msg) in mixed_batch() {
            sequential_out.extend(sequential.handle(from, msg));
        }

        assert_eq!(
            batched_out, sequential_out,
            "handle_batch must emit exactly the sequential outputs, in order"
        );
        assert!(
            batched_out
                .iter()
                .any(|(_, m)| matches!(m.kind(), MessageKind::Publish)),
            "fixture must actually route publications"
        );
        let (bs, ss) = (batched.stats(), sequential.stats());
        assert_eq!(bs.received, ss.received, "per-kind received counters");
        assert_eq!(bs.sent, ss.sent);
        assert_eq!(bs.deliveries, ss.deliveries);
        assert_eq!(bs.dup_frames, ss.dup_frames);
        assert_eq!(bs.stale_frames, ss.stale_frames);
        assert_eq!(
            bs.pub_routing.count(),
            ss.pub_routing.count(),
            "one routing sample per publication either way"
        );
        assert_eq!(batched.routing_signature(), sequential.routing_signature());
        assert_eq!(batched.unacked_total(), sequential.unacked_total());
    }

    #[test]
    fn handle_batch_matches_sequential_handle() {
        assert_batch_equivalent(MatchStrategy::Indexed);
    }

    #[test]
    fn handle_batch_matches_sequential_handle_when_sharded() {
        assert_batch_equivalent(MatchStrategy::Sharded { shards: 4 });
    }

    #[test]
    fn handle_batch_matches_sequential_handle_with_automaton() {
        assert_batch_equivalent(MatchStrategy::Automaton);
    }

    #[test]
    fn handle_batch_matches_sequential_handle_when_sharded_automaton() {
        assert_batch_equivalent(MatchStrategy::ShardedAutomaton { shards: 4 });
    }

    #[test]
    fn automaton_stats_present_only_on_automaton_strategies() {
        for strategy in [
            MatchStrategy::Automaton,
            MatchStrategy::ShardedAutomaton { shards: 2 },
        ] {
            let b = batch_fixture(strategy);
            let stats = b.automaton_stats().expect("automaton strategy has stats");
            assert_eq!(stats.live_subs, 2, "fixture installed two subscriptions");
            assert!(stats.states > 0);
        }
        for strategy in [
            MatchStrategy::Flat,
            MatchStrategy::Indexed,
            MatchStrategy::Sharded { shards: 2 },
        ] {
            assert!(batch_fixture(strategy).automaton_stats().is_none());
        }
    }

    #[test]
    fn handle_batch_defers_payload_while_warming() {
        let mut batched = batch_fixture(MatchStrategy::Indexed);
        batched.expect_sync_from(BrokerId(1));
        let mut sequential = batch_fixture(MatchStrategy::Indexed);
        sequential.expect_sync_from(BrokerId(1));

        let batch = vec![
            (broker_hop(2), Message::Publish(publication(&["a", "b"]))),
            (broker_hop(2), Message::Publish(publication(&["a", "c"]))),
        ];
        let batched_out = batched.handle_batch(batch.clone());
        let mut sequential_out = Vec::new();
        for (from, msg) in batch {
            sequential_out.extend(sequential.handle(from, msg));
        }
        assert_eq!(batched_out, sequential_out);
        assert!(batched_out.is_empty(), "warming brokers defer payloads");
        assert_eq!(batched.stats().received, sequential.stats().received);
    }
}
