//! The broker: routing state plus the message-handling state machine.

use crate::message::{BrokerId, Dest, Message};
use crate::stats::BrokerStats;
use std::sync::Arc;
use xdn_core::index::IndexedPrt;
use xdn_core::merge::MergeConfig;
use xdn_core::rtable::{FlatPrt, Prt, PublicationRouter, Srt, SubId};
use xdn_obs::{Stopwatch, TraceEvent, Tracer};
use xdn_xpath::Xpe;

/// Which merging variant a broker runs (requires covering).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Merging {
    /// Only mergers with `D_imperfect = 0` are applied.
    Perfect,
    /// Mergers up to `max_degree` are applied (the paper uses `0.1` in
    /// Tables 1–3).
    Imperfect {
        /// The largest imperfect-merging degree accepted.
        max_degree: f64,
    },
}

impl Merging {
    fn max_degree(self) -> f64 {
        match self {
            Merging::Perfect => 0.0,
            Merging::Imperfect { max_degree } => max_degree,
        }
    }
}

/// A broker's routing strategy — the experiment axis of Tables 2/3.
///
/// Build one with [`RoutingConfig::builder`]:
///
/// ```
/// use xdn_broker::broker::{Merging, RoutingConfig};
///
/// let cfg = RoutingConfig::builder()
///     .advertisements(true)
///     .covering(true)
///     .merging(Merging::Imperfect { max_degree: 0.1 })
///     .build();
/// assert!(cfg.advertisements && cfg.covering);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingConfig {
    /// Use advertisement-based subscription routing; without it,
    /// subscriptions are flooded to every neighbour.
    pub advertisements: bool,
    /// Use the covering subscription tree; without it, a flat table.
    pub covering: bool,
    /// Merging mode, if any.
    pub merging: Option<Merging>,
    /// Use the candidate-pruning match index for non-covering tables
    /// (`IndexedPrt` instead of the linear-scan `FlatPrt`). Matching
    /// results are identical; only the publication routing time
    /// changes. Ignored when `covering` is set.
    pub indexing: bool,
}

/// Staged construction of a [`RoutingConfig`]; see
/// [`RoutingConfig::builder`].
///
/// Starts from the paper's baseline (`no-Adv-no-Cov`, no merging) with
/// the match index enabled; each method switches one axis on.
#[derive(Debug, Clone, Copy)]
pub struct RoutingConfigBuilder {
    advertisements: bool,
    covering: bool,
    merging: Option<Merging>,
    indexing: bool,
}

impl Default for RoutingConfigBuilder {
    fn default() -> Self {
        RoutingConfigBuilder {
            advertisements: false,
            covering: false,
            merging: None,
            indexing: true,
        }
    }
}

impl RoutingConfigBuilder {
    /// Enables or disables advertisement-based subscription routing.
    pub fn advertisements(mut self, on: bool) -> Self {
        self.advertisements = on;
        self
    }

    /// Enables or disables the covering subscription tree.
    pub fn covering(mut self, on: bool) -> Self {
        self.covering = on;
        self
    }

    /// Selects a merging mode (implies covering at the broker level;
    /// the builder does not force it, matching the paper's independent
    /// axes).
    pub fn merging(mut self, merging: Merging) -> Self {
        self.merging = Some(merging);
        self
    }

    /// Enables or disables the candidate-pruning match index for
    /// non-covering tables.
    pub fn indexing(mut self, on: bool) -> Self {
        self.indexing = on;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> RoutingConfig {
        RoutingConfig {
            advertisements: self.advertisements,
            covering: self.covering,
            merging: self.merging,
            indexing: self.indexing,
        }
    }
}

impl RoutingConfig {
    /// Starts building a configuration from the `no-Adv-no-Cov`
    /// baseline.
    pub fn builder() -> RoutingConfigBuilder {
        RoutingConfigBuilder::default()
    }

    /// All six strategies in the paper's order, for experiment sweeps.
    pub fn all_strategies() -> [(&'static str, RoutingConfig); 6] {
        let base = Self::builder();
        [
            ("no-Adv-no-Cov", base.build()),
            ("no-Adv-with-Cov", base.covering(true).build()),
            ("with-Adv-no-Cov", base.advertisements(true).build()),
            (
                "with-Adv-with-Cov",
                base.advertisements(true).covering(true).build(),
            ),
            (
                "with-Adv-with-CovPM",
                base.advertisements(true)
                    .covering(true)
                    .merging(Merging::Perfect)
                    .build(),
            ),
            (
                "with-Adv-with-CovIPM",
                base.advertisements(true)
                    .covering(true)
                    .merging(Merging::Imperfect { max_degree: 0.1 })
                    .build(),
            ),
        ]
    }

    /// Looks a strategy up by its Tables 2/3 name.
    pub fn by_name(name: &str) -> Option<RoutingConfig> {
        Self::all_strategies()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, cfg)| cfg)
    }
}

/// One content-based XML router.
///
/// A broker owns no I/O: [`Broker::handle`] consumes one incoming
/// message and returns the messages to put on the wire, which makes the
/// same implementation drivable by the discrete-event simulator, the
/// threaded live transport, unit tests, and benchmarks.
#[derive(Debug)]
pub struct Broker {
    id: BrokerId,
    neighbors: Vec<BrokerId>,
    config: RoutingConfig,
    srt: Srt<Dest>,
    /// The publication routing table behind the strategy-agnostic
    /// [`PublicationRouter`] interface: covering tree, linear scan, or
    /// candidate-pruning index, per [`RoutingConfig`].
    prt: Box<dyn PublicationRouter<Dest> + Send>,
    /// DTD path universe for computing `D_imperfect` (merging).
    universe: Option<Arc<Vec<Vec<String>>>>,
    merger_seq: u64,
    /// Hops each forwarded subscription was sent to; deduplicates
    /// re-forwarding when advertisements arrive after subscriptions.
    sent_to: std::collections::HashMap<SubId, std::collections::BTreeSet<Dest>>,
    stats: BrokerStats,
    /// Structured trace sink; `None` (the default) costs one branch on
    /// the hot paths and constructs no events.
    tracer: Option<TracerHandle>,
}

/// An installed [`Tracer`], opaque to `Debug` (trace sinks carry
/// writers and buffers that have no useful debug form).
struct TracerHandle(Arc<dyn Tracer>);

impl std::fmt::Debug for TracerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TracerHandle(..)")
    }
}

impl std::ops::Deref for TracerHandle {
    type Target = dyn Tracer;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl Broker {
    /// Creates a broker with no neighbours.
    pub fn new(id: BrokerId, config: RoutingConfig) -> Self {
        let prt: Box<dyn PublicationRouter<Dest> + Send> = if config.covering {
            Box::new(Prt::new())
        } else if config.indexing {
            Box::new(IndexedPrt::new())
        } else {
            Box::new(FlatPrt::new())
        };
        Broker {
            id,
            neighbors: Vec::new(),
            config,
            srt: Srt::new(),
            prt,
            universe: None,
            merger_seq: 0,
            sent_to: std::collections::HashMap::new(),
            stats: BrokerStats::default(),
            tracer: None,
        }
    }

    /// This broker's id.
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// The configured routing strategy.
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// Registers a neighbouring broker.
    pub fn add_neighbor(&mut self, n: BrokerId) {
        if !self.neighbors.contains(&n) {
            self.neighbors.push(n);
        }
    }

    /// The neighbouring brokers.
    pub fn neighbors(&self) -> &[BrokerId] {
        &self.neighbors
    }

    /// Supplies the producer-DTD path universe used to score imperfect
    /// mergers (§4.3 assumes each broker knows the producer's DTD).
    pub fn set_universe(&mut self, universe: Arc<Vec<Vec<String>>>) {
        self.universe = Some(universe);
    }

    /// Performance counters.
    pub fn stats(&self) -> &BrokerStats {
        &self.stats
    }

    /// Installs a structured trace sink (see [`xdn_obs::trace`] for the
    /// event vocabulary). Tracing is off by default.
    pub fn set_tracer(&mut self, tracer: Arc<dyn Tracer>) {
        self.tracer = Some(TracerHandle(tracer));
    }

    /// Removes the trace sink, restoring the zero-cost disabled path.
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    /// Resets the performance counters.
    pub fn reset_stats(&mut self) {
        self.stats = BrokerStats::default();
    }

    /// Number of advertisements in the SRT.
    pub fn srt_size(&self) -> usize {
        self.srt.len()
    }

    /// Compacts the SRT by dropping advertisements covered by another
    /// one from the same hop (§4.2's advertisement-covering remark).
    /// Returns the number of entries removed. Routing is unchanged.
    pub fn compact_srt(&mut self) -> usize {
        self.srt.compact()
    }

    /// Number of subscriptions stored in the PRT.
    pub fn prt_size(&self) -> usize {
        self.prt.len()
    }

    /// Effective routing-table size: top-level subscriptions after
    /// covering (equals [`Self::prt_size`] for flat tables).
    pub fn prt_effective_size(&self) -> usize {
        self.prt.effective_size()
    }

    /// Processes one message and returns the messages to transmit, as
    /// `(destination, message)` pairs. Never returns a message to
    /// `from`.
    pub fn handle(&mut self, from: Dest, msg: Message) -> Vec<(Dest, Message)> {
        self.stats.record_received(msg.kind());
        let out = match msg {
            Message::Advertise { id, adv } => {
                self.srt.insert(id, adv.clone(), from);
                if let Some(tracer) = &self.tracer {
                    tracer.record(&TraceEvent::point(
                        "adv.process",
                        self.id.0,
                        "advertise",
                        id.0,
                        0,
                    ));
                }
                // Advertisements are flooded through the overlay.
                let mut out = self.broadcast_except(
                    from,
                    Message::Advertise {
                        id,
                        adv: adv.clone(),
                    },
                );
                // Subscriptions that arrived before this advertisement
                // were not forwarded toward it; re-evaluate the stored
                // (top-level) subscriptions so the reverse path exists.
                if self.config.advertisements && !from.is_client() {
                    for (sid, xpe, hops) in self.prt.forwarded_subs() {
                        let only_from_there = hops.iter().all(|h| *h == from);
                        let already_sent = self
                            .sent_to
                            .get(&sid)
                            .is_some_and(|dests| dests.contains(&from));
                        if !only_from_there
                            && !already_sent
                            && xdn_core::advmatch::adv_overlaps_sub(&adv, &xpe)
                        {
                            out.push((from, Message::Subscribe { id: sid, xpe }));
                            self.sent_to.entry(sid).or_default().insert(from);
                        }
                    }
                }
                out
            }
            Message::Unadvertise { id } => {
                self.srt.remove(id);
                self.broadcast_except(from, Message::Unadvertise { id })
            }
            Message::Subscribe { id, xpe } => self.handle_subscribe(from, id, xpe),
            Message::Unsubscribe { id } => self.handle_unsubscribe(from, id),
            Message::Publish(p) => {
                let sw = Stopwatch::start();
                let dests = self.prt.matching_hops(&p.elements, &p.attributes);
                self.stats.pub_routing.record(sw.elapsed());
                if let Some(tracer) = &self.tracer {
                    tracer.record(&TraceEvent::span(
                        "pub.route",
                        self.id.0,
                        "publish",
                        p.doc_id.0,
                        dests.len() as u64,
                        sw.elapsed_ns(),
                    ));
                }
                dests
                    .into_iter()
                    .filter(|d| *d != from)
                    .map(|d| {
                        if let Dest::Client(c) = d {
                            self.stats.deliveries += 1;
                            if let Some(tracer) = &self.tracer {
                                tracer.record(&TraceEvent::point(
                                    "pub.deliver",
                                    self.id.0,
                                    "publish",
                                    p.doc_id.0,
                                    c.0,
                                ));
                            }
                        }
                        (d, Message::Publish(p.clone()))
                    })
                    .collect()
            }
            Message::Heartbeat => {
                // Liveness probes are consumed by the transport layer;
                // one reaching the broker is a no-op.
                Vec::new()
            }
            Message::SyncRequest => match from.as_broker() {
                Some(nb) => vec![(from, self.export_routing_for(nb))],
                None => Vec::new(),
            },
            Message::SyncState { advs, subs } => {
                // Replay each entry through the normal handlers so the
                // snapshot re-propagates exactly like live traffic
                // would. Installation is idempotent: the SRT replaces
                // entries by AdvId and the PRT dedups (id, xpe, hop).
                // Advertisements first — re-forwarded subscriptions
                // route along them.
                let mut out = Vec::new();
                for (id, adv) in advs {
                    out.extend(self.handle(from, Message::Advertise { id, adv }));
                }
                for (id, xpe) in subs {
                    out.extend(self.handle(from, Message::Subscribe { id, xpe }));
                }
                // The recursive calls counted their own sends.
                return out;
            }
        };
        self.stats.sent += out.len() as u64;
        out
    }

    /// Exports the routing state a (re)connecting `neighbor` needs from
    /// this broker: every SRT advertisement this broker would have
    /// flooded over the link (last hop ≠ the neighbour) and every
    /// subscription this broker had forwarded over the link. The
    /// receiver installs it via [`Message::SyncState`] handling.
    pub fn export_routing_for(&self, neighbor: BrokerId) -> Message {
        let hop = Dest::Broker(neighbor);
        let mut advs: Vec<_> = self
            .srt
            .iter()
            .filter(|(_, _, h)| **h != hop)
            .map(|(id, adv, _)| (id, adv.clone()))
            .collect();
        advs.sort_by_key(|(id, _)| id.0);
        let xpe_of: std::collections::HashMap<SubId, Xpe> = self
            .prt
            .forwarded_subs()
            .into_iter()
            .map(|(id, xpe, _)| (id, xpe))
            .collect();
        let mut subs: Vec<_> = self
            .sent_to
            .iter()
            .filter(|(_, dests)| dests.contains(&hop))
            .filter_map(|(id, _)| xpe_of.get(id).map(|x| (*id, x.clone())))
            .collect();
        subs.sort_by_key(|(id, _)| id.0);
        Message::SyncState { advs, subs }
    }

    /// A canonical textual digest of the routing tables (sorted SRT
    /// entries plus sorted top-level PRT subscriptions with their
    /// origin hops). Two brokers with equal signatures route
    /// identically; fault-tolerance tests compare a recovered broker
    /// against a never-failed run with this.
    pub fn routing_signature(&self) -> String {
        let mut lines: Vec<String> = self
            .srt
            .iter()
            .map(|(id, adv, hop)| format!("adv {} {} via {}", id.0, adv, hop))
            .collect();
        for (id, xpe, hops) in self.prt.forwarded_subs() {
            let mut from: Vec<String> = hops.iter().map(std::string::ToString::to_string).collect();
            from.sort();
            from.dedup();
            lines.push(format!("sub {} {} from {}", id.0, xpe, from.join(",")));
        }
        lines.sort();
        lines.join("\n")
    }

    fn handle_subscribe(&mut self, from: Dest, id: SubId, xpe: Xpe) -> Vec<(Dest, Message)> {
        let sw = Stopwatch::start();
        let outcome = self.prt.insert(id, xpe.clone(), from);
        if !outcome.forward {
            if let Some(tracer) = &self.tracer {
                tracer.record(&TraceEvent::point(
                    "sub.covered",
                    self.id.0,
                    "subscribe",
                    id.0,
                    0,
                ));
            }
        }
        let mut out = Vec::new();
        if outcome.forward {
            // Covered subscriptions skip advertisement matching
            // entirely — the Figure 8 effect.
            let targets = self.sub_targets(&xpe, Some(from));
            for rid in &outcome.retract {
                // The covered subscription's targets are a subset of
                // the new subscription's (covering implies overlap
                // containment over the same SRT), so retracting along
                // the new targets reaches every broker that stores it.
                for t in &targets {
                    out.push((*t, Message::Unsubscribe { id: *rid }));
                }
                self.sent_to.remove(rid);
            }
            for t in &targets {
                out.push((
                    *t,
                    Message::Subscribe {
                        id,
                        xpe: xpe.clone(),
                    },
                ));
            }
            self.sent_to
                .entry(id)
                .or_default()
                .extend(targets.iter().copied());
        } else {
            // Covering suppression is only valid toward hops the
            // coverer was itself sent to; it was never sent toward its
            // own origins, so those directions are still owed.
            let owed: Vec<Dest> = outcome
                .covered_root_hops
                .iter()
                .filter(|h| !h.is_client() && **h != from)
                .copied()
                .collect();
            if !owed.is_empty() {
                let targets = self.sub_targets(&xpe, Some(from));
                for t in owed {
                    if targets.contains(&t) {
                        out.push((
                            t,
                            Message::Subscribe {
                                id,
                                xpe: xpe.clone(),
                            },
                        ));
                        self.sent_to.entry(id).or_default().insert(t);
                    }
                }
            }
        }
        self.stats.sub_processing.record(sw.elapsed());
        if let Some(tracer) = &self.tracer {
            tracer.record(&TraceEvent::span(
                "sub.process",
                self.id.0,
                "subscribe",
                id.0,
                out.len() as u64,
                sw.elapsed_ns(),
            ));
        }
        out
    }

    fn handle_unsubscribe(&mut self, from: Dest, id: SubId) -> Vec<(Dest, Message)> {
        let mut out = Vec::new();
        if self.config.covering {
            let xpe = self.prt.xpe_of(id).cloned();
            let outcome = self.prt.remove(id);
            // Re-forward newly uncovered subscriptions first so no
            // window without routing state opens upstream.
            let promotions: Vec<(SubId, Xpe)> = outcome
                .promote
                .iter()
                .filter_map(|pid| self.prt.xpe_of(*pid).map(|x| (*pid, x.clone())))
                .collect();
            for (pid, pxpe) in promotions {
                let targets = self.sub_targets(&pxpe, Some(from));
                for t in &targets {
                    out.push((
                        *t,
                        Message::Subscribe {
                            id: pid,
                            xpe: pxpe.clone(),
                        },
                    ));
                }
                self.sent_to.entry(pid).or_default().extend(targets);
            }
            if outcome.forward {
                if let Some(xpe) = xpe {
                    for t in self.sub_targets(&xpe, Some(from)) {
                        out.push((t, Message::Unsubscribe { id }));
                    }
                }
            }
            self.sent_to.remove(&id);
        } else {
            let outcome = self.prt.remove(id);
            if outcome.forward {
                // Without covering the unsubscription is flooded like
                // the subscription was.
                for t in self.flood_targets(Some(from)) {
                    out.push((t, Message::Unsubscribe { id }));
                }
            }
        }
        out
    }

    /// Where to forward a subscription: the last hops of overlapping
    /// advertisements (advertisement-based routing) or every neighbour
    /// (flooding). Client hops never receive subscriptions.
    fn sub_targets(&self, xpe: &Xpe, exclude: Option<Dest>) -> Vec<Dest> {
        if self.config.advertisements {
            self.srt
                .match_sub(xpe)
                .into_iter()
                .filter(|d| !d.is_client())
                .filter(|d| Some(*d) != exclude)
                .collect()
        } else {
            self.flood_targets(exclude)
        }
    }

    fn flood_targets(&self, exclude: Option<Dest>) -> Vec<Dest> {
        self.neighbors
            .iter()
            .map(|&n| Dest::Broker(n))
            .filter(|d| Some(*d) != exclude)
            .collect()
    }

    fn broadcast_except(&self, from: Dest, msg: Message) -> Vec<(Dest, Message)> {
        self.flood_targets(Some(from))
            .into_iter()
            .map(|d| (d, msg.clone()))
            .collect()
    }

    /// Runs the merging pass (§4.3) if the strategy enables it, and
    /// returns the control traffic: merger subscriptions plus
    /// retractions of absorbed subscriptions.
    ///
    /// Requires [`Broker::set_universe`]; without a universe only
    /// structural perfect mergers could be scored, so the pass is
    /// skipped entirely.
    pub fn apply_merging(&mut self) -> Vec<(Dest, Message)> {
        let Some(mode) = self.config.merging else {
            return Vec::new();
        };
        let Some(universe) = self.universe.clone() else {
            return Vec::new();
        };
        let cfg = MergeConfig {
            max_degree: mode.max_degree(),
            ..MergeConfig::default()
        };
        let broker_bits = (self.id.0 as u64) << 32;
        let seq = &mut self.merger_seq;
        // Non-covering tables have nothing to merge; their trait impl
        // returns no applications.
        let apps = self.prt.apply_merging(&universe, &cfg, &mut || {
            *seq += 1;
            SubId((1 << 63) | broker_bits | *seq)
        });
        let mut out = Vec::new();
        for app in apps {
            let targets = self.sub_targets(&app.xpe, None);
            for t in &targets {
                out.push((
                    *t,
                    Message::Subscribe {
                        id: app.merger_id,
                        xpe: app.xpe.clone(),
                    },
                ));
            }
            self.sent_to
                .entry(app.merger_id)
                .or_default()
                .extend(targets.iter().copied());
            for rid in app.retract {
                for t in &targets {
                    out.push((*t, Message::Unsubscribe { id: rid }));
                }
                self.sent_to.remove(&rid);
            }
        }
        self.stats.sent += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClientId, MessageKind, Publication};
    use xdn_core::adv::{AdvPath, Advertisement};
    use xdn_core::rtable::AdvId;
    use xdn_xml::{DocId, PathId};

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    fn adv(names: &[&str]) -> Advertisement {
        Advertisement::non_recursive(AdvPath::from_names(names))
    }

    fn publication(elements: &[&str]) -> Publication {
        Publication {
            doc_id: DocId(1),
            path_id: PathId(0),
            elements: elements
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            attributes: Vec::new(),
            doc_bytes: 1000,
        }
    }

    fn client(n: u64) -> Dest {
        Dest::Client(ClientId(n))
    }

    fn broker_hop(n: u32) -> Dest {
        Dest::Broker(BrokerId(n))
    }

    #[test]
    fn advertisement_flooded_except_origin() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(2));
        let out = b.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, broker_hop(2));
        assert_eq!(b.srt_size(), 1);
    }

    #[test]
    fn subscription_routed_toward_advertiser() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        for n in 1..=3 {
            b.add_neighbor(BrokerId(n));
        }
        b.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        b.handle(
            broker_hop(2),
            Message::advertise(AdvId(2), adv(&["x", "y"])),
        );
        let out = b.handle(client(9), Message::subscribe(SubId(1), xpe("/a/*")));
        assert_eq!(out.len(), 1, "only toward the overlapping advertisement");
        assert_eq!(out[0].0, broker_hop(1));
    }

    #[test]
    fn subscription_flooded_without_advertisements() {
        let mut b = Broker::new(BrokerId(0), RoutingConfig::builder().build());
        for n in 1..=3 {
            b.add_neighbor(BrokerId(n));
        }
        let out = b.handle(broker_hop(3), Message::subscribe(SubId(1), xpe("/a")));
        assert_eq!(out.len(), 2, "all neighbours except the origin");
        assert!(out.iter().all(|(d, _)| *d != broker_hop(3)));
    }

    #[test]
    fn covered_subscription_not_forwarded() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        let first = b.handle(client(1), Message::subscribe(SubId(1), xpe("/a/*")));
        assert_eq!(first.len(), 1);
        let second = b.handle(client(2), Message::subscribe(SubId(2), xpe("/a/b")));
        assert!(second.is_empty(), "covered by /a/*");
    }

    #[test]
    fn takeover_retracts_covered_subscriptions() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        b.handle(client(1), Message::subscribe(SubId(1), xpe("/a/b")));
        let out = b.handle(client(2), Message::subscribe(SubId(2), xpe("/a/*")));
        let unsubs: Vec<_> = out
            .iter()
            .filter(|(_, m)| matches!(m, Message::Unsubscribe { .. }))
            .collect();
        let subs: Vec<_> = out
            .iter()
            .filter(|(_, m)| matches!(m, Message::Subscribe { .. }))
            .collect();
        assert_eq!(unsubs.len(), 1);
        assert_eq!(subs.len(), 1);
    }

    #[test]
    fn publication_routed_to_matching_hops_only() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(2));
        b.handle(broker_hop(2), Message::subscribe(SubId(1), xpe("/a/b")));
        b.handle(client(7), Message::subscribe(SubId(2), xpe("//c")));
        let out = b.handle(broker_hop(1), Message::Publish(publication(&["a", "b"])));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, broker_hop(2));
        let out = b.handle(broker_hop(1), Message::Publish(publication(&["a", "c"])));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, client(7));
        assert_eq!(b.stats().deliveries, 1);
    }

    #[test]
    fn publication_never_returns_to_sender() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.handle(broker_hop(1), Message::subscribe(SubId(1), xpe("/a")));
        let out = b.handle(broker_hop(1), Message::Publish(publication(&["a"])));
        assert!(out.is_empty());
    }

    #[test]
    fn unsubscribe_promotes_covered() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        b.handle(client(1), Message::subscribe(SubId(1), xpe("/a/*")));
        b.handle(client(2), Message::subscribe(SubId(2), xpe("/a/b")));
        let out = b.handle(client(1), Message::Unsubscribe { id: SubId(1) });
        let kinds: Vec<MessageKind> = out.iter().map(|(_, m)| m.kind()).collect();
        assert!(
            kinds.contains(&MessageKind::Subscribe),
            "promoted /a/b re-forwarded: {kinds:?}"
        );
        assert!(kinds.contains(&MessageKind::Unsubscribe));
    }

    #[test]
    fn flat_unsubscribe_floods() {
        let mut b = Broker::new(BrokerId(0), RoutingConfig::builder().build());
        b.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(2));
        b.handle(client(1), Message::subscribe(SubId(1), xpe("/a")));
        let out = b.handle(client(1), Message::Unsubscribe { id: SubId(1) });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn merging_emits_merger_and_retractions() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .merging(Merging::Perfect)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b", "*"])),
        );
        // Universe: /a/b/{b,c} — subscribing to both makes /a/b/* perfect.
        let universe = Arc::new(vec![
            vec!["a".to_string(), "b".into(), "b".into()],
            vec!["a".to_string(), "b".into(), "c".into()],
        ]);
        b.set_universe(universe);
        b.handle(client(1), Message::subscribe(SubId(1), xpe("/a/b/b")));
        b.handle(client(2), Message::subscribe(SubId(2), xpe("/a/b/c")));
        assert_eq!(b.prt_effective_size(), 2);
        let out = b.apply_merging();
        assert_eq!(b.prt_effective_size(), 1);
        let subs: Vec<_> = out
            .iter()
            .filter_map(|(_, m)| match m {
                Message::Subscribe { xpe, .. } => Some(xpe.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(subs, vec!["/a/b/*".to_string()]);
        let unsubs = out
            .iter()
            .filter(|(_, m)| matches!(m, Message::Unsubscribe { .. }))
            .count();
        assert_eq!(unsubs, 2);
    }

    #[test]
    fn merging_skipped_without_universe() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .merging(Merging::Perfect)
                .build(),
        );
        b.handle(client(1), Message::subscribe(SubId(1), xpe("/a/b")));
        assert!(b.apply_merging().is_empty());
    }

    #[test]
    fn merging_disabled_for_plain_covering() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.set_universe(Arc::new(vec![]));
        assert!(b.apply_merging().is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let mut b = Broker::new(BrokerId(0), RoutingConfig::builder().build());
        b.add_neighbor(BrokerId(1));
        b.handle(client(1), Message::subscribe(SubId(1), xpe("/a")));
        b.handle(broker_hop(1), Message::Publish(publication(&["a"])));
        assert_eq!(b.stats().received_of(MessageKind::Subscribe), 1);
        assert_eq!(b.stats().received_of(MessageKind::Publish), 1);
        assert_eq!(b.stats().sub_processing.count(), 1);
        assert_eq!(b.stats().pub_routing.count(), 1);
        assert!(b.stats().received_total() >= 2);
        b.reset_stats();
        assert_eq!(b.stats().received_total(), 0);
    }

    #[test]
    fn sync_request_answers_with_link_state() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(2));
        // One advertisement from B2 (exported to B1), one from B1 (not
        // exported back to B1).
        b.handle(
            broker_hop(2),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        b.handle(
            broker_hop(1),
            Message::advertise(AdvId(2), adv(&["x", "y"])),
        );
        // A local subscription forwarded toward B2's advertisement.
        b.handle(client(9), Message::subscribe(SubId(7), xpe("/a/*")));
        let out = b.handle(broker_hop(1), Message::SyncRequest);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, broker_hop(1));
        let Message::SyncState { advs, subs } = &out[0].1 else {
            panic!("expected SyncState, got {:?}", out[0].1)
        };
        assert_eq!(
            advs.len(),
            1,
            "only the advertisement B1 does not already own"
        );
        assert_eq!(advs[0].0, AdvId(1));
        assert!(subs.is_empty(), "the subscription went toward B2, not B1");
        let out = b.handle(broker_hop(2), Message::SyncRequest);
        let Message::SyncState { advs, subs } = &out[0].1 else {
            panic!()
        };
        assert_eq!(advs[0].0, AdvId(2));
        assert_eq!(subs, &[(SubId(7), xpe("/a/*"))]);
    }

    #[test]
    fn sync_state_install_is_idempotent() {
        let mut healthy = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        healthy.add_neighbor(BrokerId(1));
        healthy.handle(
            broker_hop(1),
            Message::advertise(AdvId(1), adv(&["a", "b"])),
        );
        healthy.handle(broker_hop(1), Message::subscribe(SubId(2), xpe("/a/b")));

        // A restarted replacement learns the same state from a sync
        // snapshot, and installing it twice changes nothing.
        let mut restarted = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        restarted.add_neighbor(BrokerId(1));
        let snapshot = Message::SyncState {
            advs: vec![(AdvId(1), adv(&["a", "b"]))],
            subs: vec![(SubId(2), xpe("/a/b"))],
        };
        restarted.handle(broker_hop(1), snapshot.clone());
        assert_eq!(restarted.routing_signature(), healthy.routing_signature());
        restarted.handle(broker_hop(1), snapshot);
        assert_eq!(restarted.routing_signature(), healthy.routing_signature());
        assert_eq!(restarted.srt_size(), 1);
        assert_eq!(restarted.prt_size(), 1);
    }

    #[test]
    fn heartbeat_is_inert() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        assert!(b.handle(broker_hop(1), Message::Heartbeat).is_empty());
        assert_eq!(b.stats().received_of(MessageKind::Heartbeat), 1);
        assert_eq!(b.routing_signature(), "");
    }

    #[test]
    fn unadvertise_removes_and_floods() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        b.add_neighbor(BrokerId(2));
        b.handle(broker_hop(1), Message::advertise(AdvId(1), adv(&["a"])));
        let out = b.handle(broker_hop(1), Message::Unadvertise { id: AdvId(1) });
        assert_eq!(b.srt_size(), 0);
        assert_eq!(out.len(), 1);
    }
}

#[cfg(test)]
mod srt_compact_tests {
    use super::*;
    use crate::message::{ClientId, Publication};
    use xdn_core::adv::{AdvPath, Advertisement};
    use xdn_core::rtable::AdvId;
    use xdn_xml::{DocId, PathId};

    #[test]
    fn compaction_preserves_subscription_routing() {
        let mut b = Broker::new(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        b.add_neighbor(BrokerId(1));
        let from = Dest::Broker(BrokerId(1));
        b.handle(
            from,
            Message::advertise(
                AdvId(1),
                Advertisement::non_recursive(AdvPath::from_names(&["a", "*"])),
            ),
        );
        b.handle(
            from,
            Message::advertise(
                AdvId(2),
                Advertisement::non_recursive(AdvPath::from_names(&["a", "b"])),
            ),
        );
        assert_eq!(b.srt_size(), 2);
        assert_eq!(b.compact_srt(), 1);
        assert_eq!(b.srt_size(), 1);

        // The subscription still routes toward the surviving entry.
        let out = b.handle(
            Dest::Client(ClientId(9)),
            Message::subscribe(SubId(1), "/a/b".parse().expect("xpe")),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, from);

        // And publications still flow to the subscriber.
        let out = b.handle(
            from,
            Message::Publish(Publication {
                doc_id: DocId(1),
                path_id: PathId(0),
                elements: vec!["a".into(), "b".into()],
                attributes: Vec::new(),
                doc_bytes: 10,
            }),
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].0.is_client());
    }
}
