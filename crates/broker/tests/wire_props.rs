//! Property tests for the wire codec and the frame data plane.
//!
//! Obligations for a codec fed by a network socket: `decode_frame`
//! must never panic, whatever bytes arrive (a peer is untrusted
//! input); every encodable message — the sync frames included — must
//! round-trip exactly; and the encode-once fan-out path must be
//! byte-identical to the flat per-peer encoding it replaced, with no
//! stale bytes leaking across pooled-buffer reuse.

use proptest::prelude::*;
use std::sync::Arc;
use xdn_broker::wire::{self, FrameBuf, SeqHeader};
use xdn_broker::{Message, Publication};
use xdn_core::adv::{AdvPath, Advertisement};
use xdn_core::rtable::{AdvId, SubId};
use xdn_xml::{DocId, PathId};
use xdn_xpath::Xpe;

const NAMES: [&str; 6] = ["a", "b", "claim", "seq-data", "x1", "n"];

fn name(ix: usize) -> String {
    NAMES[ix % NAMES.len()].to_string()
}

/// Reference encoding: one frame into a fresh buffer.
fn enc(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    wire::encode_into(msg, &mut out);
    out
}

/// Always-valid XPE text built from known-good pieces: `/` or `//`
/// separators, names or `*` steps, an optional attribute predicate.
fn xpe_strategy() -> impl Strategy<Value = Xpe> {
    let step = (any::<bool>(), any::<bool>(), 0usize..NAMES.len()).prop_map(|(deep, star, ix)| {
        let axis = if deep { "//" } else { "/" };
        let test = if star { "*".to_string() } else { name(ix) };
        format!("{axis}{test}")
    });
    (
        proptest::collection::vec(step, 1..5),
        any::<bool>(),
        0usize..NAMES.len(),
    )
        .prop_map(|(steps, with_pred, ix)| {
            let mut text = steps.concat();
            if with_pred {
                text.push_str(&format!("[@{}='v']", name(ix)));
            }
            text.parse::<Xpe>().expect("constructed XPE text is valid")
        })
}

fn adv_strategy() -> impl Strategy<Value = Advertisement> {
    prop_oneof![
        proptest::collection::vec(0usize..NAMES.len(), 1..5).prop_map(|ixs| {
            let names: Vec<String> = ixs.into_iter().map(name).collect();
            Advertisement::non_recursive(AdvPath::from_names(&names))
        }),
        (
            0usize..NAMES.len(),
            0usize..NAMES.len(),
            0usize..NAMES.len()
        )
            .prop_map(|(a, b, c)| {
                Advertisement::parse(&format!("/{}(/{})+/{}", name(a), name(b), name(c)))
                    .expect("constructed recursive advertisement is valid")
            }),
    ]
}

fn publication_strategy() -> impl Strategy<Value = Publication> {
    (
        any::<u64>(),
        any::<u32>(),
        proptest::collection::vec(0usize..NAMES.len(), 1..6),
        any::<bool>(),
        0usize..1_000_000,
    )
        .prop_map(|(doc, path, ixs, with_attr, bytes)| {
            let elements: Vec<String> = ixs.iter().copied().map(name).collect();
            let mut attributes: Vec<Vec<(String, String)>> =
                elements.iter().map(|_| Vec::new()).collect();
            if with_attr {
                attributes[0].push(("lang".to_string(), "en".to_string()));
            }
            Publication {
                doc_id: DocId(doc),
                path_id: PathId(path),
                elements,
                attributes,
                doc_bytes: bytes,
            }
        })
}

/// Payload messages: the kinds the reliability layer wraps in
/// [`Message::Sequenced`] headers.
fn payload_strategy() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), adv_strategy()).prop_map(|(id, adv)| Message::advertise(AdvId(id), adv)),
        any::<u64>().prop_map(|id| Message::Unadvertise { id: AdvId(id) }),
        (any::<u64>(), xpe_strategy()).prop_map(|(id, xpe)| Message::subscribe(SubId(id), xpe)),
        any::<u64>().prop_map(|id| Message::Unsubscribe { id: SubId(id) }),
        publication_strategy().prop_map(Message::Publish),
    ]
}

/// Sequence-counter values biased toward the numeric edges: the
/// wraparound neighbourhood (`u64::MAX`), the window floor (0, 1), and
/// arbitrary values in between.
fn counter_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX - 1),
        Just(u64::MAX),
        any::<u64>(),
    ]
}

fn sequenced_strategy() -> impl Strategy<Value = Message> {
    (
        counter_strategy(),
        counter_strategy(),
        counter_strategy(),
        payload_strategy(),
    )
        .prop_map(|(epoch, seq, low, inner)| Message::Sequenced {
            epoch,
            seq,
            low,
            inner: Arc::new(inner),
        })
}

fn message_strategy() -> impl Strategy<Value = Message> {
    prop_oneof![
        payload_strategy(),
        Just(Message::Heartbeat),
        Just(Message::SyncRequest),
        (
            proptest::collection::vec((any::<u64>(), adv_strategy()), 0..4),
            proptest::collection::vec((any::<u64>(), xpe_strategy()), 0..4),
        )
            .prop_map(|(advs, subs)| Message::SyncState {
                advs: advs.into_iter().map(|(id, a)| (AdvId(id), a)).collect(),
                subs: subs.into_iter().map(|(id, x)| (SubId(id), x)).collect(),
            }),
        (counter_strategy(), counter_strategy())
            .prop_map(|(epoch, seq)| Message::Ack { epoch, seq }),
        sequenced_strategy(),
    ]
}

proptest! {
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Err is fine; tearing down the process is not.
        let _ = wire::decode_frame(&bytes);
    }

    #[test]
    fn decode_never_panics_on_corrupted_frames(
        msg in message_strategy(),
        flip_at in any::<u16>(),
        flip_with in 1u8..=255,
    ) {
        let mut frame = enc(&msg);
        let ix = flip_at as usize % frame.len();
        frame[ix] ^= flip_with;
        let _ = wire::decode_frame(&frame);
    }

    #[test]
    fn every_message_round_trips(msg in message_strategy()) {
        let frame = enc(&msg);
        let (decoded, consumed) = wire::decode_frame(&frame).expect("own encoding must decode");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(consumed, frame.len());
    }

    #[test]
    fn decode_ignores_trailing_bytes(
        msg in message_strategy(),
        trailer in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let frame = enc(&msg);
        let mut stream = frame.clone();
        stream.extend_from_slice(&trailer);
        let (decoded, consumed) = wire::decode_frame(&stream).expect("framed prefix must decode");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(consumed, frame.len());
    }

    /// Reliability headers at the numeric edges — `u64::MAX` epochs and
    /// sequence numbers included — must survive the codec bit-exactly;
    /// the dedup window's wraparound arithmetic depends on it.
    #[test]
    fn sequenced_extremes_round_trip(msg in prop_oneof![
        sequenced_strategy(),
        (counter_strategy(), counter_strategy())
            .prop_map(|(epoch, seq)| Message::Ack { epoch, seq }),
    ]) {
        let frame = enc(&msg);
        let (decoded, consumed) = wire::decode_frame(&frame).expect("own encoding must decode");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(consumed, frame.len());
    }

    /// The encode-once shared-body path must be byte-identical to the
    /// flat per-message encoding for every message variant — a
    /// `FrameBuf` is a layout over the same bytes, not a new format.
    #[test]
    fn framebuf_is_byte_identical_to_flat_encode(msg in message_strategy()) {
        let frame = FrameBuf::from_message(msg.clone());
        prop_assert_eq!(frame.to_wire_bytes(), enc(&msg));
        prop_assert_eq!(frame.encoded_len(), enc(&msg).len());
        // The vectored write path produces the same bytes again.
        let mut sink = Vec::new();
        frame.write_to(&mut sink).expect("write to a Vec");
        prop_assert_eq!(sink, enc(&msg));
    }

    /// Stamping one shared body for k peers must equal k independent
    /// per-peer encodes of the equivalent `Sequenced` messages — the
    /// 29-byte header rewrite cannot disturb the shared payload.
    #[test]
    fn stamped_fanout_matches_per_peer_encode(
        inner in payload_strategy(),
        epoch in counter_strategy(),
        low in counter_strategy(),
        peers in 1u64..8,
    ) {
        let base = FrameBuf::from_payload(Arc::new(inner.clone()));
        for seq in 1..=peers {
            let stamped = base.stamped(SeqHeader { epoch, seq, low });
            let equivalent = Message::Sequenced {
                epoch,
                seq,
                low,
                inner: Arc::new(inner.clone()),
            };
            prop_assert_eq!(stamped.to_wire_bytes(), enc(&equivalent));
        }
    }

    /// A pooled buffer full of junk from a previous frame must be fully
    /// overwritten on reuse: the encode starts from a cleared buffer,
    /// so no stale byte of `junk` can reach the wire.
    #[test]
    fn pooled_buffers_leak_no_stale_bytes(
        first in message_strategy(),
        second in message_strategy(),
        junk in proptest::collection::vec(1u8..=255, 1..64),
    ) {
        let mut buf = wire::pool_acquire();
        buf.extend_from_slice(&junk);
        wire::pool_release(buf);
        let mut buf = wire::pool_acquire();
        prop_assert!(buf.is_empty(), "acquire must hand out cleared buffers");
        wire::encode_into(&first, &mut buf);
        prop_assert_eq!(&buf, &enc(&first));
        buf.clear();
        wire::encode_into(&second, &mut buf);
        prop_assert_eq!(&buf, &enc(&second));
        wire::pool_release(buf);
    }

    /// A sequenced frame whose payload is itself a reliability frame is
    /// hostile input (unbounded nesting): encode happily produces the
    /// bytes, decode must refuse them — whatever the header values.
    #[test]
    fn nested_reliability_frames_are_rejected(
        epoch in counter_strategy(),
        seq in counter_strategy(),
        low in counter_strategy(),
        inner in prop_oneof![
            sequenced_strategy(),
            (counter_strategy(), counter_strategy())
                .prop_map(|(e, s)| Message::Ack { epoch: e, seq: s }),
        ],
    ) {
        let msg = Message::Sequenced { epoch, seq, low, inner: Arc::new(inner) };
        let frame = enc(&msg);
        prop_assert!(wire::decode_frame(&frame).is_err(), "nested reliability frame must be refused");
    }

    /// Frames from a dead incarnation (an epoch older than the one the
    /// receiver has already seen from the same peer) are dropped
    /// without output and without panic, for every header combination.
    #[test]
    fn stale_epoch_frames_are_dropped(
        inner in payload_strategy(),
        new_epoch in counter_strategy(),
        old_back in any::<u64>(),
        seq in counter_strategy(),
        low in counter_strategy(),
    ) {
        use xdn_broker::{Broker, BrokerId, Dest, RoutingConfig};
        let new_epoch = new_epoch.max(2);
        // Any epoch strictly below the established one is stale.
        let old_epoch = 1 + old_back % (new_epoch - 1);
        let config = RoutingConfig::builder()
            .advertisements(true)
            .covering(true)
            .build();
        let mut b = Broker::new(BrokerId(0), config);
        b.add_neighbor(BrokerId(1));
        let from = Dest::Broker(BrokerId(1));
        // Establish the new epoch first...
        let _ = b.handle_frames(from, Message::Sequenced {
            epoch: new_epoch,
            seq: 1,
            low: 1,
            inner: Arc::new(Message::Heartbeat),
        });
        // ...then a straggler from the previous incarnation arrives.
        let out = b.handle_frames(from, Message::Sequenced {
            epoch: old_epoch,
            seq,
            low,
            inner: Arc::new(inner),
        });
        prop_assert!(out.is_empty(), "stale frame must produce no output");
        prop_assert_eq!(b.stats().stale_frames, 1);
    }
}
