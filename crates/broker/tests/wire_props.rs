//! Property tests for the wire codec.
//!
//! Two obligations for a codec fed by a network socket: `decode` must
//! never panic, whatever bytes arrive (a peer is untrusted input), and
//! every encodable message — the sync frames included — must round-trip
//! exactly.

use proptest::prelude::*;
use xdn_broker::wire;
use xdn_broker::{Message, Publication};
use xdn_core::adv::{AdvPath, Advertisement};
use xdn_core::rtable::{AdvId, SubId};
use xdn_xml::{DocId, PathId};
use xdn_xpath::Xpe;

const NAMES: [&str; 6] = ["a", "b", "claim", "seq-data", "x1", "n"];

fn name(ix: usize) -> String {
    NAMES[ix % NAMES.len()].to_string()
}

/// Always-valid XPE text built from known-good pieces: `/` or `//`
/// separators, names or `*` steps, an optional attribute predicate.
fn xpe_strategy() -> impl Strategy<Value = Xpe> {
    let step = (any::<bool>(), any::<bool>(), 0usize..NAMES.len()).prop_map(|(deep, star, ix)| {
        let axis = if deep { "//" } else { "/" };
        let test = if star { "*".to_string() } else { name(ix) };
        format!("{axis}{test}")
    });
    (
        proptest::collection::vec(step, 1..5),
        any::<bool>(),
        0usize..NAMES.len(),
    )
        .prop_map(|(steps, with_pred, ix)| {
            let mut text = steps.concat();
            if with_pred {
                text.push_str(&format!("[@{}='v']", name(ix)));
            }
            text.parse::<Xpe>().expect("constructed XPE text is valid")
        })
}

fn adv_strategy() -> impl Strategy<Value = Advertisement> {
    prop_oneof![
        proptest::collection::vec(0usize..NAMES.len(), 1..5).prop_map(|ixs| {
            let names: Vec<String> = ixs.into_iter().map(name).collect();
            Advertisement::non_recursive(AdvPath::from_names(&names))
        }),
        (
            0usize..NAMES.len(),
            0usize..NAMES.len(),
            0usize..NAMES.len()
        )
            .prop_map(|(a, b, c)| {
                Advertisement::parse(&format!("/{}(/{})+/{}", name(a), name(b), name(c)))
                    .expect("constructed recursive advertisement is valid")
            }),
    ]
}

fn publication_strategy() -> impl Strategy<Value = Publication> {
    (
        any::<u64>(),
        any::<u32>(),
        proptest::collection::vec(0usize..NAMES.len(), 1..6),
        any::<bool>(),
        0usize..1_000_000,
    )
        .prop_map(|(doc, path, ixs, with_attr, bytes)| {
            let elements: Vec<String> = ixs.iter().copied().map(name).collect();
            let mut attributes: Vec<Vec<(String, String)>> =
                elements.iter().map(|_| Vec::new()).collect();
            if with_attr {
                attributes[0].push(("lang".to_string(), "en".to_string()));
            }
            Publication {
                doc_id: DocId(doc),
                path_id: PathId(path),
                elements,
                attributes,
                doc_bytes: bytes,
            }
        })
}

fn message_strategy() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), adv_strategy()).prop_map(|(id, adv)| Message::advertise(AdvId(id), adv)),
        any::<u64>().prop_map(|id| Message::Unadvertise { id: AdvId(id) }),
        (any::<u64>(), xpe_strategy()).prop_map(|(id, xpe)| Message::subscribe(SubId(id), xpe)),
        any::<u64>().prop_map(|id| Message::Unsubscribe { id: SubId(id) }),
        publication_strategy().prop_map(Message::Publish),
        Just(Message::Heartbeat),
        Just(Message::SyncRequest),
        (
            proptest::collection::vec((any::<u64>(), adv_strategy()), 0..4),
            proptest::collection::vec((any::<u64>(), xpe_strategy()), 0..4),
        )
            .prop_map(|(advs, subs)| Message::SyncState {
                advs: advs.into_iter().map(|(id, a)| (AdvId(id), a)).collect(),
                subs: subs.into_iter().map(|(id, x)| (SubId(id), x)).collect(),
            }),
    ]
}

proptest! {
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Err is fine; tearing down the process is not.
        let _ = wire::decode(&bytes);
    }

    #[test]
    fn decode_never_panics_on_corrupted_frames(
        msg in message_strategy(),
        flip_at in any::<u16>(),
        flip_with in 1u8..=255,
    ) {
        let mut frame = wire::encode(&msg).to_vec();
        let ix = flip_at as usize % frame.len();
        frame[ix] ^= flip_with;
        let _ = wire::decode(&frame);
    }

    #[test]
    fn every_message_round_trips(msg in message_strategy()) {
        let frame = wire::encode(&msg);
        let (decoded, consumed) = wire::decode(&frame).expect("own encoding must decode");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(consumed, frame.len());
    }

    #[test]
    fn decode_ignores_trailing_bytes(
        msg in message_strategy(),
        trailer in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let frame = wire::encode(&msg);
        let mut stream = frame.to_vec();
        stream.extend_from_slice(&trailer);
        let (decoded, consumed) = wire::decode(&stream).expect("framed prefix must decode");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(consumed, frame.len());
    }
}
