#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # xdn-workloads — DTDs, query sets, and document workloads
//!
//! The paper's evaluation (§5) is driven by two DTDs — the recursive
//! News Industry Text Format (NITF) and the non-recursive Protein
//! Sequence Database (PSD) — together with the Diao et al. XPath
//! generator and the IBM XML Generator. None of those artifacts is
//! redistributable here; this crate provides the documented synthetic
//! substitutes (`DESIGN.md`):
//!
//! * [`nitf_dtd`] — a recursive news DTD statistically shaped like
//!   NITF: deep, block-recursive, with an advertisement set roughly
//!   35× larger than the PSD-like one (the ratio the paper reports
//!   driving the Figure 8 gap);
//! * [`psd_dtd`] — a flat, non-recursive protein-entry DTD;
//! * [`sets`] — the query data sets: Set A (≈90 % covering rate) and
//!   Set B (≈50 %), produced by tuning the wildcard probability `W`
//!   and descendant probability `DO` exactly as §5 describes;
//! * [`docs`] — document workloads, including the sized documents
//!   (2 KB–40 KB) of the notification-delay experiments.

pub mod analyze;
pub mod docs;
pub mod sets;

use xdn_xml::dtd::Dtd;

/// The PSD-like DTD: non-recursive, tree-shaped, moderate size.
///
/// # Panics
///
/// Panics only if the embedded DTD text is invalid, which the test
/// suite rules out.
pub fn psd_dtd() -> Dtd {
    Dtd::parse(PSD_DTD_TEXT).expect("embedded PSD-like DTD is valid")
}

/// The NITF-like DTD: recursive (`block` nests within itself and via
/// block-quotes), with a much larger derivable path set than
/// [`psd_dtd`].
///
/// # Panics
///
/// Panics only if the embedded DTD text is invalid, which the test
/// suite rules out.
pub fn nitf_dtd() -> Dtd {
    Dtd::parse(NITF_DTD_TEXT).expect("embedded NITF-like DTD is valid")
}

/// The publication-path universe of a DTD: its root-to-leaf paths,
/// enumerated to the experiment bounds (max depth 10, as the paper
/// fixes for both queries and documents). This is what brokers use to
/// score imperfect mergers (§4.3).
pub fn universe(dtd: &Dtd) -> Vec<Vec<String>> {
    dtd.enumerate_paths(10, 2, 60_000)
}

const PSD_DTD_TEXT: &str = r#"
<!ELEMENT ProteinDatabase (ProteinEntry+)>
<!ELEMENT ProteinEntry (header, protein, organism?, reference*, genetics?, complex?, function?, classification?, keywords?, feature*, summary?, sequence)>
<!ELEMENT header (uid, accession+, created?, seq-rev?, ann-rev?, release?, version?, curation?)>
<!ELEMENT release (#PCDATA)>
<!ELEMENT version (#PCDATA)>
<!ELEMENT curation (#PCDATA)>
<!ELEMENT uid (#PCDATA)>
<!ELEMENT accession (#PCDATA)>
<!ELEMENT created (#PCDATA)>
<!ELEMENT seq-rev (#PCDATA)>
<!ELEMENT ann-rev (#PCDATA)>
<!ELEMENT protein (name, source?, classname?, contains*, ec-number?, alt-name*)>
<!ELEMENT ec-number (#PCDATA)>
<!ELEMENT alt-name (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT source (#PCDATA)>
<!ELEMENT classname (#PCDATA)>
<!ELEMENT contains (#PCDATA)>
<!ELEMENT organism (formal?, common?, variety?, source-note?, strain?, tissue?, cell-line?, isolate?)>
<!ELEMENT strain (#PCDATA)>
<!ELEMENT tissue (#PCDATA)>
<!ELEMENT cell-line (#PCDATA)>
<!ELEMENT isolate (#PCDATA)>
<!ELEMENT formal (#PCDATA)>
<!ELEMENT common (#PCDATA)>
<!ELEMENT variety (#PCDATA)>
<!ELEMENT source-note (#PCDATA)>
<!ELEMENT reference (refinfo, accinfo*)>
<!ELEMENT refinfo (authors, citation, volume?, month?, year?, pages?, title?, xrefs?, note?, ref-num?, contents-note?)>
<!ELEMENT month (#PCDATA)>
<!ELEMENT ref-num (#PCDATA)>
<!ELEMENT contents-note (#PCDATA)>
<!ELEMENT authors (author+, affiliation*, author-note?)>
<!ELEMENT affiliation (#PCDATA)>
<!ELEMENT author-note (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT citation (cit-type?, cit-title?, cit-editors?, cit-publisher?, cit-place?, cit-isbn?)>
<!ELEMENT cit-type (#PCDATA)>
<!ELEMENT cit-title (#PCDATA)>
<!ELEMENT cit-editors (#PCDATA)>
<!ELEMENT cit-publisher (#PCDATA)>
<!ELEMENT cit-place (#PCDATA)>
<!ELEMENT cit-isbn (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ELEMENT xrefs (xref+)>
<!ELEMENT xref (db, xuid?, db-release?, db-note?)>
<!ELEMENT db-release (#PCDATA)>
<!ELEMENT db-note (#PCDATA)>
<!ELEMENT db (#PCDATA)>
<!ELEMENT xuid (#PCDATA)>
<!ELEMENT accinfo (mol-type?, seq-spec?, label?, status?, seq-type?, genbank-ref?)>
<!ELEMENT seq-type (#PCDATA)>
<!ELEMENT genbank-ref (#PCDATA)>
<!ELEMENT mol-type (#PCDATA)>
<!ELEMENT label (#PCDATA)>
<!ELEMENT status (#PCDATA)>
<!ELEMENT genetics (gene*, gene-note?, introns?, mgi?, gene-map?, start-codon?, genome?)>
<!ELEMENT gene-map (#PCDATA)>
<!ELEMENT start-codon (#PCDATA)>
<!ELEMENT genome (#PCDATA)>
<!ELEMENT gene (#PCDATA)>
<!ELEMENT gene-note (#PCDATA)>
<!ELEMENT introns (#PCDATA)>
<!ELEMENT mgi (#PCDATA)>
<!ELEMENT complex (complex-name?, subunit*, stoichiometry?)>
<!ELEMENT complex-name (#PCDATA)>
<!ELEMENT subunit (#PCDATA)>
<!ELEMENT stoichiometry (#PCDATA)>
<!ELEMENT function (function-description?, pathway?, activity?, cofactor?, regulation?)>
<!ELEMENT activity (#PCDATA)>
<!ELEMENT cofactor (#PCDATA)>
<!ELEMENT regulation (#PCDATA)>
<!ELEMENT function-description (#PCDATA)>
<!ELEMENT pathway (#PCDATA)>
<!ELEMENT classification (superfamily?, family?, subfamily?, domain-arch?)>
<!ELEMENT subfamily (#PCDATA)>
<!ELEMENT domain-arch (#PCDATA)>
<!ELEMENT superfamily (#PCDATA)>
<!ELEMENT family (#PCDATA)>
<!ELEMENT keywords (keyword+, keyword-source?, keyword-list-note?)>
<!ELEMENT keyword-source (#PCDATA)>
<!ELEMENT keyword-list-note (#PCDATA)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT feature (feature-type, description?, seq-spec?, feature-status?, region-type?, site-type?, modification?, binding-type?, product?)>
<!ELEMENT region-type (#PCDATA)>
<!ELEMENT site-type (#PCDATA)>
<!ELEMENT modification (#PCDATA)>
<!ELEMENT binding-type (#PCDATA)>
<!ELEMENT product (#PCDATA)>
<!ELEMENT feature-type (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT seq-spec (#PCDATA)>
<!ELEMENT feature-status (#PCDATA)>
<!ELEMENT summary (length?, weight?, checksum?, n-terminal?, c-terminal?)>
<!ELEMENT checksum (#PCDATA)>
<!ELEMENT n-terminal (#PCDATA)>
<!ELEMENT c-terminal (#PCDATA)>
<!ELEMENT length (#PCDATA)>
<!ELEMENT weight (#PCDATA)>
<!ELEMENT sequence (seq-data, seq-length?, seq-checksum?, seq-fragment?)>
<!ELEMENT seq-data (#PCDATA)>
<!ELEMENT seq-length (#PCDATA)>
<!ELEMENT seq-checksum (#PCDATA)>
<!ELEMENT seq-fragment (#PCDATA)>
"#;

const NITF_DTD_TEXT: &str = r#"
<!ELEMENT nitf (head, body)>
<!ELEMENT head (title?, meta*, docdata?, tobject?, iim?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT meta (#PCDATA)>
<!ELEMENT iim (ds*)>
<!ELEMENT ds (#PCDATA)>
<!ELEMENT docdata (doc-id?, urgency?, date-issue?, date-release?, date-expire?, key-list?, series?, ed-msg?, du-key?, doc-scope?, identified-content?)>
<!ELEMENT doc-id (#PCDATA)>
<!ELEMENT urgency (#PCDATA)>
<!ELEMENT date-issue (#PCDATA)>
<!ELEMENT date-release (#PCDATA)>
<!ELEMENT date-expire (#PCDATA)>
<!ELEMENT key-list (keyword*)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT series (series-name?, series-part?, series-totalpart?)>
<!ELEMENT series-name (#PCDATA)>
<!ELEMENT series-part (#PCDATA)>
<!ELEMENT series-totalpart (#PCDATA)>
<!ELEMENT ed-msg (#PCDATA)>
<!ELEMENT du-key (#PCDATA)>
<!ELEMENT doc-scope (#PCDATA)>
<!ELEMENT identified-content (classifier*, org*, person*, location*, event*)>
<!ELEMENT classifier (#PCDATA)>
<!ELEMENT tobject (tobject-property?, tobject-subject*)>
<!ELEMENT tobject-property (#PCDATA)>
<!ELEMENT tobject-subject (subject-code?, subject-matter?, subject-detail?, subject-qualifier?)>
<!ELEMENT subject-code (#PCDATA)>
<!ELEMENT subject-matter (#PCDATA)>
<!ELEMENT subject-detail (#PCDATA)>
<!ELEMENT subject-qualifier (#PCDATA)>
<!ELEMENT body (body-head?, body-content, body-end?)>
<!ELEMENT body-head (hedline?, note?, rights?, byline*, distributor?, dateline*, abstract?, series?)>
<!ELEMENT hedline (hl1, hl2*)>
<!ELEMENT hl1 (#PCDATA)>
<!ELEMENT hl2 (#PCDATA)>
<!ELEMENT rights (rights-owner?, rights-startdate?, rights-enddate?, rights-agent?)>
<!ELEMENT rights-owner (#PCDATA)>
<!ELEMENT rights-startdate (#PCDATA)>
<!ELEMENT rights-enddate (#PCDATA)>
<!ELEMENT rights-agent (#PCDATA)>
<!ELEMENT byline (person?, byttl?, virtloc?)>
<!ELEMENT byttl (#PCDATA)>
<!ELEMENT virtloc (#PCDATA)>
<!ELEMENT distributor (org?)>
<!ELEMENT dateline (location?, story-date?)>
<!ELEMENT story-date (#PCDATA)>
<!ELEMENT abstract (p | block)*>
<!ELEMENT body-content (block | p | table | media | bq | ol | ul | dl | pre | note)*>
<!ELEMENT block (block?, p*, table?, media?, bq?, hl2?, ol?, ul?, note?, datasource?)>
<!ELEMENT datasource (#PCDATA)>
<!ELEMENT bq (block?, credit?)>
<!ELEMENT credit (#PCDATA)>
<!ELEMENT note (body-content?)>
<!ELEMENT pre (#PCDATA)>
<!ELEMENT ol (li+)>
<!ELEMENT ul (li+)>
<!ELEMENT li (p | block)*>
<!ELEMENT dl (dt | dd)*>
<!ELEMENT dt (#PCDATA)>
<!ELEMENT dd (p | block)*>
<!ELEMENT media (media-reference*, media-caption?, media-producer?)>
<!ELEMENT media-reference (#PCDATA)>
<!ELEMENT media-producer (#PCDATA)>
<!ELEMENT media-caption (p | block)*>
<!ELEMENT table (caption?, tr+)>
<!ELEMENT caption (#PCDATA)>
<!ELEMENT tr (th*, td*)>
<!ELEMENT th (#PCDATA)>
<!ELEMENT td (p | block)*>
<!ELEMENT p (org | person | location | chron | num | money | event | function-x | copyrite | postaddr)*>
<!ELEMENT org (orgname?, alt-code?, symbol?)>
<!ELEMENT orgname (#PCDATA)>
<!ELEMENT alt-code (#PCDATA)>
<!ELEMENT symbol (#PCDATA)>
<!ELEMENT person (name-given?, name-family?, function-x?, alt-person?)>
<!ELEMENT name-given (#PCDATA)>
<!ELEMENT name-family (#PCDATA)>
<!ELEMENT alt-person (#PCDATA)>
<!ELEMENT location (sublocation?, city?, state?, region?, country?, alt-location?)>
<!ELEMENT sublocation (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT region (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT alt-location (#PCDATA)>
<!ELEMENT chron (#PCDATA)>
<!ELEMENT num (frac?, sub-x?, sup-x?)>
<!ELEMENT frac (#PCDATA)>
<!ELEMENT sub-x (#PCDATA)>
<!ELEMENT sup-x (#PCDATA)>
<!ELEMENT money (#PCDATA)>
<!ELEMENT event (event-name?, event-date?, alt-event?)>
<!ELEMENT event-name (#PCDATA)>
<!ELEMENT event-date (#PCDATA)>
<!ELEMENT alt-event (#PCDATA)>
<!ELEMENT function-x (#PCDATA)>
<!ELEMENT copyrite (copyrite-year?, copyrite-holder?)>
<!ELEMENT copyrite-year (#PCDATA)>
<!ELEMENT copyrite-holder (#PCDATA)>
<!ELEMENT postaddr (addr-line*, country?)>
<!ELEMENT addr-line (#PCDATA)>
<!ELEMENT body-end (tagline?, bibliography?)>
<!ELEMENT tagline (#PCDATA)>
<!ELEMENT bibliography (#PCDATA)>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use xdn_core::adv::{derive_advertisements, DeriveOptions};

    #[test]
    fn psd_is_non_recursive() {
        let dtd = psd_dtd();
        assert!(!dtd.is_recursive());
        assert!(dtd.len() >= 30, "PSD-like DTD has {} elements", dtd.len());
    }

    #[test]
    fn nitf_is_recursive() {
        let dtd = nitf_dtd();
        assert!(dtd.is_recursive());
        let rec = dtd.recursive_elements();
        assert!(
            rec.contains("block"),
            "block is the recursive backbone: {rec:?}"
        );
        assert!(dtd.len() >= 40, "NITF-like DTD has {} elements", dtd.len());
    }

    #[test]
    fn advertisement_ratio_matches_paper_shape() {
        // §5: "the number of advertisements generated from the NITF DTD
        // is 35 times larger than that of the PSD DTD". We require the
        // same order of magnitude.
        let opts = DeriveOptions::default();
        let psd = derive_advertisements(&psd_dtd(), &opts).len();
        let nitf = derive_advertisements(&nitf_dtd(), &opts).len();
        let ratio = nitf as f64 / psd as f64;
        assert!(
            (20.0..=60.0).contains(&ratio),
            "NITF/PSD advertisement ratio {ratio:.1} (nitf={nitf}, psd={psd}) out of range"
        );
    }

    #[test]
    fn universes_are_bounded_and_nonempty() {
        let u_psd = universe(&psd_dtd());
        assert!(!u_psd.is_empty());
        assert!(u_psd.iter().all(|p| p.len() <= 10));
        let u_nitf = universe(&nitf_dtd());
        assert!(u_nitf.len() > u_psd.len());
    }
}
