//! Workload analysis: query-set statistics and DTD-based selectivity.
//!
//! The evaluation narrative depends on workload properties — covering
//! rate, wildcard density, selectivity against the producer's DTD.
//! This module computes them, both for the repro harness's workload
//! summaries and for users tuning their own query sets.

use xdn_xml::dtd::Dtd;
use xdn_xpath::{Axis, Xpe};

/// Descriptive statistics of a query set.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySetStats {
    /// Number of queries.
    pub count: usize,
    /// Mean location steps per query.
    pub mean_length: f64,
    /// Histogram of lengths, index = steps (0 unused).
    pub length_histogram: Vec<usize>,
    /// Fraction of steps that are wildcards (the realized `W`).
    pub wildcard_rate: f64,
    /// Fraction of steps joined by `//` (the realized `DO`).
    pub descendant_rate: f64,
    /// Fraction of relative queries.
    pub relative_rate: f64,
}

/// Computes [`QuerySetStats`] for a set of queries.
pub fn query_set_stats(queries: &[Xpe]) -> QuerySetStats {
    let count = queries.len();
    let mut steps_total = 0usize;
    let mut wildcards = 0usize;
    let mut descendants = 0usize;
    let mut relative = 0usize;
    let max_len = queries.iter().map(Xpe::len).max().unwrap_or(0);
    let mut hist = vec![0usize; max_len + 1];
    for q in queries {
        steps_total += q.len();
        hist[q.len()] += 1;
        if !q.is_absolute() {
            relative += 1;
        }
        for s in q.steps() {
            if s.test.is_wildcard() {
                wildcards += 1;
            }
            if s.axis == Axis::Descendant {
                descendants += 1;
            }
        }
    }
    let steps = steps_total.max(1) as f64;
    QuerySetStats {
        count,
        mean_length: if count == 0 {
            0.0
        } else {
            steps_total as f64 / count as f64
        },
        length_histogram: hist,
        wildcard_rate: wildcards as f64 / steps,
        descendant_rate: descendants as f64 / steps,
        relative_rate: if count == 0 {
            0.0
        } else {
            relative as f64 / count as f64
        },
    }
}

/// Estimates a query's selectivity against a DTD: the fraction of the
/// DTD's (bounded) path universe the query matches. Lower is more
/// selective. The same universe drives the imperfect-merging degree
/// (§4.3), so `selectivity(merger) −  selectivity-union(parts)` is the
/// false-positive mass a merger adds.
pub fn selectivity(query: &Xpe, dtd: &Dtd) -> f64 {
    let universe = crate::universe(dtd);
    if universe.is_empty() {
        return 0.0;
    }
    let hits = universe.iter().filter(|p| query.matches_path(p)).count();
    hits as f64 / universe.len() as f64
}

/// Selectivity of several queries against a shared, precomputed
/// universe (avoids re-enumerating the DTD per query).
pub fn selectivities<S: AsRef<str>>(queries: &[Xpe], universe: &[Vec<S>]) -> Vec<f64> {
    queries
        .iter()
        .map(|q| {
            if universe.is_empty() {
                0.0
            } else {
                universe.iter().filter(|p| q.matches_path(p)).count() as f64 / universe.len() as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nitf_dtd, psd_dtd, sets};

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    #[test]
    fn stats_basic() {
        let qs = vec![xpe("/a/b"), xpe("/a/*//c"), xpe("x/y")];
        let st = query_set_stats(&qs);
        assert_eq!(st.count, 3);
        assert!((st.mean_length - 7.0 / 3.0).abs() < 1e-9);
        assert_eq!(st.length_histogram[2], 2);
        assert_eq!(st.length_histogram[3], 1);
        assert!((st.wildcard_rate - 1.0 / 7.0).abs() < 1e-9);
        assert!((st.descendant_rate - 1.0 / 7.0).abs() < 1e-9);
        assert!((st.relative_rate - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn stats_empty() {
        let st = query_set_stats(&[]);
        assert_eq!(st.count, 0);
        assert_eq!(st.mean_length, 0.0);
    }

    #[test]
    fn set_configs_realize_their_parameters() {
        // The calibrated Set A must be visibly more general than Set B.
        let dtd = nitf_dtd();
        let a = sets::set_a(&dtd, 1500, 3);
        let b = sets::set_b(&dtd, 1500, 3);
        let sa = query_set_stats(&a);
        let sb = query_set_stats(&b);
        assert!(
            sa.wildcard_rate > sb.wildcard_rate,
            "set A wildcard rate {:.3} must exceed set B {:.3}",
            sa.wildcard_rate,
            sb.wildcard_rate
        );
        assert!(sa.descendant_rate >= sb.descendant_rate);
    }

    #[test]
    fn selectivity_orders_generality() {
        let dtd = psd_dtd();
        let root = selectivity(&xpe("/ProteinDatabase"), &dtd);
        let entry = selectivity(&xpe("/ProteinDatabase/ProteinEntry/header"), &dtd);
        let leaf = selectivity(&xpe("/ProteinDatabase/ProteinEntry/header/uid"), &dtd);
        assert_eq!(root, 1.0, "the root matches every path");
        assert!(root > entry && entry >= leaf);
        assert!(leaf > 0.0);
    }

    #[test]
    fn shared_universe_matches_single_calls() {
        let dtd = psd_dtd();
        let universe = crate::universe(&dtd);
        let qs = vec![xpe("/ProteinDatabase"), xpe("//uid"), xpe("/nope")];
        let batch = selectivities(&qs, &universe);
        for (q, &s) in qs.iter().zip(&batch) {
            assert!((selectivity(q, &dtd) - s).abs() < 1e-12);
        }
        assert_eq!(batch[2], 0.0);
    }
}
