//! Query data sets with controlled covering rates.
//!
//! §5 generates two 100,000-XPE NITF data sets by varying `W` (the
//! wildcard probability) and `DO` (the descendant-operator
//! probability): Set A with a ≈90 % covering rate and Set B with ≈50 %.
//! The *covering rate* is the fraction of queries covered by another
//! query in the same set — exactly what the subscription tree measures
//! as `1 − roots/len` after inserting the whole set.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xdn_core::subtree::SubscriptionTree;
use xdn_xml::dtd::Dtd;
use xdn_xpath::generate::{generate_distinct_xpes, XpeGeneratorConfig};
use xdn_xpath::Xpe;

/// Generator parameters reproducing Set A (≈90 % covering, calibrated
/// on the NITF-like DTD): a per-query budget of two wildcards and one
/// descendant operator yields broad queries that cover most concrete
/// ones. (The paper varies the raw step probabilities `W`/`DO`; we
/// additionally budget generalization per query — without a budget a
/// single degenerate query like `/nitf//*` covers the entire set and
/// no intermediate covering rate is reachable.)
pub fn set_a_config() -> XpeGeneratorConfig {
    XpeGeneratorConfig {
        max_length: 10,
        min_length: 10,
        stop_p: 0.0,
        wildcard_p: 0.08,
        descendant_p: 0.02,
        relative_p: 0.0,
        first_concrete: true,
        max_wildcards: 2,
        max_descendants: 1,
        generalize_min_walk: 6,
        ..XpeGeneratorConfig::default()
    }
}

/// Generator parameters reproducing Set B (≈50 % covering): at most a
/// single wildcard per query and no descendant operators, so roughly
/// half the set stays pairwise incomparable.
pub fn set_b_config() -> XpeGeneratorConfig {
    XpeGeneratorConfig {
        max_length: 10,
        min_length: 10,
        stop_p: 0.0,
        wildcard_p: 0.08,
        descendant_p: 0.0,
        relative_p: 0.0,
        first_concrete: true,
        max_wildcards: 1,
        max_descendants: 0,
        generalize_min_walk: 6,
        ..XpeGeneratorConfig::default()
    }
}

/// Generates `n` distinct Set A queries over `dtd`.
pub fn set_a(dtd: &Dtd, n: usize, seed: u64) -> Vec<Xpe> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    generate_distinct_xpes(dtd, n, &set_a_config(), &mut rng)
}

/// Generates `n` distinct Set B queries over `dtd`.
pub fn set_b(dtd: &Dtd, n: usize, seed: u64) -> Vec<Xpe> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    generate_distinct_xpes(dtd, n, &set_b_config(), &mut rng)
}

/// Measures the covering rate of a query set: the fraction of queries
/// that end up covered by another query when the whole set is inserted
/// into a subscription tree.
pub fn covering_rate(xpes: &[Xpe]) -> f64 {
    if xpes.is_empty() {
        return 0.0;
    }
    let mut tree: SubscriptionTree<()> = SubscriptionTree::new();
    for x in xpes {
        tree.insert(x.clone(), ());
    }
    1.0 - tree.root_count() as f64 / xpes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nitf_dtd;

    #[test]
    fn sets_are_distinct_and_sized() {
        let dtd = nitf_dtd();
        let a = set_a(&dtd, 2000, 1);
        let b = set_b(&dtd, 2000, 1);
        assert!(a.len() >= 1900, "set A generated {} queries", a.len());
        assert!(b.len() >= 1900, "set B generated {} queries", b.len());
        let ua: std::collections::HashSet<String> =
            a.iter().map(std::string::ToString::to_string).collect();
        assert_eq!(ua.len(), a.len());
    }

    #[test]
    fn covering_rates_match_paper_shape() {
        let dtd = nitf_dtd();
        let a = set_a(&dtd, 3000, 7);
        let b = set_b(&dtd, 3000, 7);
        let ra = covering_rate(&a);
        let rb = covering_rate(&b);
        assert!(
            ra > rb + 0.15,
            "set A ({ra:.2}) must cover far more than set B ({rb:.2})"
        );
        assert!(ra >= 0.75, "set A covering rate {ra:.2} too low");
        assert!(
            (0.35..=0.70).contains(&rb),
            "set B covering rate {rb:.2} out of range"
        );
    }

    #[test]
    fn covering_rate_edge_cases() {
        assert_eq!(covering_rate(&[]), 0.0);
        let xpes: Vec<Xpe> = vec!["/a/b".parse().unwrap(), "/x/y".parse().unwrap()];
        assert_eq!(covering_rate(&xpes), 0.0);
        let nested: Vec<Xpe> = vec!["/a".parse().unwrap(), "/a/b".parse().unwrap()];
        assert_eq!(covering_rate(&nested), 0.5);
    }

    #[test]
    fn deterministic() {
        let dtd = nitf_dtd();
        assert_eq!(set_a(&dtd, 100, 42), set_a(&dtd, 100, 42));
        assert_ne!(set_a(&dtd, 100, 1), set_a(&dtd, 100, 2));
    }
}
