//! Document workloads.
//!
//! §5 publishes IBM-XML-Generator documents with at most 10 levels:
//! 500 documents (≈23,000 paths) for the routing-time experiment and
//! 50 documents (≈4,200 paths) for the network-traffic experiments;
//! the PlanetLab delay experiments sweep document sizes from 2 KB to
//! 40 KB.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xdn_xml::dtd::Dtd;
use xdn_xml::generate::{generate_document, generate_sized_document, GeneratorConfig};
use xdn_xml::paths::{dedup_paths, extract_paths};
use xdn_xml::{DocId, DocPath, Document};

/// The generator configuration matching the paper's settings: default
/// IBM-generator parameters except a 10-level cap.
pub fn paper_generator_config() -> GeneratorConfig {
    GeneratorConfig {
        max_depth: 10,
        ..GeneratorConfig::default()
    }
}

/// Generates `count` random documents conforming to `dtd`.
pub fn documents(dtd: &Dtd, count: usize, seed: u64) -> Vec<Document> {
    let cfg = paper_generator_config();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| generate_document(dtd, &cfg, &mut rng))
        .collect()
}

/// Generates one document per requested size (bytes), for the
/// document-size sweeps of Figures 10/11.
pub fn sized_documents(dtd: &Dtd, sizes: &[usize], seed: u64) -> Vec<Document> {
    let cfg = paper_generator_config();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    sizes
        .iter()
        .map(|&s| generate_sized_document(dtd, s, &cfg, &mut rng))
        .collect()
}

/// Extracts the distinct publication paths of a document batch,
/// numbering documents sequentially — the unit the brokers route.
pub fn publication_paths(docs: &[Document]) -> Vec<DocPath> {
    let mut out = Vec::new();
    for (i, d) in docs.iter().enumerate() {
        out.extend(dedup_paths(extract_paths(d, DocId(i as u64))));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nitf_dtd, psd_dtd};

    #[test]
    fn documents_respect_depth_cap() {
        for dtd in [psd_dtd(), nitf_dtd()] {
            for d in documents(&dtd, 10, 3) {
                assert!(d.depth() <= 10, "document depth {} exceeds cap", d.depth());
            }
        }
    }

    #[test]
    fn document_batches_yield_many_paths() {
        let docs = documents(&psd_dtd(), 50, 5);
        let paths = publication_paths(&docs);
        assert!(paths.len() > 200, "only {} paths extracted", paths.len());
        // Document ids are sequential.
        assert_eq!(paths.first().unwrap().doc_id, DocId(0));
        assert_eq!(paths.last().unwrap().doc_id, DocId(49));
    }

    #[test]
    fn sized_documents_meet_targets() {
        let sizes = [2_000, 10_000, 20_000];
        let docs = sized_documents(&psd_dtd(), &sizes, 9);
        for (d, &target) in docs.iter().zip(&sizes) {
            let len = d.to_xml_string().len();
            assert!(
                len >= target,
                "document of {len} bytes under the {target} target"
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = documents(&nitf_dtd(), 3, 11);
        let b = documents(&nitf_dtd(), 3, 11);
        assert_eq!(a, b);
    }
}
