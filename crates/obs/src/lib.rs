//! Workspace-wide observability layer.
//!
//! Every measurement the paper's evaluation reports — network traffic
//! per message kind (Tables 2/3), routing-table sizes (Figures 6/7),
//! XPE processing time (Figure 8), publication routing time (Table 1),
//! notification delay (Figure 9) — flows through the types in this
//! crate instead of ad-hoc `Duration` sums scattered across layers.
//!
//! The crate has four pieces:
//!
//! * [`Histogram`] — fixed-bucket latency histograms with exact
//!   (u128-nanosecond) means and p50/p95/p99 quantiles. These replace
//!   the bare `Duration` accumulators that used to live in
//!   `BrokerStats` and silently truncated their divisors to `u32`.
//! * [`MetricsRegistry`] — a lock-cheap registry of named atomic
//!   [`Counter`]s and [`Gauge`]s for thread-shared contexts (the TCP
//!   transport's per-link queues, accept loops).
//! * [`Tracer`] — a zero-cost-when-disabled structured trace-event API.
//!   Brokers hold an `Option<Arc<dyn Tracer>>`; the disabled path is a
//!   single branch on `None`. [`CollectingTracer`] backs tests,
//!   [`JsonLinesTracer`] streams events to any `io::Write`.
//! * [`MetricFamily`] + [`render_prometheus`] / [`render_json`] — a
//!   transport-neutral snapshot model and its text exporters, served by
//!   `xdn-node` over its control socket.
//!
//! Timing itself goes through [`Stopwatch`] so hot paths never call
//! `Instant::now()` directly — `cargo xtask lint` enforces that for
//! `crates/broker` and `crates/core`.

#![forbid(unsafe_code)]

pub mod export;
pub mod hist;
pub mod registry;
pub mod trace;

mod time;

pub use export::{render_json, render_prometheus, MetricData, MetricFamily, Sample};
pub use hist::Histogram;
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use time::Stopwatch;
pub use trace::{CollectingTracer, JsonLinesTracer, NullTracer, TraceEvent, Tracer};
