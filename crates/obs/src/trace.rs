//! Structured trace events from the broker hot paths.
//!
//! Brokers hold an `Option<Arc<dyn Tracer>>` that defaults to `None`,
//! so the disabled cost is a single branch — no event is even
//! constructed. Events are flat and `Copy`: a static name plus numeric
//! ids, deliberately free of owned strings so emitting one never
//! allocates.
//!
//! Event vocabulary (names are stable, used by tests and log readers):
//!
//! | name           | id            | value            | nanos      |
//! |----------------|---------------|------------------|------------|
//! | `sub.process`  | subscription  | messages emitted | span time  |
//! | `sub.covered`  | subscription  | 0                | 0          |
//! | `adv.process`  | advertisement | 0                | 0          |
//! | `pub.route`    | document      | matched hops     | span time  |
//! | `pub.deliver`  | document      | client id        | 0          |

use std::io::Write;
use std::sync::{Mutex, PoisonError};

/// One structured trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Stable event name, e.g. `"pub.route"`.
    pub name: &'static str,
    /// Id of the broker that emitted the event.
    pub broker: u32,
    /// Message-kind tag (`"publish"`, `"subscribe"`, …) or `""`.
    pub kind: &'static str,
    /// Primary subject id — doc, subscription, or advertisement id.
    pub id: u64,
    /// Event-specific auxiliary value (see the module table).
    pub value: u64,
    /// Span duration in nanoseconds; 0 for point events.
    pub nanos: u64,
}

impl TraceEvent {
    /// A point event (no duration).
    pub fn point(name: &'static str, broker: u32, kind: &'static str, id: u64, value: u64) -> Self {
        TraceEvent {
            name,
            broker,
            kind,
            id,
            value,
            nanos: 0,
        }
    }

    /// A span event carrying a measured duration.
    pub fn span(
        name: &'static str,
        broker: u32,
        kind: &'static str,
        id: u64,
        value: u64,
        nanos: u64,
    ) -> Self {
        TraceEvent {
            name,
            broker,
            kind,
            id,
            value,
            nanos,
        }
    }

    /// The event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"broker\":{},\"kind\":{},\"id\":{},\"value\":{},\"nanos\":{}}}",
            crate::export::json_string(self.name),
            self.broker,
            crate::export::json_string(self.kind),
            self.id,
            self.value,
            self.nanos
        )
    }
}

/// A sink for trace events. Implementations must be cheap and
/// non-blocking enough to sit on broker hot paths; anything expensive
/// belongs behind buffering inside the tracer.
pub trait Tracer: Send + Sync {
    /// Records one event.
    fn record(&self, event: &TraceEvent);
}

/// Discards every event. Useful where an API wants *a* tracer; where
/// possible prefer `Option<Arc<dyn Tracer>>` = `None`, which skips
/// event construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn record(&self, _event: &TraceEvent) {}
}

/// Buffers events in memory — the test workhorse.
#[derive(Debug, Default)]
pub struct CollectingTracer {
    events: Mutex<Vec<TraceEvent>>,
}

impl CollectingTracer {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.lock().clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.lock())
    }

    /// Recorded events with the given name.
    pub fn named(&self, name: &str) -> Vec<TraceEvent> {
        self.lock()
            .iter()
            .filter(|e| e.name == name)
            .copied()
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TraceEvent>> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Tracer for CollectingTracer {
    fn record(&self, event: &TraceEvent) {
        self.lock().push(*event);
    }
}

/// Streams events as JSON lines to any writer (a file, a pipe,
/// `Vec<u8>` in tests). Write errors are counted, not propagated — a
/// full disk must not take down routing.
#[derive(Debug)]
pub struct JsonLinesTracer<W: Write + Send> {
    writer: Mutex<W>,
    errors: std::sync::atomic::AtomicU64,
}

impl<W: Write + Send> JsonLinesTracer<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonLinesTracer {
            writer: Mutex::new(writer),
            errors: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of write errors swallowed so far.
    pub fn write_errors(&self) -> u64 {
        self.errors.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(self) -> W {
        let mut w = self
            .writer
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> Tracer for JsonLinesTracer<W> {
    fn record(&self, event: &TraceEvent) {
        let mut line = event.to_json();
        line.push('\n');
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if w.write_all(line.as_bytes()).is_err() {
            self.errors
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_tracer_buffers_and_filters() {
        let t = CollectingTracer::new();
        t.record(&TraceEvent::point("pub.deliver", 1, "publish", 7, 42));
        t.record(&TraceEvent::span("pub.route", 1, "publish", 7, 2, 1500));
        assert_eq!(t.snapshot().len(), 2);
        let routes = t.named("pub.route");
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].nanos, 1500);
        assert_eq!(t.take().len(), 2);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn json_lines_are_one_object_per_line() {
        let t = JsonLinesTracer::new(Vec::new());
        t.record(&TraceEvent::point("sub.process", 3, "subscribe", 11, 0));
        t.record(&TraceEvent::point("pub.deliver", 3, "publish", 5, 9));
        let buf = t.into_inner();
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"name\":\"sub.process\",\"broker\":3,\"kind\":\"subscribe\",\"id\":11,\"value\":0,\"nanos\":0}"
        );
        assert!(lines[1].contains("\"pub.deliver\""));
    }

    #[test]
    fn null_tracer_is_object_safe() {
        let t: std::sync::Arc<dyn Tracer> = std::sync::Arc::new(NullTracer);
        t.record(&TraceEvent::point("x", 0, "", 0, 0));
    }
}
