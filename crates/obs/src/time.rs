//! The one sanctioned wall-clock timing primitive.
//!
//! Hot paths in `xdn-broker` and `xdn-core` must not call
//! `Instant::now()` directly (`cargo xtask lint`'s `instant` rule);
//! they start a [`Stopwatch`] and feed the elapsed time into a
//! [`crate::Histogram`]. Funnelling every measurement through one type
//! keeps the overhead auditable and gives a single seam for virtual
//! clocks later.

use std::time::{Duration, Instant};

/// A started wall-clock timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` (~584 years).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_ns() >= b.as_nanos() as u64 || b.as_nanos() > u64::MAX as u128);
    }
}
