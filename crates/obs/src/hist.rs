//! Fixed-bucket latency histograms.
//!
//! Buckets follow a 1–2–5 ladder from 1µs to 10s (plus an overflow
//! bucket), which brackets everything the evaluation measures: XPE
//! processing is tens of µs, publication routing hundreds of µs to ms,
//! notification delay up to seconds. Sums are kept in `u128`
//! nanoseconds so means are exact — the old code divided a `Duration`
//! by `count as u32`, silently corrupting the divisor past
//! `u32::MAX` observations.

use std::time::Duration;

/// Upper bounds of the finite buckets, in nanoseconds.
pub const BUCKET_BOUNDS_NS: [u64; 22] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// Finite buckets plus the overflow (`+Inf`) bucket.
const NUM_BUCKETS: usize = BUCKET_BOUNDS_NS.len() + 1;

/// A fixed-bucket duration histogram with an exact sum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; NUM_BUCKETS],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one observation given in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(NUM_BUCKETS - 1);
        // xtask: allow(panic-path) idx is clamped to NUM_BUCKETS - 1 above
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations in nanoseconds (exact).
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Sum of all observations as a `Duration` (saturating).
    pub fn sum(&self) -> Duration {
        duration_from_ns(self.sum_ns)
    }

    /// Largest single observation.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Exact mean over all observations; zero when empty. Computed in
    /// u128 nanoseconds, so counts beyond `u32::MAX` stay correct.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            duration_from_ns(self.sum_ns / u128::from(self.count))
        }
    }

    /// The quantile `q` in `[0, 1]`, resolved to the upper bound of the
    /// bucket containing that rank (the usual fixed-bucket estimate,
    /// biased at most one bucket high). Observations past the last
    /// bound report the maximum seen. Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), clamped to [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return if idx < BUCKET_BOUNDS_NS.len() {
                    Duration::from_nanos(BUCKET_BOUNDS_NS[idx].min(self.max_ns))
                } else {
                    Duration::from_nanos(self.max_ns)
                };
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// Median (p50).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Cumulative bucket view for exporters: `(upper_bound_ns, count ≤
    /// bound)` for every finite bucket, in ascending order. The export
    /// layer appends the `+Inf` bucket from [`Histogram::count`].
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut cumulative = 0u64;
        BUCKET_BOUNDS_NS.iter().enumerate().map(move |(i, &b)| {
            cumulative += self.counts[i];
            (b, cumulative)
        })
    }
}

fn duration_from_ns(ns: u128) -> Duration {
    const NANOS_PER_SEC: u128 = 1_000_000_000;
    let secs = u64::try_from(ns / NANOS_PER_SEC).unwrap_or(u64::MAX);
    let frac = (ns % NANOS_PER_SEC) as u32;
    Duration::new(secs, frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let mut h = Histogram::new();
        // Exactly on a bound lands in that bucket, one past it in the next.
        h.record_ns(1_000);
        h.record_ns(1_001);
        let buckets: Vec<(u64, u64)> = h.cumulative_buckets().collect();
        assert_eq!(buckets[0], (1_000, 1)); // the 1µs observation
        assert_eq!(buckets[1], (2_000, 2)); // cumulative: both
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn zero_and_overflow_observations() {
        let mut h = Histogram::new();
        h.record_ns(0); // below every bound → first bucket
        h.record_ns(u64::MAX); // past every bound → overflow bucket
        assert_eq!(h.count(), 2);
        let last_finite = h.cumulative_buckets().last().expect("buckets");
        assert_eq!(last_finite.1, 1, "overflow sample not in finite buckets");
        assert_eq!(h.max(), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn exact_mean_no_u32_truncation() {
        let mut h = Histogram::new();
        // The old Duration / (count as u32) API corrupts the divisor
        // when count wraps u32; emulate with a merged count > u32::MAX.
        let mut big = Histogram::new();
        big.record_ns(100);
        big.count = u64::from(u32::MAX) + 7;
        big.sum_ns = u128::from(big.count) * 100;
        h.merge(&big);
        assert_eq!(h.mean(), Duration::from_nanos(100));
    }

    #[test]
    fn quantiles_pick_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record_ns(900); // ≤ 1µs bucket
        }
        for _ in 0..10 {
            h.record_ns(4_500_000); // ≤ 5ms bucket
        }
        // p50 resolves to the 1µs bucket's upper bound.
        assert_eq!(h.p50(), Duration::from_micros(1));
        // p95/p99 land in the 5ms bucket, capped at the observed max.
        assert_eq!(h.p95(), Duration::from_nanos(4_500_000));
        assert_eq!(h.p99(), h.p95());
        assert_eq!(h.quantile(0.0), h.quantile(0.001));
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.sum(), Duration::ZERO);
    }

    #[test]
    fn merge_adds_counts_and_sums() {
        let mut a = Histogram::new();
        a.record(Duration::from_micros(3));
        let mut b = Histogram::new();
        b.record(Duration::from_millis(7));
        b.record(Duration::from_millis(7));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(
            a.sum(),
            Duration::from_micros(3) + 2 * Duration::from_millis(7)
        );
        assert_eq!(a.max(), Duration::from_millis(7));
    }

    #[test]
    fn mean_is_exact_for_odd_divisions() {
        let mut h = Histogram::new();
        h.record_ns(1);
        h.record_ns(2);
        h.record_ns(4);
        // (1+2+4)/3 = 2.33… → 2ns, floor division, no rounding drift.
        assert_eq!(h.mean(), Duration::from_nanos(2));
    }
}
