//! Transport-neutral metric snapshots and their text exporters.
//!
//! Layers assemble [`MetricFamily`] values (from a
//! [`crate::MetricsRegistry`], a `BrokerStats`, or ad-hoc gauges like
//! queue depths) and hand them to [`render_prometheus`] or
//! [`render_json`]. The Prometheus text format is the one `xdn-node`
//! serves on its control socket; the format is covered by a golden
//! snapshot test, so changes here are deliberate.

use crate::hist::Histogram;
use std::fmt::Write as _;

/// The value of one sample.
///
/// Histogram snapshots dominate the enum's size, but samples are built
/// once per scrape and dropped immediately after rendering, so the
/// uneven variants are not worth a heap indirection.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum MetricData {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time value.
    Gauge(i64),
    /// Latency distribution.
    Histogram(Histogram),
}

/// One labelled sample within a family.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Label key/value pairs, e.g. `[("kind", "publish")]`.
    pub labels: Vec<(String, String)>,
    /// The sample's value.
    pub data: MetricData,
}

/// A named metric with one or more labelled samples.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Metric name (`snake_case`, conventionally `xdn_`-prefixed).
    pub name: String,
    /// One-line description, emitted as `# HELP`.
    pub help: String,
    /// The family's samples.
    pub samples: Vec<Sample>,
}

impl MetricFamily {
    /// An empty family.
    pub fn new(name: &str, help: &str) -> Self {
        MetricFamily {
            name: name.to_owned(),
            help: help.to_owned(),
            samples: Vec::new(),
        }
    }

    /// A family holding a single unlabelled counter.
    pub fn counter(name: &str, help: &str, value: u64) -> Self {
        let mut f = Self::new(name, help);
        f.push(&[], MetricData::Counter(value));
        f
    }

    /// A family holding a single unlabelled gauge.
    pub fn gauge(name: &str, help: &str, value: i64) -> Self {
        let mut f = Self::new(name, help);
        f.push(&[], MetricData::Gauge(value));
        f
    }

    /// A family holding a single unlabelled histogram.
    pub fn histogram(name: &str, help: &str, hist: Histogram) -> Self {
        let mut f = Self::new(name, help);
        f.push(&[], MetricData::Histogram(hist));
        f
    }

    /// Appends one sample.
    pub fn push(&mut self, labels: &[(&str, &str)], data: MetricData) {
        self.samples.push(Sample {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            data,
        });
    }
}

/// Renders families in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers, one line per sample,
/// histograms expanded into cumulative `_bucket{le=…}` series plus
/// `_sum` and `_count`. Durations are expressed in seconds, the
/// Prometheus convention.
pub fn render_prometheus(families: &[MetricFamily]) -> String {
    let mut out = String::new();
    for family in families {
        if !family.help.is_empty() {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
        }
        let type_name = match family.samples.first().map(|s| &s.data) {
            Some(MetricData::Counter(_)) | None => "counter",
            Some(MetricData::Gauge(_)) => "gauge",
            Some(MetricData::Histogram(_)) => "histogram",
        };
        let _ = writeln!(out, "# TYPE {} {}", family.name, type_name);
        for sample in &family.samples {
            match &sample.data {
                MetricData::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        family.name,
                        fmt_labels(&sample.labels, None),
                        v
                    );
                }
                MetricData::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        family.name,
                        fmt_labels(&sample.labels, None),
                        v
                    );
                }
                MetricData::Histogram(h) => {
                    for (bound_ns, cumulative) in h.cumulative_buckets() {
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            family.name,
                            fmt_labels(&sample.labels, Some(&fmt_seconds(u128::from(bound_ns)))),
                            cumulative
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        family.name,
                        fmt_labels(&sample.labels, Some("+Inf")),
                        h.count()
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        family.name,
                        fmt_labels(&sample.labels, None),
                        fmt_seconds(h.sum_ns())
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        family.name,
                        fmt_labels(&sample.labels, None),
                        h.count()
                    );
                }
            }
        }
    }
    out
}

/// Renders families as one JSON object: `{"name": {"labels…": value}}`
/// with histograms summarised as count/sum/mean/p50/p95/p99 (seconds).
/// Meant for quick machine consumption in tests and scripts, not as a
/// stable wire format.
pub fn render_json(families: &[MetricFamily]) -> String {
    let mut out = String::from("{");
    let mut first_family = true;
    for family in families {
        if !first_family {
            out.push(',');
        }
        first_family = false;
        let _ = write!(out, "{}:[", json_string(&family.name));
        let mut first_sample = true;
        for sample in &family.samples {
            if !first_sample {
                out.push(',');
            }
            first_sample = false;
            out.push_str("{\"labels\":{");
            let mut first_label = true;
            for (k, v) in &sample.labels {
                if !first_label {
                    out.push(',');
                }
                first_label = false;
                let _ = write!(out, "{}:{}", json_string(k), json_string(v));
            }
            out.push_str("},\"value\":");
            match &sample.data {
                MetricData::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricData::Gauge(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricData::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        h.count(),
                        fmt_seconds(h.sum_ns()),
                        fmt_seconds(h.mean().as_nanos()),
                        fmt_seconds(h.p50().as_nanos()),
                        fmt_seconds(h.p95().as_nanos()),
                        fmt_seconds(h.p99().as_nanos()),
                    );
                }
            }
            out.push('}');
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// Escapes a string for embedding in JSON output.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats nanoseconds as decimal seconds with no trailing zeros
/// (`1000` → `0.000001`, `5_000_000_000` → `5`). Deterministic — no
/// float formatting — so golden tests stay byte-stable.
fn fmt_seconds(ns: u128) -> String {
    const NANOS_PER_SEC: u128 = 1_000_000_000;
    let secs = ns / NANOS_PER_SEC;
    let frac = ns % NANOS_PER_SEC;
    if frac == 0 {
        return secs.to_string();
    }
    let mut frac_str = format!("{frac:09}");
    while frac_str.ends_with('0') {
        frac_str.pop();
    }
    format!("{secs}.{frac_str}")
}

fn fmt_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", k, escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn seconds_formatting_is_deterministic() {
        assert_eq!(fmt_seconds(0), "0");
        assert_eq!(fmt_seconds(1_000), "0.000001");
        assert_eq!(fmt_seconds(1_500_000), "0.0015");
        assert_eq!(fmt_seconds(5_000_000_000), "5");
        assert_eq!(fmt_seconds(5_250_000_000), "5.25");
    }

    #[test]
    fn counter_and_gauge_lines() {
        let mut msgs = MetricFamily::new("xdn_messages_total", "Messages by kind.");
        msgs.push(&[("kind", "publish")], MetricData::Counter(4));
        msgs.push(&[("kind", "subscribe")], MetricData::Counter(2));
        let depth = MetricFamily::gauge("xdn_queue_depth", "Frames queued.", 3);
        let text = render_prometheus(&[msgs, depth]);
        assert!(text.contains("# TYPE xdn_messages_total counter\n"));
        assert!(text.contains("xdn_messages_total{kind=\"publish\"} 4\n"));
        assert!(text.contains("# TYPE xdn_queue_depth gauge\n"));
        assert!(text.contains("xdn_queue_depth 3\n"));
    }

    #[test]
    fn histogram_expands_to_buckets_sum_count() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(3));
        let fam = MetricFamily::histogram("xdn_lat", "Latency.", h);
        let text = render_prometheus(&[fam]);
        assert!(text.contains("xdn_lat_bucket{le=\"0.000005\"} 2\n"));
        assert!(text.contains("xdn_lat_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("xdn_lat_sum 0.000006\n"));
        assert!(text.contains("xdn_lat_count 2\n"));
    }

    #[test]
    fn json_escapes_and_summarises() {
        let mut fam = MetricFamily::new("m", "");
        fam.push(&[("peer", "a\"b")], MetricData::Gauge(-2));
        let json = render_json(&[fam]);
        assert_eq!(
            json,
            "{\"m\":[{\"labels\":{\"peer\":\"a\\\"b\"},\"value\":-2}]}"
        );
    }
}
