//! A lock-cheap registry of named atomic metrics.
//!
//! [`Counter`]s and [`Gauge`]s are plain atomics: recording is one
//! relaxed RMW, never a lock. The registry itself takes a mutex only
//! on registration and snapshot — both off the hot path. Threaded
//! transports (`tcp.rs`, `live.rs`) clone the `Arc` handles once at
//! spawn time and poke them lock-free afterwards.

use crate::export::{MetricData, MetricFamily, Sample};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depths, connection
/// counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
}

type SeriesMap = BTreeMap<(String, Vec<(String, String)>), Metric>;

/// Named metrics, keyed by `(name, labels)`.
///
/// Registering the same name+labels twice returns the same handle, so
/// restarted supervisors keep accumulating into one series instead of
/// shadowing it.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<SeriesMap>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter `name` (no labels), creating it if needed.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Returns the counter `name` with `labels`, creating it if needed.
    ///
    /// If the series was previously registered as a gauge, the gauge is
    /// replaced — callers are expected to keep a series' type stable.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut metrics = self.lock();
        let key = (name.to_owned(), own_labels(labels));
        match metrics.get(&key) {
            Some(Metric::Counter(c)) => Arc::clone(c),
            _ => {
                let c = Arc::new(Counter::default());
                metrics.insert(key, Metric::Counter(Arc::clone(&c)));
                c
            }
        }
    }

    /// Returns the gauge `name` (no labels), creating it if needed.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Returns the gauge `name` with `labels`, creating it if needed.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut metrics = self.lock();
        let key = (name.to_owned(), own_labels(labels));
        match metrics.get(&key) {
            Some(Metric::Gauge(g)) => Arc::clone(g),
            _ => {
                let g = Arc::new(Gauge::default());
                metrics.insert(key, Metric::Gauge(Arc::clone(&g)));
                g
            }
        }
    }

    /// Snapshots every registered series into export families, one
    /// family per metric name, samples sorted by labels.
    pub fn snapshot(&self) -> Vec<MetricFamily> {
        let metrics = self.lock();
        let mut families: BTreeMap<String, MetricFamily> = BTreeMap::new();
        for ((name, labels), metric) in metrics.iter() {
            let data = match metric {
                Metric::Counter(c) => MetricData::Counter(c.get()),
                Metric::Gauge(g) => MetricData::Gauge(g.get()),
            };
            families
                .entry(name.clone())
                .or_insert_with(|| MetricFamily::new(name, ""))
                .samples
                .push(Sample {
                    labels: labels.clone(),
                    data,
                });
        }
        families.into_values().collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SeriesMap> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("frames_total");
        let b = reg.counter("frames_total");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);

        let g = reg.gauge_with("queue_depth", &[("peer", "B2")]);
        g.set(7);
        g.dec();
        assert_eq!(reg.gauge_with("queue_depth", &[("peer", "B2")]).get(), 6);
        // Different labels are a different series.
        assert_eq!(reg.gauge_with("queue_depth", &[("peer", "B3")]).get(), 0);
    }

    #[test]
    fn snapshot_groups_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter_with("msgs", &[("kind", "publish")]).add(2);
        reg.counter_with("msgs", &[("kind", "subscribe")]).inc();
        reg.gauge("up").set(1);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        let msgs = snap.iter().find(|f| f.name == "msgs").expect("msgs family");
        assert_eq!(msgs.samples.len(), 2);
        assert_eq!(msgs.samples[0].labels[0].1, "publish");
    }

    #[test]
    fn handles_record_lock_free_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("races");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("join");
        }
        assert_eq!(c.get(), 4000);
    }
}
