//! Concurrency models of the PR 1 primitives, run under `--cfg loom`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p xdn-net --test loom --release
//! ```
//!
//! Each model drives [`xdn_net::queue::FrameQueue`] — the supervisor's
//! bounded outbound buffer — through a small adversarial schedule and
//! asserts a schedule-independent postcondition. Under the vendored
//! offline `loom` stand-in, `loom::model` re-runs each closure many
//! times (`LOOM_ITERS`, default 64) with real threads, sampling
//! schedules; under the real `loom` crate the same code explores them
//! exhaustively.
#![cfg(loom)]

use std::time::Duration;
use xdn_broker::{Message, MessageKind, Publication};
use xdn_core::rtable::SubId;
use xdn_net::queue::{FrameQueue, Pop};
use xdn_xml::{DocId, PathId};

fn publication(doc: u64) -> Message {
    Message::Publish(Publication {
        doc_id: DocId(doc),
        path_id: PathId(0),
        elements: vec!["a".to_owned()],
        attributes: Vec::new(),
        doc_bytes: 16,
    })
}

fn control() -> Message {
    Message::subscribe(SubId(1), "/a".parse().expect("xpe"))
}

/// Drains the queue without blocking on timeouts longer than needed.
fn drain(q: &FrameQueue) -> Vec<MessageKind> {
    let mut kinds = Vec::new();
    while let Pop::Msg(m) = q.pop_wait(Duration::from_millis(1)) {
        kinds.push(m.kind());
    }
    kinds
}

/// Concurrent pushers on a capacity-1 queue: whatever the interleaving,
/// the control frame survives and exactly one publication is shed.
/// (Either the publication lands first and is displaced, or it arrives
/// at a full queue of control and gives way — both count one drop.)
#[test]
fn shedding_preserves_control_under_races() {
    loom::model(|| {
        let q = loom::sync::Arc::new(FrameQueue::new(1));
        let qa = q.clone();
        let qb = q.clone();
        let a = loom::thread::spawn(move || qa.push_back(publication(1)));
        let b = loom::thread::spawn(move || qb.push_back(control()));
        a.join().expect("pusher a");
        b.join().expect("pusher b");
        let kinds = drain(&q);
        assert_eq!(kinds, vec![MessageKind::Subscribe], "control survived");
        assert_eq!(q.dropped(), 1, "exactly the publication was shed");
    });
}

/// The supervisor shutdown handshake: a writer parked in `pop_wait`
/// must observe `close()` from another thread and terminate, and
/// pushes racing with the close never resurrect the queue.
#[test]
fn close_terminates_a_parked_writer() {
    loom::model(|| {
        let q = loom::sync::Arc::new(FrameQueue::new(4));
        let qw = q.clone();
        let writer = loom::thread::spawn(move || {
            let mut popped = 0u32;
            loop {
                match qw.pop_wait(Duration::from_millis(5)) {
                    Pop::Closed => return popped,
                    Pop::Msg(_) => popped += 1,
                    Pop::Idle | Pop::Down => {}
                }
            }
        });
        let qp = q.clone();
        let pusher = loom::thread::spawn(move || {
            qp.push_back(control());
            qp.push_back(publication(2));
        });
        q.close();
        pusher.join().expect("pusher");
        let popped = writer.join().expect("writer must observe Closed");
        assert!(popped <= 2, "never pops more than was pushed");
        // Whatever raced the close, the queue stays closed and empty
        // of effects: further pushes are discarded.
        q.push_back(control());
        assert!(matches!(q.pop_wait(Duration::from_millis(1)), Pop::Closed));
    });
}

/// The reader-death / reconnect epoch protocol: `mark_down` from the
/// reader thread must wake and divert the writer (`Pop::Down` wins
/// over queued frames), and `clear_down` starts a clean epoch in which
/// buffered frames flow again.
#[test]
fn down_epochs_divert_then_recover() {
    loom::model(|| {
        let q = loom::sync::Arc::new(FrameQueue::new(4));
        q.push_back(control());
        let qr = q.clone();
        let reader = loom::thread::spawn(move || qr.mark_down());
        let qw = q.clone();
        let writer = loom::thread::spawn(move || {
            // Either the frame pops before the down marker lands, or
            // the down marker wins; both are legal epochs endings.
            matches!(qw.pop_wait(Duration::from_millis(5)), Pop::Down)
        });
        reader.join().expect("reader");
        let _saw_down_first = writer.join().expect("writer");
        // The epoch is now down regardless of pop order.
        assert!(matches!(q.pop_wait(Duration::from_millis(1)), Pop::Down));
        // Reconnect: the next epoch must deliver queued + new frames.
        q.clear_down();
        q.push_back(publication(9));
        let kinds = drain(&q);
        assert!(
            kinds.contains(&MessageKind::Publish),
            "fresh epoch delivers frames, got {kinds:?}"
        );
    });
}
