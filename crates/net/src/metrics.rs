//! Network-wide measurements collected by the simulator.

use std::collections::{HashMap, HashSet};
use std::time::Duration;
use xdn_broker::{ClientId, MessageKind};
use xdn_xml::DocId;

/// One document delivery observed at a subscriber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// The receiving client.
    pub client: ClientId,
    /// The delivered document.
    pub doc: DocId,
    /// Time from the publisher's send to the first matching path's
    /// arrival — the paper's *notification delay*.
    pub delay: Duration,
    /// Broker hops the winning path traversed.
    pub hops: u32,
}

/// Aggregated counters for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    /// Messages received by brokers, by message kind. The paper's
    /// *network traffic* metric is the sum over all kinds.
    pub broker_messages: HashMap<MessageKind, u64>,
    /// Messages delivered to clients (notifications on the last hop).
    pub client_messages: u64,
    /// Document deliveries (first matching path per client and doc).
    pub notifications: Vec<Notification>,
    /// Every delivered path, when recording is enabled
    /// ([`crate::sim::Network::set_record_deliveries`]) — the input to
    /// subscriber-side document reassembly.
    pub delivered_paths: Vec<(ClientId, xdn_xml::DocPath)>,
    /// Messages discarded because a crashed broker's recovery buffer
    /// overflowed (fault injection).
    pub dropped_crash: u64,
    /// Messages discarded because a severed link's recovery buffer
    /// overflowed (fault injection).
    pub dropped_link: u64,
    pub(crate) publish_times: HashMap<DocId, Duration>,
    pub(crate) delivered: HashSet<(ClientId, DocId)>,
}

impl NetMetrics {
    /// Total messages received by all brokers — the "Network Traffic"
    /// column of Tables 2 and 3.
    pub fn network_traffic(&self) -> u64 {
        self.broker_messages.values().sum()
    }

    /// Messages of one kind received by brokers.
    pub fn traffic_of(&self, kind: MessageKind) -> u64 {
        self.broker_messages.get(&kind).copied().unwrap_or(0)
    }

    /// Mean notification delay, if any notifications were observed.
    pub fn mean_notification_delay(&self) -> Option<Duration> {
        if self.notifications.is_empty() {
            return None;
        }
        let total: Duration = self.notifications.iter().map(|n| n.delay).sum();
        Some(total / self.notifications.len() as u32)
    }

    /// Resets counters but keeps subscription state intact (used
    /// between the setup phase and the measured publish phase).
    pub fn reset(&mut self) {
        self.broker_messages.clear();
        self.client_messages = 0;
        self.notifications.clear();
        self.delivered_paths.clear();
        self.dropped_crash = 0;
        self.dropped_link = 0;
        self.publish_times.clear();
        self.delivered.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_sums_kinds() {
        let mut m = NetMetrics::default();
        m.broker_messages.insert(MessageKind::Subscribe, 3);
        m.broker_messages.insert(MessageKind::Publish, 4);
        assert_eq!(m.network_traffic(), 7);
        assert_eq!(m.traffic_of(MessageKind::Subscribe), 3);
        assert_eq!(m.traffic_of(MessageKind::Advertise), 0);
    }

    #[test]
    fn mean_delay() {
        let mut m = NetMetrics::default();
        assert!(m.mean_notification_delay().is_none());
        m.notifications.push(Notification {
            client: ClientId(1),
            doc: DocId(1),
            delay: Duration::from_millis(2),
            hops: 1,
        });
        m.notifications.push(Notification {
            client: ClientId(2),
            doc: DocId(1),
            delay: Duration::from_millis(4),
            hops: 2,
        });
        assert_eq!(m.mean_notification_delay(), Some(Duration::from_millis(3)));
    }

    #[test]
    fn reset_clears() {
        let mut m = NetMetrics::default();
        m.broker_messages.insert(MessageKind::Publish, 1);
        m.client_messages = 2;
        m.reset();
        assert_eq!(m.network_traffic(), 0);
        assert_eq!(m.client_messages, 0);
    }
}
