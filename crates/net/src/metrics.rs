//! Network-wide measurements and the sink interface transports record
//! through.
//!
//! Every transport — the discrete-event simulator (`sim.rs`), the
//! threaded live network (`live.rs`), and the TCP overlay (`tcp.rs`) —
//! reports observations through one [`MetricsSink`] interface instead
//! of poking [`NetMetrics`] fields directly. [`NetMetrics`] is the
//! canonical single-threaded implementation; [`SharedMetrics`] wraps it
//! in `Arc<Mutex<…>>` for the threaded transports.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;
use xdn_broker::{BrokerId, ClientId, KindCounters, MessageKind, Publication};
use xdn_xml::DocId;

/// One document delivery observed at a subscriber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// The receiving client.
    pub client: ClientId,
    /// The delivered document.
    pub doc: DocId,
    /// Time from the publisher's send to the first matching path's
    /// arrival — the paper's *notification delay*.
    pub delay: Duration,
    /// Broker hops the winning path traversed.
    pub hops: u32,
}

/// Which fault-injection mechanism discarded a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDrop {
    /// A crashed broker's recovery buffer overflowed.
    Crash,
    /// A severed link's recovery buffer overflowed.
    Link,
}

/// The one interface through which transports record observations.
///
/// Implementations must accept events in any order a transport can
/// produce them (e.g. a delivery for a document whose publish was never
/// recorded is counted as traffic but yields no notification).
pub trait MetricsSink {
    /// A broker received one message of `kind`.
    fn on_broker_message(&mut self, broker: BrokerId, kind: MessageKind);

    /// A client received one message of `kind` (notifications on the
    /// last hop).
    fn on_client_message(&mut self, client: ClientId, kind: MessageKind);

    /// A producer injected a document at time `at` (transport clock).
    fn on_publish_injected(&mut self, doc: DocId, at: Duration);

    /// One publication path arrived at `client` at time `at` after
    /// `hops` broker hops.
    fn on_delivery(&mut self, client: ClientId, publication: &Publication, at: Duration, hops: u32);

    /// Fault injection discarded a message.
    fn on_fault_drop(&mut self, reason: FaultDrop);

    /// A bounded buffer toward `peer` shed one frame of payload kind
    /// `kind` — the loss that used to vanish into an opaque drop total.
    fn on_frame_shed(&mut self, peer: BrokerId, kind: MessageKind) {
        let _ = (peer, kind);
    }
}

/// Aggregated counters for one run.
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    /// Messages received by brokers, by message kind. The paper's
    /// *network traffic* metric is the sum over all kinds. Shares
    /// [`KindCounters`] with `BrokerStats` — one per-kind structure
    /// workspace-wide.
    pub broker_messages: KindCounters,
    /// Messages delivered to clients (notifications on the last hop).
    pub client_messages: u64,
    /// Document deliveries (first matching path per client and doc).
    pub notifications: Vec<Notification>,
    /// Every delivered path, when path recording is enabled
    /// ([`NetMetrics::set_record_paths`]) — the input to
    /// subscriber-side document reassembly.
    pub delivered_paths: Vec<(ClientId, xdn_xml::DocPath)>,
    /// Messages discarded because a crashed broker's recovery buffer
    /// overflowed (fault injection).
    pub dropped_crash: u64,
    /// Messages discarded because a severed link's recovery buffer
    /// overflowed (fault injection).
    pub dropped_link: u64,
    /// Frames shed by bounded buffers, per destination peer and payload
    /// kind ([`MetricsSink::on_frame_shed`]).
    pub shed_frames: BTreeMap<BrokerId, KindCounters>,
    record_paths: bool,
    publish_times: HashMap<DocId, Duration>,
    delivered: HashSet<(ClientId, DocId)>,
}

impl NetMetrics {
    /// Total messages received by all brokers — the "Network Traffic"
    /// column of Tables 2 and 3.
    pub fn network_traffic(&self) -> u64 {
        self.broker_messages.total()
    }

    /// Messages of one kind received by brokers.
    pub fn traffic_of(&self, kind: MessageKind) -> u64 {
        self.broker_messages.get(kind)
    }

    /// Exact mean notification delay, if any notifications were
    /// observed. Summed in u128 nanoseconds — the old implementation
    /// divided by `len() as u32`, corrupting the divisor beyond
    /// `u32::MAX` notifications.
    pub fn mean_notification_delay(&self) -> Option<Duration> {
        if self.notifications.is_empty() {
            return None;
        }
        let total_ns: u128 = self.notifications.iter().map(|n| n.delay.as_nanos()).sum();
        let mean_ns = total_ns / self.notifications.len() as u128;
        Some(Duration::new(
            u64::try_from(mean_ns / 1_000_000_000).unwrap_or(u64::MAX),
            (mean_ns % 1_000_000_000) as u32,
        ))
    }

    /// Enables or disables accumulation of every delivered path into
    /// [`NetMetrics::delivered_paths`]. Off by default: long runs would
    /// otherwise accumulate every path.
    pub fn set_record_paths(&mut self, on: bool) {
        self.record_paths = on;
    }

    /// Whether delivered paths are being recorded.
    pub fn record_paths(&self) -> bool {
        self.record_paths
    }

    /// Publications shed by bounded buffers, summed over every peer —
    /// the headline "did we silently lose documents" number.
    pub fn shed_publications(&self) -> u64 {
        self.shed_frames
            .values()
            .map(|c| c.get(MessageKind::Publish))
            .sum()
    }

    /// Shed counters for one peer, zero if it never shed.
    pub fn shed_of(&self, peer: BrokerId) -> KindCounters {
        self.shed_frames.get(&peer).copied().unwrap_or_default()
    }

    /// Resets every counter and buffer for a fresh measurement phase.
    ///
    /// Semantics (relied on by the setup-vs-measured-phase workflow in
    /// benches and tests): routing state in the network is untouched —
    /// only *measurements* are cleared. That includes the per-document
    /// publish timestamps and the first-delivery dedup set, so a
    /// document published before `reset` produces no notification
    /// afterwards, and a re-publication after `reset` is measured
    /// fresh. The [`NetMetrics::record_paths`] flag is configuration,
    /// not measurement, and survives.
    pub fn reset(&mut self) {
        self.broker_messages.clear();
        self.client_messages = 0;
        self.notifications.clear();
        self.delivered_paths.clear();
        self.dropped_crash = 0;
        self.dropped_link = 0;
        self.shed_frames.clear();
        self.publish_times.clear();
        self.delivered.clear();
    }
}

impl MetricsSink for NetMetrics {
    fn on_broker_message(&mut self, _broker: BrokerId, kind: MessageKind) {
        self.broker_messages.record(kind);
    }

    fn on_client_message(&mut self, _client: ClientId, _kind: MessageKind) {
        self.client_messages += 1;
    }

    fn on_publish_injected(&mut self, doc: DocId, at: Duration) {
        self.publish_times.insert(doc, at);
    }

    fn on_delivery(
        &mut self,
        client: ClientId,
        publication: &Publication,
        at: Duration,
        hops: u32,
    ) {
        if self.record_paths {
            let path = xdn_xml::DocPath::new(
                publication.doc_id,
                publication.path_id,
                publication.elements.clone(),
            )
            .with_attributes(
                if publication.attributes.len() == publication.elements.len() {
                    publication.attributes.clone()
                } else {
                    vec![Vec::new(); publication.elements.len()]
                },
            );
            self.delivered_paths.push((client, path));
        }
        if self.delivered.insert((client, publication.doc_id)) {
            if let Some(&sent) = self.publish_times.get(&publication.doc_id) {
                self.notifications.push(Notification {
                    client,
                    doc: publication.doc_id,
                    delay: at.saturating_sub(sent),
                    hops,
                });
            }
        }
    }

    fn on_fault_drop(&mut self, reason: FaultDrop) {
        match reason {
            FaultDrop::Crash => self.dropped_crash += 1,
            FaultDrop::Link => self.dropped_link += 1,
        }
    }

    fn on_frame_shed(&mut self, peer: BrokerId, kind: MessageKind) {
        self.shed_frames.entry(peer).or_default().record(kind);
    }
}

/// Thread-shared [`NetMetrics`] for the threaded transports: every
/// clone records into the same underlying counters through the same
/// [`MetricsSink`] interface the simulator uses.
#[derive(Debug, Clone, Default)]
pub struct SharedMetrics(Arc<Mutex<NetMetrics>>);

impl SharedMetrics {
    /// Fresh shared metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the current values.
    pub fn snapshot(&self) -> NetMetrics {
        self.lock().clone()
    }

    /// Runs `f` with the underlying metrics locked (e.g. for
    /// [`NetMetrics::reset`] between phases).
    pub fn with<R>(&self, f: impl FnOnce(&mut NetMetrics) -> R) -> R {
        f(&mut self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, NetMetrics> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl MetricsSink for SharedMetrics {
    fn on_broker_message(&mut self, broker: BrokerId, kind: MessageKind) {
        self.lock().on_broker_message(broker, kind);
    }

    fn on_client_message(&mut self, client: ClientId, kind: MessageKind) {
        self.lock().on_client_message(client, kind);
    }

    fn on_publish_injected(&mut self, doc: DocId, at: Duration) {
        self.lock().on_publish_injected(doc, at);
    }

    fn on_delivery(
        &mut self,
        client: ClientId,
        publication: &Publication,
        at: Duration,
        hops: u32,
    ) {
        self.lock().on_delivery(client, publication, at, hops);
    }

    fn on_fault_drop(&mut self, reason: FaultDrop) {
        self.lock().on_fault_drop(reason);
    }

    fn on_frame_shed(&mut self, peer: BrokerId, kind: MessageKind) {
        self.lock().on_frame_shed(peer, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdn_xml::PathId;

    fn publication(doc: u64) -> Publication {
        Publication {
            doc_id: DocId(doc),
            path_id: PathId(0),
            elements: vec!["a".into(), "b".into()],
            attributes: Vec::new(),
            doc_bytes: 10,
        }
    }

    #[test]
    fn traffic_sums_kinds() {
        let mut m = NetMetrics::default();
        for _ in 0..3 {
            m.on_broker_message(BrokerId(0), MessageKind::Subscribe);
        }
        for _ in 0..4 {
            m.on_broker_message(BrokerId(1), MessageKind::Publish);
        }
        assert_eq!(m.network_traffic(), 7);
        assert_eq!(m.traffic_of(MessageKind::Subscribe), 3);
        assert_eq!(m.traffic_of(MessageKind::Advertise), 0);
    }

    #[test]
    fn mean_delay_is_exact() {
        let mut m = NetMetrics::default();
        assert!(m.mean_notification_delay().is_none());
        m.on_publish_injected(DocId(1), Duration::ZERO);
        m.on_delivery(ClientId(1), &publication(1), Duration::from_millis(2), 1);
        m.on_delivery(ClientId(2), &publication(1), Duration::from_millis(5), 2);
        assert_eq!(
            m.mean_notification_delay(),
            Some(Duration::from_micros(3500))
        );
    }

    #[test]
    fn delivery_dedups_per_client_and_doc() {
        let mut m = NetMetrics::default();
        m.on_publish_injected(DocId(1), Duration::ZERO);
        m.on_delivery(ClientId(1), &publication(1), Duration::from_millis(1), 1);
        m.on_delivery(ClientId(1), &publication(1), Duration::from_millis(2), 1);
        assert_eq!(
            m.notifications.len(),
            1,
            "second path is not a new delivery"
        );
        assert_eq!(m.notifications[0].delay, Duration::from_millis(1));
        // Unknown doc: traffic but no notification.
        m.on_delivery(ClientId(1), &publication(9), Duration::from_millis(3), 1);
        assert_eq!(m.notifications.len(), 1);
    }

    #[test]
    fn path_recording_is_opt_in() {
        let mut m = NetMetrics::default();
        m.on_publish_injected(DocId(1), Duration::ZERO);
        m.on_delivery(ClientId(1), &publication(1), Duration::from_millis(1), 1);
        assert!(m.delivered_paths.is_empty());
        m.set_record_paths(true);
        m.on_delivery(ClientId(2), &publication(1), Duration::from_millis(1), 1);
        assert_eq!(m.delivered_paths.len(), 1);
    }

    #[test]
    fn reset_clears_measurements_keeps_config() {
        let mut m = NetMetrics::default();
        m.set_record_paths(true);
        m.on_broker_message(BrokerId(0), MessageKind::Publish);
        m.on_client_message(ClientId(1), MessageKind::Publish);
        m.on_publish_injected(DocId(1), Duration::ZERO);
        m.on_delivery(ClientId(1), &publication(1), Duration::from_millis(1), 1);
        m.on_fault_drop(FaultDrop::Crash);
        m.reset();
        assert_eq!(m.network_traffic(), 0);
        assert_eq!(m.client_messages, 0);
        assert!(m.notifications.is_empty());
        assert!(m.delivered_paths.is_empty());
        assert_eq!(m.dropped_crash, 0);
        assert!(m.record_paths(), "configuration survives reset");
        // Deliveries of pre-reset documents produce no notification…
        m.on_delivery(ClientId(1), &publication(1), Duration::from_millis(2), 1);
        assert!(m.notifications.is_empty());
        // …while documents published in the measured phase are timed
        // against their fresh publish timestamp.
        m.on_publish_injected(DocId(2), Duration::from_millis(3));
        m.on_delivery(ClientId(1), &publication(2), Duration::from_millis(5), 1);
        assert_eq!(m.notifications.len(), 1);
        assert_eq!(m.notifications[0].delay, Duration::from_millis(2));
    }

    #[test]
    fn frame_sheds_tracked_per_peer_and_kind() {
        let mut m = NetMetrics::default();
        m.on_frame_shed(BrokerId(2), MessageKind::Publish);
        m.on_frame_shed(BrokerId(2), MessageKind::Publish);
        m.on_frame_shed(BrokerId(3), MessageKind::Subscribe);
        assert_eq!(m.shed_publications(), 2);
        assert_eq!(m.shed_of(BrokerId(2)).get(MessageKind::Publish), 2);
        assert_eq!(m.shed_of(BrokerId(3)).get(MessageKind::Subscribe), 1);
        assert_eq!(m.shed_of(BrokerId(9)).total(), 0);
        m.reset();
        assert_eq!(m.shed_publications(), 0);
    }

    #[test]
    fn shared_metrics_aggregate_across_clones() {
        let shared = SharedMetrics::new();
        let mut a = shared.clone();
        let mut b = shared.clone();
        let t = std::thread::spawn(move || {
            for _ in 0..10 {
                a.on_broker_message(BrokerId(0), MessageKind::Publish);
            }
        });
        for _ in 0..5 {
            b.on_broker_message(BrokerId(1), MessageKind::Subscribe);
        }
        t.join().expect("join");
        let snap = shared.snapshot();
        assert_eq!(snap.network_traffic(), 15);
        assert_eq!(snap.traffic_of(MessageKind::Publish), 10);
    }
}
