//! Deterministic fault injection and zero-loss delivery proofs.
//!
//! A [`FaultScript`] is a seeded, reproducible schedule of crashes,
//! restarts, and link flaps over a simulated overlay. Every fault the
//! generator injects is repaired before the script ends, so a run is a
//! *recovery* experiment: after [`run_script`] returns, the delivery
//! multiset must equal a never-failed run of the same workload. The
//! [`InvariantReport`] states that equality precisely — no missing
//! notifications, no duplicates, no spurious extras — and serializes
//! to JSON so CI can archive the proof per seed.
//!
//! Scripts never crash *protected* brokers (the ones clients attach
//! to): frames between a client and its home broker ride no sequenced
//! link, so losing the home broker loses client state the overlay is
//! not responsible for. Every broker-to-broker hop, by contrast, is
//! covered by the retransmit/ack machinery and fair game.

use crate::sim::Network;
use std::collections::BTreeMap;
use std::fmt;
use xdn_broker::{BrokerId, ClientId};
use xdn_xml::{DocId, PathId};

/// One fault (or repair) action against the simulated overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Crash a broker (routing state lost, inbound traffic parks).
    Crash(BrokerId),
    /// Restart a crashed broker (sync rebuilds state, parked replays).
    Restart(BrokerId),
    /// Sever a broker⇄broker link (crossing traffic parks).
    DropLink(BrokerId, BrokerId),
    /// Restore a severed link (sync + parked replay).
    RestoreLink(BrokerId, BrokerId),
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOp::Crash(b) => write!(f, "crash {b}"),
            FaultOp::Restart(b) => write!(f, "restart {b}"),
            FaultOp::DropLink(a, b) => write!(f, "drop-link {a}-{b}"),
            FaultOp::RestoreLink(a, b) => write!(f, "restore-link {a}-{b}"),
        }
    }
}

/// A reproducible fault schedule: `(slot, op)` pairs over `slots`
/// workload slots. Ops at slot `i` are applied *before* slot `i`'s
/// publications are injected; ops at slot `slots` form the repair
/// tail, applied after the last injection. The generator guarantees
/// every crash has a later restart and every drop a later restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultScript {
    /// The seed the script was generated from.
    pub seed: u64,
    /// Number of workload slots the script spans.
    pub slots: usize,
    /// The schedule, ordered by slot.
    pub ops: Vec<(usize, FaultOp)>,
}

impl fmt::Display for FaultScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={} slots={}:", self.seed, self.slots)?;
        for (slot, op) in &self.ops {
            write!(f, " [{slot}] {op};")?;
        }
        Ok(())
    }
}

/// xorshift64*: a seeded, dependency-free PRNG. Not cryptographic —
/// only reproducibility matters here.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl FaultScript {
    /// Generates a deterministic script for an overlay of `brokers`
    /// connected by `links`. The same arguments always produce the
    /// same script. Brokers in `protected` are never crashed (crash a
    /// broker clients attach to and the lost frames are the client's
    /// problem, not the overlay's). Fault counts scale with what the
    /// topology offers: up to two crashes and two link flaps, each
    /// repaired at a strictly later slot, everything repaired by the
    /// end of the script.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn generate(
        seed: u64,
        brokers: &[BrokerId],
        links: &[(BrokerId, BrokerId)],
        slots: usize,
        protected: &[BrokerId],
    ) -> FaultScript {
        assert!(slots > 0, "a script needs at least one workload slot");
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut victims: Vec<BrokerId> = brokers
            .iter()
            .copied()
            .filter(|b| !protected.contains(b))
            .collect();
        let mut flappable: Vec<(BrokerId, BrokerId)> = links.to_vec();
        let mut ops: Vec<(usize, FaultOp)> = Vec::new();

        let n_crashes = victims.len().min(1 + (next_rand(&mut state) % 2) as usize);
        for _ in 0..n_crashes {
            let pick = (next_rand(&mut state) as usize) % victims.len();
            let victim = victims.swap_remove(pick);
            let fail = (next_rand(&mut state) as usize) % slots;
            let repair = fail + 1 + (next_rand(&mut state) as usize) % (slots - fail);
            ops.push((fail, FaultOp::Crash(victim)));
            ops.push((repair, FaultOp::Restart(victim)));
        }

        let n_flaps = flappable
            .len()
            .min(1 + (next_rand(&mut state) % 2) as usize);
        for _ in 0..n_flaps {
            let pick = (next_rand(&mut state) as usize) % flappable.len();
            let (a, b) = flappable.swap_remove(pick);
            let fail = (next_rand(&mut state) as usize) % slots;
            let repair = fail + 1 + (next_rand(&mut state) as usize) % (slots - fail);
            ops.push((fail, FaultOp::DropLink(a, b)));
            ops.push((repair, FaultOp::RestoreLink(a, b)));
        }

        // Stable order by slot; repairs of a fault sort after it
        // because their slot is strictly greater.
        ops.sort_by_key(|(slot, _)| *slot);
        FaultScript { seed, slots, ops }
    }

    /// The ops scheduled for `slot`, in schedule order.
    pub fn ops_at(&self, slot: usize) -> impl Iterator<Item = FaultOp> + '_ {
        self.ops
            .iter()
            .filter(move |(s, _)| *s == slot)
            .map(|(_, op)| *op)
    }
}

/// Applies one op to the network.
fn apply(net: &mut Network, op: FaultOp) {
    match op {
        FaultOp::Crash(b) => net.crash_broker(b),
        FaultOp::Restart(b) => net.restart_broker(b),
        FaultOp::DropLink(a, b) => net.drop_link(a, b),
        FaultOp::RestoreLink(a, b) => net.restore_link(a, b),
    }
}

/// Runs `script` against `net`: for each workload slot, applies the
/// slot's faults, calls `inject` to publish that slot's share of the
/// workload, and drains the event queue; then applies the repair tail
/// (slot index `script.slots`) and drains again. On return every
/// fault has been repaired and all recoverable traffic replayed.
pub fn run_script(
    net: &mut Network,
    script: &FaultScript,
    mut inject: impl FnMut(&mut Network, usize),
) {
    for slot in 0..script.slots {
        for op in script.ops_at(slot) {
            apply(net, op);
        }
        inject(net, slot);
        net.run();
    }
    for op in script.ops_at(script.slots) {
        apply(net, op);
    }
    net.run();
}

/// The delivery multiset: every `(client, doc, path)` notification
/// with its delivery count. Requires the network to have been built
/// with [`Network::set_record_deliveries`] on.
pub fn delivery_counts(net: &Network) -> BTreeMap<(ClientId, DocId, PathId), usize> {
    let mut counts = BTreeMap::new();
    for (client, path) in &net.metrics().delivered_paths {
        *counts
            .entry((*client, path.doc_id, path.path_id))
            .or_insert(0) += 1;
    }
    counts
}

/// The verdict of comparing a chaos run's deliveries against a
/// never-failed reference run, plus the reliability counters that
/// explain *how* the run recovered. Serializes to JSON for CI
/// artifacts ([`InvariantReport::to_json`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantReport {
    /// Seed of the fault script the run executed.
    pub seed: u64,
    /// Human-readable rendering of the executed script.
    pub script: String,
    /// Notifications the reference run produced but the chaos run
    /// lost. Must be empty.
    pub missing: Vec<String>,
    /// Notifications the chaos run delivered more than once. Must be
    /// empty.
    pub duplicates: Vec<String>,
    /// Notifications the chaos run produced that the reference run
    /// did not. Must be empty.
    pub extra: Vec<String>,
    /// Distinct notifications the reference run expects.
    pub expected_total: usize,
    /// Distinct notifications the chaos run delivered.
    pub delivered_total: usize,
    /// Frames replayed from retransmit buffers, summed over brokers.
    pub retransmits: u64,
    /// Duplicate frames suppressed by dedup windows, summed.
    pub dup_frames: u64,
    /// Stale-epoch frames dropped, summed.
    pub stale_frames: u64,
}

fn render_key((client, doc, path): &(ClientId, DocId, PathId)) -> String {
    format!("client={} doc={} path={}", client.0, doc.0, path.0)
}

impl InvariantReport {
    /// True when the chaos run's deliveries are exactly the reference
    /// run's: nothing missing, nothing duplicated, nothing extra.
    pub fn ok(&self) -> bool {
        self.missing.is_empty() && self.duplicates.is_empty() && self.extra.is_empty()
    }

    /// Hand-rolled JSON rendering (no serde in this crate). All
    /// strings the report emits are built from integers and fixed
    /// words, so no escaping is needed.
    pub fn to_json(&self) -> String {
        fn array(items: &[String]) -> String {
            let quoted: Vec<String> = items.iter().map(|s| format!("\"{s}\"")).collect();
            format!("[{}]", quoted.join(","))
        }
        format!(
            concat!(
                "{{\"seed\":{},\"ok\":{},\"script\":\"{}\",",
                "\"expected_total\":{},\"delivered_total\":{},",
                "\"retransmits\":{},\"dup_frames\":{},\"stale_frames\":{},",
                "\"missing\":{},\"duplicates\":{},\"extra\":{}}}"
            ),
            self.seed,
            self.ok(),
            self.script,
            self.expected_total,
            self.delivered_total,
            self.retransmits,
            self.dup_frames,
            self.stale_frames,
            array(&self.missing),
            array(&self.duplicates),
            array(&self.extra),
        )
    }
}

/// Compares the chaos run in `net` against the `expected` delivery
/// multiset of a never-failed reference run and assembles the
/// [`InvariantReport`], folding in the overlay-wide reliability
/// counters.
pub fn check_exact_delivery(
    script: &FaultScript,
    expected: &BTreeMap<(ClientId, DocId, PathId), usize>,
    net: &Network,
) -> InvariantReport {
    let got = delivery_counts(net);
    let missing = expected
        .keys()
        .filter(|k| !got.contains_key(*k))
        .map(render_key)
        .collect();
    let duplicates = got
        .iter()
        .filter(|(_, &n)| n > 1)
        .map(|(k, _)| render_key(k))
        .collect();
    let extra = got
        .keys()
        .filter(|k| !expected.contains_key(*k))
        .map(render_key)
        .collect();
    let (mut retransmits, mut dup_frames, mut stale_frames) = (0, 0, 0);
    for id in net.broker_ids() {
        let stats = net.broker(id).stats();
        retransmits += stats.retransmits;
        dup_frames += stats.dup_frames;
        stale_frames += stats.stale_frames;
    }
    InvariantReport {
        seed: script.seed,
        script: script.to_string(),
        missing,
        duplicates,
        extra,
        expected_total: expected.len(),
        delivered_total: got.len(),
        retransmits,
        dup_frames,
        stale_frames,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<BrokerId> {
        (0..n).map(BrokerId).collect()
    }

    fn chain_links(brokers: &[BrokerId]) -> Vec<(BrokerId, BrokerId)> {
        brokers.windows(2).map(|w| (w[0], w[1])).collect()
    }

    #[test]
    fn generation_is_deterministic() {
        let brokers = ids(5);
        let links = chain_links(&brokers);
        let protected = [brokers[0], brokers[4]];
        let a = FaultScript::generate(42, &brokers, &links, 4, &protected);
        let b = FaultScript::generate(42, &brokers, &links, 4, &protected);
        assert_eq!(a, b, "same seed must yield the same script");
        let c = FaultScript::generate(43, &brokers, &links, 4, &protected);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn every_fault_is_repaired_and_protected_brokers_survive() {
        let brokers = ids(7);
        let links = chain_links(&brokers);
        let protected = [brokers[0], brokers[6]];
        for seed in 0..50u64 {
            let s = FaultScript::generate(seed, &brokers, &links, 5, &protected);
            let mut down: Vec<BrokerId> = Vec::new();
            let mut dropped: Vec<(BrokerId, BrokerId)> = Vec::new();
            for (slot, op) in &s.ops {
                assert!(*slot <= s.slots, "op beyond the repair tail: {op}");
                match op {
                    FaultOp::Crash(b) => {
                        assert!(!protected.contains(b), "protected broker crashed");
                        assert!(!down.contains(b), "double crash of {b}");
                        down.push(*b);
                    }
                    FaultOp::Restart(b) => {
                        let pos = down.iter().position(|x| x == b).expect("restart of up");
                        down.remove(pos);
                    }
                    FaultOp::DropLink(a, b) => {
                        assert!(!dropped.contains(&(*a, *b)), "double drop");
                        dropped.push((*a, *b));
                    }
                    FaultOp::RestoreLink(a, b) => {
                        let pos = dropped
                            .iter()
                            .position(|x| x == &(*a, *b))
                            .expect("restore of live link");
                        dropped.remove(pos);
                    }
                }
            }
            assert!(down.is_empty(), "seed {seed}: unrepaired crash");
            assert!(dropped.is_empty(), "seed {seed}: unrepaired link");
            assert!(!s.ops.is_empty(), "seed {seed}: script does nothing");
        }
    }

    #[test]
    fn repair_follows_fault_in_slot_order() {
        let brokers = ids(5);
        let links = chain_links(&brokers);
        for seed in 0..20u64 {
            let s = FaultScript::generate(seed, &brokers, &links, 3, &[brokers[0]]);
            for (slot, op) in &s.ops {
                let target_repair = match op {
                    FaultOp::Crash(b) => Some(FaultOp::Restart(*b)),
                    FaultOp::DropLink(a, b) => Some(FaultOp::RestoreLink(*a, *b)),
                    _ => None,
                };
                if let Some(repair) = target_repair {
                    let repair_slot = s
                        .ops
                        .iter()
                        .find(|(_, o)| *o == repair)
                        .map(|(s, _)| *s)
                        .expect("repair exists");
                    assert!(repair_slot > *slot, "repair must be strictly later");
                }
            }
        }
    }

    #[test]
    fn report_json_shape() {
        let script = FaultScript {
            seed: 7,
            slots: 2,
            ops: vec![
                (0, FaultOp::Crash(BrokerId(1))),
                (1, FaultOp::Restart(BrokerId(1))),
            ],
        };
        let report = InvariantReport {
            seed: 7,
            script: script.to_string(),
            missing: vec!["client=1 doc=2 path=3".into()],
            duplicates: Vec::new(),
            extra: Vec::new(),
            expected_total: 4,
            delivered_total: 3,
            retransmits: 2,
            dup_frames: 1,
            stale_frames: 0,
        };
        assert!(!report.ok());
        let json = report.to_json();
        assert!(json.starts_with("{\"seed\":7,\"ok\":false,"), "{json}");
        assert!(
            json.contains("\"missing\":[\"client=1 doc=2 path=3\"]"),
            "{json}"
        );
        assert!(json.contains("\"duplicates\":[]"), "{json}");
        assert!(json.ends_with('}'), "{json}");
    }
}
