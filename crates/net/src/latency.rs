//! Link-latency models.
//!
//! Delay of one message over one link = propagation base + bytes /
//! bandwidth. Per-link bases are drawn deterministically from the link
//! endpoints, so a given topology always sees the same latencies —
//! experiments are reproducible while still heterogeneous.

use std::time::Duration;
use xdn_broker::BrokerId;

/// A model assigning a transmission delay to each (link, message size).
pub trait LatencyModel: Send {
    /// Delay for `bytes` sent from `from` to `to`.
    fn link_delay(&mut self, from: BrokerId, to: BrokerId, bytes: usize) -> Duration;

    /// Delay between a broker and a locally attached client (default:
    /// negligible loopback).
    fn client_delay(&mut self, _broker: BrokerId, _bytes: usize) -> Duration {
        Duration::from_micros(20)
    }
}

/// The 20-node cluster of the paper's §5: sub-millisecond LAN latency
/// and gigabit-class bandwidth.
#[derive(Debug, Clone)]
pub struct ClusterLan {
    /// Propagation delay per hop.
    pub base: Duration,
    /// Transfer rate in bytes per second.
    pub bytes_per_sec: u64,
}

impl Default for ClusterLan {
    fn default() -> Self {
        ClusterLan {
            base: Duration::from_micros(120),
            bytes_per_sec: 120_000_000,
        }
    }
}

impl LatencyModel for ClusterLan {
    fn link_delay(&mut self, _from: BrokerId, _to: BrokerId, bytes: usize) -> Duration {
        self.base + Duration::from_nanos(bytes as u64 * 1_000_000_000 / self.bytes_per_sec)
    }
}

/// A PlanetLab-like WAN: heterogeneous per-link propagation delays
/// (drawn deterministically per link from `min_base..max_base`) and
/// modest bandwidth, with multiplicative jitter reproducing the
/// performance variation the paper reports (up to ~15 % per point).
#[derive(Debug, Clone)]
pub struct PlanetLabWan {
    /// Smallest per-link propagation delay.
    pub min_base: Duration,
    /// Largest per-link propagation delay.
    pub max_base: Duration,
    /// Transfer rate in bytes per second.
    pub bytes_per_sec: u64,
    /// Maximum multiplicative jitter (0.15 = ±15 %).
    pub jitter: f64,
    /// Seed for per-link draws and jitter.
    pub seed: u64,
    counter: u64,
}

impl PlanetLabWan {
    /// A default model with a different seed (different link draws).
    pub fn with_seed(seed: u64) -> Self {
        PlanetLabWan {
            seed,
            ..Default::default()
        }
    }
}

impl Default for PlanetLabWan {
    fn default() -> Self {
        PlanetLabWan {
            min_base: Duration::from_micros(300),
            max_base: Duration::from_millis(2),
            bytes_per_sec: 12_000_000,
            jitter: 0.15,
            seed: 0x9e3779b97f4a7c15,
            counter: 0,
        }
    }
}

impl PlanetLabWan {
    fn hash(mut x: u64) -> u64 {
        // SplitMix64 finalizer: cheap, deterministic, well mixed.
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }
}

impl LatencyModel for PlanetLabWan {
    fn link_delay(&mut self, from: BrokerId, to: BrokerId, bytes: usize) -> Duration {
        // Symmetric, per-link stable base.
        let (a, b) = if from.0 <= to.0 {
            (from.0, to.0)
        } else {
            (to.0, from.0)
        };
        let h = Self::hash(self.seed ^ ((a as u64) << 32 | b as u64));
        let span = self.max_base.as_nanos() as u64 - self.min_base.as_nanos() as u64;
        let base_ns = self.min_base.as_nanos() as u64 + h % span.max(1);
        // Per-message jitter.
        self.counter += 1;
        let j = Self::hash(self.seed ^ self.counter.rotate_left(17));
        let jitter = 1.0 + self.jitter * ((j % 2001) as f64 / 1000.0 - 1.0);
        let transfer_ns = bytes as u64 * 1_000_000_000 / self.bytes_per_sec;
        let total = ((base_ns + transfer_ns) as f64 * jitter) as u64;
        Duration::from_nanos(total)
    }

    fn client_delay(&mut self, _broker: BrokerId, bytes: usize) -> Duration {
        Duration::from_micros(50)
            + Duration::from_nanos(bytes as u64 * 1_000_000_000 / self.bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_scales_with_bytes() {
        let mut lan = ClusterLan::default();
        let small = lan.link_delay(BrokerId(0), BrokerId(1), 100);
        let big = lan.link_delay(BrokerId(0), BrokerId(1), 1_000_000);
        assert!(big > small);
        assert!(small >= lan.base);
    }

    #[test]
    fn wan_is_per_link_stable_and_symmetric() {
        let mk = || PlanetLabWan {
            jitter: 0.0,
            ..Default::default()
        };
        let d1 = mk().link_delay(BrokerId(1), BrokerId(2), 1000);
        let d2 = mk().link_delay(BrokerId(1), BrokerId(2), 1000);
        let d3 = mk().link_delay(BrokerId(2), BrokerId(1), 1000);
        assert_eq!(d1, d2);
        assert_eq!(d1, d3);
    }

    #[test]
    fn wan_links_are_heterogeneous() {
        let mut wan = PlanetLabWan {
            jitter: 0.0,
            ..Default::default()
        };
        let d12 = wan.link_delay(BrokerId(1), BrokerId(2), 1000);
        let d34 = wan.link_delay(BrokerId(3), BrokerId(4), 1000);
        assert_ne!(d12, d34, "different links should draw different bases");
    }

    #[test]
    fn wan_jitter_varies_per_message() {
        let mut wan = PlanetLabWan::default();
        let a = wan.link_delay(BrokerId(1), BrokerId(2), 1000);
        let b = wan.link_delay(BrokerId(1), BrokerId(2), 1000);
        assert_ne!(a, b, "jitter should differ across messages");
        // Bounded by the configured jitter.
        let ratio = a.as_nanos() as f64 / b.as_nanos() as f64;
        assert!(ratio > 0.6 && ratio < 1.6);
    }

    #[test]
    fn wan_delay_within_bounds_without_jitter() {
        let mut wan = PlanetLabWan {
            jitter: 0.0,
            ..Default::default()
        };
        for i in 0..20u32 {
            let d = wan.link_delay(BrokerId(i), BrokerId(i + 1), 0);
            assert!(d >= wan.min_base && d <= wan.max_base);
        }
    }
}
