//! Overlay topology builders for the paper's experiments.

use crate::latency::LatencyModel;
use crate::sim::Network;
use xdn_broker::{BrokerId, RoutingConfig};

/// Builds a complete binary tree of brokers with `levels` levels
/// (`2^levels - 1` brokers): the paper's 7-broker (3 levels) and
/// 127-broker (7 levels) overlays. Broker 1 is the root; broker `i` is
/// connected to `2i` and `2i + 1`.
///
/// # Panics
///
/// Panics if `levels == 0`.
pub fn binary_tree(
    levels: u32,
    config: RoutingConfig,
    latency: impl LatencyModel + 'static,
) -> Network {
    assert!(levels > 0, "a tree has at least one level");
    let count = (1u32 << levels) - 1;
    let mut net = Network::new(latency);
    for i in 1..=count {
        net.add_broker(BrokerId(i), config);
    }
    for i in 1..=count {
        let (l, r) = (2 * i, 2 * i + 1);
        if l <= count {
            net.connect(BrokerId(i), BrokerId(l));
        }
        if r <= count {
            net.connect(BrokerId(i), BrokerId(r));
        }
    }
    net
}

/// The leaf brokers of a [`binary_tree`] with `levels` levels.
pub fn binary_tree_leaves(levels: u32) -> Vec<BrokerId> {
    let count = (1u32 << levels) - 1;
    let first_leaf = 1u32 << (levels - 1);
    (first_leaf..=count).map(BrokerId).collect()
}

/// Builds a linear chain of `n` brokers `0 — 1 — … — n-1`, the topology
/// of the notification-delay-vs-hops experiments (Figures 10/11, where
/// the maximum end-to-end distance is 7 hops).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn chain(n: u32, config: RoutingConfig, latency: impl LatencyModel + 'static) -> Network {
    assert!(n > 0, "a chain has at least one broker");
    let mut net = Network::new(latency);
    for i in 0..n {
        net.add_broker(BrokerId(i), config);
    }
    for i in 0..n.saturating_sub(1) {
        net.connect(BrokerId(i), BrokerId(i + 1));
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ClusterLan;

    #[test]
    fn tree_sizes_match_paper() {
        let net7 = binary_tree(
            3,
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ClusterLan::default(),
        );
        assert_eq!(net7.broker_ids().len(), 7);
        let net127 = binary_tree(
            7,
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ClusterLan::default(),
        );
        assert_eq!(net127.broker_ids().len(), 127);
    }

    #[test]
    fn tree_leaves() {
        assert_eq!(
            binary_tree_leaves(3),
            vec![BrokerId(4), BrokerId(5), BrokerId(6), BrokerId(7)]
        );
        assert_eq!(
            binary_tree_leaves(7).len(),
            64,
            "127-broker tree has 64 leaves"
        );
    }

    #[test]
    fn tree_connectivity() {
        let net = binary_tree(3, RoutingConfig::builder().build(), ClusterLan::default());
        let root = net.broker(BrokerId(1));
        assert_eq!(root.neighbors().len(), 2);
        let leaf = net.broker(BrokerId(7));
        assert_eq!(leaf.neighbors(), &[BrokerId(3)]);
        let mid = net.broker(BrokerId(3));
        assert_eq!(mid.neighbors().len(), 3);
    }

    #[test]
    fn chain_connectivity() {
        let net = chain(4, RoutingConfig::builder().build(), ClusterLan::default());
        assert_eq!(net.broker(BrokerId(0)).neighbors(), &[BrokerId(1)]);
        assert_eq!(net.broker(BrokerId(2)).neighbors().len(), 2);
        assert_eq!(net.broker(BrokerId(3)).neighbors(), &[BrokerId(2)]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_tree_panics() {
        let _ = binary_tree(0, RoutingConfig::builder().build(), ClusterLan::default());
    }
}
