//! A live threaded transport running the same brokers.
//!
//! The simulator proves the algorithms; this module proves the broker
//! is transport-agnostic: each broker runs on its own OS thread and
//! exchanges messages over crossbeam channels, exactly as a deployment
//! would over TCP sessions. Used by the `live_overlay` example.

use crate::metrics::{MetricsSink, NetMetrics, SharedMetrics};
use crate::sink::FrameSink;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use xdn_broker::{Broker, BrokerId, ClientId, Dest, Message, MessageKind, Outbound, RoutingConfig};

/// Capacity of each broker's and client's inbox. Bounded so a producer
/// outrunning a consumer blocks (backpressure) instead of growing an
/// unbounded heap queue; generous enough that the overlay's
/// request/reply cycles never fill it in practice.
const INBOX_CAPACITY: usize = 1024;

/// Upper bound on frames handed to one [`Broker::handle_batch`] call.
/// Keeps a flooded inbox from starving snapshot/stop requests queued
/// behind data frames.
const INBOX_BATCH_LIMIT: usize = 256;

enum Wire {
    Data { from: Dest, msg: Message },
    Snapshot(Sender<crate::tcp::NodeSnapshot>),
    Stop,
}

/// The live transport's [`FrameSink`]: broker-bound frames cross to
/// the destination thread's inbox, client-bound frames land in the
/// client's channel. In-process, so frames are handed over as decoded
/// [`Message`]s — the shared frame body is never serialised.
struct LiveSink<'a> {
    from: BrokerId,
    peers: &'a HashMap<BrokerId, Sender<Wire>>,
    clients: &'a HashMap<ClientId, Sender<Message>>,
}

impl FrameSink for LiveSink<'_> {
    fn ship(&mut self, out: Outbound) -> Option<MessageKind> {
        match out.dest {
            Dest::Broker(b) => {
                if let Some(tx) = self.peers.get(&b) {
                    // A send fails only during shutdown.
                    let _ = tx.send(Wire::Data {
                        from: Dest::Broker(self.from),
                        msg: out.frame.into_message(),
                    });
                }
            }
            Dest::Client(c) => {
                if let Some(tx) = self.clients.get(&c) {
                    let _ = tx.send(out.frame.into_message());
                }
            }
        }
        None
    }
}

/// Builder for a [`LiveNetwork`].
#[derive(Default)]
pub struct LiveNetworkBuilder {
    brokers: Vec<(BrokerId, RoutingConfig)>,
    links: Vec<(BrokerId, BrokerId)>,
    clients: Vec<(ClientId, BrokerId)>,
}

impl LiveNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a broker.
    pub fn broker(&mut self, id: BrokerId, config: RoutingConfig) -> &mut Self {
        self.brokers.push((id, config));
        self
    }

    /// Connects two brokers.
    pub fn link(&mut self, a: BrokerId, b: BrokerId) -> &mut Self {
        self.links.push((a, b));
        self
    }

    /// Attaches a client to a broker.
    pub fn client(&mut self, id: ClientId, home: BrokerId) -> &mut Self {
        self.clients.push((id, home));
        self
    }

    /// Spawns one thread per broker and returns the running network.
    ///
    /// # Panics
    ///
    /// Panics if a link or client references an unknown broker.
    pub fn start(&mut self) -> LiveNetwork {
        let mut broker_tx: HashMap<BrokerId, Sender<Wire>> = HashMap::new();
        let mut broker_rx: HashMap<BrokerId, Receiver<Wire>> = HashMap::new();
        for &(id, _) in &self.brokers {
            let (tx, rx) = bounded(INBOX_CAPACITY);
            broker_tx.insert(id, tx);
            broker_rx.insert(id, rx);
        }
        let mut client_rx: HashMap<ClientId, Receiver<Message>> = HashMap::new();
        let mut client_tx: HashMap<ClientId, Sender<Message>> = HashMap::new();
        let mut client_home: HashMap<ClientId, BrokerId> = HashMap::new();
        for &(cid, home) in &self.clients {
            assert!(broker_tx.contains_key(&home), "unknown broker {home}");
            let (tx, rx) = bounded(INBOX_CAPACITY);
            client_tx.insert(cid, tx);
            client_rx.insert(cid, rx);
            client_home.insert(cid, home);
        }

        // One shared sink for the whole overlay — every broker thread
        // records through the same MetricsSink interface the simulator
        // and TCP transport use. The epoch anchors delay measurements.
        let metrics = SharedMetrics::new();
        let epoch = std::time::Instant::now();

        let mut handles = Vec::new();
        for &(id, config) in &self.brokers {
            let mut broker = Broker::new(id, config);
            for &(a, b) in &self.links {
                if a == id {
                    assert!(broker_tx.contains_key(&b), "unknown broker {b}");
                    broker.add_neighbor(b);
                }
                if b == id {
                    assert!(broker_tx.contains_key(&a), "unknown broker {a}");
                    broker.add_neighbor(a);
                }
            }
            // Absent only if the same broker id was registered twice;
            // the duplicate simply gets no thread.
            let Some(rx) = broker_rx.remove(&id) else {
                continue;
            };
            let peers = broker_tx.clone();
            let clients = client_tx.clone();
            let mut sink = metrics.clone();
            let stats_slot: Arc<Mutex<Option<xdn_broker::BrokerStats>>> =
                Arc::new(Mutex::new(None));
            let slot = stats_slot.clone();
            let handle = std::thread::spawn(move || {
                // A control wire drained while gathering a data batch is
                // carried into the next loop turn instead of dropped.
                let mut carried: Option<Wire> = None;
                loop {
                    let wire = match carried.take() {
                        Some(w) => w,
                        None => match rx.recv() {
                            Ok(w) => w,
                            Err(_) => break,
                        },
                    };
                    match wire {
                        Wire::Stop => break,
                        Wire::Snapshot(reply) => {
                            let _ = reply.send(crate::tcp::NodeSnapshot {
                                stats: broker.stats().clone(),
                                srt_size: broker.srt_size(),
                                prt_size: broker.prt_size(),
                                routing_signature: broker.routing_signature(),
                            });
                        }
                        Wire::Data { from, msg } => {
                            // Drain whatever else is already queued so one
                            // handle_batch call routes the whole burst.
                            let mut batch = vec![(from, msg)];
                            while batch.len() < INBOX_BATCH_LIMIT {
                                match rx.try_recv() {
                                    Ok(Wire::Data { from, msg }) => batch.push((from, msg)),
                                    Ok(other) => {
                                        carried = Some(other);
                                        break;
                                    }
                                    Err(_) => break,
                                }
                            }
                            for (from, msg) in &batch {
                                sink.on_broker_message(id, msg.kind());
                                if let (Dest::Client(_), Message::Publish(p)) = (from, msg) {
                                    sink.on_publish_injected(p.doc_id, epoch.elapsed());
                                }
                            }
                            let mut wire_sink = LiveSink {
                                from: id,
                                peers: &peers,
                                clients: &clients,
                            };
                            for ob in broker.handle_batch_frames(batch) {
                                if let Dest::Client(c) = ob.dest {
                                    // Kind was precomputed at routing
                                    // time; no per-hop recomputation.
                                    sink.on_client_message(c, ob.kind);
                                    if let Message::Publish(p) = ob.frame.payload() {
                                        // Hop counts are not carried
                                        // across threads; record 0.
                                        sink.on_delivery(c, p, epoch.elapsed(), 0);
                                    }
                                }
                                wire_sink.ship(ob);
                            }
                        }
                    }
                }
                *slot.lock() = Some(broker.stats().clone());
            });
            handles.push((id, handle, stats_slot));
        }

        LiveNetwork {
            broker_tx,
            client_rx,
            client_home,
            handles,
            metrics,
        }
    }
}

/// A broker thread handle together with its final-statistics slot.
type BrokerHandle = (
    BrokerId,
    JoinHandle<()>,
    Arc<Mutex<Option<xdn_broker::BrokerStats>>>,
);

/// A running threaded overlay.
pub struct LiveNetwork {
    broker_tx: HashMap<BrokerId, Sender<Wire>>,
    client_rx: HashMap<ClientId, Receiver<Message>>,
    client_home: HashMap<ClientId, BrokerId>,
    handles: Vec<BrokerHandle>,
    metrics: SharedMetrics,
}

impl LiveNetwork {
    /// Sends a message into the network on behalf of `client`.
    ///
    /// # Panics
    ///
    /// Panics if the client was not registered at build time.
    pub fn send(&self, client: ClientId, msg: Message) {
        // Misuse-panic by documented contract; this driver API is not on the
        // routing hot path (the `ship` edge is a call-graph name collision).
        // xtask: allow(panic-path) documented misuse-panic, driver-side only
        let home = self.client_home[&client];
        // Failure means the network is shut down; surfaced on join.
        // xtask: allow(panic-path) same documented misuse-panic as above
        let _ = self.broker_tx[&home].send(Wire::Data {
            from: Dest::Client(client),
            msg,
        });
    }

    /// Receives the next message delivered to `client`, waiting up to
    /// `timeout`.
    pub fn recv_timeout(&self, client: ClientId, timeout: std::time::Duration) -> Option<Message> {
        self.client_rx.get(&client)?.recv_timeout(timeout).ok()
    }

    /// A point-in-time view of one broker's state, or `None` if the
    /// broker is unknown or shut down.
    pub fn snapshot(&self, broker: BrokerId) -> Option<crate::tcp::NodeSnapshot> {
        let (tx, rx) = bounded(1);
        self.broker_tx.get(&broker)?.send(Wire::Snapshot(tx)).ok()?;
        rx.recv_timeout(std::time::Duration::from_secs(5)).ok()
    }

    /// Polls [`LiveNetwork::snapshot`] until `pred` holds or `timeout`
    /// elapses — the bounded replacement for sleeping in tests.
    pub fn await_state(
        &self,
        broker: BrokerId,
        timeout: std::time::Duration,
        mut pred: impl FnMut(&crate::tcp::NodeSnapshot) -> bool,
    ) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(s) = self.snapshot(broker) {
                if pred(&s) {
                    return true;
                }
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            // xtask: allow(sleep) 2ms poll slice under an explicit caller deadline
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    /// Overlay-wide traffic and delivery metrics, recorded by every
    /// broker thread through the shared [`crate::metrics::MetricsSink`].
    /// Returns a snapshot copy; recording continues concurrently.
    pub fn metrics(&self) -> NetMetrics {
        self.metrics.snapshot()
    }

    /// Drains any already-delivered messages for `client`.
    pub fn drain(&self, client: ClientId) -> Vec<Message> {
        match self.client_rx.get(&client) {
            Some(rx) => rx.try_iter().collect(),
            None => Vec::new(),
        }
    }

    /// Stops all broker threads and returns their final statistics.
    pub fn shutdown(self) -> Vec<(BrokerId, xdn_broker::BrokerStats)> {
        for tx in self.broker_tx.values() {
            let _ = tx.send(Wire::Stop);
        }
        let mut out = Vec::new();
        for (id, handle, slot) in self.handles {
            // A panicked broker thread never filled its stats slot;
            // the survivors' statistics are still worth returning.
            let _ = handle.join();
            if let Some(stats) = slot.lock().take() {
                out.push((id, stats));
            }
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use xdn_broker::MessageKind;
    use xdn_core::adv::{AdvPath, Advertisement};
    use xdn_core::rtable::{AdvId, SubId};
    use xdn_xml::{DocId, PathId};

    #[test]
    fn live_end_to_end() {
        let mut b = LiveNetworkBuilder::new();
        b.broker(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        )
        .broker(
            BrokerId(1),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        )
        .link(BrokerId(0), BrokerId(1))
        .client(ClientId(1), BrokerId(0))
        .client(ClientId(2), BrokerId(1));
        let net = b.start();

        let adv = Advertisement::non_recursive(AdvPath::from_names(&["a", "b"]));
        net.send(ClientId(1), Message::advertise(AdvId(1), adv));
        net.send(
            ClientId(2),
            Message::subscribe(SubId(1), "/a/*".parse().unwrap()),
        );
        // The control plane has settled once the subscription reaches
        // the publisher's broker.
        assert!(
            net.await_state(BrokerId(0), Duration::from_secs(5), |s| s.prt_size >= 1),
            "subscription did not propagate to broker 0"
        );

        net.send(
            ClientId(1),
            Message::Publish(xdn_broker::Publication {
                doc_id: DocId(1),
                path_id: PathId(0),
                elements: vec!["a".into(), "b".into()],
                attributes: Vec::new(),
                doc_bytes: 64,
            }),
        );
        let got = net.recv_timeout(ClientId(2), Duration::from_secs(5));
        assert!(
            matches!(got, Some(Message::Publish(_))),
            "expected delivery, got {got:?}"
        );

        // The shared sink saw the delivery: exactly one notification,
        // for the subscribing client, with a computable delay.
        let m = net.metrics();
        assert_eq!(m.notifications.len(), 1);
        assert_eq!(m.notifications[0].client, ClientId(2));
        assert!(m.broker_messages.get(MessageKind::Publish) >= 1);

        let stats = net.shutdown();
        assert_eq!(stats.len(), 2);
        let total: u64 = stats.iter().map(|(_, s)| s.received_total()).sum();
        assert!(total >= 3);
    }

    #[test]
    fn live_broker_traffic_is_acked() {
        // Cross-broker traffic rides the sequenced channel: after a
        // delivery over a broker⇄broker link, the receiving broker has
        // acked the sequenced frames and the sender has seen the acks.
        let mut b = LiveNetworkBuilder::new();
        b.broker(
            BrokerId(0),
            RoutingConfig::builder().advertisements(true).build(),
        )
        .broker(
            BrokerId(1),
            RoutingConfig::builder().advertisements(true).build(),
        )
        .link(BrokerId(0), BrokerId(1))
        .client(ClientId(1), BrokerId(0))
        .client(ClientId(2), BrokerId(1));
        let net = b.start();

        let adv = Advertisement::non_recursive(AdvPath::from_names(&["a", "b"]));
        net.send(ClientId(1), Message::advertise(AdvId(1), adv));
        net.send(
            ClientId(2),
            Message::subscribe(SubId(1), "/a/*".parse().unwrap()),
        );
        assert!(net.await_state(BrokerId(0), Duration::from_secs(5), |s| s.prt_size >= 1));
        net.send(
            ClientId(1),
            Message::Publish(xdn_broker::Publication {
                doc_id: DocId(9),
                path_id: PathId(0),
                elements: vec!["a".into(), "b".into()],
                attributes: Vec::new(),
                doc_bytes: 64,
            }),
        );
        assert!(matches!(
            net.recv_timeout(ClientId(2), Duration::from_secs(5)),
            Some(Message::Publish(_))
        ));
        // The publisher-side broker receives the subscriber broker's
        // cumulative ack for the forwarded publication.
        assert!(
            net.await_state(BrokerId(0), Duration::from_secs(5), |s| {
                s.stats.received_of(MessageKind::Ack) >= 1
            }),
            "acks must flow back over the live transport"
        );
        let m = net.metrics();
        assert!(m.broker_messages.get(MessageKind::Ack) >= 1);
        net.shutdown();
    }

    #[test]
    fn live_non_matching_not_delivered() {
        let mut b = LiveNetworkBuilder::new();
        b.broker(BrokerId(0), RoutingConfig::builder().build())
            .client(ClientId(1), BrokerId(0))
            .client(ClientId(2), BrokerId(0));
        let net = b.start();
        net.send(
            ClientId(2),
            Message::subscribe(SubId(1), "/x".parse().unwrap()),
        );
        assert!(net.await_state(BrokerId(0), Duration::from_secs(5), |s| {
            s.stats.received_of(MessageKind::Subscribe) >= 1
        }));
        net.send(
            ClientId(1),
            Message::Publish(xdn_broker::Publication {
                doc_id: DocId(1),
                path_id: PathId(0),
                elements: vec!["a".into()],
                attributes: Vec::new(),
                doc_bytes: 10,
            }),
        );
        assert!(net
            .recv_timeout(ClientId(2), Duration::from_millis(100))
            .is_none());
        net.shutdown();
    }
}
