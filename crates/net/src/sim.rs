//! The discrete-event overlay simulator.
//!
//! Brokers execute their real routing code; the simulator only replaces
//! the wire. Each emitted message is scheduled at
//! `now + processing + link delay`, where `processing` is the measured
//! wall-clock time the broker spent handling the triggering message —
//! so routing-table compaction genuinely shortens simulated
//! notification delays, as it does on the paper's testbed.

use crate::latency::LatencyModel;
use crate::metrics::{FaultDrop, MetricsSink, NetMetrics};
use crate::sink::FrameSink;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::time::{Duration, Instant};
use xdn_broker::{
    Broker, BrokerId, ClientId, Dest, Message, MessageKind, Outbound, Publication, RoutingConfig,
};
use xdn_core::adv::Advertisement;
use xdn_core::rtable::{AdvId, SubId};
use xdn_xml::paths::{dedup_paths, extract_paths};
use xdn_xml::{DocId, Document};
use xdn_xpath::Xpe;

/// Whether broker compute time advances the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessingModel {
    /// Add the measured wall-clock handling time (default; reproduces
    /// the delay experiments).
    Measured,
    /// Links only (deterministic; used by traffic-count tests).
    Zero,
    /// Deterministic analytic compute time: each handled frame charges
    /// `base + per_entry × prt_effective_size` of the handling broker.
    /// Keeps the delay experiments' shape — covering compacts the
    /// effective table, so per-hop cost genuinely drops — without the
    /// host-load noise of `Measured` (the wall-clock model made
    /// `delay_grows_with_hops_and_covering_wins` flaky on busy CI
    /// runners).
    Modeled {
        /// Fixed per-frame handling cost.
        base: Duration,
        /// Marginal matching cost per effective routing-table entry.
        per_entry: Duration,
    },
}

impl ProcessingModel {
    /// A [`ProcessingModel::Modeled`] with defaults in the paper's
    /// ballpark: tens of microseconds per frame plus tens of
    /// nanoseconds per table entry.
    pub fn modeled() -> Self {
        ProcessingModel::Modeled {
            base: Duration::from_micros(20),
            per_entry: Duration::from_nanos(50),
        }
    }
}

#[derive(Debug)]
struct Event {
    to: Dest,
    from: Dest,
    msg: Message,
    hops: u32,
}

/// Why an in-flight message could not be delivered (fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultReason {
    /// The destination broker is crashed.
    Crash(BrokerId),
    /// The link between the two brokers is severed.
    Link(BrokerId, BrokerId),
}

/// An undeliverable event held until its fault is repaired — the
/// simulator's analogue of a supervisor's bounded outbound queue.
#[derive(Debug)]
struct Parked {
    event: Event,
    reason: FaultReason,
}

fn link_key(a: BrokerId, b: BrokerId) -> (BrokerId, BrokerId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The simulator's [`FrameSink`]: "shipping" a frame schedules its
/// arrival event after the modeled link delay. The frame body is never
/// serialised — only its modeled wire size feeds the latency model, so
/// the lazily-encoded [`xdn_broker::FrameBuf`] costs the simulator
/// nothing.
struct SimSink<'a> {
    net: &'a mut Network,
    from: BrokerId,
    hops: u32,
}

impl FrameSink for SimSink<'_> {
    fn ship(&mut self, out: Outbound) -> Option<MessageKind> {
        let bytes = out.frame.wire_bytes();
        let delay = match out.dest {
            Dest::Broker(b) => self.net.latency.link_delay(self.from, b, bytes),
            Dest::Client(_) => self.net.latency.client_delay(self.from, bytes),
        };
        let at = self.net.now + delay;
        self.net.schedule(
            at,
            Event {
                to: out.dest,
                from: Dest::Broker(self.from),
                msg: out.frame.into_message(),
                hops: self.hops + 1,
            },
        );
        None
    }
}

/// The simulated overlay network.
pub struct Network {
    brokers: BTreeMap<BrokerId, Broker>,
    client_home: HashMap<ClientId, BrokerId>,
    latency: Box<dyn LatencyModel>,
    queue: BinaryHeap<Reverse<(Duration, u64)>>,
    events: HashMap<u64, Event>,
    now: Duration,
    seq: u64,
    next_client: u64,
    next_adv: u64,
    next_sub: u64,
    next_doc: u64,
    metrics: NetMetrics,
    processing: ProcessingModel,
    /// Safety valve against routing loops.
    max_events: u64,
    /// Crashed brokers (fault injection).
    down: std::collections::BTreeSet<BrokerId>,
    /// Severed links, keyed by the normalized broker pair.
    dropped_links: std::collections::BTreeSet<(BrokerId, BrokerId)>,
    /// Undeliverable events awaiting repair, oldest first.
    parked: std::collections::VecDeque<Parked>,
    /// Capacity of [`Network::parked`]; overflow evicts publications
    /// before control messages.
    park_capacity: usize,
    /// Grace period between a repair and the replay of parked events,
    /// leaving the sync exchange time to rebuild routing state.
    recovery_flush_delay: Duration,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("brokers", &self.brokers.len())
            .field("clients", &self.client_home.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Creates an empty network with the given latency model.
    pub fn new(latency: impl LatencyModel + 'static) -> Self {
        Network {
            brokers: BTreeMap::new(),
            client_home: HashMap::new(),
            latency: Box::new(latency),
            queue: BinaryHeap::new(),
            events: HashMap::new(),
            now: Duration::ZERO,
            seq: 0,
            next_client: 0,
            next_adv: 0,
            next_sub: 0,
            next_doc: 0,
            metrics: NetMetrics::default(),
            processing: ProcessingModel::Measured,
            max_events: 100_000_000,
            down: std::collections::BTreeSet::new(),
            dropped_links: std::collections::BTreeSet::new(),
            parked: std::collections::VecDeque::new(),
            park_capacity: 4096,
            recovery_flush_delay: Duration::from_millis(5),
        }
    }

    /// Enables per-path delivery recording
    /// ([`NetMetrics::delivered_paths`]), the input to subscriber-side
    /// document reassembly. Off by default: large experiments would
    /// accumulate every delivered path.
    pub fn set_record_deliveries(&mut self, on: bool) {
        self.metrics.set_record_paths(on);
    }

    /// Installs a structured trace sink on every broker currently in
    /// the network (see [`xdn_obs::trace`] for the event vocabulary).
    /// Brokers added afterwards are untraced.
    pub fn set_tracer(&mut self, tracer: std::sync::Arc<dyn xdn_obs::Tracer>) {
        for broker in self.brokers.values_mut() {
            broker.set_tracer(std::sync::Arc::clone(&tracer));
        }
    }

    /// Selects whether broker compute time advances the clock.
    pub fn set_processing_model(&mut self, p: ProcessingModel) {
        self.processing = p;
    }

    /// Adds a broker with the given routing strategy.
    ///
    /// # Panics
    ///
    /// Panics if the id is already present.
    pub fn add_broker(&mut self, id: BrokerId, config: RoutingConfig) {
        let prev = self.brokers.insert(id, Broker::new(id, config));
        assert!(prev.is_none(), "duplicate broker {id}");
    }

    /// Connects two brokers bidirectionally.
    ///
    /// # Panics
    ///
    /// Panics if either broker does not exist.
    pub fn connect(&mut self, a: BrokerId, b: BrokerId) {
        self.brokers
            .get_mut(&a)
            .expect("unknown broker")
            .add_neighbor(b);
        self.brokers
            .get_mut(&b)
            .expect("unknown broker")
            .add_neighbor(a);
    }

    /// Attaches a fresh client to `home` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the broker does not exist.
    pub fn attach_client(&mut self, home: BrokerId) -> ClientId {
        assert!(self.brokers.contains_key(&home), "unknown broker {home}");
        self.next_client += 1;
        let id = ClientId(self.next_client);
        self.client_home.insert(id, home);
        id
    }

    /// Ids of all brokers, ascending.
    pub fn broker_ids(&self) -> Vec<BrokerId> {
        self.brokers.keys().copied().collect()
    }

    /// A broker by id.
    ///
    /// # Panics
    ///
    /// Panics if absent.
    pub fn broker(&self, id: BrokerId) -> &Broker {
        &self.brokers[&id]
    }

    /// Mutable broker access (e.g. to install a merging universe).
    ///
    /// # Panics
    ///
    /// Panics if absent.
    pub fn broker_mut(&mut self, id: BrokerId) -> &mut Broker {
        self.brokers.get_mut(&id).expect("unknown broker")
    }

    /// Iterates over all brokers.
    pub fn brokers(&self) -> impl Iterator<Item = &Broker> {
        self.brokers.values()
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Mutable metrics (e.g. [`NetMetrics::reset`] between phases).
    pub fn metrics_mut(&mut self) -> &mut NetMetrics {
        &mut self.metrics
    }

    /// Current simulated time.
    pub fn now(&self) -> Duration {
        self.now
    }

    /// Sum of effective routing-table sizes across brokers.
    pub fn total_effective_rts(&self) -> usize {
        self.brokers.values().map(Broker::prt_effective_size).sum()
    }

    /// Caps the number of undeliverable events held across a fault.
    /// On overflow, parked publications are evicted before control
    /// messages (mirroring the TCP supervisor's queue policy).
    pub fn set_park_capacity(&mut self, capacity: usize) {
        self.park_capacity = capacity;
    }

    /// Sets the grace period between a repair and the replay of parked
    /// events. It must exceed the sync round-trip so the recovered
    /// routing state is in place before buffered publications arrive.
    pub fn set_recovery_flush_delay(&mut self, delay: Duration) {
        self.recovery_flush_delay = delay;
    }

    /// Crashes a broker: its routing state is lost and every message
    /// addressed to it is parked (up to the park capacity) until
    /// [`Network::restart_broker`].
    ///
    /// # Panics
    ///
    /// Panics if the broker does not exist or is already down.
    pub fn crash_broker(&mut self, id: BrokerId) {
        assert!(self.brokers.contains_key(&id), "unknown broker {id}");
        assert!(self.down.insert(id), "broker {id} is already down");
    }

    /// Restarts a crashed broker with *empty* routing tables, re-runs
    /// the connection handshake with every reachable neighbour (a
    /// bidirectional [`Message::SyncRequest`] exchange, exactly what
    /// the TCP supervisor sends on reconnect), and schedules the
    /// messages parked during the outage for redelivery after the
    /// recovery grace period.
    ///
    /// Reliability state (epoch, retransmit buffers, dedup windows) is
    /// carried into the fresh broker — the simulator models a durable
    /// transport log, so replays keep their original `(epoch, seq)`
    /// identity and in-flight frames from the old incarnation are
    /// neither re-processed nor falsely dropped. Routing state is NOT
    /// carried; the sync exchange rebuilds it.
    ///
    /// # Panics
    ///
    /// Panics if the broker is not down.
    pub fn restart_broker(&mut self, id: BrokerId) {
        assert!(self.down.remove(&id), "broker {id} is not down");
        let old = self.brokers.get_mut(&id).expect("unknown broker");
        let config = *old.config();
        let neighbors: Vec<BrokerId> = old.neighbors().to_vec();
        let reliability = old.take_reliability_state();
        let mut fresh = Broker::new(id, config);
        for &n in &neighbors {
            fresh.add_neighbor(n);
        }
        fresh.restore_reliability_state(reliability);
        self.brokers.insert(id, fresh);
        for n in neighbors {
            if !self.down.contains(&n) && !self.dropped_links.contains(&link_key(id, n)) {
                // `schedule_sync_pair` also arms the warm-up gate on
                // both ends, so the fresh broker defers payload until
                // each reachable neighbour's SyncState rebuilds its
                // routing tables.
                self.schedule_sync_pair(id, n);
            } else if let Some(broker) = self.brokers.get_mut(&id) {
                // The neighbour is crashed or cut off: its routing
                // contribution cannot be recovered yet, so the fresh
                // broker must keep deferring payload — otherwise it
                // acks frames it has no route for. The repair's own
                // sync pair delivers the awaited snapshot later.
                broker.expect_sync_from(n);
            }
        }
        self.flush_parked(FaultReason::Crash(id));
    }

    /// Severs the link between two brokers: messages crossing it are
    /// parked (up to the park capacity) until [`Network::restore_link`].
    ///
    /// # Panics
    ///
    /// Panics if the link is already dropped.
    pub fn drop_link(&mut self, a: BrokerId, b: BrokerId) {
        assert!(
            self.dropped_links.insert(link_key(a, b)),
            "link {a}-{b} is already dropped"
        );
    }

    /// Restores a severed link: both ends re-run the connection
    /// handshake and parked traffic is replayed after the recovery
    /// grace period.
    ///
    /// # Panics
    ///
    /// Panics if the link is not dropped.
    pub fn restore_link(&mut self, a: BrokerId, b: BrokerId) {
        assert!(
            self.dropped_links.remove(&link_key(a, b)),
            "link {a}-{b} is not dropped"
        );
        if !self.down.contains(&a) && !self.down.contains(&b) {
            self.schedule_sync_pair(a, b);
        }
        let (a, b) = link_key(a, b);
        self.flush_parked(FaultReason::Link(a, b));
    }

    /// True while the broker is crashed.
    pub fn is_down(&self, id: BrokerId) -> bool {
        self.down.contains(&id)
    }

    /// Number of events currently parked behind faults.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    fn schedule_sync_pair(&mut self, a: BrokerId, b: BrokerId) {
        for (src, dst) in [(a, b), (b, a)] {
            // Whoever sends a SyncRequest must not route payload until
            // the answering SyncState arrives (the warm-up gate): a
            // cold broker would otherwise ack publications it cannot
            // route yet. Arming here — not only at restart — also
            // covers a link restored *after* its endpoint restarted,
            // where the restart-time sync could not reach this peer.
            if let Some(broker) = self.brokers.get_mut(&src) {
                broker.expect_sync_from(dst);
            }
            let delay = self
                .latency
                .link_delay(src, dst, Message::SyncRequest.wire_bytes());
            self.schedule(
                self.now + delay,
                Event {
                    to: Dest::Broker(dst),
                    from: Dest::Broker(src),
                    msg: Message::SyncRequest,
                    hops: 0,
                },
            );
        }
    }

    fn flush_parked(&mut self, reason: FaultReason) {
        let at = self.now + self.recovery_flush_delay;
        let mut rest = std::collections::VecDeque::new();
        while let Some(p) = self.parked.pop_front() {
            if p.reason == reason {
                self.schedule(at, p.event);
            } else {
                rest.push_back(p);
            }
        }
        self.parked = rest;
    }

    fn count_fault_drop(&mut self, reason: FaultReason) {
        self.metrics.on_fault_drop(match reason {
            FaultReason::Crash(_) => FaultDrop::Crash,
            FaultReason::Link(..) => FaultDrop::Link,
        });
    }

    fn park(&mut self, event: Event, reason: FaultReason) {
        if self.parked.len() >= self.park_capacity {
            // Shed policy looks through reliability framing: a
            // sequenced publication is still a publication.
            if let Some(pos) = self
                .parked
                .iter()
                .position(|p| matches!(p.event.msg.payload(), Message::Publish(_)))
            {
                // Shed the oldest buffered publication first: control
                // messages are routing state and must survive. A shed
                // *sequenced* frame is not lost — its sender still
                // holds it and replays on the post-repair sync.
                let victim = self.parked.remove(pos).expect("position in bounds");
                self.count_fault_drop(victim.reason);
                self.count_frame_shed(&victim.event);
            } else if matches!(event.msg.payload(), Message::Publish(_)) {
                // Only control traffic is buffered; the arriving
                // publication gives way.
                self.count_fault_drop(reason);
                self.count_frame_shed(&event);
                return;
            } else {
                let victim = self.parked.pop_front().expect("queue is full");
                self.count_fault_drop(victim.reason);
                self.count_frame_shed(&victim.event);
            }
        }
        self.parked.push_back(Parked { event, reason });
    }

    /// Reports a shed frame to the per-peer counters so the loss shows
    /// up in metrics rather than only in the opaque drop totals.
    fn count_frame_shed(&mut self, event: &Event) {
        if let Dest::Broker(b) = event.to {
            self.metrics.on_frame_shed(b, event.msg.kind());
        }
    }

    /// The fault blocking delivery of `event`, if any.
    fn fault_for(&self, event: &Event) -> Option<FaultReason> {
        let Dest::Broker(to) = event.to else {
            return None;
        };
        if self.down.contains(&to) {
            return Some(FaultReason::Crash(to));
        }
        if let Dest::Broker(from) = event.from {
            let key = link_key(from, to);
            if self.dropped_links.contains(&key) {
                return Some(FaultReason::Link(key.0, key.1));
            }
        }
        None
    }

    fn home_of(&self, client: ClientId) -> BrokerId {
        *self.client_home.get(&client).expect("unknown client")
    }

    fn schedule(&mut self, at: Duration, event: Event) {
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq)));
        self.events.insert(self.seq, event);
    }

    fn inject_from_client(&mut self, client: ClientId, msg: Message) {
        let home = self.home_of(client);
        let delay = self.latency.client_delay(home, msg.wire_bytes());
        self.schedule(
            self.now + delay,
            Event {
                to: Dest::Broker(home),
                from: Dest::Client(client),
                msg,
                hops: 0,
            },
        );
    }

    /// A producer announces an advertisement; returns its id.
    pub fn advertise(&mut self, client: ClientId, adv: Advertisement) -> AdvId {
        self.next_adv += 1;
        let id = AdvId(self.next_adv);
        self.inject_from_client(client, Message::Advertise { id, adv });
        id
    }

    /// Re-announces an advertisement under an existing id — what a
    /// producer does after its broker restarted with empty tables.
    /// Installation is idempotent for brokers that still know the id.
    pub fn advertise_as(&mut self, client: ClientId, id: AdvId, adv: Advertisement) {
        self.inject_from_client(client, Message::Advertise { id, adv });
    }

    /// A producer announces a whole advertisement set (one DTD).
    pub fn advertise_all(&mut self, client: ClientId, advs: Vec<Advertisement>) -> Vec<AdvId> {
        advs.into_iter()
            .map(|a| self.advertise(client, a))
            .collect()
    }

    /// A consumer registers an XPE; returns the subscription id.
    pub fn subscribe(&mut self, client: ClientId, xpe: Xpe) -> SubId {
        self.next_sub += 1;
        let id = SubId(self.next_sub);
        self.inject_from_client(client, Message::Subscribe { id, xpe });
        id
    }

    /// A consumer retracts a subscription.
    pub fn unsubscribe(&mut self, client: ClientId, id: SubId) {
        self.inject_from_client(client, Message::Unsubscribe { id });
    }

    /// A producer publishes a document: it is decomposed into distinct
    /// root-to-leaf paths (§3.1) which are routed independently.
    /// Returns the document id.
    pub fn publish_document(&mut self, client: ClientId, doc: &Document) -> DocId {
        self.next_doc += 1;
        let doc_id = DocId(self.next_doc);
        let bytes = doc.to_xml_string().len();
        let paths = dedup_paths(extract_paths(doc, doc_id));
        self.metrics.on_publish_injected(doc_id, self.now);
        for p in paths {
            let publication = Publication::from_doc_path(&p, bytes);
            self.inject_from_client(client, Message::Publish(publication));
        }
        doc_id
    }

    /// Publishes a single pre-extracted path (path-level experiments).
    pub fn publish_path(
        &mut self,
        client: ClientId,
        elements: Vec<String>,
        doc_bytes: usize,
    ) -> DocId {
        self.next_doc += 1;
        let doc_id = DocId(self.next_doc);
        self.metrics.on_publish_injected(doc_id, self.now);
        let publication = Publication {
            doc_id,
            path_id: xdn_xml::PathId(0),
            elements,
            attributes: Vec::new(),
            doc_bytes,
        };
        self.inject_from_client(client, Message::Publish(publication));
        doc_id
    }

    /// Runs every broker's merging pass (§4.3) and schedules the
    /// resulting control traffic. Call between the subscription phase
    /// and the publish phase, as the paper applies merging
    /// "periodically".
    pub fn apply_merging(&mut self) {
        let ids: Vec<BrokerId> = self.brokers.keys().copied().collect();
        for id in ids {
            let outputs = self
                .brokers
                .get_mut(&id)
                .expect("known")
                .apply_merging_frames();
            self.dispatch_outputs(id, outputs, 0);
        }
    }

    /// Schedules a broker's outputs through the simulator's
    /// [`FrameSink`].
    fn dispatch_outputs(&mut self, from: BrokerId, outputs: Vec<Outbound>, hops: u32) {
        SimSink {
            net: self,
            from,
            hops,
        }
        .ship_all(outputs);
    }

    /// Drains the event queue. Returns the number of events processed.
    ///
    /// # Panics
    ///
    /// Panics if the event cap is exceeded (a routing loop).
    pub fn run(&mut self) -> u64 {
        let mut processed = 0u64;
        while let Some(Reverse((at, seq))) = self.queue.pop() {
            processed += 1;
            assert!(
                processed <= self.max_events,
                "event cap exceeded: routing loop?"
            );
            self.now = self.now.max(at);
            let event = self.events.remove(&seq).expect("event payload");
            if let Some(reason) = self.fault_for(&event) {
                self.park(event, reason);
                continue;
            }
            match event.to {
                Dest::Broker(b) => {
                    self.metrics.on_broker_message(b, event.msg.kind());
                    let hops = event.hops;
                    // Batch-drain: co-scheduled frames for the same
                    // broker (same instant, same hop count, unfaulted)
                    // are handed over in one `handle_batch` call, which
                    // routes publication runs in parallel on sharded
                    // tables. Grouping is deterministic — heap order is
                    // (time, sequence) — and `handle_batch` is
                    // output-equivalent to per-frame `handle`. Under
                    // `Measured` and `Modeled` processing, frames stay
                    // unbatched: the delay experiments attribute each
                    // frame's *own* compute time to its outputs, and a
                    // batch would charge every frame the whole batch's
                    // elapsed.
                    let mut batch = vec![(event.from, event.msg)];
                    while self.processing == ProcessingModel::Zero {
                        let Some(&Reverse((nat, nseq))) = self.queue.peek() else {
                            break;
                        };
                        if nat != at {
                            break;
                        }
                        let matches_run = self.events.get(&nseq).is_some_and(|next| {
                            next.to == Dest::Broker(b)
                                && next.hops == hops
                                && self.fault_for(next).is_none()
                        });
                        if !matches_run {
                            break;
                        }
                        self.queue.pop();
                        let next = self.events.remove(&nseq).expect("event payload");
                        processed += 1;
                        assert!(
                            processed <= self.max_events,
                            "event cap exceeded: routing loop?"
                        );
                        self.metrics.on_broker_message(b, next.msg.kind());
                        batch.push((next.from, next.msg));
                    }
                    let started = Instant::now();
                    let broker = self
                        .brokers
                        .get_mut(&b)
                        .expect("unknown broker destination");
                    let outputs = if batch.len() == 1 {
                        let (from, msg) = batch.pop().expect("one frame");
                        broker.handle_frames(from, msg)
                    } else {
                        broker.handle_batch_frames(batch)
                    };
                    let effective_entries = broker.prt_effective_size();
                    match self.processing {
                        ProcessingModel::Measured => self.now += started.elapsed(),
                        ProcessingModel::Modeled { base, per_entry } => {
                            let entries = u32::try_from(effective_entries).unwrap_or(u32::MAX);
                            self.now += base + per_entry * entries;
                        }
                        ProcessingModel::Zero => {}
                    }
                    self.dispatch_outputs(b, outputs, hops);
                }
                Dest::Client(c) => {
                    self.metrics.on_client_message(c, event.msg.kind());
                    if let Message::Publish(p) = &event.msg {
                        self.metrics.on_delivery(c, p, self.now, event.hops);
                    }
                }
            }
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ClusterLan;
    use xdn_broker::MessageKind;
    use xdn_core::adv::AdvPath;

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    fn adv(names: &[&str]) -> Advertisement {
        Advertisement::non_recursive(AdvPath::from_names(names))
    }

    fn two_broker_net(config: RoutingConfig) -> (Network, ClientId, ClientId) {
        let mut net = Network::new(ClusterLan::default());
        net.add_broker(BrokerId(0), config);
        net.add_broker(BrokerId(1), config);
        net.connect(BrokerId(0), BrokerId(1));
        let publisher = net.attach_client(BrokerId(0));
        let subscriber = net.attach_client(BrokerId(1));
        (net, publisher, subscriber)
    }

    #[test]
    fn end_to_end_delivery() {
        let (mut net, publisher, subscriber) = two_broker_net(
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        net.advertise(publisher, adv(&["a", "b"]));
        net.run();
        net.subscribe(subscriber, xpe("/a/*"));
        net.run();
        let doc = xdn_xml::parse_document("<a><b/></a>").unwrap();
        net.publish_document(publisher, &doc);
        net.run();
        assert_eq!(net.metrics().notifications.len(), 1);
        let n = &net.metrics().notifications[0];
        assert_eq!(n.client, subscriber);
        assert!(n.delay > Duration::ZERO);
        assert_eq!(n.hops, 2, "two broker hops");
    }

    #[test]
    fn non_matching_publication_not_delivered() {
        let (mut net, publisher, subscriber) = two_broker_net(
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        net.advertise(publisher, adv(&["a", "b"]));
        net.subscribe(subscriber, xpe("/x"));
        net.run();
        let doc = xdn_xml::parse_document("<a><b/></a>").unwrap();
        net.publish_document(publisher, &doc);
        net.run();
        assert!(net.metrics().notifications.is_empty());
    }

    #[test]
    fn duplicate_paths_single_notification() {
        let (mut net, publisher, subscriber) = two_broker_net(
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        net.advertise(publisher, adv(&["a", "b"]));
        net.advertise(publisher, adv(&["a", "c"]));
        net.subscribe(subscriber, xpe("/a"));
        net.run();
        // Two matching paths, one document -> one notification.
        let doc = xdn_xml::parse_document("<a><b/><c/></a>").unwrap();
        net.publish_document(publisher, &doc);
        net.run();
        assert_eq!(net.metrics().notifications.len(), 1);
        assert_eq!(net.metrics().client_messages, 2, "both paths arrive");
    }

    #[test]
    fn advertisement_scoping_reduces_subscription_traffic() {
        // Without advertisements the subscription floods the chain;
        // with them it is not forwarded past brokers with no
        // overlapping advertisement.
        let run = |config: RoutingConfig, advertise: bool| {
            let mut net = Network::new(ClusterLan::default());
            net.set_processing_model(ProcessingModel::Zero);
            for i in 0..4 {
                net.add_broker(BrokerId(i), config);
            }
            for i in 0..3 {
                net.connect(BrokerId(i), BrokerId(i + 1));
            }
            let publisher = net.attach_client(BrokerId(0));
            let subscriber = net.attach_client(BrokerId(3));
            if advertise {
                net.advertise(publisher, adv(&["a", "b"]));
                net.run();
                net.metrics_mut().reset();
            }
            net.subscribe(subscriber, xpe("/zzz"));
            net.run();
            net.metrics().traffic_of(MessageKind::Subscribe)
        };
        let flooded = run(RoutingConfig::builder().build(), false);
        let scoped = run(
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            true,
        );
        assert_eq!(flooded, 4, "flooding reaches every broker");
        assert_eq!(scoped, 1, "no overlap -> dropped at the edge broker");
    }

    #[test]
    fn covering_reduces_forwarded_subscriptions() {
        let run = |config: RoutingConfig| {
            let (mut net, _p, subscriber) = two_broker_net(config);
            net.set_processing_model(ProcessingModel::Zero);
            net.subscribe(subscriber, xpe("/a/*"));
            net.subscribe(subscriber, xpe("/a/b"));
            net.subscribe(subscriber, xpe("/a/c"));
            net.run();
            net.metrics().traffic_of(MessageKind::Subscribe)
        };
        // Flooding: every subscription crosses to broker 0 (3 at B1 + 3 at B0).
        assert_eq!(run(RoutingConfig::builder().build()), 6);
        // Covering: /a/b and /a/c stop at the edge broker.
        assert_eq!(run(RoutingConfig::builder().covering(true).build()), 4);
    }

    #[test]
    fn run_returns_event_count_and_clock_advances() {
        let (mut net, publisher, _s) = two_broker_net(RoutingConfig::builder().build());
        let before = net.now();
        net.publish_path(publisher, vec!["a".into()], 100);
        let events = net.run();
        assert!(events >= 1);
        assert!(net.now() > before);
    }

    #[test]
    #[should_panic(expected = "duplicate broker")]
    fn duplicate_broker_panics() {
        let mut net = Network::new(ClusterLan::default());
        net.add_broker(BrokerId(0), RoutingConfig::builder().build());
        net.add_broker(BrokerId(0), RoutingConfig::builder().build());
    }

    #[test]
    #[should_panic(expected = "unknown broker")]
    fn attach_to_missing_broker_panics() {
        let mut net = Network::new(ClusterLan::default());
        net.attach_client(BrokerId(9));
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::latency::ClusterLan;
    use xdn_broker::MessageKind;
    use xdn_core::adv::AdvPath;

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    fn adv(names: &[&str]) -> Advertisement {
        Advertisement::non_recursive(AdvPath::from_names(names))
    }

    fn two_broker_net() -> (Network, ClientId, ClientId) {
        let mut net = Network::new(ClusterLan::default());
        net.set_processing_model(ProcessingModel::Zero);
        net.add_broker(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        net.add_broker(
            BrokerId(1),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        net.connect(BrokerId(0), BrokerId(1));
        let publisher = net.attach_client(BrokerId(0));
        let subscriber = net.attach_client(BrokerId(1));
        (net, publisher, subscriber)
    }

    fn three_broker_chain() -> (Network, ClientId, ClientId) {
        let mut net = Network::new(ClusterLan::default());
        net.set_processing_model(ProcessingModel::Zero);
        for i in 0..3 {
            net.add_broker(
                BrokerId(i),
                RoutingConfig::builder()
                    .advertisements(true)
                    .covering(true)
                    .build(),
            );
        }
        net.connect(BrokerId(0), BrokerId(1));
        net.connect(BrokerId(1), BrokerId(2));
        let publisher = net.attach_client(BrokerId(0));
        let subscriber = net.attach_client(BrokerId(2));
        (net, publisher, subscriber)
    }

    #[test]
    fn crash_parks_traffic_and_restart_delivers_it() {
        let (mut net, publisher, subscriber) = three_broker_chain();
        net.advertise(publisher, adv(&["a", "b"]));
        net.run();
        net.subscribe(subscriber, xpe("/a"));
        net.run();

        net.crash_broker(BrokerId(1));
        assert!(net.is_down(BrokerId(1)));
        net.publish_path(publisher, vec!["a".into(), "b".into()], 100);
        net.run();
        assert!(
            net.metrics().notifications.is_empty(),
            "the middle broker is down"
        );
        assert!(net.parked_len() > 0, "the publication is parked, not lost");

        // The restarted broker recovers its SRT from B0's sync answer
        // and its PRT from B2's, then the parked publication flows.
        net.restart_broker(BrokerId(1));
        net.run();
        assert_eq!(
            net.metrics().notifications.len(),
            1,
            "delivered after recovery"
        );
        assert_eq!(net.parked_len(), 0);
        assert_eq!(net.metrics().dropped_crash, 0);
    }

    #[test]
    fn restart_resyncs_routing_state() {
        let (mut net, publisher, subscriber) = three_broker_chain();
        net.advertise(publisher, adv(&["a", "b"]));
        net.run();
        net.subscribe(subscriber, xpe("/a"));
        net.run();
        let before = net.broker(BrokerId(1)).routing_signature();
        assert!(!before.is_empty());

        net.crash_broker(BrokerId(1));
        net.restart_broker(BrokerId(1));
        net.run();
        assert_eq!(
            net.broker(BrokerId(1)).routing_signature(),
            before,
            "neighbour sync rebuilds the exact routing state"
        );

        // And traffic flows again end to end.
        net.publish_path(publisher, vec!["a".into(), "b".into()], 100);
        net.run();
        assert_eq!(net.metrics().notifications.len(), 1);
    }

    #[test]
    fn edge_broker_recovery_needs_its_clients_back() {
        // State contributed by locally attached clients is not covered
        // by neighbour sync — the client re-announces under its
        // original id, and the network converges to the same tables.
        let (mut net, publisher, subscriber) = two_broker_net();
        let adv_id = net.advertise(publisher, adv(&["a", "b"]));
        net.run();
        net.subscribe(subscriber, xpe("/a"));
        net.run();
        let before = net.broker(BrokerId(0)).routing_signature();

        net.crash_broker(BrokerId(0));
        net.restart_broker(BrokerId(0));
        net.run();
        net.advertise_as(publisher, adv_id, adv(&["a", "b"]));
        net.run();
        assert_eq!(net.broker(BrokerId(0)).routing_signature(), before);

        net.publish_path(publisher, vec!["a".into(), "b".into()], 100);
        net.run();
        assert_eq!(net.metrics().notifications.len(), 1);
    }

    #[test]
    fn park_overflow_sheds_publications_before_control() {
        let (mut net, publisher, subscriber) = two_broker_net();
        net.set_park_capacity(2);
        net.advertise(publisher, adv(&["a", "b"]));
        net.subscribe(subscriber, xpe("/a"));
        net.run();

        net.crash_broker(BrokerId(1));
        for _ in 0..3 {
            net.publish_path(publisher, vec!["a".into(), "b".into()], 100);
        }
        // A control message arriving at a full queue of publications
        // must displace one.
        net.subscribe(subscriber, xpe("/a/b"));
        net.run();
        assert_eq!(net.parked_len(), 2);
        assert_eq!(net.metrics().dropped_crash, 2, "two publications shed");
        let kinds: Vec<MessageKind> = net.parked.iter().map(|p| p.event.msg.kind()).collect();
        assert!(
            kinds.contains(&MessageKind::Subscribe),
            "control traffic survived: {kinds:?}"
        );
    }

    #[test]
    fn dropped_link_parks_and_restore_replays() {
        let (mut net, publisher, subscriber) = two_broker_net();
        net.advertise(publisher, adv(&["a", "b"]));
        net.subscribe(subscriber, xpe("/a"));
        net.run();

        net.drop_link(BrokerId(0), BrokerId(1));
        net.publish_path(publisher, vec!["a".into(), "b".into()], 100);
        net.run();
        assert!(net.metrics().notifications.is_empty());
        assert_eq!(net.parked_len(), 1);

        net.restore_link(BrokerId(0), BrokerId(1));
        net.run();
        assert_eq!(net.metrics().notifications.len(), 1);
        assert_eq!(net.metrics().dropped_link, 0);
    }

    #[test]
    #[should_panic(expected = "is not down")]
    fn restart_of_running_broker_panics() {
        let (mut net, _p, _s) = two_broker_net();
        net.restart_broker(BrokerId(0));
    }

    #[test]
    #[should_panic(expected = "already dropped")]
    fn double_drop_panics() {
        let (mut net, _p, _s) = two_broker_net();
        net.drop_link(BrokerId(0), BrokerId(1));
        net.drop_link(BrokerId(1), BrokerId(0));
    }
}

#[cfg(test)]
mod reassembly_tests {
    use super::*;
    use crate::latency::ClusterLan;
    use xdn_core::adv::AdvPath;

    #[test]
    fn subscriber_reassembles_the_published_document() {
        let mut net = Network::new(ClusterLan::default());
        net.set_processing_model(ProcessingModel::Zero);
        net.set_record_deliveries(true);
        net.add_broker(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        net.add_broker(
            BrokerId(1),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        net.connect(BrokerId(0), BrokerId(1));
        let publisher = net.attach_client(BrokerId(0));
        let subscriber = net.attach_client(BrokerId(1));

        net.advertise(
            publisher,
            Advertisement::non_recursive(AdvPath::from_names(&["a", "*", "*"])),
        );
        net.advertise(
            publisher,
            Advertisement::non_recursive(AdvPath::from_names(&["a", "*"])),
        );
        net.subscribe(subscriber, "/a".parse().expect("xpe"));
        net.run();

        let original = xdn_xml::parse_document(r#"<a x="1"><b><c/></b><d/></a>"#).expect("doc");
        net.publish_document(publisher, &original);
        net.run();

        let paths: Vec<xdn_xml::DocPath> = net
            .metrics()
            .delivered_paths
            .iter()
            .filter(|(c, _)| *c == subscriber)
            .map(|(_, p)| p.clone())
            .collect();
        assert_eq!(paths.len(), 2, "both distinct paths delivered");
        let rebuilt = xdn_xml::reassemble::reassemble(&paths).expect("reassemble");
        assert_eq!(rebuilt, original, "subscriber sees the whole document");
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;
    use crate::latency::{ClusterLan, PlanetLabWan};
    use xdn_core::adv::AdvPath;

    fn run_once(latency_seed: u64) -> (u64, Duration) {
        run_once_with(latency_seed, ProcessingModel::Zero)
    }

    fn run_once_with(latency_seed: u64, processing: ProcessingModel) -> (u64, Duration) {
        let mut net = Network::new(PlanetLabWan::with_seed(latency_seed));
        net.set_processing_model(processing);
        net.add_broker(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        net.add_broker(
            BrokerId(1),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
        );
        net.connect(BrokerId(0), BrokerId(1));
        let publisher = net.attach_client(BrokerId(0));
        let subscriber = net.attach_client(BrokerId(1));
        net.advertise(
            publisher,
            Advertisement::non_recursive(AdvPath::from_names(&["a", "b"])),
        );
        net.subscribe(subscriber, "/a".parse().expect("xpe"));
        net.run();
        let doc = xdn_xml::parse_document("<a><b/></a>").expect("doc");
        net.publish_document(publisher, &doc);
        net.run();
        (
            net.metrics().network_traffic(),
            net.metrics().mean_notification_delay().unwrap_or_default(),
        )
    }

    #[test]
    fn zero_processing_runs_are_deterministic() {
        let (t1, d1) = run_once(42);
        let (t2, d2) = run_once(42);
        assert_eq!(t1, t2, "traffic must be reproducible");
        assert_eq!(d1, d2, "delays must be reproducible under Zero processing");
    }

    #[test]
    fn modeled_processing_is_deterministic_and_slower_than_zero() {
        let (t1, d1) = run_once_with(42, ProcessingModel::modeled());
        let (t2, d2) = run_once_with(42, ProcessingModel::modeled());
        assert_eq!(t1, t2, "traffic must be reproducible");
        assert_eq!(
            d1, d2,
            "delays must be reproducible under Modeled processing"
        );
        let (tz, dz) = run_once_with(42, ProcessingModel::Zero);
        assert_eq!(
            t1, tz,
            "the processing model must not affect message counts"
        );
        assert!(
            d1 > dz,
            "analytic compute time must lengthen delays: {d1:?} vs {dz:?}"
        );
    }

    #[test]
    fn different_latency_seeds_change_delay_not_traffic() {
        let (t1, d1) = run_once(1);
        let (t2, d2) = run_once(2);
        assert_eq!(t1, t2, "the latency model must not affect message counts");
        assert_ne!(d1, d2, "different WAN draws should move the delay");
    }

    #[test]
    fn hop_count_matches_topology_distance() {
        let mut net = Network::new(ClusterLan::default());
        net.set_processing_model(ProcessingModel::Zero);
        for i in 0..5 {
            net.add_broker(BrokerId(i), RoutingConfig::builder().build());
        }
        for i in 0..4 {
            net.connect(BrokerId(i), BrokerId(i + 1));
        }
        let publisher = net.attach_client(BrokerId(0));
        let subscriber = net.attach_client(BrokerId(4));
        net.subscribe(subscriber, "/a".parse().expect("xpe"));
        net.run();
        net.publish_path(publisher, vec!["a".into()], 10);
        net.run();
        assert_eq!(net.metrics().notifications.len(), 1);
        assert_eq!(
            net.metrics().notifications[0].hops,
            5,
            "five broker hops on a 5-broker chain"
        );
    }

    #[test]
    fn total_effective_rts_reflects_covering() {
        let mut net = Network::new(ClusterLan::default());
        net.set_processing_model(ProcessingModel::Zero);
        net.add_broker(BrokerId(0), RoutingConfig::builder().covering(true).build());
        let c = net.attach_client(BrokerId(0));
        net.subscribe(c, "/a/*".parse().expect("xpe"));
        net.subscribe(c, "/a/b".parse().expect("xpe"));
        net.subscribe(c, "/a/c".parse().expect("xpe"));
        net.run();
        assert_eq!(net.total_effective_rts(), 1, "one covering root");
        assert_eq!(net.broker(BrokerId(0)).prt_size(), 3);
    }
}
