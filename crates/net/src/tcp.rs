//! TCP transport: brokers and clients over real sockets.
//!
//! The third substrate after the discrete-event simulator and the
//! in-process threaded transport: each [`TcpNode`] runs one broker,
//! listens for peers and clients, and exchanges frames encoded with
//! [`xdn_broker::wire`]. This is the shape an actual deployment takes
//! (one node per host, the `xdn-node` binary).
//!
//! Connection protocol: after connecting, a peer sends a 9-byte hello —
//! `0x01 | u64 broker-id` for brokers, `0x02 | u64 client-id` for
//! clients — then length-prefixed message frames in both directions.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use xdn_broker::{wire, Broker, BrokerId, ClientId, Dest, Message, RoutingConfig};

const HELLO_BROKER: u8 = 0x01;
const HELLO_CLIENT: u8 = 0x02;

/// Errors from the TCP transport.
#[derive(Debug)]
pub enum TcpError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A malformed frame or hello.
    Protocol(String),
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Io(e) => write!(f, "transport I/O error: {e}"),
            TcpError::Protocol(m) => write!(f, "transport protocol error: {m}"),
        }
    }
}

impl std::error::Error for TcpError {}

impl From<std::io::Error> for TcpError {
    fn from(e: std::io::Error) -> Self {
        TcpError::Io(e)
    }
}

enum Input {
    FromPeer(Dest, Message),
    PeerWriter(Dest, Arc<Mutex<TcpStream>>),
    Stop,
}

/// One broker node on a TCP socket.
pub struct TcpNode {
    addr: SocketAddr,
    inbox: Sender<Input>,
    threads: Vec<JoinHandle<()>>,
    listener_handle: JoinHandle<()>,
    stopping: Arc<AtomicBool>,
    /// Outbound peer sockets, shut down on close so reader threads
    /// unblock.
    peer_streams: Vec<TcpStream>,
}

impl TcpNode {
    /// Starts a node: binds `listen` (use port 0 for an ephemeral
    /// port), spawns the accept loop and the broker loop, and connects
    /// to `peers` (id → address).
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot bind or a peer
    /// connection cannot be established.
    pub fn start(
        id: BrokerId,
        config: RoutingConfig,
        listen: SocketAddr,
        peers: &[(BrokerId, SocketAddr)],
    ) -> Result<TcpNode, TcpError> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = channel::<Input>();

        let mut broker = Broker::new(id, config);
        for &(pid, _) in peers {
            broker.add_neighbor(pid);
        }

        // Broker loop: single-threaded state machine fed by readers.
        let broker_tx = tx.clone();
        let broker_thread = std::thread::spawn(move || broker_loop(broker, rx, broker_tx));

        // Accept loop. The stop flag is checked after every accepted
        // connection; shutdown() flips it and then dials the listener
        // once to unblock `incoming()`.
        let stopping = Arc::new(AtomicBool::new(false));
        let accept_stop = stopping.clone();
        let accept_tx = tx.clone();
        let listener_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { break };
                if spawn_connection(stream, accept_tx.clone()).is_err() {
                    continue;
                }
            }
        });

        let mut node = TcpNode {
            addr,
            inbox: tx,
            threads: vec![broker_thread],
            listener_handle,
            stopping,
            peer_streams: Vec::new(),
        };

        // Outbound peer connections.
        for &(pid, paddr) in peers {
            let stream = connect_with_retry(paddr, Duration::from_secs(5))?;
            let mut s = stream.try_clone()?;
            let mut hello = [0u8; 9];
            hello[0] = HELLO_BROKER;
            hello[1..9].copy_from_slice(&(id.0 as u64).to_be_bytes());
            s.write_all(&hello)?;
            let writer = Arc::new(Mutex::new(stream.try_clone()?));
            node.inbox
                .send(Input::PeerWriter(Dest::Broker(pid), writer))
                .map_err(|_| TcpError::Protocol("broker loop gone".into()))?;
            let reader_tx = node.inbox.clone();
            node.peer_streams.push(stream.try_clone()?);
            node.threads.push(std::thread::spawn(move || {
                read_frames(stream, Dest::Broker(pid), reader_tx);
            }));
        }
        Ok(node)
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the broker loop and joins the worker threads. The accept
    /// loop is unblocked by a final self-connection.
    pub fn shutdown(self) {
        self.stopping.store(true, Ordering::SeqCst);
        let _ = self.inbox.send(Input::Stop);
        // Unblock reader threads parked on peer sockets.
        for s in &self.peer_streams {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
        let _ = self.listener_handle.join();
    }
}

fn broker_loop(mut broker: Broker, rx: Receiver<Input>, _tx: Sender<Input>) {
    let mut writers: HashMap<Dest, Arc<Mutex<TcpStream>>> = HashMap::new();
    while let Ok(input) = rx.recv() {
        match input {
            Input::Stop => break,
            Input::PeerWriter(dest, writer) => {
                writers.insert(dest, writer);
            }
            Input::FromPeer(from, msg) => {
                for (dest, out) in broker.handle(from, msg) {
                    if let Some(w) = writers.get(&dest) {
                        let frame = wire::encode(&out);
                        // A dead peer is dropped; reconnection is the
                        // operator's concern in this minimal transport.
                        if w.lock().write_all(&frame).is_err() {
                            writers.remove(&dest);
                        }
                    }
                }
            }
        }
    }
}

fn spawn_connection(mut stream: TcpStream, tx: Sender<Input>) -> Result<(), TcpError> {
    let mut hello = [0u8; 9];
    stream.read_exact(&mut hello)?;
    let id = u64::from_be_bytes(hello[1..9].try_into().expect("9-byte hello"));
    let from = match hello[0] {
        HELLO_BROKER => Dest::Broker(BrokerId(id as u32)),
        HELLO_CLIENT => Dest::Client(ClientId(id)),
        other => return Err(TcpError::Protocol(format!("unknown hello kind {other}"))),
    };
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    tx.send(Input::PeerWriter(from, writer))
        .map_err(|_| TcpError::Protocol("broker loop gone".into()))?;
    std::thread::spawn(move || read_frames(stream, from, tx));
    Ok(())
}

fn read_frames(mut stream: TcpStream, from: Dest, tx: Sender<Input>) {
    let mut len_buf = [0u8; 4];
    loop {
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > 16 * 1024 * 1024 {
            return; // oversized frame: drop the connection
        }
        let mut frame = vec![0u8; 4 + len];
        frame[..4].copy_from_slice(&len_buf);
        if stream.read_exact(&mut frame[4..]).is_err() {
            return;
        }
        match wire::decode(&frame) {
            Ok((msg, _)) => {
                if tx.send(Input::FromPeer(from, msg)).is_err() {
                    return;
                }
            }
            Err(_) => return, // protocol violation: drop the connection
        }
    }
}

fn connect_with_retry(addr: SocketAddr, budget: Duration) -> Result<TcpStream, TcpError> {
    let deadline = std::time::Instant::now() + budget;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(TcpError::Io(e));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// A client connection to a [`TcpNode`].
pub struct TcpClient {
    writer: TcpStream,
    reader: Receiver<Message>,
    _reader_thread: JoinHandle<()>,
}

impl TcpClient {
    /// Connects to a node as `id` (publisher and/or subscriber).
    ///
    /// # Errors
    ///
    /// Returns an error if the connection or hello fails.
    pub fn connect(addr: SocketAddr, id: ClientId) -> Result<TcpClient, TcpError> {
        let mut stream = connect_with_retry(addr, Duration::from_secs(5))?;
        let mut hello = [0u8; 9];
        hello[0] = HELLO_CLIENT;
        hello[1..9].copy_from_slice(&id.0.to_be_bytes());
        stream.write_all(&hello)?;
        let (tx, rx) = channel();
        let read_stream = stream.try_clone()?;
        let reader_thread = std::thread::spawn(move || {
            client_read(read_stream, tx);
        });
        Ok(TcpClient { writer: stream, reader: rx, _reader_thread: reader_thread })
    }

    /// Sends a message to the node.
    ///
    /// # Errors
    ///
    /// Returns an error if the socket write fails.
    pub fn send(&mut self, msg: &Message) -> Result<(), TcpError> {
        self.writer.write_all(&wire::encode(msg))?;
        Ok(())
    }

    /// Waits up to `timeout` for the next delivered message.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.reader.recv_timeout(timeout).ok()
    }
}

fn client_read(mut stream: TcpStream, tx: Sender<Message>) {
    let mut len_buf = [0u8; 4];
    loop {
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        let mut frame = vec![0u8; 4 + len];
        frame[..4].copy_from_slice(&len_buf);
        if stream.read_exact(&mut frame[4..]).is_err() {
            return;
        }
        let Ok((msg, _)) = wire::decode(&frame) else { return };
        if tx.send(msg).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdn_core::adv::{AdvPath, Advertisement};
    use xdn_core::rtable::{AdvId, SubId};
    use xdn_xml::{DocId, PathId};

    fn ephemeral() -> SocketAddr {
        "127.0.0.1:0".parse().expect("valid addr")
    }

    #[test]
    fn tcp_end_to_end_two_nodes() {
        // Node 1 first (no peers), node 0 dials it.
        let n1 = TcpNode::start(
            BrokerId(1),
            RoutingConfig::with_adv_with_cov(),
            ephemeral(),
            &[],
        )
        .expect("node 1");
        let n0 = TcpNode::start(
            BrokerId(0),
            RoutingConfig::with_adv_with_cov(),
            ephemeral(),
            &[(BrokerId(1), n1.addr())],
        )
        .expect("node 0");

        let mut publisher = TcpClient::connect(n0.addr(), ClientId(1)).expect("publisher");
        let mut subscriber = TcpClient::connect(n1.addr(), ClientId(2)).expect("subscriber");

        let adv = Advertisement::non_recursive(AdvPath::from_names(&["a", "b"]));
        publisher.send(&Message::advertise(AdvId(1), adv)).expect("advertise");
        subscriber
            .send(&Message::subscribe(SubId(1), "/a/*".parse().expect("xpe")))
            .expect("subscribe");
        std::thread::sleep(Duration::from_millis(150));

        publisher
            .send(&Message::Publish(xdn_broker::Publication {
                doc_id: DocId(1),
                path_id: PathId(0),
                elements: vec!["a".into(), "b".into()],
                attributes: Vec::new(),
                doc_bytes: 32,
            }))
            .expect("publish");

        let got = subscriber.recv_timeout(Duration::from_secs(5));
        assert!(
            matches!(got, Some(Message::Publish(_))),
            "expected delivery over TCP, got {got:?}"
        );
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn tcp_non_matching_not_delivered() {
        let n = TcpNode::start(
            BrokerId(0),
            RoutingConfig::no_adv_no_cov(),
            ephemeral(),
            &[],
        )
        .expect("node");
        let mut publisher = TcpClient::connect(n.addr(), ClientId(1)).expect("pub");
        let mut subscriber = TcpClient::connect(n.addr(), ClientId(2)).expect("sub");
        subscriber
            .send(&Message::subscribe(SubId(1), "/x".parse().expect("xpe")))
            .expect("subscribe");
        std::thread::sleep(Duration::from_millis(100));
        publisher
            .send(&Message::Publish(xdn_broker::Publication {
                doc_id: DocId(1),
                path_id: PathId(0),
                elements: vec!["a".into()],
                attributes: Vec::new(),
                doc_bytes: 8,
            }))
            .expect("publish");
        assert!(subscriber.recv_timeout(Duration::from_millis(200)).is_none());
        n.shutdown();
    }

    #[test]
    fn tcp_attribute_predicates_over_the_wire() {
        let n = TcpNode::start(
            BrokerId(0),
            RoutingConfig::no_adv_with_cov(),
            ephemeral(),
            &[],
        )
        .expect("node");
        let mut publisher = TcpClient::connect(n.addr(), ClientId(1)).expect("pub");
        let mut subscriber = TcpClient::connect(n.addr(), ClientId(2)).expect("sub");
        subscriber
            .send(&Message::subscribe(
                SubId(1),
                "//claim[@lang='en']".parse().expect("xpe"),
            ))
            .expect("subscribe");
        std::thread::sleep(Duration::from_millis(100));
        let doc = xdn_xml::parse_document(
            r#"<claims><claim lang="en"><amount>5</amount></claim></claims>"#,
        )
        .expect("doc");
        let bytes = doc.to_xml_string().len();
        for p in xdn_xml::paths::extract_paths(&doc, DocId(1)) {
            publisher
                .send(&Message::Publish(xdn_broker::Publication::from_doc_path(&p, bytes)))
                .expect("publish");
        }
        let got = subscriber.recv_timeout(Duration::from_secs(5));
        assert!(matches!(got, Some(Message::Publish(_))), "predicate match over TCP");
        n.shutdown();
    }
}
