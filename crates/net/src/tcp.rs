//! TCP transport: brokers and clients over real sockets.
//!
//! The third substrate after the discrete-event simulator and the
//! in-process threaded transport: each [`TcpNode`] runs one broker,
//! listens for peers and clients, and exchanges frames encoded with
//! [`xdn_broker::wire`]. This is the shape an actual deployment takes
//! (one node per host, the `xdn-node` binary).
//!
//! Connection protocol: after connecting, a peer sends a 9-byte hello —
//! `0x01 | u64 broker-id` for brokers, `0x02 | u64 client-id` for
//! clients — then length-prefixed message frames in both directions.
//! A connection whose first byte is `G` is treated as an HTTP `GET`
//! instead: the node replies with a Prometheus text snapshot of its
//! metrics (traffic by kind, routing-table sizes, latency histograms,
//! peer queue depths) and closes — `curl http://node-addr/metrics`
//! works against the same port the overlay uses.
//!
//! # Fault tolerance
//!
//! Every *dialled* peer link runs under a supervisor
//! ([`SupervisorConfig`]): the dialling side detects a dead connection
//! (write failure, read EOF, or heartbeat silence), reconnects with
//! exponential backoff plus jitter up to a retry budget, and meanwhile
//! buffers outbound frames in a bounded queue that sheds publications
//! before control messages. The accepting side detects death through
//! EOF or write failure and simply waits for the diallers to return.
//! Whenever a broker⇄broker connection is (re-)established — by either
//! side — a [`Message::SyncRequest`] is sent so both brokers re-install
//! the routing state relevant to the link (see
//! [`xdn_broker::Broker::export_routing_for`]). Because sync
//! installation is idempotent and buffered frames are retransmitted,
//! delivery across a link outage is at-least-once.

use crate::metrics::{MetricsSink, SharedMetrics};
use crate::queue::{FrameQueue, Pop};
use crate::sink::FrameSink;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;
use xdn_broker::wire::MAX_FRAME_BYTES;
use xdn_broker::{
    wire, Broker, BrokerId, BrokerStats, ClientId, Dest, FrameBuf, Message, MessageKind, Outbound,
    RoutingConfig,
};
use xdn_obs::{render_prometheus, MetricData, MetricFamily};

const HELLO_BROKER: u8 = 0x01;
const HELLO_CLIENT: u8 = 0x02;

/// Capacity of the broker loop's input channel. Bounded so a flood of
/// inbound frames exerts backpressure on the reader threads (and thus
/// TCP flow control) instead of growing an unbounded heap queue.
const INBOX_CAPACITY: usize = 4096;

/// Capacity of a client's delivery channel; a slow client consumer
/// backpressures its reader thread, not the node.
const CLIENT_INBOX_CAPACITY: usize = 1024;

/// Locks a std mutex, recovering from poisoning: the guarded values
/// here (peer addresses) stay coherent even if a holder panicked.
fn lock_clean<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Errors from the TCP transport.
#[derive(Debug)]
pub enum TcpError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A malformed frame or hello.
    Protocol(String),
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Io(e) => write!(f, "transport I/O error: {e}"),
            TcpError::Protocol(m) => write!(f, "transport protocol error: {m}"),
        }
    }
}

impl std::error::Error for TcpError {}

impl From<std::io::Error> for TcpError {
    fn from(e: std::io::Error) -> Self {
        TcpError::Io(e)
    }
}

/// Supervision parameters for dialled peer links.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Idle time after which a keep-alive heartbeat is written.
    pub heartbeat_interval: Duration,
    /// Inbound silence after which the connection is declared dead.
    /// Must comfortably exceed `heartbeat_interval`.
    pub heartbeat_timeout: Duration,
    /// Delay before the first reconnect attempt; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on the reconnect delay.
    pub backoff_max: Duration,
    /// Consecutive failed reconnect attempts before the supervisor
    /// abandons the link ([`LinkStats::gave_up`]).
    pub retry_budget: u32,
    /// Outbound frames buffered while disconnected. Overflow sheds
    /// publications before control messages — routing state must
    /// survive an outage, documents may be re-published.
    pub queue_capacity: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            heartbeat_interval: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_secs(2),
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            retry_budget: 40,
            queue_capacity: 1024,
        }
    }
}

/// Counters one peer supervisor maintains ([`TcpNode::link_stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Successful connection establishments (first connect included).
    pub connects: u64,
    /// Connections lost after being established.
    pub disconnects: u64,
    /// Outbound frames shed by the bounded queue.
    pub dropped_frames: u64,
    /// The retry budget was exhausted; the link is abandoned.
    pub gave_up: bool,
}

/// A point-in-time view of a node's broker ([`TcpNode::snapshot`]).
/// Lets tests and operators poll for quiescence instead of sleeping.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// The broker's message counters.
    pub stats: BrokerStats,
    /// Advertisements in the SRT.
    pub srt_size: usize,
    /// Subscriptions in the PRT.
    pub prt_size: usize,
    /// Canonical routing-state digest
    /// ([`xdn_broker::Broker::routing_signature`]).
    pub routing_signature: String,
}

enum Input {
    FromPeer(Dest, Message),
    PeerWriter(Dest, Arc<Mutex<TcpStream>>),
    Snapshot(SyncSender<NodeSnapshot>),
    /// Render a Prometheus text snapshot of the node's metrics.
    MetricsText(SyncSender<String>),
    Stop,
}

// ---------------------------------------------------------------------
// Peer supervisor (the bounded outbound queue lives in crate::queue)
// ---------------------------------------------------------------------

/// One supervised outbound link to a dialled peer.
struct PeerLink {
    queue: Arc<FrameQueue>,
    stats: Arc<Mutex<LinkStats>>,
    addr: Arc<StdMutex<SocketAddr>>,
    /// The live socket of the current epoch, severed to force a
    /// reconnect ([`TcpNode::sever_peer`]) or on shutdown.
    current: Arc<Mutex<Option<TcpStream>>>,
    handle: JoinHandle<()>,
}

/// Deterministic-enough jitter without an RNG dependency: xorshift64*.
fn next_jitter(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Exponential backoff with half-width jitter: `base * 2^(attempt-1)`
/// capped at `max`, then uniformly drawn from `[d/2, d)`.
fn backoff_delay(cfg: &SupervisorConfig, attempt: u32, jitter: &mut u64) -> Duration {
    let exp = attempt.saturating_sub(1).min(16);
    let full = cfg
        .backoff_base
        .saturating_mul(1u32 << exp)
        .min(cfg.backoff_max)
        .max(Duration::from_millis(1));
    let half = full / 2;
    let extra_ns = next_jitter(jitter) % half.as_nanos().max(1) as u64;
    half + Duration::from_nanos(extra_ns)
}

/// Sleeps in small slices so shutdown is not delayed by a long backoff.
fn sleep_watching(total: Duration, stopping: &AtomicBool) {
    let slice = Duration::from_millis(20);
    let mut left = total;
    while !left.is_zero() && !stopping.load(Ordering::SeqCst) {
        let step = left.min(slice);
        // xtask: allow(sleep) bounded 20ms backoff slice, stop-aware by construction
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
}

#[allow(clippy::too_many_arguments)]
fn supervise_peer(
    self_id: BrokerId,
    peer: BrokerId,
    addr: Arc<StdMutex<SocketAddr>>,
    queue: Arc<FrameQueue>,
    stats: Arc<Mutex<LinkStats>>,
    current: Arc<Mutex<Option<TcpStream>>>,
    inbox: SyncSender<Input>,
    cfg: SupervisorConfig,
    stopping: Arc<AtomicBool>,
) {
    let mut jitter = {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap_or_default()
            .as_nanos() as u64;
        t ^ ((peer.0 as u64) << 32) ^ self_id.0 as u64 | 1
    };
    // Encoded lazily on first idle tick, then reused for the
    // supervisor's whole lifetime: heartbeats never re-encode.
    let heartbeat = FrameBuf::from_message(Message::Heartbeat);
    'epochs: while !stopping.load(Ordering::SeqCst) {
        // Connect with exponential backoff + jitter, first attempt
        // immediate.
        let mut attempt = 0u32;
        let stream = loop {
            if stopping.load(Ordering::SeqCst) {
                break 'epochs;
            }
            match TcpStream::connect(*lock_clean(&addr)) {
                Ok(s) => break s,
                Err(_) => {
                    attempt += 1;
                    if attempt > cfg.retry_budget {
                        stats.lock().gave_up = true;
                        break 'epochs;
                    }
                    sleep_watching(backoff_delay(&cfg, attempt, &mut jitter), &stopping);
                }
            }
        };

        let mut hello = [0u8; 9];
        hello[0] = HELLO_BROKER;
        hello[1..9].copy_from_slice(&(self_id.0 as u64).to_be_bytes());
        let mut writer = stream;
        if writer.write_all(&hello).is_err() {
            continue;
        }
        let Ok(reader_stream) = writer.try_clone() else {
            continue;
        };
        // Inbound silence beyond the heartbeat timeout means the peer
        // (which heartbeats at `heartbeat_interval`, or echoes ours)
        // is gone even if the socket never errors.
        let _ = reader_stream.set_read_timeout(Some(cfg.heartbeat_timeout));
        *current.lock() = writer.try_clone().ok();
        stats.lock().connects += 1;
        queue.clear_down();
        // First frame of every epoch: ask the peer for the routing
        // state this link needs (idempotent on the receiving side).
        queue.push_front(Message::SyncRequest);

        let reader_queue = queue.clone();
        let reader_inbox = inbox.clone();
        let reader = std::thread::spawn(move || {
            read_frames(reader_stream, Dest::Broker(peer), reader_inbox);
            // EOF, frame error, or heartbeat silence: wake the writer.
            reader_queue.mark_down();
        });

        loop {
            match queue.pop_wait(cfg.heartbeat_interval) {
                Pop::Closed => {
                    let _ = writer.shutdown(std::net::Shutdown::Both);
                    let _ = reader.join();
                    break 'epochs;
                }
                Pop::Down => break,
                Pop::Idle => {
                    if heartbeat.write_to(&mut writer).is_err() {
                        break;
                    }
                }
                Pop::Msg(m) => {
                    if m.write_to(&mut writer).is_err() {
                        // Retransmit after reconnecting. Sequenced
                        // frames are already held in the queue's
                        // inflight buffer (and the broker's retransmit
                        // buffer), so only unsequenced control frames
                        // go back to the front of the queue.
                        queue.requeue_unsent(m);
                        break;
                    }
                }
            }
        }
        stats.lock().disconnects += 1;
        *current.lock() = None;
        let _ = writer.shutdown(std::net::Shutdown::Both);
        let _ = reader.join();
    }
}

// ---------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------

/// Accepted connections: their sockets (severed on shutdown so the
/// reader threads unblock) and reader handles (joined on shutdown).
type ConnList = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// One broker node on a TCP socket.
pub struct TcpNode {
    addr: SocketAddr,
    inbox: SyncSender<Input>,
    broker_thread: JoinHandle<()>,
    listener_handle: JoinHandle<()>,
    stopping: Arc<AtomicBool>,
    links: HashMap<BrokerId, PeerLink>,
    conns: ConnList,
    metrics: SharedMetrics,
}

impl TcpNode {
    /// Starts a node with default supervision: binds `listen` (use
    /// port 0 for an ephemeral port), spawns the accept loop and the
    /// broker loop, and supervises a connection to every peer in
    /// `peers` (id → address).
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot bind.
    pub fn start(
        id: BrokerId,
        config: RoutingConfig,
        listen: SocketAddr,
        peers: &[(BrokerId, SocketAddr)],
    ) -> Result<TcpNode, TcpError> {
        Self::start_with(id, config, listen, peers, SupervisorConfig::default())
    }

    /// [`TcpNode::start`], additionally arming the warm-up gate for
    /// `expected` — neighbours this node does not dial but that will
    /// dial in (acceptor-side links).
    ///
    /// A restarted broker has empty routing tables, and the zero-loss
    /// guarantee of the sequenced links holds only if it defers payload
    /// until *every* neighbour's `SyncState` has arrived. Dialled peers
    /// are armed automatically; acceptor-side neighbours are only
    /// discovered when they reconnect, which can be after another
    /// neighbour has already replayed its unacked frames — those would
    /// be acked and dropped unroutable. Restart a listener-side node
    /// with its known dialler ids here (the `--expect` flag of
    /// `xdn-node`) to close that window.
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot bind.
    pub fn start_expecting(
        id: BrokerId,
        config: RoutingConfig,
        listen: SocketAddr,
        peers: &[(BrokerId, SocketAddr)],
        expected: &[BrokerId],
        supervision: SupervisorConfig,
    ) -> Result<TcpNode, TcpError> {
        Self::start_inner(id, config, listen, peers, expected, supervision)
    }

    /// [`TcpNode::start`] with explicit supervision parameters.
    ///
    /// Unlike earlier revisions, peers do not have to be up yet: each
    /// link's supervisor keeps dialling within its retry budget.
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot bind.
    pub fn start_with(
        id: BrokerId,
        config: RoutingConfig,
        listen: SocketAddr,
        peers: &[(BrokerId, SocketAddr)],
        supervision: SupervisorConfig,
    ) -> Result<TcpNode, TcpError> {
        Self::start_inner(id, config, listen, peers, &[], supervision)
    }

    fn start_inner(
        id: BrokerId,
        config: RoutingConfig,
        listen: SocketAddr,
        peers: &[(BrokerId, SocketAddr)],
        expected: &[BrokerId],
        supervision: SupervisorConfig,
    ) -> Result<TcpNode, TcpError> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = sync_channel::<Input>(INBOX_CAPACITY);
        let stopping = Arc::new(AtomicBool::new(false));

        let mut broker = Broker::new(id, config);
        // Each node *incarnation* gets a later epoch than any previous
        // life of the same broker id: peers' dedup windows key on the
        // epoch, so a restarted node's frames must not be mistaken for
        // duplicates of its pre-crash sequence numbers. Wall-clock
        // microseconds are monotone across restarts for this purpose
        // (a restart takes far longer than the clock's granularity).
        let incarnation = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap_or_default()
            .as_micros() as u64;
        broker.set_epoch(incarnation);
        for &(pid, _) in peers {
            broker.add_neighbor(pid);
            // A fresh incarnation starts with empty routing tables;
            // its supervisors send a SyncRequest to every dialled
            // peer on connect. Until those peers answer with
            // SyncState, payload is deferred unacked (the warm-up
            // gate) rather than acknowledged and dropped unroutable.
            broker.expect_sync_from(pid);
        }
        for &pid in expected {
            // Acceptor-side neighbours: not dialled, but their
            // snapshots are prerequisites for acking payload, exactly
            // like the dialled ones. They arm the gate now and satisfy
            // it when they dial back in and answer our SyncRequest.
            broker.add_neighbor(pid);
            broker.expect_sync_from(pid);
        }

        // Supervised outbound links, one per dialled peer.
        let mut links = HashMap::new();
        let mut queues: HashMap<Dest, Arc<FrameQueue>> = HashMap::new();
        for &(pid, paddr) in peers {
            let queue = Arc::new(FrameQueue::new(supervision.queue_capacity));
            let stats = Arc::new(Mutex::new(LinkStats::default()));
            let addr_cell = Arc::new(StdMutex::new(paddr));
            let current = Arc::new(Mutex::new(None));
            let handle = {
                let (q, st, a, c, ibx, cfg, stop) = (
                    queue.clone(),
                    stats.clone(),
                    addr_cell.clone(),
                    current.clone(),
                    tx.clone(),
                    supervision.clone(),
                    stopping.clone(),
                );
                std::thread::spawn(move || supervise_peer(id, pid, a, q, st, c, ibx, cfg, stop))
            };
            queues.insert(Dest::Broker(pid), queue.clone());
            links.insert(
                pid,
                PeerLink {
                    queue,
                    stats,
                    addr: addr_cell,
                    current,
                    handle,
                },
            );
        }

        // Broker loop: single-threaded state machine fed by readers.
        let metrics = SharedMetrics::new();
        let loop_metrics = metrics.clone();
        let broker_thread =
            std::thread::spawn(move || broker_loop(broker, rx, queues, loop_metrics));

        // Accept loop. The stop flag is checked before handing each
        // accepted connection to a reader thread; shutdown() flips it
        // and then dials the listener once to unblock `incoming()`.
        let conns: ConnList = Arc::new(Mutex::new(Vec::new()));
        let accept_stop = stopping.clone();
        let accept_tx = tx.clone();
        let accept_conns = conns.clone();
        let listener_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { break };
                if let Ok(conn) = spawn_connection(stream, accept_tx.clone()) {
                    accept_conns.lock().push(conn);
                }
            }
        });

        Ok(TcpNode {
            addr,
            inbox: tx,
            broker_thread,
            listener_handle,
            stopping,
            links,
            conns,
            metrics,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time view of the broker's state, or `None` if the
    /// broker loop is gone.
    pub fn snapshot(&self) -> Option<NodeSnapshot> {
        let (tx, rx) = sync_channel(1);
        self.inbox.send(Input::Snapshot(tx)).ok()?;
        rx.recv_timeout(Duration::from_secs(5)).ok()
    }

    /// Traffic and delivery metrics recorded by the broker loop
    /// through the same [`crate::metrics::MetricsSink`] interface the
    /// simulator uses. Snapshot semantics: the returned value is a
    /// copy; concurrent recording continues.
    pub fn metrics(&self) -> crate::metrics::NetMetrics {
        self.metrics.snapshot()
    }

    /// The node's metrics in the Prometheus text exposition format —
    /// the same body an HTTP `GET` against [`TcpNode::addr`] returns —
    /// or `None` if the broker loop is gone.
    pub fn metrics_text(&self) -> Option<String> {
        let (tx, rx) = sync_channel(1);
        self.inbox.send(Input::MetricsText(tx)).ok()?;
        rx.recv_timeout(Duration::from_secs(5)).ok()
    }

    /// Polls [`TcpNode::snapshot`] until `pred` holds or `timeout`
    /// elapses. Returns whether the predicate held — the bounded
    /// replacement for sleeping in tests and scripts.
    pub fn await_state(
        &self,
        timeout: Duration,
        mut pred: impl FnMut(&NodeSnapshot) -> bool,
    ) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(s) = self.snapshot() {
                if pred(&s) {
                    return true;
                }
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            // xtask: allow(sleep) 5ms poll slice under an explicit caller deadline
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Supervision counters for a dialled peer, or `None` if the peer
    /// is not dialled from this node.
    pub fn link_stats(&self, peer: BrokerId) -> Option<LinkStats> {
        self.links
            .get(&peer)
            .map(|l| l.stats.lock().clone())
            .map(|mut s| {
                s.dropped_frames = self.links[&peer].queue.dropped();
                s
            })
    }

    /// Severs the current connection to a dialled peer (fault
    /// injection: a network blip). The supervisor notices and
    /// reconnects with backoff. Returns whether a live connection
    /// existed.
    pub fn sever_peer(&self, peer: BrokerId) -> bool {
        let Some(link) = self.links.get(&peer) else {
            return false;
        };
        match link.current.lock().as_ref() {
            Some(s) => s.shutdown(std::net::Shutdown::Both).is_ok(),
            None => false,
        }
    }

    /// Points a dialled peer's supervisor at a new address (the peer
    /// moved or was restarted elsewhere) and forces a reconnect.
    /// Returns whether the peer is dialled from this node.
    pub fn redial(&self, peer: BrokerId, addr: SocketAddr) -> bool {
        let Some(link) = self.links.get(&peer) else {
            return false;
        };
        *lock_clean(&link.addr) = addr;
        self.sever_peer(peer);
        true
    }

    /// Stops the broker loop, the supervisors, and every reader
    /// thread, then joins them all. The accept loop is unblocked by a
    /// final self-connection.
    pub fn shutdown(self) {
        self.stopping.store(true, Ordering::SeqCst);
        let _ = self.inbox.send(Input::Stop);
        // Wake supervisors (possibly parked on their queues) and sever
        // their live sockets so reader threads unblock.
        for link in self.links.values() {
            link.queue.close();
            if let Some(s) = link.current.lock().as_ref() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        // Sever accepted connections so their readers unblock.
        let conns = std::mem::take(&mut *self.conns.lock());
        for (stream, _) in &conns {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        for (_, handle) in conns {
            let _ = handle.join();
        }
        for (_, link) in self.links {
            let _ = link.handle.join();
        }
        let _ = self.broker_thread.join();
        let _ = self.listener_handle.join();
    }
}

/// Most frames one `handle_batch` call will take off the inbox; bounds
/// both batch memory and how long metrics/stop requests can queue
/// behind a drain.
const INBOX_BATCH_LIMIT: usize = 256;

/// The TCP transport's [`FrameSink`]: dialled peers go through their
/// supervisor's bounded [`FrameQueue`] (which may shed — the returned
/// kind), while *accepted* connections (clients, and brokers that
/// dialled us) are written directly on the shared socket writer.
///
/// Borrows the broker loop's state per call site, so it is constructed
/// inline wherever a frame leaves the loop.
struct TcpSink<'a> {
    queues: &'a HashMap<Dest, Arc<FrameQueue>>,
    writers: &'a mut HashMap<Dest, Arc<Mutex<TcpStream>>>,
}

impl FrameSink for TcpSink<'_> {
    fn ship(&mut self, out: Outbound) -> Option<MessageKind> {
        if let Some(q) = self.queues.get(&out.dest) {
            return q.push_back(out.frame);
        }
        if let Some(w) = self.writers.get(&out.dest) {
            if out.frame.write_to(&mut *w.lock()).is_err() {
                // An accepted peer died: drop the writer and rely on
                // the remote supervisor (or client) to reconnect. A
                // dropped sequenced frame is replayed from the
                // broker's retransmit buffer on the next sync.
                self.writers.remove(&out.dest);
            }
        }
        None
    }
}

fn broker_loop(
    mut broker: Broker,
    rx: Receiver<Input>,
    queues: HashMap<Dest, Arc<FrameQueue>>,
    mut metrics: SharedMetrics,
) {
    // Timebase for this node's delay measurements. Publish→delivery
    // delays are only computable for documents both injected and
    // delivered through *this* node; cross-node deliveries still count
    // as traffic but carry no delay sample.
    let epoch = std::time::Instant::now();
    // Writers for *accepted* connections (clients, and brokers that
    // dialled us). Dialled peers go through their supervisor's queue;
    // `TcpSink` picks the right path per destination.
    let mut writers: HashMap<Dest, Arc<Mutex<TcpStream>>> = HashMap::new();
    // A non-`FromPeer` input drained while gathering a frame batch is
    // carried into the next iteration instead of being dropped.
    let mut carried: Option<Input> = None;
    loop {
        let input = match carried.take() {
            Some(i) => i,
            None => match rx.recv() {
                Ok(i) => i,
                Err(_) => break,
            },
        };
        match input {
            Input::Stop => break,
            Input::Snapshot(reply) => {
                let _ = reply.send(NodeSnapshot {
                    stats: broker.stats().clone(),
                    srt_size: broker.srt_size(),
                    prt_size: broker.prt_size(),
                    routing_signature: broker.routing_signature(),
                });
            }
            Input::MetricsText(reply) => {
                let _ = reply.send(render_node_metrics(&broker, &queues));
            }
            Input::PeerWriter(dest, writer) => {
                writers.insert(dest, writer);
                // A broker (re-)connected to us: both sides of a fresh
                // broker⇄broker connection request the link's state.
                // The dialler is also a routing neighbour from now on —
                // without this, a pure listener floods advertisements
                // only to its statically configured peers and anything
                // advertised on the accepting side never propagates.
                if let Dest::Broker(b) = dest {
                    // First sight of this peer means this broker holds
                    // no routing state involving it — the situation of
                    // a restarted listener whose neighbours dial back
                    // in. Arm the warm-up gate so replayed payload from
                    // one neighbour is deferred (unacked) until every
                    // rediscovered neighbour's SyncState arrives;
                    // otherwise frames get acked and dropped unroutable
                    // before the far side's subscriptions install. A
                    // re-accept of a known neighbour does not re-arm:
                    // our own tables survived its outage.
                    if !broker.neighbors().contains(&b) {
                        broker.add_neighbor(b);
                        broker.expect_sync_from(b);
                    }
                    let mut sink = TcpSink {
                        queues: &queues,
                        writers: &mut writers,
                    };
                    if let Some(kind) = sink.ship(Outbound::from((dest, Message::SyncRequest))) {
                        metrics.on_frame_shed(b, kind);
                    }
                }
            }
            Input::FromPeer(from, msg) => {
                // Batch-drain: take every already-queued frame in one
                // gulp so a sharded broker routes the publication run
                // in parallel. Other input kinds end the batch and are
                // carried into the next loop iteration.
                let mut batch = vec![(from, msg)];
                while batch.len() < INBOX_BATCH_LIMIT {
                    match rx.try_recv() {
                        Ok(Input::FromPeer(f, m)) => batch.push((f, m)),
                        Ok(other) => {
                            carried = Some(other);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                // Per-frame admission bookkeeping, in arrival order.
                let mut echo_heartbeats: Vec<Dest> = Vec::new();
                for (from, msg) in &batch {
                    // The accepting side does not run an idle timer; it
                    // echoes the dialler's heartbeats instead, giving
                    // the dialler's silence detector traffic to
                    // observe. (Dialled peers' heartbeats are NOT
                    // echoed — both sides echoing would ping-pong
                    // forever.)
                    if matches!(msg, Message::Heartbeat)
                        && !queues.contains_key(from)
                        && matches!(from, Dest::Broker(_))
                    {
                        echo_heartbeats.push(*from);
                    }
                    metrics.on_broker_message(broker.id(), msg.kind());
                    if let (Dest::Client(_), Message::Publish(p)) = (from, msg) {
                        metrics.on_publish_injected(p.doc_id, epoch.elapsed());
                    }
                    if let Message::Ack {
                        epoch: ack_epoch,
                        seq,
                    } = msg
                    {
                        // A cumulative ack also prunes the supervised
                        // queue's inflight hold, so a redial only
                        // replays frames the peer has not confirmed.
                        if let Some(q) = queues.get(from) {
                            q.ack(*ack_epoch, *seq);
                        }
                    }
                }
                for ob in broker.handle_batch_frames(batch) {
                    if let Dest::Client(c) = ob.dest {
                        // `ob.kind` is precomputed at routing time; no
                        // per-hop `kind()` recomputation here.
                        metrics.on_client_message(c, ob.kind);
                        if let Message::Publish(p) = ob.frame.payload() {
                            // Hop counts are not carried on the wire;
                            // TCP-transport notifications record 0.
                            metrics.on_delivery(c, p, epoch.elapsed(), 0);
                        }
                    }
                    let dest = ob.dest;
                    let mut sink = TcpSink {
                        queues: &queues,
                        writers: &mut writers,
                    };
                    if let (Some(kind), Dest::Broker(b)) = (sink.ship(ob), dest) {
                        metrics.on_frame_shed(b, kind);
                    }
                }
                for hb_from in echo_heartbeats {
                    let mut sink = TcpSink {
                        queues: &queues,
                        writers: &mut writers,
                    };
                    sink.ship(Outbound::from((hb_from, Message::Heartbeat)));
                }
            }
        }
    }
}

/// Assembles the node's metric families — per-kind traffic, routing
/// table sizes, processing latency histograms, and per-peer outbound
/// queue depth/shed counters — and renders them in the Prometheus text
/// format. Runs on the broker-loop thread, which owns both the broker
/// and the dialled peers' queues.
fn render_node_metrics(broker: &Broker, queues: &HashMap<Dest, Arc<FrameQueue>>) -> String {
    let stats = broker.stats();

    let mut received = MetricFamily::new(
        "xdn_broker_messages_received_total",
        "Messages handled by the broker, by kind.",
    );
    for (kind, count) in stats.received.iter() {
        received.push(&[("kind", kind.as_str())], MetricData::Counter(count));
    }

    let mut tables = MetricFamily::new(
        "xdn_routing_table_size",
        "Entries in the broker's routing tables.",
    );
    let srt = i64::try_from(broker.srt_size()).unwrap_or(i64::MAX);
    let prt = i64::try_from(broker.prt_size()).unwrap_or(i64::MAX);
    tables.push(&[("table", "srt")], MetricData::Gauge(srt));
    tables.push(&[("table", "prt")], MetricData::Gauge(prt));

    // Sort peers so the exposition is deterministic (HashMap order
    // would make scrapes flap line order between runs).
    let mut peers: Vec<(String, usize, u64, u64)> = queues
        .iter()
        .map(|(dest, q)| {
            let label = match dest {
                Dest::Broker(b) => format!("broker-{}", b.0),
                Dest::Client(c) => format!("client-{}", c.0),
            };
            (label, q.len(), q.dropped(), q.shed_publications())
        })
        .collect();
    peers.sort();
    let mut depth = MetricFamily::new(
        "xdn_peer_queue_depth",
        "Frames buffered toward each dialled peer.",
    );
    let mut shed = MetricFamily::new(
        "xdn_peer_queue_dropped_total",
        "Frames shed by each dialled peer's bounded queue.",
    );
    let mut shed_pubs = MetricFamily::new(
        "xdn_peer_shed_publications_total",
        "Publications shed by each dialled peer's bounded queue.",
    );
    for (label, len, dropped, pubs) in &peers {
        let len = i64::try_from(*len).unwrap_or(i64::MAX);
        depth.push(&[("peer", label)], MetricData::Gauge(len));
        shed.push(&[("peer", label)], MetricData::Counter(*dropped));
        shed_pubs.push(&[("peer", label)], MetricData::Counter(*pubs));
    }

    let mut families = vec![
        MetricFamily::gauge(
            "xdn_broker_id",
            "Identifier of the broker serving this endpoint.",
            i64::from(broker.id().0),
        ),
        received,
        MetricFamily::counter(
            "xdn_broker_messages_sent_total",
            "Messages emitted by the broker.",
            stats.sent,
        ),
        MetricFamily::counter(
            "xdn_broker_deliveries_total",
            "Publications delivered to local clients.",
            stats.deliveries,
        ),
        tables,
        MetricFamily::histogram(
            "xdn_sub_processing_seconds",
            "Subscription processing latency.",
            stats.sub_processing.clone(),
        ),
        MetricFamily::histogram(
            "xdn_pub_routing_seconds",
            "Publication routing latency.",
            stats.pub_routing.clone(),
        ),
        MetricFamily::counter(
            "xdn_retransmits_total",
            "Sequenced frames replayed from retransmit buffers.",
            stats.retransmits,
        ),
        MetricFamily::counter(
            "xdn_dup_frames_total",
            "Duplicate sequenced frames suppressed by dedup windows.",
            stats.dup_frames,
        ),
        MetricFamily::counter(
            "xdn_stale_frames_total",
            "Frames from superseded sender epochs, dropped.",
            stats.stale_frames,
        ),
        MetricFamily::histogram(
            "xdn_ack_lag_seconds",
            "Time a sequenced frame waited in the retransmit buffer before its ack.",
            stats.ack_lag.clone(),
        ),
        depth,
        shed,
        shed_pubs,
    ];
    // Wire codec + frame-pool counters. Process-wide (the codec's
    // atomics span every connection thread), exposed on each node so
    // encode-per-fan-out and pool hit rates are scrapeable.
    let codec = wire::codec_stats();
    families.push(MetricFamily::counter(
        "xdn_frame_encode_calls_total",
        "Frame body encodes performed by the wire codec.",
        codec.encode_calls,
    ));
    families.push(MetricFamily::counter(
        "xdn_frame_encoded_bytes_total",
        "Bytes produced by wire codec encodes.",
        codec.encoded_bytes,
    ));
    families.push(MetricFamily::counter(
        "xdn_frame_pool_hits_total",
        "Frame buffer acquisitions served from the thread-local pool.",
        codec.pool_hits,
    ));
    families.push(MetricFamily::counter(
        "xdn_frame_pool_misses_total",
        "Frame buffer acquisitions that had to allocate.",
        codec.pool_misses,
    ));
    families.push(MetricFamily::counter(
        "xdn_frame_pool_discards_total",
        "Frame buffers dropped instead of pooled (oversized or pool full).",
        codec.pool_discards,
    ));
    // Parallel-matching families, present only on sharded strategies.
    if let Some(ss) = broker.shard_stats() {
        let mut occupancy = MetricFamily::new(
            "xdn_shard_subscriptions",
            "Subscriptions held by each match shard.",
        );
        let mut shard_route = MetricFamily::new(
            "xdn_shard_route_seconds",
            "Per-shard publication match latency.",
        );
        for (i, size) in ss.shard_sizes.iter().enumerate() {
            let label = i.to_string();
            let size = i64::try_from(*size).unwrap_or(i64::MAX);
            occupancy.push(&[("shard", &label)], MetricData::Gauge(size));
        }
        for (i, hist) in ss.route_times.iter().enumerate() {
            let label = i.to_string();
            shard_route.push(&[("shard", &label)], MetricData::Histogram(hist.clone()));
        }
        families.push(occupancy);
        families.push(shard_route);
        families.push(MetricFamily::gauge(
            "xdn_match_pool_threads",
            "Configured match pool workers.",
            i64::try_from(ss.threads).unwrap_or(i64::MAX),
        ));
        families.push(MetricFamily::gauge(
            "xdn_match_pool_queue_depth",
            "Tasks submitted by the most recent parallel fan-out.",
            i64::try_from(ss.queue_depth).unwrap_or(i64::MAX),
        ));
        families.push(MetricFamily::counter(
            "xdn_match_pool_tasks_total",
            "Match tasks executed by the worker pool.",
            ss.tasks_run,
        ));
    }
    // Shared-automaton families, present only on automaton strategies
    // (sharded automatons report the merged per-shard snapshot).
    if let Some(aut) = broker.automaton_stats() {
        families.push(MetricFamily::gauge(
            "xdn_automaton_states",
            "NFA states allocated by the shared subscription automaton.",
            i64::try_from(aut.states).unwrap_or(i64::MAX),
        ));
        families.push(MetricFamily::counter(
            "xdn_automaton_transitions_total",
            "NFA edges traversed while matching publications.",
            aut.transitions_total,
        ));
        families.push(MetricFamily::gauge(
            "xdn_automaton_active_states_peak",
            "Largest active-state set any single traversal reached.",
            i64::try_from(aut.peak_active_states).unwrap_or(i64::MAX),
        ));
        families.push(MetricFamily::counter(
            "xdn_automaton_compactions_total",
            "Compaction rebuilds triggered by subscription churn.",
            aut.compactions_total,
        ));
        families.push(MetricFamily::histogram(
            "xdn_automaton_rebuild_seconds",
            "Duration of automaton compaction rebuilds.",
            aut.rebuild_seconds.clone(),
        ));
    }
    render_prometheus(&families)
}

/// Serves one HTTP metrics scrape on an accepted connection whose
/// hello began with `b'G'` (i.e. an HTTP `GET`). Drains the request
/// headers, asks the broker loop for a snapshot, writes a minimal
/// `HTTP/1.0` response, and closes.
fn serve_metrics(mut stream: TcpStream, tx: SyncSender<Input>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    // The 9-byte hello already consumed "GET /metr"; drain the rest of
    // the request up to the blank line ending the headers (bounded, so
    // a malformed request cannot pin this thread).
    let mut seen: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 256];
    while !seen.windows(4).any(|w| w == b"\r\n\r\n") && seen.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => seen.extend_from_slice(&chunk[..n]),
        }
    }
    let (reply_tx, reply_rx) = sync_channel(1);
    let body = if tx.send(Input::MetricsText(reply_tx)).is_ok() {
        reply_rx
            .recv_timeout(Duration::from_secs(5))
            .unwrap_or_default()
    } else {
        String::new()
    };
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn spawn_connection(
    mut stream: TcpStream,
    tx: SyncSender<Input>,
) -> Result<(TcpStream, JoinHandle<()>), TcpError> {
    let mut hello = [0u8; 9];
    stream.read_exact(&mut hello)?;
    if hello[0] == b'G' {
        // Not a peer hello: an HTTP scrape ("GET …"). Serve it on its
        // own thread so the accept loop keeps accepting.
        let http_stream = stream.try_clone()?;
        let handle = std::thread::spawn(move || serve_metrics(http_stream, tx));
        return Ok((stream, handle));
    }
    let id_bytes: [u8; 8] = hello[1..9]
        .try_into()
        .map_err(|_| TcpError::Protocol("malformed hello".into()))?;
    let id = u64::from_be_bytes(id_bytes);
    let from = match hello[0] {
        HELLO_BROKER => Dest::Broker(BrokerId(id as u32)),
        HELLO_CLIENT => Dest::Client(ClientId(id)),
        other => return Err(TcpError::Protocol(format!("unknown hello kind {other}"))),
    };
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    tx.send(Input::PeerWriter(from, writer))
        .map_err(|_| TcpError::Protocol("broker loop gone".into()))?;
    let reader_stream = stream.try_clone()?;
    let handle = std::thread::spawn(move || read_frames(reader_stream, from, tx));
    Ok((stream, handle))
}

/// Reads one length-prefixed frame (including its 4-byte prefix) into
/// a pooled buffer, enforcing [`MAX_FRAME_BYTES`]. `None` on EOF,
/// timeout, or an oversized frame — all reasons to drop the
/// connection. Callers return the buffer via [`wire::pool_release`]
/// once decoded.
fn read_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).ok()?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return None;
    }
    let mut frame = wire::pool_acquire();
    frame.resize(4 + len, 0);
    frame[..4].copy_from_slice(&len_buf);
    stream.read_exact(&mut frame[4..]).ok()?;
    Some(frame)
}

fn read_frames(mut stream: TcpStream, from: Dest, tx: SyncSender<Input>) {
    while let Some(frame) = read_frame(&mut stream) {
        let decoded = wire::decode_frame(&frame);
        wire::pool_release(frame);
        match decoded {
            Ok((msg, _)) => {
                if tx.send(Input::FromPeer(from, msg)).is_err() {
                    break;
                }
            }
            Err(_) => break, // protocol violation: drop the connection
        }
    }
    // Writer clones may be held elsewhere (broker loop, conns list);
    // severing the socket here makes the drop visible to the remote.
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn connect_with_retry(addr: SocketAddr, budget: Duration) -> Result<TcpStream, TcpError> {
    let deadline = std::time::Instant::now() + budget;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(TcpError::Io(e));
                }
                // xtask: allow(sleep) 25ms redial slice under the caller's budget
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// A client connection to a [`TcpNode`].
pub struct TcpClient {
    writer: TcpStream,
    reader: Receiver<Message>,
    _reader_thread: JoinHandle<()>,
}

impl TcpClient {
    /// Connects to a node as `id` (publisher and/or subscriber).
    ///
    /// # Errors
    ///
    /// Returns an error if the connection or hello fails.
    pub fn connect(addr: SocketAddr, id: ClientId) -> Result<TcpClient, TcpError> {
        let mut stream = connect_with_retry(addr, Duration::from_secs(5))?;
        let mut hello = [0u8; 9];
        hello[0] = HELLO_CLIENT;
        hello[1..9].copy_from_slice(&id.0.to_be_bytes());
        stream.write_all(&hello)?;
        let (tx, rx) = sync_channel(CLIENT_INBOX_CAPACITY);
        let read_stream = stream.try_clone()?;
        let reader_thread = std::thread::spawn(move || {
            client_read(read_stream, tx);
        });
        Ok(TcpClient {
            writer: stream,
            reader: rx,
            _reader_thread: reader_thread,
        })
    }

    /// Sends a message to the node.
    ///
    /// # Errors
    ///
    /// Returns an error if the socket write fails.
    pub fn send(&mut self, msg: &Message) -> Result<(), TcpError> {
        let mut buf = wire::pool_acquire();
        wire::encode_into(msg, &mut buf);
        let res = self.writer.write_all(&buf);
        wire::pool_release(buf);
        res?;
        Ok(())
    }

    /// Waits up to `timeout` for the next delivered message.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.reader.recv_timeout(timeout).ok()
    }
}

fn client_read(mut stream: TcpStream, tx: SyncSender<Message>) {
    while let Some(frame) = read_frame(&mut stream) {
        let decoded = wire::decode_frame(&frame);
        wire::pool_release(frame);
        let Ok((msg, _)) = decoded else {
            return;
        };
        if tx.send(msg).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdn_broker::MessageKind;
    use xdn_core::adv::{AdvPath, Advertisement};
    use xdn_core::rtable::{AdvId, SubId};
    use xdn_xml::{DocId, PathId};

    fn ephemeral() -> SocketAddr {
        "127.0.0.1:0".parse().expect("valid addr")
    }

    fn publication(elements: &[&str], doc: u64) -> Message {
        Message::Publish(xdn_broker::Publication {
            doc_id: DocId(doc),
            path_id: PathId(0),
            elements: elements
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            attributes: Vec::new(),
            doc_bytes: 32,
        })
    }

    /// Supervision tuned for tests: fast heartbeats and reconnects.
    fn fast_supervision() -> SupervisorConfig {
        SupervisorConfig {
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_timeout: Duration::from_millis(400),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(100),
            retry_budget: 200,
            queue_capacity: 64,
        }
    }

    #[test]
    fn tcp_end_to_end_two_nodes() {
        // Node 1 first (no peers), node 0 dials it.
        let n1 = TcpNode::start(
            BrokerId(1),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ephemeral(),
            &[],
        )
        .expect("node 1");
        let n0 = TcpNode::start(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ephemeral(),
            &[(BrokerId(1), n1.addr())],
        )
        .expect("node 0");

        let mut publisher = TcpClient::connect(n0.addr(), ClientId(1)).expect("publisher");
        let mut subscriber = TcpClient::connect(n1.addr(), ClientId(2)).expect("subscriber");

        let adv = Advertisement::non_recursive(AdvPath::from_names(&["a", "b"]));
        publisher
            .send(&Message::advertise(AdvId(1), adv))
            .expect("advertise");
        subscriber
            .send(&Message::subscribe(SubId(1), "/a/*".parse().expect("xpe")))
            .expect("subscribe");
        // The subscription is in effect once it reaches n0's PRT.
        assert!(
            n0.await_state(Duration::from_secs(5), |s| s.prt_size >= 1),
            "subscription did not propagate to n0"
        );

        publisher
            .send(&publication(&["a", "b"], 1))
            .expect("publish");
        let got = subscriber.recv_timeout(Duration::from_secs(5));
        assert!(
            matches!(got, Some(Message::Publish(_))),
            "expected delivery over TCP, got {got:?}"
        );
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn tcp_end_to_end_listener_side_advertiser() {
        // Mirror of `tcp_end_to_end_two_nodes`: the advertiser sits on
        // the *listening* node and the subscriber on the dialler.
        // Regression test for the accept path not registering the
        // dialling broker as a routing neighbour — the advertisement
        // would flood nowhere and the subscription stay local.
        let n1 = TcpNode::start(
            BrokerId(1),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ephemeral(),
            &[],
        )
        .expect("node 1");
        let n0 = TcpNode::start(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ephemeral(),
            &[(BrokerId(1), n1.addr())],
        )
        .expect("node 0");

        let mut publisher = TcpClient::connect(n1.addr(), ClientId(1)).expect("publisher");
        let mut subscriber = TcpClient::connect(n0.addr(), ClientId(2)).expect("subscriber");

        let adv = Advertisement::non_recursive(AdvPath::from_names(&["a", "b"]));
        publisher
            .send(&Message::advertise(AdvId(1), adv))
            .expect("advertise");
        // The advertisement must cross to the dialler before the
        // subscription can route back along it.
        assert!(
            n0.await_state(Duration::from_secs(5), |s| s.srt_size >= 1),
            "advertisement did not propagate to the dialling node"
        );
        subscriber
            .send(&Message::subscribe(SubId(1), "/a/*".parse().expect("xpe")))
            .expect("subscribe");
        assert!(
            n1.await_state(Duration::from_secs(5), |s| s.prt_size >= 1),
            "subscription did not propagate to n1"
        );

        publisher
            .send(&publication(&["a", "b"], 7))
            .expect("publish");
        let got = subscriber.recv_timeout(Duration::from_secs(5));
        assert!(
            matches!(got, Some(Message::Publish(_))),
            "expected delivery over TCP, got {got:?}"
        );
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn tcp_non_matching_not_delivered() {
        let n = TcpNode::start(
            BrokerId(0),
            RoutingConfig::builder().build(),
            ephemeral(),
            &[],
        )
        .expect("node");
        let mut publisher = TcpClient::connect(n.addr(), ClientId(1)).expect("pub");
        let mut subscriber = TcpClient::connect(n.addr(), ClientId(2)).expect("sub");
        subscriber
            .send(&Message::subscribe(SubId(1), "/x".parse().expect("xpe")))
            .expect("subscribe");
        assert!(n.await_state(Duration::from_secs(5), |s| s
            .stats
            .received_of(MessageKind::Subscribe)
            >= 1));
        publisher.send(&publication(&["a"], 1)).expect("publish");
        // The broker has routed the publication once it is counted;
        // nothing may reach the non-matching subscriber.
        assert!(n.await_state(Duration::from_secs(5), |s| s
            .stats
            .received_of(MessageKind::Publish)
            >= 1));
        assert!(subscriber.recv_timeout(Duration::from_millis(50)).is_none());
        n.shutdown();
    }

    #[test]
    fn tcp_metrics_scrape_over_http() {
        let n = TcpNode::start(
            BrokerId(7),
            RoutingConfig::builder().build(),
            ephemeral(),
            &[],
        )
        .expect("node");
        let mut publisher = TcpClient::connect(n.addr(), ClientId(1)).expect("pub");
        let mut subscriber = TcpClient::connect(n.addr(), ClientId(2)).expect("sub");
        subscriber
            .send(&Message::subscribe(SubId(1), "/a".parse().expect("xpe")))
            .expect("subscribe");
        assert!(n.await_state(Duration::from_secs(5), |s| {
            s.stats.received_of(MessageKind::Subscribe) >= 1
        }));
        publisher.send(&publication(&["a"], 1)).expect("publish");
        assert!(n.await_state(Duration::from_secs(5), |s| s.stats.deliveries >= 1));

        // A plain HTTP GET against the same port the overlay uses.
        let mut http = TcpStream::connect(n.addr()).expect("connect");
        http.write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        http.read_to_string(&mut response).expect("response");
        assert!(
            response.starts_with("HTTP/1.0 200 OK\r\n"),
            "bad status line: {response}"
        );
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        assert!(body.contains("xdn_broker_id 7\n"), "{body}");
        assert!(
            body.contains("xdn_broker_messages_received_total{kind=\"subscribe\"} 1\n"),
            "{body}"
        );
        assert!(
            body.contains("xdn_broker_messages_received_total{kind=\"publish\"} 1\n"),
            "{body}"
        );
        assert!(
            body.contains("xdn_routing_table_size{table=\"prt\"} 1\n"),
            "{body}"
        );
        assert!(
            body.contains("# TYPE xdn_sub_processing_seconds histogram\n"),
            "{body}"
        );
        assert!(body.contains("xdn_pub_routing_seconds_count 1\n"), "{body}");
        // Reliability families are always exposed, even at zero.
        assert!(body.contains("xdn_retransmits_total"), "{body}");
        assert!(body.contains("xdn_dup_frames_total"), "{body}");
        assert!(body.contains("xdn_stale_frames_total"), "{body}");
        assert!(body.contains("xdn_ack_lag_seconds"), "{body}");
        assert!(body.contains("xdn_peer_shed_publications_total"), "{body}");
        assert!(body.contains("xdn_frame_encode_calls_total"), "{body}");
        assert!(body.contains("xdn_frame_encoded_bytes_total"), "{body}");
        assert!(body.contains("xdn_frame_pool_hits_total"), "{body}");
        assert!(body.contains("xdn_frame_pool_misses_total"), "{body}");
        assert!(body.contains("xdn_frame_pool_discards_total"), "{body}");

        // The programmatic accessor serves the same families, and the
        // MetricsSink path saw the same traffic and delivery.
        let text = n.metrics_text().expect("metrics text");
        assert!(text.contains("xdn_broker_deliveries_total 1\n"), "{text}");
        let m = n.metrics();
        assert_eq!(m.broker_messages.get(MessageKind::Subscribe), 1);
        assert_eq!(m.broker_messages.get(MessageKind::Publish), 1);
        assert_eq!(m.notifications.len(), 1);
        n.shutdown();
    }

    #[test]
    fn tcp_automaton_metrics_scrape() {
        let mut cfg = RoutingConfig::builder().build();
        cfg.covering = false;
        cfg.merging = None;
        cfg.strategy = xdn_broker::MatchStrategy::Automaton;
        let n = TcpNode::start(BrokerId(9), cfg, ephemeral(), &[]).expect("node");
        let mut publisher = TcpClient::connect(n.addr(), ClientId(1)).expect("pub");
        let mut subscriber = TcpClient::connect(n.addr(), ClientId(2)).expect("sub");
        subscriber
            .send(&Message::subscribe(SubId(1), "//a".parse().expect("xpe")))
            .expect("subscribe");
        assert!(n.await_state(Duration::from_secs(5), |s| {
            s.stats.received_of(MessageKind::Subscribe) >= 1
        }));
        publisher.send(&publication(&["a"], 1)).expect("publish");
        assert!(n.await_state(Duration::from_secs(5), |s| s.stats.deliveries >= 1));

        let text = n.metrics_text().expect("metrics text");
        assert!(
            text.contains("# TYPE xdn_automaton_states gauge\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE xdn_automaton_transitions_total counter\n"),
            "{text}"
        );
        assert!(text.contains("xdn_automaton_active_states_peak"), "{text}");
        assert!(
            text.contains("xdn_automaton_compactions_total 0\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE xdn_automaton_rebuild_seconds histogram\n"),
            "{text}"
        );
        n.shutdown();
    }

    #[test]
    fn tcp_attribute_predicates_over_the_wire() {
        let n = TcpNode::start(
            BrokerId(0),
            RoutingConfig::builder().covering(true).build(),
            ephemeral(),
            &[],
        )
        .expect("node");
        let mut publisher = TcpClient::connect(n.addr(), ClientId(1)).expect("pub");
        let mut subscriber = TcpClient::connect(n.addr(), ClientId(2)).expect("sub");
        subscriber
            .send(&Message::subscribe(
                SubId(1),
                "//claim[@lang='en']".parse().expect("xpe"),
            ))
            .expect("subscribe");
        assert!(n.await_state(Duration::from_secs(5), |s| s
            .stats
            .received_of(MessageKind::Subscribe)
            >= 1));
        let doc = xdn_xml::parse_document(
            r#"<claims><claim lang="en"><amount>5</amount></claim></claims>"#,
        )
        .expect("doc");
        let bytes = doc.to_xml_string().len();
        for p in xdn_xml::paths::extract_paths(&doc, DocId(1)) {
            publisher
                .send(&Message::Publish(xdn_broker::Publication::from_doc_path(
                    &p, bytes,
                )))
                .expect("publish");
        }
        let got = subscriber.recv_timeout(Duration::from_secs(5));
        assert!(
            matches!(got, Some(Message::Publish(_))),
            "predicate match over TCP"
        );
        n.shutdown();
    }

    #[test]
    fn severed_link_reconnects_and_delivery_resumes() {
        let n1 = TcpNode::start(
            BrokerId(1),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ephemeral(),
            &[],
        )
        .expect("node 1");
        let n0 = TcpNode::start_with(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ephemeral(),
            &[(BrokerId(1), n1.addr())],
            fast_supervision(),
        )
        .expect("node 0");

        let mut publisher = TcpClient::connect(n0.addr(), ClientId(1)).expect("publisher");
        let mut subscriber = TcpClient::connect(n1.addr(), ClientId(2)).expect("subscriber");
        let adv = Advertisement::non_recursive(AdvPath::from_names(&["a", "b"]));
        publisher
            .send(&Message::advertise(AdvId(1), adv))
            .expect("advertise");
        subscriber
            .send(&Message::subscribe(SubId(1), "/a".parse().expect("xpe")))
            .expect("subscribe");
        assert!(n0.await_state(Duration::from_secs(5), |s| s.prt_size >= 1));
        publisher
            .send(&publication(&["a", "b"], 1))
            .expect("publish");
        assert!(matches!(
            subscriber.recv_timeout(Duration::from_secs(5)),
            Some(Message::Publish(_))
        ));
        let connects_before = n0.link_stats(BrokerId(1)).expect("dialled").connects;

        // A network blip kills the connection. Neither node restarts;
        // the supervisor must reconnect and delivery must resume.
        assert!(n0.sever_peer(BrokerId(1)), "a live connection existed");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let stats = n0.link_stats(BrokerId(1)).expect("dialled");
            if stats.connects > connects_before {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "supervisor never reconnected"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        publisher
            .send(&publication(&["a", "b"], 2))
            .expect("publish after blip");
        let got = subscriber.recv_timeout(Duration::from_secs(10));
        assert!(
            matches!(got, Some(Message::Publish(_))),
            "delivery must resume after reconnect, got {got:?}"
        );
        let stats = n0.link_stats(BrokerId(1)).expect("dialled");
        assert!(stats.disconnects >= 1);
        assert!(!stats.gave_up);
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn frames_queued_during_outage_are_retransmitted() {
        let n1 = TcpNode::start(
            BrokerId(1),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ephemeral(),
            &[],
        )
        .expect("node 1");
        let n0 = TcpNode::start_with(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ephemeral(),
            &[(BrokerId(1), n1.addr())],
            fast_supervision(),
        )
        .expect("node 0");
        let mut publisher = TcpClient::connect(n0.addr(), ClientId(1)).expect("publisher");
        let mut subscriber = TcpClient::connect(n1.addr(), ClientId(2)).expect("subscriber");
        let adv = Advertisement::non_recursive(AdvPath::from_names(&["a", "b"]));
        publisher
            .send(&Message::advertise(AdvId(1), adv))
            .expect("advertise");
        subscriber
            .send(&Message::subscribe(SubId(1), "/a".parse().expect("xpe")))
            .expect("subscribe");
        assert!(n0.await_state(Duration::from_secs(5), |s| s.prt_size >= 1));

        // Publish INTO the outage: n0 buffers the frame and flushes it
        // once the supervisor reconnects.
        n0.sever_peer(BrokerId(1));
        publisher
            .send(&publication(&["a", "b"], 7))
            .expect("publish during outage");
        let got = subscriber.recv_timeout(Duration::from_secs(10));
        assert!(
            matches!(got, Some(Message::Publish(_))),
            "buffered frame must arrive after reconnect, got {got:?}"
        );
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn restarted_peer_recovers_state_via_sync() {
        let n1 = TcpNode::start(
            BrokerId(1),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ephemeral(),
            &[],
        )
        .expect("node 1");
        let n0 = TcpNode::start_with(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ephemeral(),
            &[(BrokerId(1), n1.addr())],
            fast_supervision(),
        )
        .expect("node 0");
        let mut publisher = TcpClient::connect(n0.addr(), ClientId(1)).expect("publisher");
        let mut subscriber = TcpClient::connect(n1.addr(), ClientId(2)).expect("subscriber");
        let adv = Advertisement::non_recursive(AdvPath::from_names(&["a", "b"]));
        publisher
            .send(&Message::advertise(AdvId(1), adv.clone()))
            .expect("advertise");
        subscriber
            .send(&Message::subscribe(SubId(1), "/a".parse().expect("xpe")))
            .expect("subscribe");
        assert!(n0.await_state(Duration::from_secs(5), |s| s.prt_size >= 1));

        // n1 dies and is replaced by a fresh, empty node (new port —
        // the old one may linger in TIME_WAIT). n0 is redirected; the
        // sync exchange must rebuild n1's SRT, and the returning
        // subscriber re-subscribes (client state is the client's).
        n1.shutdown();
        let n1b = TcpNode::start(
            BrokerId(1),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ephemeral(),
            &[],
        )
        .expect("node 1 restarted");
        assert!(n0.redial(BrokerId(1), n1b.addr()));
        assert!(
            n1b.await_state(Duration::from_secs(10), |s| s.srt_size >= 1),
            "sync must restore the advertisement on the restarted node"
        );
        let mut subscriber = TcpClient::connect(n1b.addr(), ClientId(2)).expect("subscriber back");
        subscriber
            .send(&Message::subscribe(SubId(1), "/a".parse().expect("xpe")))
            .expect("re-subscribe");
        assert!(n0.await_state(Duration::from_secs(10), |s| s
            .stats
            .received_of(MessageKind::Subscribe)
            >= 2));

        publisher
            .send(&publication(&["a", "b"], 3))
            .expect("publish after restart");
        let got = subscriber.recv_timeout(Duration::from_secs(10));
        assert!(
            matches!(got, Some(Message::Publish(_))),
            "delivery must resume after peer restart, got {got:?}"
        );
        n0.shutdown();
        n1b.shutdown();
    }

    #[test]
    fn outage_replay_waits_for_expected_neighbour() {
        // Chain n0 — n1 — n2: publisher on n0, subscriber on n2, and
        // the middle broker n1 a pure listener both ends dial. n1 dies
        // with publications in flight, and on restart n0 reconnects
        // (and replays its unacked frames) well before n2 does. The
        // `--expect` roster is what makes this safe: without it the
        // fresh n1 acks and drops the replayed frames as unroutable
        // before n2's SyncState re-installs the subscription.
        let cfg = RoutingConfig::builder()
            .advertisements(true)
            .covering(true)
            .build();
        let n1 = TcpNode::start(BrokerId(1), cfg, ephemeral(), &[]).expect("node 1");
        let n0 = TcpNode::start_with(
            BrokerId(0),
            cfg,
            ephemeral(),
            &[(BrokerId(1), n1.addr())],
            fast_supervision(),
        )
        .expect("node 0");
        let n2 = TcpNode::start_with(
            BrokerId(2),
            cfg,
            ephemeral(),
            &[(BrokerId(1), n1.addr())],
            fast_supervision(),
        )
        .expect("node 2");

        let mut publisher = TcpClient::connect(n0.addr(), ClientId(1)).expect("publisher");
        let mut subscriber = TcpClient::connect(n2.addr(), ClientId(2)).expect("subscriber");
        let adv = Advertisement::non_recursive(AdvPath::from_names(&["a", "b"]));
        publisher
            .send(&Message::advertise(AdvId(1), adv))
            .expect("advertise");
        subscriber
            .send(&Message::subscribe(SubId(1), "/a/*".parse().expect("xpe")))
            .expect("subscribe");
        assert!(
            n0.await_state(Duration::from_secs(5), |s| s.prt_size >= 1),
            "subscription did not propagate to n0"
        );
        publisher.send(&publication(&["a", "b"], 1)).expect("pub 1");
        assert!(
            matches!(
                subscriber.recv_timeout(Duration::from_secs(5)),
                Some(Message::Publish(_))
            ),
            "healthy delivery"
        );

        // The middle broker dies; the stream keeps going. The frames
        // stay unacked in n0's per-link retransmit buffer.
        n1.shutdown();
        for doc in 2..=4 {
            publisher
                .send(&publication(&["a", "b"], doc))
                .expect("publish into outage");
        }

        // Restart with the dialler roster declared, then stage the
        // reconnects worst-case-first: n0 replays before n2 even knows
        // the new address.
        let n1b = TcpNode::start_expecting(
            BrokerId(1),
            cfg,
            ephemeral(),
            &[],
            &[BrokerId(0), BrokerId(2)],
            fast_supervision(),
        )
        .expect("node 1 restarted");
        assert!(n0.redial(BrokerId(1), n1b.addr()));
        assert!(
            n1b.await_state(Duration::from_secs(10), |s| s.srt_size >= 1),
            "n0's snapshot must reach the restarted node"
        );
        // The replayed frames ride right behind n0's SyncState on the
        // same connection; give them time to arrive (and be deferred).
        std::thread::sleep(Duration::from_millis(300));
        assert!(n2.redial(BrokerId(1), n1b.addr()));

        let mut got = Vec::new();
        while let Some(msg) = subscriber.recv_timeout(Duration::from_secs(5)) {
            if let Message::Publish(p) = msg {
                got.push(p.doc_id.0);
                if got.len() >= 3 {
                    break;
                }
            }
        }
        got.sort_unstable();
        assert_eq!(
            got,
            vec![2, 3, 4],
            "outage publications must be replayed exactly once"
        );
        assert!(
            subscriber
                .recv_timeout(Duration::from_millis(500))
                .is_none(),
            "no duplicate deliveries after recovery"
        );
        n0.shutdown();
        n2.shutdown();
        n1b.shutdown();
    }

    #[test]
    fn give_up_after_retry_budget() {
        // Dial a port nothing listens on, with a one-attempt budget.
        let dead: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let n = TcpNode::start_with(
            BrokerId(0),
            RoutingConfig::builder()
                .advertisements(true)
                .covering(true)
                .build(),
            ephemeral(),
            &[(BrokerId(1), dead)],
            SupervisorConfig {
                backoff_base: Duration::from_millis(1),
                backoff_max: Duration::from_millis(2),
                retry_budget: 1,
                ..SupervisorConfig::default()
            },
        )
        .expect("node");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if n.link_stats(BrokerId(1)).expect("dialled").gave_up {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "supervisor never gave up"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        n.shutdown();
    }

    #[test]
    fn backoff_grows_and_stays_bounded() {
        let cfg = SupervisorConfig::default();
        let mut jitter = 0x1234_5678_9abc_def0u64;
        let mut last = Duration::ZERO;
        for attempt in 1..=20 {
            let d = backoff_delay(&cfg, attempt, &mut jitter);
            assert!(
                d >= cfg.backoff_base / 2,
                "attempt {attempt}: {d:?} too small"
            );
            assert!(
                d < cfg.backoff_max,
                "attempt {attempt}: {d:?} exceeds the cap"
            );
            if attempt <= 3 {
                assert!(
                    d > last / 4,
                    "attempt {attempt}: backoff should trend upward"
                );
            }
            last = d;
        }
    }

    #[test]
    fn oversized_frames_cut_the_connection() {
        let n = TcpNode::start(
            BrokerId(0),
            RoutingConfig::builder().build(),
            ephemeral(),
            &[],
        )
        .expect("node");
        // Handshake as a client, then claim a 1 GiB frame.
        let mut s = TcpStream::connect(n.addr()).expect("connect");
        let mut hello = [0u8; 9];
        hello[0] = HELLO_CLIENT;
        hello[1..9].copy_from_slice(&7u64.to_be_bytes());
        s.write_all(&hello).expect("hello");
        s.write_all(&(1u32 << 30).to_be_bytes()).expect("length");
        // The node must drop the connection rather than allocate.
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut buf = [0u8; 1];
        let eof = matches!(s.read(&mut buf), Ok(0));
        assert!(eof, "expected the node to close the oversized connection");
        n.shutdown();
    }
}
