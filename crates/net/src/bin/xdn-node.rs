//! `xdn-node` — run one content-based XML router on a TCP socket.
//!
//! ```text
//! xdn-node --id 1 --listen 127.0.0.1:7001 \
//!          [--peer 2=127.0.0.1:7002]... \
//!          [--strategy with-adv-with-cov]
//! ```
//!
//! Peers listed with `--peer` are dialled on startup; nodes started
//! later simply list the earlier ones. Clients connect with the
//! protocol in [`xdn_net::tcp`] (hello byte `0x02` + client id, then
//! wire frames).
//!
//! The same port doubles as the node's control surface: an HTTP `GET`
//! (e.g. `curl http://127.0.0.1:7001/metrics`) returns a Prometheus
//! text snapshot — per-kind message traffic, routing-table sizes,
//! subscription/publication latency histograms, and per-peer outbound
//! queue depths.

// A CLI entry point legitimately exits with a status code; the
// workspace-wide `clippy::exit` deny protects library code.
#![allow(clippy::exit)]

use std::net::SocketAddr;
use xdn_broker::{BrokerId, MatchStrategy, RoutingConfig};
use xdn_net::tcp::TcpNode;

fn usage() -> ! {
    eprintln!(
        "usage: xdn-node --id <u32> --listen <addr:port> \
         [--peer <id>=<addr:port>]... [--expect <id>]... [--strategy <name>] \
         [--shards <n>]\n\
         --expect: neighbour that dials in (acceptor side); on a restart, \
         payload is deferred until its state re-syncs\n\
         --shards: hash-partition the match table across <n> shards and \
         route publication batches on the worker pool (XDN_MATCH_THREADS); \
         forces covering off\n\
         strategies: no-adv-no-cov | no-adv-with-cov | with-adv-no-cov | \
         with-adv-with-cov | with-adv-with-cov-pm | with-adv-with-cov-ipm | \
         automaton\n\
         automaton: match with the shared subscription NFA (one traversal \
         per publication); forces covering off, composes with --shards"
    );
    std::process::exit(2);
}

/// Strategy names compared on letters and digits only, so the CLI's
/// `with-adv-with-cov-pm` finds the canonical `with-Adv-with-CovPM`.
fn strategy_by_name(name: &str) -> Option<RoutingConfig> {
    let wanted = canon(name);
    RoutingConfig::all_strategies()
        .into_iter()
        .find(|(n, _)| canon(n) == wanted)
        .map(|(_, cfg)| cfg)
}

/// Case/punctuation-insensitive name comparison key.
fn canon(s: &str) -> String {
    s.chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<u32> = None;
    let mut listen: Option<SocketAddr> = None;
    let mut peers: Vec<(BrokerId, SocketAddr)> = Vec::new();
    let mut expected: Vec<BrokerId> = Vec::new();
    let mut strategy = RoutingConfig::builder()
        .advertisements(true)
        .covering(true)
        .build();

    let mut shards: Option<usize> = None;
    let mut automaton = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--id" => {
                i += 1;
                id = args.get(i).and_then(|s| s.parse().ok());
            }
            "--listen" => {
                i += 1;
                listen = args.get(i).and_then(|s| s.parse().ok());
            }
            "--peer" => {
                i += 1;
                let Some((pid, paddr)) = args.get(i).and_then(|s| s.split_once('=')) else {
                    usage()
                };
                match (pid.parse(), paddr.parse()) {
                    (Ok(pid), Ok(paddr)) => peers.push((BrokerId(pid), paddr)),
                    _ => usage(),
                }
            }
            "--expect" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(pid) => expected.push(BrokerId(pid)),
                    None => usage(),
                }
            }
            "--strategy" => {
                i += 1;
                match args.get(i) {
                    Some(s) if canon(s) == "automaton" => automaton = true,
                    Some(s) => match strategy_by_name(s) {
                        Some(cfg) => strategy = cfg,
                        None => usage(),
                    },
                    None => usage(),
                }
            }
            "--shards" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => shards = Some(n),
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    let (Some(id), Some(listen)) = (id, listen) else {
        usage()
    };
    if automaton {
        // Automaton matching replaces the covering organization (the
        // shared NFA is non-covering by design; see DESIGN.md §15).
        strategy.covering = false;
        strategy.merging = None;
        strategy.strategy = match shards {
            Some(n) => MatchStrategy::ShardedAutomaton { shards: n },
            None => MatchStrategy::Automaton,
        };
    } else if let Some(n) = shards {
        // Sharded matching replaces the covering organization (shards
        // are non-covering by design; see DESIGN.md §12).
        strategy.covering = false;
        strategy.merging = None;
        strategy.strategy = MatchStrategy::Sharded { shards: n };
    }

    match TcpNode::start_expecting(
        BrokerId(id),
        strategy,
        listen,
        &peers,
        &expected,
        xdn_net::tcp::SupervisorConfig::default(),
    ) {
        Ok(node) => {
            println!(
                "xdn-node {id} listening on {} ({} peers); \
                 metrics: curl http://{}/metrics",
                node.addr(),
                peers.len(),
                node.addr()
            );
            // Run until interrupted.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("failed to start node: {e}");
            std::process::exit(1);
        }
    }
}
