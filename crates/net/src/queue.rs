//! The supervisor's bounded outbound frame queue.
//!
//! Extracted from `tcp.rs` so its concurrency contract can be model-
//! checked: under `--cfg loom` the synchronisation primitives come from
//! the `loom` crate and `tests/loom.rs` drives [`FrameQueue`] through
//! adversarial schedules. In normal builds the primitives are `std`'s
//! and the queue behaves identically.
//!
//! Locking never panics: a poisoned mutex (a pusher panicked mid-
//! operation) is recovered with [`PoisonError::into_inner`] — the
//! queue's state is a `VecDeque` plus three scalars, every transition
//! of which is panic-free, so the data behind a poisoned lock is still
//! coherent and shedding a frame beats taking the whole node down.

use std::collections::VecDeque;
use std::sync::PoisonError;
use std::time::Duration;
use xdn_broker::Message;

#[cfg(loom)]
use loom::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex, MutexGuard};

/// The result of one [`FrameQueue::pop_wait`] call.
pub enum Pop {
    /// A frame to write.
    Msg(Box<Message>),
    /// Nothing to send for a full heartbeat interval.
    Idle,
    /// The reader declared the current connection dead.
    Down,
    /// The node is shutting down.
    Closed,
}

#[derive(Default)]
struct QueueState {
    q: VecDeque<Message>,
    down: bool,
    closed: bool,
    dropped: u64,
}

/// The supervisor's bounded outbound queue. The broker loop pushes,
/// the supervisor's writer pops; when full, buffered publications are
/// evicted before any control message is touched (routing state must
/// survive an outage; documents may be re-published).
pub struct FrameQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
}

impl FrameQueue {
    /// A queue holding at most `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        FrameQueue {
            state: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues at the back, shedding under pressure.
    pub fn push_back(&self, msg: Message) {
        self.push(msg, false);
    }

    /// Queue-jumps control traffic (the post-reconnect sync request).
    pub fn push_front(&self, msg: Message) {
        self.push(msg, true);
    }

    fn push(&self, msg: Message, front: bool) {
        let mut s = self.lock();
        if s.closed {
            return;
        }
        if s.q.len() >= self.capacity {
            if let Some(i) = s.q.iter().position(|m| matches!(m, Message::Publish(_))) {
                s.q.remove(i);
                s.dropped += 1;
            } else if msg.is_payload() {
                // Only control traffic is buffered; the arriving
                // publication gives way.
                s.dropped += 1;
                return;
            } else {
                s.q.pop_front();
                s.dropped += 1;
            }
        }
        if front {
            s.q.push_front(msg);
        } else {
            s.q.push_back(msg);
        }
        drop(s);
        self.cv.notify_one();
    }

    /// Blocks for the next frame, or `timeout` of idleness. The
    /// `Closed`/`Down` flags win over queued frames so a supervisor
    /// reacts to shutdown and link death promptly.
    pub fn pop_wait(&self, timeout: Duration) -> Pop {
        let mut s = self.lock();
        loop {
            if s.closed {
                return Pop::Closed;
            }
            if s.down {
                return Pop::Down;
            }
            if let Some(m) = s.q.pop_front() {
                return Pop::Msg(Box::new(m));
            }
            let (next, res) = self
                .cv
                .wait_timeout(s, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            s = next;
            if res.timed_out() {
                return if s.closed {
                    Pop::Closed
                } else if s.down {
                    Pop::Down
                } else {
                    Pop::Idle
                };
            }
        }
    }

    /// The reader's death notice: wakes the writer so the epoch ends.
    pub fn mark_down(&self) {
        self.lock().down = true;
        self.cv.notify_all();
    }

    /// Starts a fresh connection epoch.
    pub fn clear_down(&self) {
        self.lock().down = false;
    }

    /// Permanent shutdown; subsequent pushes are discarded silently.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Total frames shed so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Frames currently buffered (test/diagnostic aid).
    pub fn len(&self) -> usize {
        self.lock().q.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use xdn_broker::{MessageKind, Publication};
    use xdn_core::rtable::SubId;
    use xdn_xml::{DocId, PathId};

    fn publication(doc: u64) -> Message {
        Message::Publish(Publication {
            doc_id: DocId(doc),
            path_id: PathId(0),
            elements: vec!["a".to_owned()],
            attributes: Vec::new(),
            doc_bytes: 32,
        })
    }

    #[test]
    fn queue_sheds_publications_before_control() {
        let q = FrameQueue::new(2);
        q.push_back(publication(1));
        q.push_back(publication(2));
        // Control traffic displaces the oldest publication.
        q.push_back(Message::subscribe(SubId(1), "/a".parse().expect("xpe")));
        // A publication arriving at a full queue of one pub + one
        // control displaces the remaining pub...
        q.push_back(publication(3));
        // ...and one arriving with only control queued is itself shed.
        q.push_back(Message::Unsubscribe { id: SubId(9) });
        q.push_back(publication(4));
        let mut kinds = Vec::new();
        while let Pop::Msg(m) = q.pop_wait(Duration::from_millis(1)) {
            kinds.push(m.kind());
        }
        assert_eq!(
            kinds,
            vec![MessageKind::Subscribe, MessageKind::Unsubscribe],
            "control survived"
        );
        assert_eq!(q.dropped(), 4, "all four publications were shed");
    }

    #[test]
    fn closed_queue_discards_pushes() {
        let q = FrameQueue::new(4);
        q.close();
        q.push_back(publication(1));
        assert!(q.is_empty());
        assert!(matches!(q.pop_wait(Duration::from_millis(1)), Pop::Closed));
    }

    #[test]
    fn down_epoch_toggles() {
        let q = FrameQueue::new(4);
        q.mark_down();
        assert!(matches!(q.pop_wait(Duration::from_millis(1)), Pop::Down));
        q.clear_down();
        q.push_back(publication(1));
        assert!(matches!(q.pop_wait(Duration::from_millis(1)), Pop::Msg(_)));
    }
}
