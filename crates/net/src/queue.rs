//! The supervisor's bounded outbound frame queue.
//!
//! Extracted from `tcp.rs` so its concurrency contract can be model-
//! checked: under `--cfg loom` the synchronisation primitives come from
//! the `loom` crate and `tests/loom.rs` drives [`FrameQueue`] through
//! adversarial schedules. In normal builds the primitives are `std`'s
//! and the queue behaves identically.
//!
//! Locking never panics: a poisoned mutex (a pusher panicked mid-
//! operation) is recovered with [`PoisonError::into_inner`] — the
//! queue's state is a `VecDeque` plus three scalars, every transition
//! of which is panic-free, so the data behind a poisoned lock is still
//! coherent and shedding a frame beats taking the whole node down.

use std::collections::VecDeque;
use std::sync::PoisonError;
use std::time::Duration;
use xdn_broker::{FrameBuf, KindCounters, MessageKind};

#[cfg(loom)]
use loom::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex, MutexGuard};

/// The result of one [`FrameQueue::pop_wait`] call.
pub enum Pop {
    /// A frame to write.
    Msg(FrameBuf),
    /// Nothing to send for a full heartbeat interval.
    Idle,
    /// The reader declared the current connection dead.
    Down,
    /// The node is shutting down.
    Closed,
}

#[derive(Default)]
struct QueueState {
    q: VecDeque<FrameBuf>,
    down: bool,
    closed: bool,
    dropped: u64,
    /// Shed frames by payload kind — makes publication loss visible
    /// instead of folding it into one opaque total.
    shed: KindCounters,
    /// Sequenced frames handed to the writer but not yet acknowledged
    /// by the peer broker: `(epoch, seq, frame)` in pop order. The held
    /// frames share their payload and encoded body with the written
    /// copies (a `FrameBuf` clone is an `Arc` bump, not a deep copy).
    /// Replayed to the front of the queue when a fresh connection epoch
    /// starts, so frames written into a dying socket are not lost.
    inflight: VecDeque<(u64, u64, FrameBuf)>,
}

/// The supervisor's bounded outbound queue. The broker loop pushes,
/// the supervisor's writer pops; when full, buffered publications are
/// evicted before any control message is touched (routing state must
/// survive an outage; documents may be re-published).
pub struct FrameQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
}

impl FrameQueue {
    /// A queue holding at most `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        FrameQueue {
            state: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues at the back, shedding under pressure. Returns the
    /// payload kind of the frame shed to make room, if any — callers
    /// report it to their metrics sink so no loss is silent.
    /// Accepts anything convertible to a [`FrameBuf`] (`Message`
    /// included) so tuple-era callers keep working for one release.
    pub fn push_back(&self, frame: impl Into<FrameBuf>) -> Option<MessageKind> {
        self.push(frame.into(), false)
    }

    /// Queue-jumps control traffic (the post-reconnect sync request).
    /// Returns the payload kind of any frame shed to make room.
    pub fn push_front(&self, frame: impl Into<FrameBuf>) -> Option<MessageKind> {
        self.push(frame.into(), true)
    }

    fn push(&self, frame: FrameBuf, front: bool) -> Option<MessageKind> {
        let mut s = self.lock();
        if s.closed {
            return None;
        }
        let mut shed = None;
        if s.q.len() >= self.capacity {
            // Shed decisions look through reliability framing: a
            // sequenced publication is still a publication. The kind is
            // precomputed on the frame, so pressure scans cost no
            // per-frame re-derivation.
            if let Some(i) = s.q.iter().position(|f| f.kind() == MessageKind::Publish) {
                let kind = s.q.remove(i).map_or(MessageKind::Publish, |f| f.kind());
                s.dropped += 1;
                s.shed.record(kind);
                shed = Some(kind);
            } else if frame.is_payload() {
                // Only control traffic is buffered; the arriving
                // payload frame gives way.
                let kind = frame.kind();
                s.dropped += 1;
                s.shed.record(kind);
                return Some(kind);
            } else {
                let kind = s.q.pop_front().map(|f| f.kind());
                s.dropped += 1;
                if let Some(kind) = kind {
                    s.shed.record(kind);
                }
                shed = kind;
            }
        }
        if front {
            s.q.push_front(frame);
        } else {
            s.q.push_back(frame);
        }
        drop(s);
        self.cv.notify_one();
        shed
    }

    /// Blocks for the next frame, or `timeout` of idleness. The
    /// `Closed`/`Down` flags win over queued frames so a supervisor
    /// reacts to shutdown and link death promptly.
    pub fn pop_wait(&self, timeout: Duration) -> Pop {
        let mut s = self.lock();
        loop {
            if s.closed {
                return Pop::Closed;
            }
            if s.down {
                return Pop::Down;
            }
            if let Some(f) = s.q.pop_front() {
                if let Some(h) = f.seq_header() {
                    // Hold a copy until the peer's cumulative ack
                    // covers it; a new connection epoch replays these.
                    // The clone shares the frame's body — the hold
                    // costs a handful of pointers, not a payload copy.
                    if s.inflight.len() >= self.capacity {
                        s.inflight.pop_front();
                    }
                    s.inflight.push_back((h.epoch, h.seq, f.clone()));
                }
                return Pop::Msg(f);
            }
            let (next, res) = self
                .cv
                .wait_timeout(s, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            s = next;
            if res.timed_out() {
                return if s.closed {
                    Pop::Closed
                } else if s.down {
                    Pop::Down
                } else {
                    Pop::Idle
                };
            }
        }
    }

    /// The reader's death notice: wakes the writer so the epoch ends.
    pub fn mark_down(&self) {
        self.lock().down = true;
        self.cv.notify_all();
    }

    /// Starts a fresh connection epoch, replaying any in-flight
    /// sequenced frames to the front of the queue — frames written
    /// into the dying socket may never have arrived, and the peer's
    /// dedup window makes over-replay harmless.
    pub fn clear_down(&self) {
        let mut s = self.lock();
        s.down = false;
        let inflight = std::mem::take(&mut s.inflight);
        for (_, _, m) in inflight.into_iter().rev() {
            s.q.push_front(m);
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Applies a cumulative ack from the peer: drops every held
    /// in-flight frame of `epoch` with `seq <= acked`, plus frames of
    /// older epochs (their incarnation is gone).
    pub fn ack(&self, epoch: u64, acked: u64) {
        let mut s = self.lock();
        s.inflight
            .retain(|(e, q, _)| *e > epoch || (*e == epoch && *q > acked));
    }

    /// Returns a frame the writer failed to send. Sequenced frames are
    /// dropped here — the in-flight hold already owns a copy that the
    /// next connection epoch replays, and re-queueing would duplicate
    /// it. Control frames go back to the front as before.
    pub fn requeue_unsent(&self, frame: impl Into<FrameBuf>) {
        let frame = frame.into();
        if frame.seq_header().is_some() {
            return;
        }
        self.push_front(frame);
    }

    /// Sequenced frames currently held awaiting acknowledgement.
    pub fn inflight_len(&self) -> usize {
        self.lock().inflight.len()
    }

    /// Permanent shutdown; subsequent pushes are discarded silently.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Total frames shed so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Shed counts by payload kind (a sequenced publication counts as
    /// a publication).
    pub fn shed_counters(&self) -> KindCounters {
        self.lock().shed
    }

    /// Publications shed by this queue — the loss that used to be
    /// invisible inside [`FrameQueue::dropped`].
    pub fn shed_publications(&self) -> u64 {
        self.shed_counters().get(MessageKind::Publish)
    }

    /// Frames currently buffered (test/diagnostic aid).
    pub fn len(&self) -> usize {
        self.lock().q.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use xdn_broker::{Message, MessageKind, Publication};
    use xdn_core::rtable::SubId;
    use xdn_xml::{DocId, PathId};

    fn publication(doc: u64) -> Message {
        Message::Publish(Publication {
            doc_id: DocId(doc),
            path_id: PathId(0),
            elements: vec!["a".to_owned()],
            attributes: Vec::new(),
            doc_bytes: 32,
        })
    }

    #[test]
    fn queue_sheds_publications_before_control() {
        let q = FrameQueue::new(2);
        q.push_back(publication(1));
        q.push_back(publication(2));
        // Control traffic displaces the oldest publication.
        q.push_back(Message::subscribe(SubId(1), "/a".parse().expect("xpe")));
        // A publication arriving at a full queue of one pub + one
        // control displaces the remaining pub...
        q.push_back(publication(3));
        // ...and one arriving with only control queued is itself shed.
        q.push_back(Message::Unsubscribe { id: SubId(9) });
        q.push_back(publication(4));
        let mut kinds = Vec::new();
        while let Pop::Msg(m) = q.pop_wait(Duration::from_millis(1)) {
            kinds.push(m.kind());
        }
        assert_eq!(
            kinds,
            vec![MessageKind::Subscribe, MessageKind::Unsubscribe],
            "control survived"
        );
        assert_eq!(q.dropped(), 4, "all four publications were shed");
    }

    #[test]
    fn closed_queue_discards_pushes() {
        let q = FrameQueue::new(4);
        q.close();
        q.push_back(publication(1));
        assert!(q.is_empty());
        assert!(matches!(q.pop_wait(Duration::from_millis(1)), Pop::Closed));
    }

    #[test]
    fn down_epoch_toggles() {
        let q = FrameQueue::new(4);
        q.mark_down();
        assert!(matches!(q.pop_wait(Duration::from_millis(1)), Pop::Down));
        q.clear_down();
        q.push_back(publication(1));
        assert!(matches!(q.pop_wait(Duration::from_millis(1)), Pop::Msg(_)));
    }

    fn sequenced(doc: u64, seq: u64) -> Message {
        Message::Sequenced {
            epoch: 1,
            seq,
            low: 1,
            inner: std::sync::Arc::new(publication(doc)),
        }
    }

    #[test]
    fn shedding_reports_and_counts_kinds() {
        let q = FrameQueue::new(1);
        assert_eq!(q.push_back(publication(1)), None);
        // A sequenced publication displaces the raw one — the shed
        // policy looks through the reliability header.
        assert_eq!(q.push_back(sequenced(2, 1)), Some(MessageKind::Publish));
        assert_eq!(q.shed_publications(), 1);
        assert_eq!(q.shed_counters().get(MessageKind::Publish), 1);
        assert_eq!(q.dropped(), 1);
    }

    #[test]
    fn inflight_replays_on_new_epoch_and_prunes_on_ack() {
        let q = FrameQueue::new(8);
        q.push_back(sequenced(1, 1));
        q.push_back(sequenced(2, 2));
        // The writer pops both; they move to the in-flight hold.
        assert!(matches!(q.pop_wait(Duration::from_millis(1)), Pop::Msg(_)));
        assert!(matches!(q.pop_wait(Duration::from_millis(1)), Pop::Msg(_)));
        assert_eq!(q.inflight_len(), 2);
        // The peer acks seq 1: only seq 2 remains held.
        q.ack(1, 1);
        assert_eq!(q.inflight_len(), 1);
        // Connection dies and a new epoch starts: the held frame is
        // replayed at the front.
        q.mark_down();
        assert!(matches!(q.pop_wait(Duration::from_millis(1)), Pop::Down));
        q.clear_down();
        let Pop::Msg(m) = q.pop_wait(Duration::from_millis(1)) else {
            panic!("expected the replayed frame");
        };
        assert_eq!(m.seq_header().map(|h| h.seq), Some(2));
    }

    #[test]
    fn requeue_unsent_drops_sequenced_keeps_control() {
        let q = FrameQueue::new(8);
        // A sequenced frame that failed to write is NOT re-queued (the
        // in-flight hold owns it)...
        q.requeue_unsent(sequenced(1, 1));
        assert!(q.is_empty());
        // ...but control traffic goes back to the front.
        q.requeue_unsent(Message::SyncRequest);
        assert_eq!(q.len(), 1);
    }
}
