#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # xdn-net — the overlay network substrate
//!
//! The paper evaluates its routing algorithms on a 20-node cluster and
//! on PlanetLab. This crate is the documented substitute (`DESIGN.md`):
//! a deterministic discrete-event simulator in which the brokers'
//! *matching computation really runs* — only the wire is simulated.
//! Message counts are therefore exact, and delays combine configurable
//! link latency ([`latency`]) with the measured wall-clock cost of each
//! broker's routing work, reproducing the covering/merging effects on
//! notification delay (Figures 10/11, Tables 2/3).
//!
//! * [`sim::Network`] — event-driven overlay of [`xdn_broker::Broker`]s
//!   with attached publisher/subscriber clients.
//! * [`topology`] — balanced binary trees (the 7- and 127-broker
//!   overlays of Tables 2/3) and linear chains (the hop sweeps of
//!   Figures 10/11).
//! * [`latency`] — cluster-LAN and PlanetLab-like WAN link models.
//! * [`metrics`] — network-wide message counts and notification delays.
//! * [`sink`] — the [`FrameSink`] trait: the single broker→transport
//!   send boundary every transport below implements.
//! * [`live`] — a real threaded transport (crossbeam channels) running
//!   the same brokers, demonstrating transport independence.
//! * [`tcp`] — brokers over real TCP sockets with the binary wire
//!   codec; the `xdn-node` binary's engine.
//!
//! ```
//! use xdn_broker::RoutingConfig;
//! use xdn_net::{latency::ClusterLan, sim::Network, topology};
//! use xdn_core::adv::{AdvPath, Advertisement};
//!
//! // A 3-broker chain: publisher at one end, subscriber at the other.
//! let mut net = topology::chain(3, RoutingConfig::builder().advertisements(true).covering(true).build(), ClusterLan::default());
//! let publisher = net.attach_client(net.broker_ids()[0]);
//! let subscriber = net.attach_client(net.broker_ids()[2]);
//!
//! net.advertise(publisher, Advertisement::non_recursive(AdvPath::from_names(&["a", "b"])));
//! net.subscribe(subscriber, "/a/*".parse().unwrap());
//! net.run();
//!
//! let doc = xdn_xml::parse_document("<a><b/></a>").unwrap();
//! net.publish_document(publisher, &doc);
//! net.run();
//! assert_eq!(net.metrics().notifications.len(), 1);
//! ```

pub mod chaos;
pub mod latency;
pub mod live;
pub mod metrics;
pub mod queue;
pub mod sim;
pub mod sink;
pub mod tcp;
pub mod topology;

pub use latency::{ClusterLan, LatencyModel, PlanetLabWan};
pub use metrics::NetMetrics;
pub use sim::Network;
pub use sink::FrameSink;
