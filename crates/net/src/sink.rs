//! The unified broker→transport boundary.
//!
//! Every transport in this crate used to grow its own send path — the
//! simulator injected events, the live transport pushed crossbeam
//! messages, and the TCP transport called `write_all(&wire::encode(..))`
//! per destination. [`FrameSink`] replaces those divergent paths with
//! one contract: the broker loop routes a batch, gets back
//! [`Outbound`] frames, and ships each through whatever sink the
//! transport provides.
//!
//! The contract is deliberately small:
//!
//! * **Input** — an [`Outbound`]: destination, precomputed
//!   [`MessageKind`], and a shared-body [`xdn_broker::FrameBuf`]. A
//!   publication fanned out to *k* peers arrives as *k* `Outbound`s
//!   whose frames share one encoded body; a sink that serialises
//!   (TCP) pays for exactly one encode, and in-process sinks
//!   (simulator, live threads) never encode at all.
//! * **Output** — `Some(kind)` when the transport had to shed the
//!   frame (a bounded queue was full), `None` when the frame was
//!   accepted. Acceptance is not delivery: reliability is the
//!   sequenced layer's job ([`xdn_broker::OutboundLink`]), not the
//!   sink's.
//! * **No blocking on peers** — a sink may buffer or drop, but must
//!   not park the broker loop waiting for a slow destination.
//!
//! Implementations: `TcpSink` in [`crate::tcp`] (bounded per-peer
//! queues + vectored socket writes), `LiveSink` in [`crate::live`]
//! (crossbeam channels), and the simulator's event-scheduling sink in
//! [`crate::sim`].

use xdn_broker::{MessageKind, Outbound};

/// A destination-addressed frame shipper: the single seam between a
/// routing [`xdn_broker::Broker`] and the transport carrying its
/// output. See the [module docs](self) for the contract.
pub trait FrameSink {
    /// Ships one routed frame toward its destination.
    ///
    /// Returns the shed frame's kind when the transport had to drop it
    /// (e.g. a bounded outbound queue was full), `None` when the frame
    /// was accepted for delivery.
    fn ship(&mut self, out: Outbound) -> Option<MessageKind>;

    /// Ships a whole routed batch, collecting any sheds as
    /// `(kind, index)` pairs so callers can attribute losses without
    /// re-deriving each frame's kind.
    fn ship_all(&mut self, outs: Vec<Outbound>) -> Vec<(MessageKind, usize)> {
        let mut shed = Vec::new();
        for (i, out) in outs.into_iter().enumerate() {
            if let Some(kind) = self.ship(out) {
                shed.push((kind, i));
            }
        }
        shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xdn_broker::{BrokerId, Dest, FrameBuf, Message, Publication};
    use xdn_xml::{DocId, PathId};

    /// A sink that records what it is asked to ship and sheds every
    /// publication after the first.
    struct RecordingSink {
        shipped: Vec<Outbound>,
        publications: usize,
    }

    impl FrameSink for RecordingSink {
        fn ship(&mut self, out: Outbound) -> Option<MessageKind> {
            if out.kind == MessageKind::Publish {
                self.publications += 1;
                if self.publications > 1 {
                    return Some(out.kind);
                }
            }
            self.shipped.push(out);
            None
        }
    }

    fn publish() -> Message {
        Message::Publish(Publication {
            doc_id: DocId(1),
            path_id: PathId(0),
            elements: vec!["a".into()],
            attributes: Vec::new(),
            doc_bytes: 16,
        })
    }

    #[test]
    fn ship_all_reports_sheds_by_kind_and_index() {
        let payload = Arc::new(publish());
        let outs: Vec<Outbound> = (0..3)
            .map(|i| {
                Outbound::new(
                    Dest::Broker(BrokerId(i)),
                    FrameBuf::from_payload(Arc::clone(&payload)),
                )
            })
            .chain(std::iter::once(Outbound::from((
                Dest::Broker(BrokerId(9)),
                Message::Heartbeat,
            ))))
            .collect();
        let mut sink = RecordingSink {
            shipped: Vec::new(),
            publications: 0,
        };
        let shed = sink.ship_all(outs);
        assert_eq!(
            shed,
            vec![(MessageKind::Publish, 1), (MessageKind::Publish, 2)]
        );
        assert_eq!(sink.shipped.len(), 2);
        assert_eq!(sink.shipped[0].kind, MessageKind::Publish);
        assert_eq!(sink.shipped[1].kind, MessageKind::Heartbeat);
        // The accepted fan-out frame still shares the routed body.
        assert!(Arc::ptr_eq(sink.shipped[0].frame.payload_arc(), &payload));
    }
}
