//! Stateful property tests for the subscription tree: any sequence of
//! inserts and removals keeps the structural invariants and routes
//! exactly like a flat list.

use proptest::prelude::*;
use xdn_core::cover::covers;
use xdn_core::subtree::{NodeId, SubscriptionTree};
use xdn_xpath::{Axis, NodeTest, Step, Xpe};

const ALPHABET: &[&str] = &["a", "b", "c"];

fn arb_xpe() -> impl Strategy<Value = Xpe> {
    (
        any::<bool>(),
        prop::collection::vec(
            (
                prop_oneof![3 => Just(Axis::Child), 1 => Just(Axis::Descendant)],
                prop_oneof![
                    3 => (0..ALPHABET.len()).prop_map(|i| NodeTest::Name(ALPHABET[i].into())),
                    1 => Just(NodeTest::Wildcard),
                ],
            ),
            1..5,
        ),
    )
        .prop_map(|(absolute, steps)| {
            Xpe::new(
                absolute,
                steps
                    .into_iter()
                    .map(|(axis, test)| Step {
                        axis,
                        test,
                        predicates: Vec::new(),
                    })
                    .collect(),
            )
        })
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Xpe),
    /// Remove the i-th live node (modulo the live count).
    Remove(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => arb_xpe().prop_map(Op::Insert),
            1 => (0usize..64).prop_map(Op::Remove),
        ],
        1..40,
    )
}

fn arb_path() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        (0..ALPHABET.len()).prop_map(|i| ALPHABET[i].to_owned()),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn churn_preserves_invariants_and_routing(ops in arb_ops(), paths in prop::collection::vec(arb_path(), 4)) {
        let mut tree: SubscriptionTree<usize> = SubscriptionTree::new();
        let mut live: Vec<(NodeId, Xpe)> = Vec::new();
        let mut counter = 0usize;
        for op in ops {
            match op {
                Op::Insert(x) => {
                    counter += 1;
                    let id = tree.insert(x.clone(), counter).id();
                    live.push((id, x));
                }
                Op::Remove(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (id, _) = live.remove(i % live.len());
                    tree.remove(id);
                }
            }
            tree.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("invariant violated: {e}"))
            })?;
        }
        prop_assert_eq!(tree.len(), live.len());
        // Route equivalence against the flat list.
        for p in &paths {
            let mut from_tree: Vec<usize> = Vec::new();
            tree.for_each_matching(p, |_, &payload| from_tree.push(payload));
            from_tree.sort_unstable();
            let mut from_flat: Vec<usize> = live
                .iter()
                .zip(1..)
                .filter(|((_, x), _)| x.matches_path(p))
                .map(|((id, _), _)| *tree.payload(*id))
                .collect();
            from_flat.sort_unstable();
            prop_assert_eq!(&from_tree, &from_flat, "divergence on path {:?}", p);
        }
        // Edge-wise covering is the invariant routing relies on: every
        // parent provably covers its children (note: the covering
        // decision procedure is sound but incomplete, so a node need
        // not be *provably* covered by its transitive root — pruning
        // only ever descends one proven edge at a time).
        fn assert_edges(
            tree: &SubscriptionTree<usize>,
            id: NodeId,
        ) -> Result<(), TestCaseError> {
            for &c in tree.children(id) {
                prop_assert!(
                    covers(tree.xpe(id), tree.xpe(c)),
                    "{} does not cover child {}",
                    tree.xpe(id),
                    tree.xpe(c)
                );
                assert_edges(tree, c)?;
            }
            Ok(())
        }
        for &r in tree.roots() {
            // A root always provably covers itself.
            prop_assert!(covers(tree.xpe(r), tree.xpe(r)));
            assert_edges(&tree, r)?;
        }
    }
}
