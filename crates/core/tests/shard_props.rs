//! Property test for the sharded parallel router: under arbitrary
//! subscribe/unsubscribe churn, [`ShardedRouter`] over 1, 2, and 8
//! shards must route exactly like a single [`IndexedPrt`] holding
//! every subscription — bit-identical destination sets for every
//! publication, through both the per-publication path and the batched
//! [`PublicationRouter::route_batch`] path. This is the exactness
//! argument behind hash-partitioned parallel matching, checked
//! mechanically.

use proptest::prelude::*;
use xdn_core::index::IndexedPrt;
use xdn_core::rtable::{PublicationRouter, RouteRequest, SubId};
use xdn_core::shard::ShardedRouter;
use xdn_xpath::{Axis, NodeTest, Predicate, Step, Xpe};

/// A probe publication: element path plus per-element attribute lists.
type Probe = (Vec<String>, Vec<Vec<(String, String)>>);

const ALPHABET: &[&str] = &["a", "b", "c", "d"];
const ATTR_NAMES: &[&str] = &["p", "q"];
const ATTR_VALUES: &[&str] = &["1", "2"];

fn arb_predicates() -> impl Strategy<Value = Vec<Predicate>> {
    prop::collection::vec(
        prop_oneof![
            2 => (0..ATTR_NAMES.len()).prop_map(|i| Predicate::HasAttr(ATTR_NAMES[i].into())),
            1 => ((0..ATTR_NAMES.len()), (0..ATTR_VALUES.len())).prop_map(|(i, j)| {
                Predicate::AttrEq(ATTR_NAMES[i].into(), ATTR_VALUES[j].into())
            }),
        ],
        0..3,
    )
}

fn arb_xpe() -> impl Strategy<Value = Xpe> {
    (
        any::<bool>(),
        prop::collection::vec(
            (
                prop_oneof![3 => Just(Axis::Child), 1 => Just(Axis::Descendant)],
                prop_oneof![
                    3 => (0..ALPHABET.len()).prop_map(|i| NodeTest::Name(ALPHABET[i].into())),
                    1 => Just(NodeTest::Wildcard),
                ],
                arb_predicates(),
            ),
            1..5,
        ),
    )
        .prop_map(|(absolute, steps)| {
            Xpe::new(
                absolute,
                steps
                    .into_iter()
                    .map(|(axis, test, predicates)| Step {
                        axis,
                        test,
                        predicates,
                    })
                    .collect(),
            )
        })
}

/// An element name plus the attributes carried at that path position.
fn arb_element() -> impl Strategy<Value = (String, Vec<(String, String)>)> {
    (
        (0..ALPHABET.len()).prop_map(|i| ALPHABET[i].to_owned()),
        prop::collection::vec(
            ((0..ATTR_NAMES.len()), (0..ATTR_VALUES.len()))
                .prop_map(|(i, j)| (ATTR_NAMES[i].to_owned(), ATTR_VALUES[j].to_owned())),
            0..3,
        ),
    )
}

fn arb_path() -> impl Strategy<Value = Vec<(String, Vec<(String, String)>)>> {
    prop::collection::vec(arb_element(), 1..7)
}

#[derive(Debug, Clone)]
enum Op {
    Subscribe(Xpe),
    /// Unsubscribe the i-th live subscription (modulo the live count).
    Unsubscribe(usize),
    /// Re-register the i-th live subscription under a new expression.
    Resubscribe(usize, Xpe),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => arb_xpe().prop_map(Op::Subscribe),
            1 => (0usize..64).prop_map(Op::Unsubscribe),
            1 => ((0usize..64), arb_xpe()).prop_map(|(i, x)| Op::Resubscribe(i, x)),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sharded_routes_like_indexed(
        ops in arb_ops(),
        paths in prop::collection::vec(arb_path(), 6),
    ) {
        let mut reference: IndexedPrt<u32> = IndexedPrt::new();
        // Two workers force the parallel fan-out even where a lone
        // shard (or a single-core runner) would inline it.
        let mut sharded: Vec<ShardedRouter<IndexedPrt<u32>>> = [1usize, 2, 8]
            .iter()
            .map(|&n| ShardedRouter::with_threads(n, 2.min(n)))
            .collect();
        let mut live: Vec<SubId> = Vec::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                Op::Subscribe(x) => {
                    next += 1;
                    let id = SubId(next);
                    reference.insert(id, x.clone(), next as u32);
                    for r in &mut sharded {
                        r.insert(id, x.clone(), next as u32);
                    }
                    live.push(id);
                }
                Op::Unsubscribe(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.remove(i % live.len());
                    reference.remove(id);
                    for r in &mut sharded {
                        r.remove(id);
                    }
                }
                Op::Resubscribe(i, x) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live[i % live.len()];
                    next += 1;
                    reference.insert(id, x.clone(), next as u32);
                    for r in &mut sharded {
                        r.insert(id, x.clone(), next as u32);
                    }
                }
            }
        }
        let paths: Vec<Probe> = paths
            .into_iter()
            .map(|spec| {
                let path: Vec<String> = spec.iter().map(|(n, _)| n.clone()).collect();
                let attrs: Vec<Vec<(String, String)>> =
                    spec.into_iter().map(|(_, a)| a).collect();
                (path, attrs)
            })
            .collect();
        let requests: Vec<RouteRequest<'_>> = paths
            .iter()
            .map(|(p, a)| RouteRequest { path: p, attrs: a })
            .collect();
        let expected: Vec<_> = requests
            .iter()
            .map(|r| reference.matching_hops(r.path, r.attrs))
            .collect();
        for r in &sharded {
            prop_assert_eq!(r.len(), reference.len());
            prop_assert_eq!(r.effective_size(), reference.effective_size());
            // Per-publication path.
            for (req, want) in requests.iter().zip(&expected) {
                prop_assert_eq!(
                    &r.matching_hops(req.path, req.attrs),
                    want,
                    "divergence at {} shards on {:?}",
                    r.shard_count(),
                    req.path
                );
            }
            // Batched path, including any duplicate coalescing.
            let batched = r.route_batch(&requests);
            prop_assert_eq!(&batched, &expected, "batch divergence at {} shards", r.shard_count());
        }
    }
}
