//! Property test for the automaton-backed router: under arbitrary
//! subscribe/unsubscribe churn — which exercises the shared NFA's
//! incremental inserts, tombstoned removals, and amortized compaction
//! rebuilds — [`AutomatonPrt`] must route exactly like an
//! [`IndexedPrt`] holding the same subscriptions: bit-identical
//! `(SubId, hop)` match sets for every publication, through the
//! per-publication path, the batched
//! [`PublicationRouter::route_batch`] path, and sharded composition.
//! This pins the one-traversal-per-publication engine to the
//! candidate-by-candidate reference semantics.

use proptest::prelude::*;
use xdn_core::automaton::AutomatonPrt;
use xdn_core::index::IndexedPrt;
use xdn_core::rtable::{PublicationRouter, RouteRequest, SubId};
use xdn_core::shard::ShardedRouter;
use xdn_xpath::{Axis, NodeTest, Predicate, Step, Xpe};

/// A probe publication: element path plus per-element attribute lists.
type Probe = (Vec<String>, Vec<Vec<(String, String)>>);

const ALPHABET: &[&str] = &["a", "b", "c", "d"];
const ATTR_NAMES: &[&str] = &["p", "q"];
const ATTR_VALUES: &[&str] = &["1", "2"];

fn arb_predicates() -> impl Strategy<Value = Vec<Predicate>> {
    prop::collection::vec(
        prop_oneof![
            2 => (0..ATTR_NAMES.len()).prop_map(|i| Predicate::HasAttr(ATTR_NAMES[i].into())),
            1 => ((0..ATTR_NAMES.len()), (0..ATTR_VALUES.len())).prop_map(|(i, j)| {
                Predicate::AttrEq(ATTR_NAMES[i].into(), ATTR_VALUES[j].into())
            }),
        ],
        0..3,
    )
}

fn arb_xpe() -> impl Strategy<Value = Xpe> {
    (
        any::<bool>(),
        prop::collection::vec(
            (
                prop_oneof![3 => Just(Axis::Child), 1 => Just(Axis::Descendant)],
                prop_oneof![
                    3 => (0..ALPHABET.len()).prop_map(|i| NodeTest::Name(ALPHABET[i].into())),
                    1 => Just(NodeTest::Wildcard),
                ],
                arb_predicates(),
            ),
            1..5,
        ),
    )
        .prop_map(|(absolute, steps)| {
            Xpe::new(
                absolute,
                steps
                    .into_iter()
                    .map(|(axis, test, predicates)| Step {
                        axis,
                        test,
                        predicates,
                    })
                    .collect(),
            )
        })
}

/// An element name plus the attributes carried at that path position.
fn arb_element() -> impl Strategy<Value = (String, Vec<(String, String)>)> {
    (
        (0..ALPHABET.len()).prop_map(|i| ALPHABET[i].to_owned()),
        prop::collection::vec(
            ((0..ATTR_NAMES.len()), (0..ATTR_VALUES.len()))
                .prop_map(|(i, j)| (ATTR_NAMES[i].to_owned(), ATTR_VALUES[j].to_owned())),
            0..3,
        ),
    )
}

fn arb_path() -> impl Strategy<Value = Vec<(String, Vec<(String, String)>)>> {
    prop::collection::vec(arb_element(), 1..7)
}

#[derive(Debug, Clone)]
enum Op {
    Subscribe(Xpe),
    /// Unsubscribe the i-th live subscription (modulo the live count).
    Unsubscribe(usize),
    /// Re-register the i-th live subscription under a new expression.
    Resubscribe(usize, Xpe),
    /// Match a probe path mid-churn (per-publication traversal).
    Route(Vec<(String, Vec<(String, String)>)>),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => arb_xpe().prop_map(Op::Subscribe),
            2 => (0usize..64).prop_map(Op::Unsubscribe),
            1 => ((0usize..64), arb_xpe()).prop_map(|(i, x)| Op::Resubscribe(i, x)),
            2 => arb_path().prop_map(Op::Route),
        ],
        1..48,
    )
}

fn probe(spec: Vec<(String, Vec<(String, String)>)>) -> Probe {
    let path: Vec<String> = spec.iter().map(|(n, _)| n.clone()).collect();
    let attrs: Vec<Vec<(String, String)>> = spec.into_iter().map(|(_, a)| a).collect();
    (path, attrs)
}

/// The exact `(SubId, hop)` match set, sorted for comparison.
fn match_set(r: &dyn PublicationRouter<u32>, p: &Probe) -> Vec<(SubId, u32)> {
    let mut out = Vec::new();
    r.for_each_matching_with_attrs(&p.0, &p.1, &mut |id, h| out.push((id, *h)));
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn automaton_routes_like_indexed_under_churn(
        ops in arb_ops(),
        paths in prop::collection::vec(arb_path(), 6),
    ) {
        let mut reference: IndexedPrt<u32> = IndexedPrt::new();
        let mut automaton: AutomatonPrt<u32> = AutomatonPrt::new();
        // Two workers force the parallel fan-out even where a lone
        // shard (or a single-core runner) would inline it.
        let mut sharded: ShardedRouter<AutomatonPrt<u32>> = ShardedRouter::with_threads(4, 2);
        let mut live: Vec<SubId> = Vec::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                Op::Subscribe(x) => {
                    next += 1;
                    let id = SubId(next);
                    reference.insert(id, x.clone(), next as u32);
                    automaton.insert(id, x.clone(), next as u32);
                    sharded.insert(id, x, next as u32);
                    live.push(id);
                }
                Op::Unsubscribe(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.remove(i % live.len());
                    reference.remove(id);
                    automaton.remove(id);
                    sharded.remove(id);
                }
                Op::Resubscribe(i, x) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live[i % live.len()];
                    next += 1;
                    reference.insert(id, x.clone(), next as u32);
                    automaton.insert(id, x.clone(), next as u32);
                    sharded.insert(id, x, next as u32);
                }
                Op::Route(spec) => {
                    // Mid-churn probe: the automaton must agree while
                    // tombstones and half-threaded structure are live.
                    let p = probe(spec);
                    prop_assert_eq!(
                        match_set(&automaton, &p),
                        match_set(&reference, &p),
                        "mid-churn divergence on {:?}",
                        &p.0
                    );
                }
            }
        }
        prop_assert_eq!(automaton.len(), PublicationRouter::len(&reference));
        prop_assert_eq!(sharded.len(), PublicationRouter::len(&reference));

        let paths: Vec<Probe> = paths.into_iter().map(probe).collect();
        let requests: Vec<RouteRequest<'_>> = paths
            .iter()
            .map(|(p, a)| RouteRequest { path: p, attrs: a })
            .collect();
        for p in &paths {
            let want = match_set(&reference, p);
            // Per-publication traversal, exact (SubId, hop) pairs.
            prop_assert_eq!(match_set(&automaton, p), want.clone(), "divergence on {:?}", &p.0);
            prop_assert_eq!(
                match_set(&sharded, p),
                want,
                "sharded divergence on {:?}",
                &p.0
            );
        }
        // Batched path (hop sets, as route_batch returns them).
        let expected: Vec<_> = requests
            .iter()
            .map(|r| reference.matching_hops(r.path, r.attrs))
            .collect();
        prop_assert_eq!(&automaton.route_batch(&requests), &expected);
        prop_assert_eq!(&sharded.route_batch(&requests), &expected);
    }
}
