//! Property test for the candidate-pruning index: under arbitrary
//! subscribe/unsubscribe churn, [`IndexedPrt`] must route exactly like
//! the linear [`FlatPrt`] scan — identical last-hop sets for every
//! publication path, including attribute predicates (`[@a]`,
//! `[@a='v']`). This is the exactness argument behind the pruning
//! rule, checked mechanically.

use proptest::prelude::*;
use xdn_core::index::IndexedPrt;
use xdn_core::rtable::{FlatPrt, SubId};
use xdn_xpath::{Axis, NodeTest, Predicate, Step, Xpe};

const ALPHABET: &[&str] = &["a", "b", "c", "d"];
const ATTR_NAMES: &[&str] = &["p", "q"];
const ATTR_VALUES: &[&str] = &["1", "2"];

fn arb_predicates() -> impl Strategy<Value = Vec<Predicate>> {
    prop::collection::vec(
        prop_oneof![
            2 => (0..ATTR_NAMES.len()).prop_map(|i| Predicate::HasAttr(ATTR_NAMES[i].into())),
            1 => ((0..ATTR_NAMES.len()), (0..ATTR_VALUES.len())).prop_map(|(i, j)| {
                Predicate::AttrEq(ATTR_NAMES[i].into(), ATTR_VALUES[j].into())
            }),
        ],
        0..3,
    )
}

fn arb_xpe() -> impl Strategy<Value = Xpe> {
    (
        any::<bool>(),
        prop::collection::vec(
            (
                prop_oneof![3 => Just(Axis::Child), 1 => Just(Axis::Descendant)],
                prop_oneof![
                    3 => (0..ALPHABET.len()).prop_map(|i| NodeTest::Name(ALPHABET[i].into())),
                    1 => Just(NodeTest::Wildcard),
                ],
                arb_predicates(),
            ),
            1..5,
        ),
    )
        .prop_map(|(absolute, steps)| {
            Xpe::new(
                absolute,
                steps
                    .into_iter()
                    .map(|(axis, test, predicates)| Step {
                        axis,
                        test,
                        predicates,
                    })
                    .collect(),
            )
        })
}

/// An element name plus the attributes carried at that path position.
fn arb_element() -> impl Strategy<Value = (String, Vec<(String, String)>)> {
    (
        (0..ALPHABET.len()).prop_map(|i| ALPHABET[i].to_owned()),
        prop::collection::vec(
            ((0..ATTR_NAMES.len()), (0..ATTR_VALUES.len()))
                .prop_map(|(i, j)| (ATTR_NAMES[i].to_owned(), ATTR_VALUES[j].to_owned())),
            0..3,
        ),
    )
}

fn arb_path() -> impl Strategy<Value = Vec<(String, Vec<(String, String)>)>> {
    prop::collection::vec(arb_element(), 1..7)
}

#[derive(Debug, Clone)]
enum Op {
    Subscribe(Xpe),
    /// Unsubscribe the i-th live subscription (modulo the live count).
    Unsubscribe(usize),
    /// Re-register the i-th live subscription under a new expression.
    Resubscribe(usize, Xpe),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => arb_xpe().prop_map(Op::Subscribe),
            1 => (0usize..64).prop_map(Op::Unsubscribe),
            1 => ((0usize..64), arb_xpe()).prop_map(|(i, x)| Op::Resubscribe(i, x)),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn indexed_routes_like_flat(
        ops in arb_ops(),
        paths in prop::collection::vec(arb_path(), 6),
    ) {
        let mut flat: FlatPrt<u32> = FlatPrt::new();
        let mut indexed: IndexedPrt<u32> = IndexedPrt::new();
        let mut live: Vec<SubId> = Vec::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                Op::Subscribe(x) => {
                    next += 1;
                    let id = SubId(next);
                    flat.subscribe(id, x.clone(), next as u32);
                    indexed.subscribe(id, x, next as u32);
                    live.push(id);
                }
                Op::Unsubscribe(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.remove(i % live.len());
                    flat.unsubscribe(id);
                    indexed.unsubscribe(id);
                }
                Op::Resubscribe(i, x) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live[i % live.len()];
                    next += 1;
                    flat.subscribe(id, x.clone(), next as u32);
                    indexed.subscribe(id, x, next as u32);
                }
            }
        }
        prop_assert_eq!(flat.len(), live.len());
        prop_assert_eq!(indexed.len(), live.len());
        for spec in &paths {
            let path: Vec<String> = spec.iter().map(|(n, _)| n.clone()).collect();
            let attrs: Vec<Vec<(String, String)>> =
                spec.iter().map(|(_, a)| a.clone()).collect();
            let from_flat = flat.route_with_attrs(&path, &attrs);
            let from_index = indexed.route_with_attrs(&path, &attrs);
            prop_assert_eq!(
                &from_flat,
                &from_index,
                "divergence on path {:?} with attrs {:?}",
                path,
                attrs
            );
            // The attribute-free overload must agree with empty attrs.
            prop_assert_eq!(flat.route(&path), indexed.route(&path));
        }
    }
}
