//! Delegation-completeness tests for the [`PublicationRouter`]
//! wrappers: [`TimedRouter`] must forward *every* trait method to the
//! router it wraps, and [`ShardedRouter`] must forward every method to
//! its shards (modulo the documented exceptions: merging is a no-op on
//! non-covering shards, and `shard_stats` is answered by the sharded
//! router itself). A wrapper that silently falls back to a default
//! implementation would route correctly but drop the inner router's
//! semantics — these tests turn that into a loud failure.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use xdn_core::merge::MergeConfig;
use xdn_core::rtable::{
    FlatPrt, MergeApplication, PublicationRouter, RouteRequest, SubId, SubscribeOutcome,
    TimedRouter, UnsubscribeOutcome,
};
use xdn_core::shard::ShardedRouter;
use xdn_xpath::Xpe;

/// Per-method call counters, observable after the spy is moved into a
/// wrapper via a retained [`Arc`].
#[derive(Debug, Default)]
struct Counts {
    insert: AtomicUsize,
    remove: AtomicUsize,
    for_each: AtomicUsize,
    matching_hops: AtomicUsize,
    route_batch: AtomicUsize,
    len: AtomicUsize,
    xpe_of: AtomicUsize,
    forwarded_subs: AtomicUsize,
    effective_size: AtomicUsize,
    apply_merging: AtomicUsize,
    shard_stats: AtomicUsize,
}

/// A [`FlatPrt`] that counts every trait-method call. `fresh()` keeps
/// the counters private to the caller; `Default` (used by
/// [`ShardedRouter`] to build shards) additionally registers them in a
/// global list so the sharded test can observe all of its shards.
#[derive(Debug)]
struct SpyRouter {
    inner: FlatPrt<u32>,
    counts: Arc<Counts>,
}

fn registry() -> &'static Mutex<Vec<Arc<Counts>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Counts>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

impl SpyRouter {
    fn fresh() -> Self {
        SpyRouter {
            inner: FlatPrt::new(),
            counts: Arc::new(Counts::default()),
        }
    }
}

impl Default for SpyRouter {
    fn default() -> Self {
        let spy = Self::fresh();
        registry().lock().unwrap().push(spy.counts.clone());
        spy
    }
}

impl PublicationRouter<u32> for SpyRouter {
    fn insert(&mut self, id: SubId, xpe: Xpe, last_hop: u32) -> SubscribeOutcome<u32> {
        self.counts.insert.fetch_add(1, Ordering::Relaxed);
        self.inner.insert(id, xpe, last_hop)
    }

    fn remove(&mut self, id: SubId) -> UnsubscribeOutcome {
        self.counts.remove.fetch_add(1, Ordering::Relaxed);
        self.inner.remove(id)
    }

    fn for_each_matching_with_attrs(
        &self,
        path: &[String],
        attrs: &[Vec<(String, String)>],
        f: &mut dyn FnMut(SubId, &u32),
    ) {
        self.counts.for_each.fetch_add(1, Ordering::Relaxed);
        self.inner.for_each_matching_with_attrs(path, attrs, f);
    }

    fn matching_hops(&self, path: &[String], attrs: &[Vec<(String, String)>]) -> BTreeSet<u32> {
        self.counts.matching_hops.fetch_add(1, Ordering::Relaxed);
        self.inner.matching_hops(path, attrs)
    }

    fn route_batch(&self, requests: &[RouteRequest<'_>]) -> Vec<BTreeSet<u32>> {
        self.counts.route_batch.fetch_add(1, Ordering::Relaxed);
        requests
            .iter()
            .map(|r| self.inner.matching_hops(r.path, r.attrs))
            .collect()
    }

    fn len(&self) -> usize {
        self.counts.len.fetch_add(1, Ordering::Relaxed);
        PublicationRouter::len(&self.inner)
    }

    fn xpe_of(&self, id: SubId) -> Option<&Xpe> {
        self.counts.xpe_of.fetch_add(1, Ordering::Relaxed);
        PublicationRouter::xpe_of(&self.inner, id)
    }

    fn forwarded_subs(&self) -> Vec<(SubId, Xpe, Vec<u32>)> {
        self.counts.forwarded_subs.fetch_add(1, Ordering::Relaxed);
        self.inner.forwarded_subs()
    }

    fn effective_size(&self) -> usize {
        self.counts.effective_size.fetch_add(1, Ordering::Relaxed);
        self.inner.effective_size()
    }

    fn apply_merging(
        &mut self,
        universe: &[Vec<String>],
        cfg: &MergeConfig,
        next_id: &mut dyn FnMut() -> SubId,
    ) -> Vec<MergeApplication> {
        self.counts.apply_merging.fetch_add(1, Ordering::Relaxed);
        self.inner.apply_merging(universe, cfg, next_id)
    }

    fn shard_stats(&self) -> Option<xdn_core::shard::ShardStats> {
        self.counts.shard_stats.fetch_add(1, Ordering::Relaxed);
        None
    }
}

fn xpe(s: &str) -> Xpe {
    s.parse().unwrap()
}

fn path(p: &[&str]) -> Vec<String> {
    p.iter().map(|s| (*s).to_string()).collect()
}

#[test]
fn timed_router_forwards_every_method() {
    let spy = SpyRouter::fresh();
    let counts = spy.counts.clone();
    let mut timed = TimedRouter::new(spy);

    timed.insert(SubId(1), xpe("/a/b"), 7);
    assert_eq!(counts.insert.load(Ordering::Relaxed), 1, "insert");

    timed.for_each_matching_with_attrs(&path(&["a", "b"]), &[], &mut |_, _| {});
    assert_eq!(counts.for_each.load(Ordering::Relaxed), 1, "for_each");

    let p = path(&["a", "b"]);
    let reqs = [RouteRequest {
        path: &p,
        attrs: &[],
    }];
    assert_eq!(timed.route_batch(&reqs), vec![BTreeSet::from([7])]);
    assert_eq!(counts.route_batch.load(Ordering::Relaxed), 1, "route_batch");

    assert_eq!(PublicationRouter::len(&timed), 1);
    assert_eq!(counts.len.load(Ordering::Relaxed), 1, "len");

    assert_eq!(
        PublicationRouter::xpe_of(&timed, SubId(1)),
        Some(&xpe("/a/b"))
    );
    assert_eq!(counts.xpe_of.load(Ordering::Relaxed), 1, "xpe_of");

    assert_eq!(timed.forwarded_subs().len(), 1);
    assert_eq!(
        counts.forwarded_subs.load(Ordering::Relaxed),
        1,
        "forwarded_subs"
    );

    assert_eq!(timed.effective_size(), 1);
    assert_eq!(
        counts.effective_size.load(Ordering::Relaxed),
        1,
        "effective_size"
    );

    let mut next = 100u64;
    timed.apply_merging(&[], &MergeConfig::default(), &mut || {
        next += 1;
        SubId(next)
    });
    assert_eq!(
        counts.apply_merging.load(Ordering::Relaxed),
        1,
        "apply_merging"
    );

    assert!(timed.shard_stats().is_none());
    assert_eq!(counts.shard_stats.load(Ordering::Relaxed), 1, "shard_stats");

    timed.remove(SubId(1));
    assert_eq!(counts.remove.load(Ordering::Relaxed), 1, "remove");
}

#[test]
fn sharded_router_forwards_every_method_to_its_shards() {
    const SHARDS: usize = 3;
    let before = registry().lock().unwrap().len();
    let mut sharded: ShardedRouter<SpyRouter> = ShardedRouter::with_threads(SHARDS, 1);
    let shards: Vec<Arc<Counts>> = registry().lock().unwrap()[before..].to_vec();
    assert_eq!(shards.len(), SHARDS, "one registered spy per shard");
    let total = |get: fn(&Counts) -> &AtomicUsize| -> usize {
        shards.iter().map(|c| get(c).load(Ordering::Relaxed)).sum()
    };

    sharded.insert(SubId(1), xpe("/a/b"), 7);
    assert_eq!(total(|c| &c.insert), 1, "insert goes to exactly one shard");

    // The per-publication path funnels through the batched fan-out,
    // which asks every shard once.
    assert_eq!(
        sharded.matching_hops(&path(&["a", "b"]), &[]),
        BTreeSet::from([7])
    );
    assert_eq!(
        total(|c| &c.matching_hops),
        SHARDS,
        "matching_hops fans to every shard"
    );

    let (pa, pb) = (path(&["a", "b"]), path(&["x"]));
    let reqs = [
        RouteRequest {
            path: &pa,
            attrs: &[],
        },
        RouteRequest {
            path: &pb,
            attrs: &[],
        },
    ];
    sharded.route_batch(&reqs);
    assert_eq!(
        total(|c| &c.matching_hops),
        SHARDS * 3,
        "each batched request asks every shard"
    );

    sharded.for_each_matching_with_attrs(&path(&["a", "b"]), &[], &mut |_, _| {});
    assert_eq!(
        total(|c| &c.for_each),
        SHARDS,
        "for_each fans to every shard"
    );

    assert_eq!(PublicationRouter::len(&sharded), 1);
    assert_eq!(total(|c| &c.len), SHARDS, "len sums every shard");

    assert_eq!(
        PublicationRouter::xpe_of(&sharded, SubId(1)),
        Some(&xpe("/a/b"))
    );
    assert_eq!(total(|c| &c.xpe_of), 1, "xpe_of goes to the owning shard");

    assert_eq!(sharded.forwarded_subs().len(), 1);
    assert_eq!(
        total(|c| &c.forwarded_subs),
        SHARDS,
        "forwarded_subs drains every shard"
    );

    assert_eq!(sharded.effective_size(), 1);
    assert_eq!(
        total(|c| &c.effective_size),
        SHARDS,
        "effective_size sums every shard"
    );

    // Documented exceptions: shards are non-covering, so merging is a
    // router-level no-op, and shard_stats is the sharded router's own
    // answer (it reads shard occupancy via `len`).
    let mut next = 100u64;
    let merged = sharded.apply_merging(&[], &MergeConfig::default(), &mut || {
        next += 1;
        SubId(next)
    });
    assert!(merged.is_empty());
    assert_eq!(
        total(|c| &c.apply_merging),
        0,
        "merging never reaches shards"
    );
    assert!(sharded.shard_stats().is_some());
    assert_eq!(
        total(|c| &c.shard_stats),
        0,
        "stats answered by the sharded router"
    );

    sharded.remove(SubId(1));
    assert_eq!(total(|c| &c.remove), 1, "remove goes to exactly one shard");
}
