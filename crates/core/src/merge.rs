//! Subscription merging (§4.3).
//!
//! Subscriptions that are not in a covering relation but select
//! overlapping publications can be replaced downstream by a more
//! general *merger*: `P(merger) ⊇ P(s1) ∪ P(s2)`. A merger whose
//! publication set equals the union is a **perfect merger**; otherwise
//! it is **imperfect** and introduces false positives, quantified by
//! the imperfect-merging degree
//!
//! ```text
//! D_imperfect = |P(s) − ∪ P(si)| / |P(s)|
//! ```
//!
//! computed over the universe of publication paths the DTD admits
//! (every broker is assumed to know the producer's DTD).
//!
//! Three rules from the paper:
//!
//! 1. one differing element position → that position becomes `*`;
//! 2. one differing element position *and* one differing operator
//!    position → the element becomes `*` and the operator `//`;
//! 3. identical prefix and suffix around arbitrary differing infixes →
//!    the infixes collapse into a single `//`.
//!
//! Every rule produces an expression that covers its inputs, so
//! applying a merger can never lose publications (verified by property
//! tests).

use crate::cover::covers;
use crate::subtree::{Insertion, NodeId, SubscriptionTree};
use std::collections::HashMap;
use xdn_xpath::{Axis, NodeTest, Step, Xpe};

/// Rule 1: merge expressions that are identical except for the element
/// at exactly one position (operators all equal). Any number of
/// candidates (the paper notes the rule is not limited to two).
///
/// Returns `None` when the inputs do not fit the rule (different
/// lengths, shapes, or more than one differing position).
///
/// ```
/// use xdn_core::merge::try_merge_rule1;
/// let s1: xdn_xpath::Xpe = "/a/*/c/d".parse().unwrap();
/// let s2: xdn_xpath::Xpe = "/a/*/c/e".parse().unwrap();
/// let m = try_merge_rule1(&[&s1, &s2]).unwrap();
/// assert_eq!(m.to_string(), "/a/*/c/*");
/// ```
pub fn try_merge_rule1(xpes: &[&Xpe]) -> Option<Xpe> {
    let (first, rest) = xpes.split_first()?;
    if rest.is_empty() {
        return None;
    }
    let len = first.len();
    let absolute = first.is_absolute();
    if rest
        .iter()
        .any(|x| x.len() != len || x.is_absolute() != absolute)
    {
        return None;
    }
    // Operators must agree everywhere.
    for x in rest {
        if x.steps()
            .iter()
            .zip(first.steps())
            .any(|(a, b)| a.axis != b.axis)
        {
            return None;
        }
    }
    // Exactly one position may carry differing tests.
    let mut diff_pos: Option<usize> = None;
    for i in 0..len {
        let t0 = &first.steps()[i].test;
        if rest.iter().any(|x| &x.steps()[i].test != t0) && diff_pos.replace(i).is_some() {
            return None;
        }
    }
    let i = diff_pos?; // all equal → covering relation, nothing to merge
    let mut steps: Vec<Step> = first.steps().to_vec();
    steps[i].test = NodeTest::Wildcard;
    // The merged position must accept every candidate's element with
    // whatever attributes it carries.
    steps[i].predicates.clear();
    Some(Xpe::new(absolute, steps))
}

/// Rule 2: merge two expressions of equal length differing in at most
/// one element position and at most one operator position (at least one
/// of each kind of difference in total). The differing element becomes
/// `*` and the differing operator `//`.
///
/// ```
/// use xdn_core::merge::try_merge_rule2;
/// let s1: xdn_xpath::Xpe = "/a/c/*/*".parse().unwrap();
/// let s2: xdn_xpath::Xpe = "/a//c/*/c".parse().unwrap();
/// let m = try_merge_rule2(&s1, &s2).unwrap();
/// assert_eq!(m.to_string(), "/a//c/*/*");
/// ```
pub fn try_merge_rule2(s1: &Xpe, s2: &Xpe) -> Option<Xpe> {
    if s1.len() != s2.len() || s1.is_absolute() != s2.is_absolute() {
        return None;
    }
    let mut test_diffs = Vec::new();
    let mut axis_diffs = Vec::new();
    for (i, (a, b)) in s1.steps().iter().zip(s2.steps()).enumerate() {
        if a.test != b.test {
            test_diffs.push(i);
        }
        if a.axis != b.axis {
            axis_diffs.push(i);
        }
    }
    if test_diffs.len() > 1 || axis_diffs.len() > 1 || (test_diffs.len() + axis_diffs.len()) == 0 {
        return None;
    }
    let mut steps: Vec<Step> = s1.steps().to_vec();
    for &i in &test_diffs {
        steps[i].test = NodeTest::Wildcard;
        steps[i].predicates.clear();
    }
    for &i in &axis_diffs {
        steps[i].axis = Axis::Descendant;
    }
    Some(Xpe::new(s1.is_absolute(), steps))
}

/// Rule 3: merge two expressions sharing a common step prefix and a
/// common step suffix around differing infixes; the infixes collapse
/// into a `//` connecting prefix and suffix.
///
/// `min_shared` guards against over-general mergers ("this rule is
/// applied if most parts in two subscriptions are equal"): the shared
/// prefix + suffix must make up at least that fraction of the *shorter*
/// input. The suffix must be non-empty (an expression cannot end in an
/// operator).
///
/// ```
/// use xdn_core::merge::try_merge_rule3;
/// let s1: xdn_xpath::Xpe = "/a/b/x/d/e".parse().unwrap();
/// let s2: xdn_xpath::Xpe = "/a/b/y/z/d/e".parse().unwrap();
/// let m = try_merge_rule3(&s1, &s2, 0.5).unwrap();
/// assert_eq!(m.to_string(), "/a/b//d/e");
/// ```
pub fn try_merge_rule3(s1: &Xpe, s2: &Xpe, min_shared: f64) -> Option<Xpe> {
    if s1.is_absolute() != s2.is_absolute() {
        return None;
    }
    let (a, b) = (s1.steps(), s2.steps());
    let max_common = a.len().min(b.len());
    let mut prefix = 0;
    while prefix < max_common && a[prefix] == b[prefix] {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < max_common - prefix.min(max_common)
        && a[a.len() - 1 - suffix] == b[b.len() - 1 - suffix]
    {
        suffix += 1;
    }
    if suffix == 0 {
        return None;
    }
    // Both must have a differing infix — otherwise one embeds in the
    // other and covering may already apply; a merger is still valid
    // when exactly one infix is empty (`//` covers `/`), required e.g.
    // to merge /a/b/d/e with /a/b/x/d/e.
    if prefix + suffix >= a.len() && prefix + suffix >= b.len() {
        return None; // identical expressions
    }
    let shared = (prefix + suffix) as f64 / max_common as f64;
    if shared < min_shared {
        return None;
    }
    let mut steps: Vec<Step> = a[..prefix].to_vec();
    let mut tail: Vec<Step> = a[a.len() - suffix..].to_vec();
    if let Some(first) = tail.first_mut() {
        first.axis = Axis::Descendant;
    }
    steps.append(&mut tail);
    if steps.is_empty() {
        return None;
    }
    Some(Xpe::new(s1.is_absolute(), steps))
}

/// Configuration of the pairwise merge attempt and the tree-level
/// engine.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeConfig {
    /// Maximum tolerated imperfect-merging degree; `0.0` admits only
    /// perfect mergers.
    pub max_degree: f64,
    /// Enable rule 2 (operator + element difference).
    pub rule2: bool,
    /// Enable rule 3 (infix collapse).
    pub rule3: bool,
    /// Minimum shared fraction for rule 3.
    pub rule3_min_shared: f64,
    /// Upper bound on fixpoint iterations of the engine.
    pub max_rounds: usize,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            max_degree: 0.0,
            rule2: true,
            rule3: true,
            rule3_min_shared: 0.6,
            max_rounds: 8,
        }
    }
}

/// Attempts to merge a pair under the configured rules (1, then 2,
/// then 3). Returns `None` if no rule applies or one input covers the
/// other (covering already handles that case).
pub fn try_merge_pair(s1: &Xpe, s2: &Xpe, cfg: &MergeConfig) -> Option<Xpe> {
    if covers(s1, s2) || covers(s2, s1) {
        return None;
    }
    if let Some(m) = try_merge_rule1(&[s1, s2]) {
        return Some(m);
    }
    if cfg.rule2 {
        if let Some(m) = try_merge_rule2(s1, s2) {
            return Some(m);
        }
    }
    if cfg.rule3 {
        if let Some(m) = try_merge_rule3(s1, s2, cfg.rule3_min_shared) {
            return Some(m);
        }
    }
    None
}

/// The imperfect-merging degree of `merger` with respect to the
/// `originals` it replaces, measured over `universe` — the set of
/// publication paths the producer's DTD admits (§4.3).
///
/// Returns `0.0` when the merger selects nothing from the universe
/// (vacuously perfect).
pub fn imperfect_degree<S: AsRef<str>>(
    merger: &Xpe,
    originals: &[&Xpe],
    universe: &[Vec<S>],
) -> f64 {
    let mut merged = 0usize;
    let mut union = 0usize;
    for path in universe {
        if merger.matches_path(path) {
            merged += 1;
            if originals.iter().any(|o| o.matches_path(path)) {
                union += 1;
            }
        }
    }
    if merged == 0 {
        0.0
    } else {
        (merged - union) as f64 / merged as f64
    }
}

/// Report of one [`merge_tree`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Mergers inserted, with the top-level nodes each one absorbed.
    pub mergers: Vec<(NodeId, Vec<NodeId>)>,
    /// Fixpoint rounds executed.
    pub rounds: usize,
}

impl MergeReport {
    /// Total top-level nodes absorbed under mergers.
    pub fn absorbed(&self) -> usize {
        self.mergers.iter().map(|(_, d)| d.len()).sum()
    }
}

/// Runs the merging engine over the top level of a subscription tree:
/// repeatedly finds sibling pairs mergeable under `cfg` whose imperfect
/// degree over `universe` is within `cfg.max_degree`, inserts the
/// merger, and lets covering demote the absorbed subscriptions, until a
/// fixpoint (or `cfg.max_rounds`).
///
/// Candidate pairs are discovered with masked-signature hashing (rule
/// 1/2 candidates agree on everything except the masked positions), so
/// a round costs `O(n · L²)` rather than `O(n²)`.
pub fn merge_tree<T: Default, S: AsRef<str>>(
    tree: &mut SubscriptionTree<T>,
    universe: &[Vec<S>],
    cfg: &MergeConfig,
) -> MergeReport {
    let mut report = MergeReport::default();
    // A positive degree budget first exhausts the perfect mergers —
    // the imperfect trajectory then extends the perfect one, so a
    // looser budget can never end with a larger table.
    if cfg.max_degree > 0.0 {
        let perfect = MergeConfig {
            max_degree: 0.0,
            ..cfg.clone()
        };
        let sub = merge_tree(tree, universe, &perfect);
        report.mergers.extend(sub.mergers);
        report.rounds += sub.rounds;
    }
    for _ in 0..cfg.max_rounds {
        report.rounds += 1;
        let candidates = find_candidates(tree, cfg);
        // Score every candidate first and apply in ascending order of
        // imperfect degree: perfect mergers must never be preempted by
        // a looser merger that happens to be discovered earlier (a
        // greedy-order artifact that would let a larger degree budget
        // end with a *larger* table).
        let mut scored: Vec<(f64, Xpe, Vec<NodeId>)> = Vec::new();
        for cand in candidates {
            match cand {
                MergeCandidate::Group(ids) => {
                    let live: Vec<NodeId> = ids
                        .into_iter()
                        .filter(|&n| tree.parent(n).is_none())
                        .collect();
                    if live.len() < 2 {
                        continue;
                    }
                    let xpes: Vec<Xpe> = live.iter().map(|&n| tree.xpe(n).clone()).collect();
                    let refs: Vec<&Xpe> = xpes.iter().collect();
                    let Some(m) = try_merge_rule1(&refs) else {
                        continue;
                    };
                    let d = imperfect_degree(&m, &refs, universe);
                    if d <= cfg.max_degree {
                        scored.push((d, m, live));
                    }
                }
                MergeCandidate::Pair(a, b) => {
                    if tree.parent(a).is_some() || tree.parent(b).is_some() {
                        continue;
                    }
                    let (xa, xb) = (tree.xpe(a).clone(), tree.xpe(b).clone());
                    let Some(m) = try_merge_pair(&xa, &xb, cfg) else {
                        continue;
                    };
                    let d = imperfect_degree(&m, &[&xa, &xb], universe);
                    if d <= cfg.max_degree {
                        scored.push((d, m, vec![a, b]));
                    }
                }
            }
        }
        // Deterministic trajectory: ties at equal degree are ordered by
        // the merger expression (candidate discovery iterates hash maps,
        // whose order must not leak into the result).
        scored.sort_by(|x, y| x.0.total_cmp(&y.0).then_with(|| x.1.cmp(&y.1)));
        let mut progressed = false;
        for (_, merged, members) in scored {
            // Members may have been demoted by an earlier merger this
            // round; skip stale entries.
            if members
                .iter()
                .filter(|&&n| tree.parent(n).is_none())
                .count()
                < 2
            {
                continue;
            }
            match tree.insert(merged, T::default()) {
                Insertion::NewTop { id, demoted } => {
                    report.mergers.push((id, demoted));
                    progressed = true;
                }
                Insertion::CoveredBy { id, .. } => {
                    // The merger is subsumed by an existing root; it
                    // adds nothing — remove it again.
                    tree.remove(id);
                }
            }
        }
        if !progressed {
            break;
        }
    }
    report
}

/// A merge opportunity discovered by signature hashing.
enum MergeCandidate {
    /// A rule-1 signature group: all members differ only at the masked
    /// position and can merge simultaneously (the paper notes rule 1
    /// "is not limited to 2" candidates). Group merges are attempted
    /// before pairs because the union of a full group is tighter —
    /// often perfect where any pair alone would be imperfect.
    Group(Vec<NodeId>),
    /// A pairwise rule-2/3 opportunity.
    Pair(NodeId, NodeId),
}

/// Signature-based candidate discovery for rules 1 and 2 plus a
/// bounded prefix-bucket scan for rule 3.
fn find_candidates<T>(tree: &SubscriptionTree<T>, cfg: &MergeConfig) -> Vec<MergeCandidate> {
    let mut out = Vec::new();
    let roots: Vec<NodeId> = tree.roots().to_vec();

    // Rule 1 signatures: mask one test position; expressions sharing a
    // signature differ only there and merge as a whole group.
    let mut rule1_groups: HashMap<u64, Vec<NodeId>> = HashMap::new();
    for &id in &roots {
        let x = tree.xpe(id);
        for mask_test in 0..x.len() {
            let sig = signature(x, Some(mask_test), None);
            rule1_groups.entry(sig).or_default().push(id);
        }
    }
    for mut group in rule1_groups.into_values() {
        group.sort();
        group.dedup();
        if group.len() >= 2 {
            out.push(MergeCandidate::Group(group));
        }
    }

    // Rule 2 signatures: additionally mask one axis position; members
    // merge pairwise.
    if cfg.rule2 {
        let mut sig_groups: HashMap<u64, Vec<NodeId>> = HashMap::new();
        for &id in &roots {
            let x = tree.xpe(id);
            for mask_test in 0..x.len() {
                for mask_axis in 0..x.len() {
                    let sig = signature(x, Some(mask_test), Some(mask_axis));
                    sig_groups.entry(sig).or_default().push(id);
                }
            }
        }
        for group in sig_groups.into_values() {
            if group.len() < 2 {
                continue;
            }
            // Pair consecutive members; later rounds pick up the rest.
            for w in group.windows(2) {
                if w[0] != w[1] {
                    out.push(MergeCandidate::Pair(w[0], w[1]));
                }
            }
        }
    }

    // Rule 3: bucket by (absoluteness, first two steps), scan small
    // buckets pairwise.
    if cfg.rule3 {
        let mut buckets: HashMap<String, Vec<NodeId>> = HashMap::new();
        for &id in &roots {
            let x = tree.xpe(id);
            let key = format!(
                "{}|{:?}",
                x.is_absolute(),
                x.steps().iter().take(2).collect::<Vec<_>>()
            );
            buckets.entry(key).or_default().push(id);
        }
        const BUCKET_CAP: usize = 24;
        for bucket in buckets.into_values() {
            if bucket.len() < 2 || bucket.len() > BUCKET_CAP {
                continue;
            }
            for i in 0..bucket.len() {
                for j in i + 1..bucket.len() {
                    out.push(MergeCandidate::Pair(bucket[i], bucket[j]));
                }
            }
        }
    }
    out
}

/// Order-insensitive structural hash with optional masked positions.
fn signature(x: &Xpe, mask_test: Option<usize>, mask_axis: Option<usize>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    x.is_absolute().hash(&mut h);
    x.len().hash(&mut h);
    mask_test.hash(&mut h);
    mask_axis.hash(&mut h);
    for (i, s) in x.steps().iter().enumerate() {
        if Some(i) != mask_test {
            s.test.hash(&mut h);
        }
        if Some(i) != mask_axis {
            s.axis.hash(&mut h);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    #[test]
    fn rule1_paper_example() {
        let s1 = xpe("a/*/c/d");
        let s2 = xpe("a/*/c/e");
        let m = try_merge_rule1(&[&s1, &s2]).unwrap();
        assert_eq!(m.to_string(), "a/*/c/*");
        assert!(covers(&m, &s1) && covers(&m, &s2));
    }

    #[test]
    fn rule1_multiway() {
        let s1 = xpe("/a/b/a");
        let s2 = xpe("/a/b/b");
        let s3 = xpe("/a/b/d");
        let m = try_merge_rule1(&[&s1, &s2, &s3]).unwrap();
        assert_eq!(m.to_string(), "/a/b/*");
    }

    #[test]
    fn rule1_rejections() {
        assert!(try_merge_rule1(&[&xpe("/a/b")]).is_none());
        assert!(try_merge_rule1(&[&xpe("/a/b"), &xpe("/a/b/c")]).is_none()); // lengths
        assert!(try_merge_rule1(&[&xpe("/a/b"), &xpe("a/b")]).is_none()); // anchoring
        assert!(try_merge_rule1(&[&xpe("/a/b"), &xpe("/x/y")]).is_none()); // two diffs
        assert!(try_merge_rule1(&[&xpe("/a/b"), &xpe("/a//b")]).is_none()); // operators
        assert!(try_merge_rule1(&[&xpe("/a/b"), &xpe("/a/b")]).is_none()); // identical
    }

    #[test]
    fn rule2_paper_example() {
        let s1 = xpe("/a/c/*/*");
        let s2 = xpe("/a//c/*/c");
        let m = try_merge_rule2(&s1, &s2).unwrap();
        assert_eq!(m.to_string(), "/a//c/*/*");
        assert!(covers(&m, &s1) && covers(&m, &s2));
    }

    #[test]
    fn rule2_rejections() {
        assert!(try_merge_rule2(&xpe("/a/b"), &xpe("/a/b")).is_none()); // identical
        assert!(try_merge_rule2(&xpe("/a/b/c"), &xpe("/x/y/c")).is_none()); // 2 test diffs
        assert!(try_merge_rule2(&xpe("/a/b"), &xpe("/a/b/c")).is_none()); // lengths
    }

    #[test]
    fn rule2_operator_only_difference() {
        // Covered pairs are rejected at `try_merge_pair`, but the raw
        // rule accepts a single operator diff.
        let m = try_merge_rule2(&xpe("/a/b/c"), &xpe("/a/b//c")).unwrap();
        assert_eq!(m.to_string(), "/a/b//c");
    }

    #[test]
    fn rule3_basic() {
        let s1 = xpe("/a/b/x/d/e");
        let s2 = xpe("/a/b/y/z/d/e");
        let m = try_merge_rule3(&s1, &s2, 0.5).unwrap();
        assert_eq!(m.to_string(), "/a/b//d/e");
        assert!(covers(&m, &s1) && covers(&m, &s2));
    }

    #[test]
    fn rule3_empty_infix_on_one_side() {
        let s1 = xpe("/a/b/d/e");
        let s2 = xpe("/a/b/x/d/e");
        let m = try_merge_rule3(&s1, &s2, 0.5).unwrap();
        assert!(covers(&m, &s1) && covers(&m, &s2));
    }

    #[test]
    fn rule3_threshold() {
        let s1 = xpe("/a/p/q/r/e");
        let s2 = xpe("/a/x/y/z/e");
        assert!(try_merge_rule3(&s1, &s2, 0.9).is_none());
        assert!(try_merge_rule3(&s1, &s2, 0.3).is_some());
    }

    #[test]
    fn rule3_requires_suffix() {
        assert!(try_merge_rule3(&xpe("/a/b"), &xpe("/a/c"), 0.0).is_none());
    }

    #[test]
    fn pair_skips_covering_pairs() {
        let cfg = MergeConfig::default();
        assert!(try_merge_pair(&xpe("/a/*"), &xpe("/a/b"), &cfg).is_none());
    }

    #[test]
    fn all_mergers_cover_inputs() {
        let cfg = MergeConfig {
            rule3_min_shared: 0.0,
            ..Default::default()
        };
        let cases = [
            ("/a/b/c", "/a/b/d"),
            ("/a/b/c", "/a//b/d"),
            ("a/b/c/q", "a/x/y/q"),
            ("/p/q/r/s", "/p/z/r/s"),
        ];
        for (a, b) in cases {
            let (s1, s2) = (xpe(a), xpe(b));
            if let Some(m) = try_merge_pair(&s1, &s2, &cfg) {
                assert!(covers(&m, &s1), "{m} must cover {a}");
                assert!(covers(&m, &s2), "{m} must cover {b}");
            }
        }
    }

    fn universe() -> Vec<Vec<String>> {
        // A tiny synthetic universe: /a/<x>/<y> for x,y in {b,c,d,e}.
        let mut u = Vec::new();
        for x in ["b", "c", "d", "e"] {
            for y in ["b", "c", "d", "e"] {
                u.push(vec!["a".to_string(), x.to_string(), y.to_string()]);
            }
        }
        u
    }

    #[test]
    fn degree_of_perfect_merger_is_zero() {
        // /a/b/* ∪-merges /a/b/b … /a/b/e exactly.
        let parts: Vec<Xpe> = ["b", "c", "d", "e"]
            .iter()
            .map(|y| xpe(&format!("/a/b/{y}")))
            .collect();
        let refs: Vec<&Xpe> = parts.iter().collect();
        let m = xpe("/a/b/*");
        assert_eq!(imperfect_degree(&m, &refs, &universe()), 0.0);
    }

    #[test]
    fn degree_matches_paper_arithmetic() {
        // §4.3: merging two of five admissible elements at a position
        // introduces 60% false positives at that position.
        let s1 = xpe("/a/b/d");
        let s2 = xpe("/a/b/e");
        let m = xpe("/a/b/*");
        // Universe restricted to /a/b/<y>, y ∈ {b,c,d,e} (4 options):
        let u: Vec<Vec<String>> = universe().into_iter().filter(|p| p[1] == "b").collect();
        let d = imperfect_degree(&m, &[&s1, &s2], &u);
        assert!(
            (d - 0.5).abs() < 1e-9,
            "2 of 4 covered -> degree 0.5, got {d}"
        );
    }

    #[test]
    fn degree_empty_universe() {
        let u: Vec<Vec<String>> = Vec::new();
        assert_eq!(imperfect_degree(&xpe("/a"), &[&xpe("/a/b")], &u), 0.0);
    }

    #[test]
    fn merge_tree_perfect() {
        let mut t = SubscriptionTree::<Vec<u32>>::new();
        for y in ["b", "c", "d", "e"] {
            t.insert(xpe(&format!("/a/b/{y}")), vec![]);
        }
        assert_eq!(t.root_count(), 4);
        let cfg = MergeConfig {
            max_degree: 0.0,
            ..Default::default()
        };
        let report = merge_tree(&mut t, &universe(), &cfg);
        assert!(!report.mergers.is_empty());
        assert_eq!(t.root_count(), 1, "all four merge into /a/b/*");
        t.check_invariants().unwrap();
    }

    #[test]
    fn merge_tree_respects_degree_budget() {
        let mut t = SubscriptionTree::<Vec<u32>>::new();
        t.insert(xpe("/a/b/d"), vec![]);
        t.insert(xpe("/a/b/e"), vec![]);
        // /a/b/* would select 4 paths, the originals 2 → degree 0.5.
        let strict = MergeConfig {
            max_degree: 0.1,
            ..Default::default()
        };
        let report = merge_tree(&mut t, &universe(), &strict);
        assert!(report.mergers.is_empty());
        assert_eq!(t.root_count(), 2);
        let loose = MergeConfig {
            max_degree: 0.6,
            ..Default::default()
        };
        let report = merge_tree(&mut t, &universe(), &loose);
        assert_eq!(report.mergers.len(), 1);
        assert_eq!(t.root_count(), 1);
    }

    #[test]
    fn merge_tree_cascades() {
        // /a/b/c + /a/b/d -> /a/b/*; /a/c/c + /a/c/d -> /a/c/*; then
        // /a/b/* + /a/c/* -> /a/*/* (universe permitting).
        let mut t = SubscriptionTree::<Vec<u32>>::new();
        for (x, y) in [("b", "b"), ("b", "c"), ("b", "d"), ("b", "e")] {
            t.insert(xpe(&format!("/a/{x}/{y}")), vec![]);
        }
        for (x, y) in [("c", "b"), ("c", "c"), ("c", "d"), ("c", "e")] {
            t.insert(xpe(&format!("/a/{x}/{y}")), vec![]);
        }
        let cfg = MergeConfig {
            max_degree: 0.5,
            ..Default::default()
        };
        merge_tree(&mut t, &universe(), &cfg);
        assert!(
            t.root_count() <= 2,
            "root count {} after cascade",
            t.root_count()
        );
        t.check_invariants().unwrap();
    }
}
