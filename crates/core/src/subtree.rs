//! The subscription tree (§4.1).
//!
//! Each broker maintains its subscriptions in a tree ordered by the
//! covering relation: a node's expression covers every expression in
//! its subtree. Because covering is a partial order, a tree cannot
//! capture every relation; *super pointers* record covering relations
//! that cross subtrees, turning the structure into a DAG.
//!
//! The tree serves three routing purposes:
//!
//! * **Forwarding decisions** — a newly arrived subscription that is
//!   covered by an existing one need not be forwarded; one that covers
//!   existing top-level subscriptions replaces them downstream
//!   ([`Insertion`]).
//! * **Compact routing tables** — the routing table a neighbour sees is
//!   the set of *top-level* nodes ([`SubscriptionTree::root_count`]),
//!   which covering keeps small (Figure 6).
//! * **Fast publication matching** — matching descends only into
//!   children of matching nodes, since a non-matching parent (which
//!   covers its children) prunes its whole subtree
//!   ([`SubscriptionTree::for_each_matching`]).
//!
//! Search is accelerated by bucketing top-level nodes on their first
//! location step, an index justified by the paper's *absolute XPE node*
//! and *relative XPE node* properties (§4.1): an absolute
//! name-anchored expression can only be covered by one starting with
//! the same name, a wildcard, or a floating (relative / `//`-headed)
//! expression.

use crate::cover::covers;
use std::collections::HashMap;
use std::fmt;
use xdn_xpath::{Axis, NodeTest, Xpe};

/// Handle to a node in a [`SubscriptionTree`]. Valid until the node is
/// removed; stale ids are detected (panics) rather than aliased.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Outcome of inserting a subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Insertion {
    /// The subscription is covered by an existing one: it was stored
    /// (under `by`) but must **not** be forwarded.
    CoveredBy {
        /// The covering ancestor it was placed under.
        by: NodeId,
        /// The new node.
        id: NodeId,
    },
    /// The subscription landed at the top level: it must be forwarded,
    /// and the previously top-level subscriptions in `demoted` (now its
    /// children) should be unsubscribed downstream.
    NewTop {
        /// The new node.
        id: NodeId,
        /// Former top-level nodes now covered by `id`.
        demoted: Vec<NodeId>,
    },
}

impl Insertion {
    /// The id of the inserted node.
    pub fn id(&self) -> NodeId {
        match *self {
            Insertion::CoveredBy { id, .. } | Insertion::NewTop { id, .. } => id,
        }
    }

    /// True if the subscription should be forwarded to neighbours.
    pub fn forward(&self) -> bool {
        matches!(self, Insertion::NewTop { .. })
    }
}

#[derive(Clone)]
struct NodeData<T> {
    xpe: Xpe,
    payload: T,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Covering shortcuts to nodes outside this node's subtree.
    supers: Vec<NodeId>,
    /// Reverse of `supers`, for O(degree) cleanup on removal.
    super_parents: Vec<NodeId>,
}

/// Bucket key for the top-level index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum RootKey {
    /// Absolute, child-anchored, first step is a name.
    Name(String),
    /// Absolute, child-anchored, first step is `*`.
    Wild,
    /// Relative or `//`-anchored: floats, may cover anything.
    Complex,
}

fn root_key(xpe: &Xpe) -> RootKey {
    let first = &xpe.steps()[0];
    if !xpe.is_absolute() || first.axis == Axis::Descendant {
        RootKey::Complex
    } else {
        match &first.test {
            NodeTest::Name(n) => RootKey::Name(n.clone()),
            NodeTest::Wildcard => RootKey::Wild,
        }
    }
}

/// The subscription tree: a covering-ordered forest with super
/// pointers, generic over a per-subscription payload `T` (e.g. the set
/// of last hops in a publication routing table).
///
/// ```
/// use xdn_core::subtree::SubscriptionTree;
///
/// let mut tree = SubscriptionTree::new();
/// let wide = tree.insert("/a/*".parse()?, "client-1");
/// assert!(wide.forward());
/// let narrow = tree.insert("/a/b".parse()?, "client-2");
/// assert!(!narrow.forward()); // covered by /a/*
/// assert_eq!(tree.root_count(), 1);
/// # Ok::<(), xdn_xpath::XpeParseError>(())
/// ```
#[derive(Clone)]
pub struct SubscriptionTree<T> {
    nodes: Vec<Option<NodeData<T>>>,
    roots: Vec<NodeId>,
    root_index: HashMap<RootKey, Vec<NodeId>>,
    free: Vec<u32>,
    len: usize,
    eager_supers: bool,
}

impl<T> Default for SubscriptionTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for SubscriptionTree<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubscriptionTree")
            .field("len", &self.len)
            .field("roots", &self.roots.len())
            .finish_non_exhaustive()
    }
}

impl<T> SubscriptionTree<T> {
    /// Creates an empty tree with lazy super-pointer maintenance (the
    /// paper notes eager maintenance "becomes expensive when the
    /// subscription tree grows larger" and that updating "can be
    /// postponed").
    pub fn new() -> Self {
        SubscriptionTree {
            nodes: Vec::new(),
            roots: Vec::new(),
            root_index: HashMap::new(),
            free: Vec::new(),
            len: 0,
            eager_supers: false,
        }
    }

    /// Creates a tree that maintains super pointers eagerly on every
    /// insert — the ablation counterpart of the default lazy mode.
    pub fn with_eager_super_pointers() -> Self {
        SubscriptionTree {
            eager_supers: true,
            ..Self::new()
        }
    }

    /// Number of stored subscriptions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no subscriptions are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of top-level (uncovered) subscriptions — the effective
    /// routing-table size after covering.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// The top-level nodes.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    fn node(&self, id: NodeId) -> &NodeData<T> {
        self.nodes[id.0 as usize].as_ref().expect("stale NodeId")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut NodeData<T> {
        self.nodes[id.0 as usize].as_mut().expect("stale NodeId")
    }

    /// The expression stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was removed.
    pub fn xpe(&self, id: NodeId) -> &Xpe {
        &self.node(id).xpe
    }

    /// The payload stored at `id`.
    pub fn payload(&self, id: NodeId) -> &T {
        &self.node(id).payload
    }

    /// Mutable access to the payload at `id`.
    pub fn payload_mut(&mut self, id: NodeId) -> &mut T {
        &mut self.node_mut(id).payload
    }

    /// Children of `id` (subscriptions it covers, tree edges only).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Parent of `id`, if it is not top-level.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Super pointers of `id`: covered nodes outside its subtree
    /// (populated in eager mode, or by [`Self::refresh_super_pointers`]).
    pub fn super_pointers(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).supers
    }

    /// Iterates over every stored node.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Xpe, &T)> {
        self.nodes.iter().enumerate().filter_map(|(i, slot)| {
            slot.as_ref()
                .map(|n| (NodeId(i as u32), &n.xpe, &n.payload))
        })
    }

    /// Inserts a subscription, maintaining covering order.
    ///
    /// The insertion walks the forest breadth-wise: descending into the
    /// first covering node (Case 3 of §4.1), adopting covered siblings
    /// (Case 2), or joining the sibling list (Case 1).
    pub fn insert(&mut self, xpe: Xpe, payload: T) -> Insertion {
        let mut parent: Option<NodeId> = None;
        loop {
            // Find the first sibling covering the new subscription.
            let coverer = match parent {
                None => self.find_root_coverer(&xpe),
                Some(p) => self
                    .node(p)
                    .children
                    .iter()
                    .copied()
                    .find(|&c| covers(&self.node(c).xpe, &xpe)),
            };
            if let Some(c) = coverer {
                parent = Some(c);
                continue;
            }
            // No coverer at this level: adopt covered siblings and join.
            let covered: Vec<NodeId> = match parent {
                None => self.find_covered_roots(&xpe),
                Some(p) => self
                    .node(p)
                    .children
                    .iter()
                    .copied()
                    .filter(|&c| covers(&xpe, &self.node(c).xpe))
                    .collect(),
            };
            let id = self.alloc(NodeData {
                xpe,
                payload,
                parent,
                children: covered.clone(),
                supers: Vec::new(),
                super_parents: Vec::new(),
            });
            for &c in &covered {
                self.detach_from_parent_list(c);
                self.node_mut(c).parent = Some(id);
                // Super pointers from the demoted node's old parent that
                // now fall inside the new subtree are redundant.
            }
            match parent {
                None => {
                    self.roots.push(id);
                    let key = root_key(&self.node(id).xpe);
                    self.root_index.entry(key).or_default().push(id);
                }
                Some(p) => self.node_mut(p).children.push(id),
            }
            self.len += 1;
            if self.eager_supers {
                self.add_super_pointers_for(id);
            }
            return match parent {
                None => Insertion::NewTop {
                    id,
                    demoted: covered,
                },
                Some(_) => {
                    // The nearest covering ancestor is the insertion
                    // parent itself.
                    Insertion::CoveredBy {
                        by: parent.expect("checked"),
                        id,
                    }
                }
            };
        }
    }

    /// Removes a subscription; its children are promoted to its parent
    /// (or to the top level). Returns the payload.
    ///
    /// Promoted top-level nodes are newly uncovered: callers performing
    /// covering-based routing should forward them upstream (the reverse
    /// of the demotion performed on insert).
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn remove(&mut self, id: NodeId) -> (T, Vec<NodeId>) {
        // Drop super pointers in both directions.
        let supers = std::mem::take(&mut self.node_mut(id).supers);
        for s in supers {
            self.node_mut(s).super_parents.retain(|&p| p != id);
        }
        let super_parents = std::mem::take(&mut self.node_mut(id).super_parents);
        for p in super_parents {
            self.node_mut(p).supers.retain(|&s| s != id);
        }
        self.detach_from_parent_list(id);
        let parent = self.node(id).parent;
        let children = std::mem::take(&mut self.node_mut(id).children);
        let mut promoted = Vec::new();
        for &c in &children {
            self.node_mut(c).parent = parent;
            match parent {
                None => {
                    self.roots.push(c);
                    let key = root_key(&self.node(c).xpe);
                    self.root_index.entry(key).or_default().push(c);
                    promoted.push(c);
                }
                Some(p) => self.node_mut(p).children.push(c),
            }
        }
        let data = self.nodes[id.0 as usize].take().expect("stale NodeId");
        self.free.push(id.0);
        self.len -= 1;
        (data.payload, promoted)
    }

    /// The first top-level subscription covering `xpe`, if any. Because
    /// covering is transitive along tree edges, `xpe` is covered by
    /// *some* stored subscription iff it is covered by a top-level one.
    pub fn find_root_coverer(&self, xpe: &Xpe) -> Option<NodeId> {
        self.coverer_candidates(xpe, |id, tree| covers(&tree.node(id).xpe, xpe))
    }

    /// All top-level subscriptions covered by `xpe` — the set to
    /// unsubscribe downstream when `xpe` takes over.
    pub fn find_covered_roots(&self, xpe: &Xpe) -> Vec<NodeId> {
        let mut out = Vec::new();
        match root_key(xpe) {
            RootKey::Name(n) => {
                self.collect_covered(&RootKey::Name(n), xpe, &mut out);
            }
            RootKey::Wild => {
                let keys: Vec<RootKey> = self.root_index.keys().cloned().collect();
                for k in keys {
                    if k != RootKey::Complex {
                        self.collect_covered(&k, xpe, &mut out);
                    }
                }
            }
            RootKey::Complex => {
                let keys: Vec<RootKey> = self.root_index.keys().cloned().collect();
                for k in keys {
                    self.collect_covered(&k, xpe, &mut out);
                }
            }
        }
        out
    }

    fn collect_covered(&self, key: &RootKey, xpe: &Xpe, out: &mut Vec<NodeId>) {
        if let Some(bucket) = self.root_index.get(key) {
            out.extend(
                bucket
                    .iter()
                    .copied()
                    .filter(|&id| covers(xpe, &self.node(id).xpe)),
            );
        }
    }

    fn coverer_candidates(
        &self,
        xpe: &Xpe,
        pred: impl Fn(NodeId, &Self) -> bool,
    ) -> Option<NodeId> {
        let mut keys: Vec<RootKey> = vec![RootKey::Complex];
        match root_key(xpe) {
            RootKey::Name(n) => {
                keys.push(RootKey::Name(n));
                keys.push(RootKey::Wild);
            }
            RootKey::Wild => keys.push(RootKey::Wild),
            RootKey::Complex => {}
        }
        for key in keys {
            if let Some(bucket) = self.root_index.get(&key) {
                if let Some(hit) = bucket.iter().copied().find(|&id| pred(id, self)) {
                    return Some(hit);
                }
            }
        }
        None
    }

    fn detach_from_parent_list(&mut self, id: NodeId) {
        match self.node(id).parent {
            None => {
                self.roots.retain(|&r| r != id);
                let key = root_key(&self.node(id).xpe);
                if let Some(bucket) = self.root_index.get_mut(&key) {
                    bucket.retain(|&r| r != id);
                }
            }
            Some(p) => {
                self.node_mut(p).children.retain(|&c| c != id);
            }
        }
    }

    fn alloc(&mut self, data: NodeData<T>) -> NodeId {
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Some(data);
                NodeId(slot)
            }
            None => {
                self.nodes.push(Some(data));
                NodeId((self.nodes.len() - 1) as u32)
            }
        }
    }

    /// Visits every stored subscription matching `path`, descending
    /// only into children of matching nodes (a non-matching node covers
    /// its subtree, so the subtree cannot match).
    pub fn for_each_matching<S: AsRef<str>>(&self, path: &[S], f: impl FnMut(NodeId, &T)) {
        self.for_each_matching_with_attrs(path, &[], f);
    }

    /// [`Self::for_each_matching`] with per-element attribute data, for
    /// subscriptions using the attribute-predicate extension.
    pub fn for_each_matching_with_attrs<S: AsRef<str>>(
        &self,
        path: &[S],
        attrs: &[Vec<(String, String)>],
        mut f: impl FnMut(NodeId, &T),
    ) {
        let mut stack: Vec<NodeId> = self.roots.clone();
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if xdn_xpath::matching::matches_path_with_attrs(&node.xpe, path, attrs) {
                f(id, &node.payload);
                stack.extend(node.children.iter().copied());
            }
        }
    }

    /// Computes super pointers for `id`: the topmost stored nodes
    /// covered by `id` that are not in its subtree. Eager trees call
    /// this on every insert; lazy trees may call it on demand.
    pub fn refresh_super_pointers(&mut self, id: NodeId) {
        // Drop existing outgoing pointers.
        let old = std::mem::take(&mut self.node_mut(id).supers);
        for s in old {
            self.node_mut(s).super_parents.retain(|&p| p != id);
        }
        self.add_super_pointers_for(id);
    }

    fn add_super_pointers_for(&mut self, id: NodeId) {
        let xpe = self.node(id).xpe.clone();
        let mut found = Vec::new();
        let mut stack: Vec<NodeId> = self.roots.clone();
        while let Some(n) = stack.pop() {
            if n == id || self.is_descendant(n, id) {
                continue;
            }
            if covers(&xpe, &self.node(n).xpe) {
                found.push(n); // topmost: don't descend further
            } else {
                stack.extend(self.node(n).children.iter().copied());
            }
        }
        for &t in &found {
            self.node_mut(t).super_parents.push(id);
        }
        self.node_mut(id).supers = found;
    }

    fn is_descendant(&self, mut n: NodeId, ancestor: NodeId) -> bool {
        while let Some(p) = self.node(n).parent {
            if p == ancestor {
                return true;
            }
            n = p;
        }
        false
    }

    /// Depth of the deepest node (empty tree has depth 0).
    pub fn depth(&self) -> usize {
        fn rec<T>(tree: &SubscriptionTree<T>, id: NodeId) -> usize {
            1 + tree
                .node(id)
                .children
                .iter()
                .map(|&c| rec(tree, c))
                .max()
                .unwrap_or(0)
        }
        self.roots.iter().map(|&r| rec(self, r)).max().unwrap_or(0)
    }

    /// Verifies the structural invariants (every child covered by its
    /// parent; index consistent; parent links consistent). Used by
    /// tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = 0usize;
        for (i, slot) in self.nodes.iter().enumerate() {
            let Some(n) = slot.as_ref() else { continue };
            seen += 1;
            let id = NodeId(i as u32);
            match n.parent {
                None => {
                    if !self.roots.contains(&id) {
                        return Err(format!("{id} parentless but not a root"));
                    }
                }
                Some(p) => {
                    if !self.node(p).children.contains(&id) {
                        return Err(format!("{id} missing from parent's child list"));
                    }
                    if !covers(&self.node(p).xpe, &n.xpe) {
                        return Err(format!(
                            "parent {} does not cover child {id}",
                            self.node(p).xpe
                        ));
                    }
                }
            }
            for &c in &n.children {
                if self.node(c).parent != Some(id) {
                    return Err(format!("child {c} of {id} has wrong parent link"));
                }
            }
            for &s in &n.supers {
                if !covers(&n.xpe, &self.node(s).xpe) {
                    return Err(format!("super pointer {id} -> {s} without covering"));
                }
            }
        }
        if seen != self.len {
            return Err(format!("len {} != live nodes {seen}", self.len));
        }
        for (key, bucket) in &self.root_index {
            for &id in bucket {
                if self.node(id).parent.is_some() {
                    return Err(format!("indexed node {id} ({key:?}) is not a root"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    #[test]
    fn insert_forward_decisions() {
        let mut t = SubscriptionTree::new();
        let a = t.insert(xpe("/a/*"), 1);
        assert!(a.forward());
        let b = t.insert(xpe("/a/b"), 2);
        assert!(!b.forward());
        match b {
            Insertion::CoveredBy { by, .. } => assert_eq!(by, a.id()),
            other => panic!("expected CoveredBy, got {other:?}"),
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.root_count(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_demotes_covered_roots() {
        let mut t = SubscriptionTree::new();
        let b = t.insert(xpe("/a/b"), 1).id();
        let c = t.insert(xpe("/a/c"), 2).id();
        let top = t.insert(xpe("/a/*"), 3);
        match &top {
            Insertion::NewTop { demoted, .. } => {
                let mut d = demoted.clone();
                d.sort();
                let mut expect = vec![b, c];
                expect.sort();
                assert_eq!(d, expect);
            }
            other => panic!("expected NewTop, got {other:?}"),
        }
        assert_eq!(t.root_count(), 1);
        assert_eq!(t.children(top.id()).len(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn unrelated_siblings() {
        let mut t = SubscriptionTree::new();
        t.insert(xpe("/a/b"), 1);
        t.insert(xpe("/x/y"), 2);
        assert_eq!(t.root_count(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn deep_chain() {
        let mut t = SubscriptionTree::new();
        t.insert(xpe("/a"), 0);
        t.insert(xpe("/a/*"), 1);
        t.insert(xpe("/a/*/c"), 2);
        t.insert(xpe("/a/b/c"), 3);
        assert_eq!(t.root_count(), 1);
        assert_eq!(t.depth(), 4);
        t.check_invariants().unwrap();
    }

    #[test]
    fn relative_nodes_not_under_absolute() {
        // Property of a relative XPE node (§4.1): never inside an
        // absolute-rooted subtree.
        let mut t = SubscriptionTree::new();
        t.insert(xpe("/a"), 0);
        let r = t.insert(xpe("b/c"), 1);
        assert!(r.forward());
        assert_eq!(t.root_count(), 2);
        // But a relative node can cover absolutes.
        let cov = t.insert(xpe("c"), 2);
        match cov {
            Insertion::NewTop { ref demoted, .. } => assert!(demoted.contains(&r.id())),
            ref other => panic!("expected NewTop, got {other:?}"),
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_promotes_children() {
        let mut t = SubscriptionTree::new();
        let top = t.insert(xpe("/a/*"), 0).id();
        let c1 = t.insert(xpe("/a/b"), 1).id();
        let c2 = t.insert(xpe("/a/c"), 2).id();
        let (payload, promoted) = t.remove(top);
        assert_eq!(payload, 0);
        let mut p = promoted;
        p.sort();
        let mut expect = vec![c1, c2];
        expect.sort();
        assert_eq!(p, expect);
        assert_eq!(t.root_count(), 2);
        assert_eq!(t.len(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_mid_chain() {
        let mut t = SubscriptionTree::new();
        let a = t.insert(xpe("/a"), 0).id();
        let b = t.insert(xpe("/a/*"), 1).id();
        let c = t.insert(xpe("/a/b/c"), 2).id();
        let (_, promoted) = t.remove(b);
        assert!(
            promoted.is_empty(),
            "child promoted to grandparent, not to top"
        );
        assert_eq!(t.parent(c), Some(a));
        t.check_invariants().unwrap();
    }

    #[test]
    fn matching_descends_only_into_matches() {
        let mut t = SubscriptionTree::new();
        t.insert(xpe("/a/*"), "wide");
        t.insert(xpe("/a/b"), "ab");
        t.insert(xpe("/x"), "x");
        let mut hits = Vec::new();
        t.for_each_matching(&["a", "b"], |_, p| hits.push(*p));
        hits.sort();
        assert_eq!(hits, vec!["ab", "wide"]);
        let mut hits2 = Vec::new();
        t.for_each_matching(&["a", "c"], |_, p| hits2.push(*p));
        assert_eq!(hits2, vec!["wide"]);
    }

    #[test]
    fn eager_super_pointers() {
        let mut t = SubscriptionTree::with_eager_super_pointers();
        t.insert(xpe("/a/b"), 0);
        t.insert(xpe("/x/b"), 1);
        // `b` covers both, but the tree adopts them as children; a
        // super pointer appears when a relation crosses subtrees:
        let wide1 = t.insert(xpe("/a/*"), 2).id(); // adopts /a/b
        let rel = t.insert(xpe("b"), 3).id(); // adopts /x/b, covers /a/b via subtree of /a/*
                                              // rel covers /a/* ? no. rel covers /a/b which lives inside
                                              // /a/*'s subtree → super pointer.
        let supers = t.super_pointers(rel);
        assert_eq!(supers.len(), 1);
        assert!(covers(t.xpe(rel), t.xpe(supers[0])));
        assert_ne!(t.parent(supers[0]), Some(rel));
        let _ = wide1;
        t.check_invariants().unwrap();
    }

    #[test]
    fn lazy_supers_on_demand() {
        let mut t = SubscriptionTree::new();
        t.insert(xpe("/a/*"), 0);
        let ab = t.insert(xpe("/a/b"), 1).id();
        let rel = t.insert(xpe("b"), 2).id();
        assert!(t.super_pointers(rel).is_empty());
        t.refresh_super_pointers(rel);
        assert_eq!(t.super_pointers(rel), &[ab]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn super_pointers_cleaned_on_remove() {
        let mut t = SubscriptionTree::with_eager_super_pointers();
        t.insert(xpe("/a/*"), 0);
        let ab = t.insert(xpe("/a/b"), 1).id();
        let rel = t.insert(xpe("b"), 2).id();
        assert_eq!(t.super_pointers(rel), &[ab]);
        t.remove(ab);
        assert!(t.super_pointers(rel).is_empty());
        t.check_invariants().unwrap();
        t.remove(rel);
        t.check_invariants().unwrap();
    }

    #[test]
    fn payload_access() {
        let mut t = SubscriptionTree::new();
        let id = t.insert(xpe("/a"), vec![1]).id();
        t.payload_mut(id).push(2);
        assert_eq!(t.payload(id), &vec![1, 2]);
        assert_eq!(t.xpe(id), &xpe("/a"));
    }

    #[test]
    fn iter_visits_all() {
        let mut t = SubscriptionTree::new();
        t.insert(xpe("/a"), 1);
        t.insert(xpe("/a/b"), 2);
        t.insert(xpe("/z"), 3);
        let mut payloads: Vec<i32> = t.iter().map(|(_, _, p)| *p).collect();
        payloads.sort();
        assert_eq!(payloads, vec![1, 2, 3]);
    }

    #[test]
    fn slot_reuse_after_remove() {
        let mut t = SubscriptionTree::new();
        let a = t.insert(xpe("/a"), 1).id();
        t.remove(a);
        let b = t.insert(xpe("/b"), 2).id();
        assert_eq!(a, b, "freed slot is reused");
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "stale NodeId")]
    fn stale_id_detected() {
        let mut t = SubscriptionTree::new();
        let a = t.insert(xpe("/a"), 1).id();
        t.remove(a);
        let _ = t.xpe(a);
    }

    #[test]
    fn equal_xpes_nest() {
        let mut t = SubscriptionTree::new();
        let a = t.insert(xpe("/a/b"), 1);
        let b = t.insert(xpe("/a/b"), 2);
        assert!(a.forward());
        assert!(
            !b.forward(),
            "an equal subscription is mutually covering; not reforwarded"
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn large_insert_stays_consistent() {
        let mut t = SubscriptionTree::new();
        let names = ["a", "b", "c", "d"];
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    let s = format!("/{}/{}/{}", names[i], names[j], names[k]);
                    t.insert(xpe(&s), (i, j, k));
                }
            }
            t.insert(xpe(&format!("/{}/*", names[i])), (i, 9, 9));
        }
        t.insert(xpe("/*"), (9, 9, 9));
        assert_eq!(t.root_count(), 1);
        assert_eq!(t.len(), 4 * 4 * 4 + 4 + 1);
        t.check_invariants().unwrap();
    }
}
