//! Covering (containment) of XPath expressions (§4.2).
//!
//! Subscription `s1` *covers* `s2` iff `P(s1) ⊇ P(s2)` — every
//! publication matching `s2` also matches `s1`. Covering lets a broker
//! drop covered subscriptions from downstream routing tables without
//! changing delivery.
//!
//! Containment for the full `/`, `//`, `*` fragment is coNP-complete
//! (Miklau & Suciu), so like the paper this module implements *sound*
//! PTIME rules: [`covers`] never returns `true` unless containment
//! provably holds (soundness is what correctness of covering-based
//! routing requires — a false `true` would drop live subscriptions),
//! and it is complete on the simple sub-fragments the paper analyses.
//!
//! Algorithms: `AbsSimCov` ([`abs_sim_cov`]) for two absolute simple
//! XPEs, `RelSimCov` ([`rel_sim_cov`], with the KMP-style shift
//! optimization of §4.2) for a relative simple coverer, and `DesCov`
//! ([`des_cov`]) for expressions containing descendant operators,
//! including the paper's trailing-wildcard special case.

use crate::advmatch::overlap_borders;
use xdn_xpath::{Axis, Step, Xpe};

/// True if `s1` covers `s2` (`P(s1) ⊇ P(s2)`).
///
/// Dispatches to the specialised algorithms below. Sound for the whole
/// fragment; complete for simple expressions.
///
/// ```
/// use xdn_core::cover::covers;
/// let wide: xdn_xpath::Xpe = "/a/*".parse().unwrap();
/// let narrow: xdn_xpath::Xpe = "/a/b/c".parse().unwrap();
/// assert!(covers(&wide, &narrow));
/// ```
pub fn covers(s1: &Xpe, s2: &Xpe) -> bool {
    if s1.is_simple() && s2.is_simple() {
        match (s1.is_absolute(), s2.is_absolute()) {
            (true, true) => abs_sim_cov(s1, s2),
            // An absolute XPE refers to a strictly smaller matching set
            // than any relative XPE with comparable structure (§4.2).
            (true, false) => false,
            (false, _) => rel_sim_cov(s1, s2),
        }
    } else {
        des_cov(s1, s2)
    }
}

/// `AbsSimCov` (§4.2): covering between two absolute simple XPEs.
///
/// `s1` covers `s2` iff `s1` is no longer than `s2` (a shorter XPE
/// constrains fewer positions, hence matches a superset) and each of
/// `s1`'s positions covers the aligned position of `s2`.
pub fn abs_sim_cov(s1: &Xpe, s2: &Xpe) -> bool {
    debug_assert!(s1.is_absolute() && s1.is_simple());
    debug_assert!(s2.is_absolute() && s2.is_simple());
    s1.len() <= s2.len() && s1.steps().iter().zip(s2.steps()).all(|(a, b)| a.covers(b))
}

/// Naive `RelSimCov` (§4.2): a relative simple `s1` covers `s2`
/// (absolute or relative, simple) iff `s1` embeds position-wise at some
/// offset of `s2`. `O(k·n)` reference implementation.
pub fn rel_sim_cov_naive(s1: &Xpe, s2: &Xpe) -> bool {
    debug_assert!(!s1.is_absolute() && s1.is_simple() && s2.is_simple());
    let pat = s1.steps();
    let text = s2.steps();
    if pat.len() > text.len() {
        return false;
    }
    (0..=text.len() - pat.len()).any(|o| pat.iter().zip(&text[o..]).all(|(a, b)| a.covers(b)))
}

/// Optimized `RelSimCov` (§4.2): the same decision with the KMP-style
/// shift rule. The shift is computed from the pattern's overlap borders
/// (two tests are shift-compatible iff some concrete test satisfies
/// both), which provably skips only impossible alignments; the carried
/// prefix is re-verified because wildcards under-constrain the skipped
/// window. Equivalence with [`rel_sim_cov_naive`] is property-tested.
pub fn rel_sim_cov(s1: &Xpe, s2: &Xpe) -> bool {
    debug_assert!(!s1.is_absolute() && s1.is_simple() && s2.is_simple());
    let pat = s1.steps();
    let text = s2.steps();
    let k = pat.len();
    let n = text.len();
    if k > n {
        return false;
    }
    let borders = overlap_borders(pat);
    let mut o = 0usize;
    let mut j = 0usize;
    while o + k <= n {
        while j < k && pat[j].covers(&text[o + j]) {
            j += 1;
        }
        if j == k {
            return true;
        }
        if j == 0 {
            o += 1;
        } else {
            o += j - borders[j];
            j = 0;
        }
    }
    false
}

/// `DesCov` (§4.2): covering when either expression may contain `//`.
///
/// Both XPEs are split at descendant operators into child-connected
/// fragments. `s1` covers `s2` when each fragment of `s1` can be
/// justified against `s2`'s fragments, in order, by one of two rules:
///
/// 1. **Window rule** — the fragment covers a contiguous window inside
///    a single fragment of `s2` (every path matching `s2` carries the
///    window's elements contiguously, and `//` between `s1` fragments
///    only requires the next placement not to precede the previous
///    one).
/// 2. **Trailing-wildcard rule** (the paper's special case, e.g.
///    `/a/*//*/d` covers `/a//b/c/d`) — a fragment `g/*…*` whose tail
///    is `k` wildcards may place `g` flush against the end of an `s2`
///    fragment and let the wildcards consume the following elements;
///    those `k` elements are only guaranteed to exist inside later
///    `s2` fragments (gaps may be empty), so a *pending* count is
///    carried forward and must be paid from guaranteed positions
///    before — or after, for the final fragment — the next placement.
///
/// The search backtracks over placements, so the rules are applied
/// exhaustively; the result is sound (each rule is containment-
/// preserving) and complete on the paper's examples.
pub fn des_cov(s1: &Xpe, s2: &Xpe) -> bool {
    let anchored1 = s1.is_absolute() && s1.steps()[0].axis == Axis::Child;
    let anchored2 = s2.is_absolute() && s2.steps()[0].axis == Axis::Child;
    if anchored1 && !anchored2 {
        // A root-anchored coverer cannot cover a floating coveree.
        return false;
    }
    let f1 = s1.fragments();
    let f2 = s2.fragments();
    place(&f1, 0, &f2, 0, 0, 0, anchored1)
}

/// Recursive placement search. State: next `s1` fragment index `i`,
/// current `s2` fragment `j`, next free offset `pos` within it, and
/// `pending` wildcard positions still owed.
fn place(
    f1: &[&[Step]],
    i: usize,
    f2: &[&[Step]],
    j: usize,
    pos: usize,
    pending: usize,
    anchor_first: bool,
) -> bool {
    if i == f1.len() {
        // All fragments placed; pending wildcards must be payable from
        // guaranteed later positions (gaps may be empty and the path
        // may end at s2's last matched element).
        return pending <= guaranteed_from(f2, j, pos);
    }
    let frag = f1[i];
    let (gpart, wilds) = split_trailing_wildcards(frag);
    // Enumerate candidate s2 fragments.
    for jj in j..f2.len() {
        let start_pos = if jj == j { pos } else { 0 };
        // Guaranteed elements strictly between the current point and
        // the start of fragment jj.
        let before_jj = guaranteed_between(f2, j, pos, jj);
        let flen = f2[jj].len();

        // Rule 1: whole fragment inside f2[jj].
        if frag.len() <= flen {
            for p in start_pos..=flen - frag.len() {
                if anchor_first && i == 0 && (jj != 0 || p != 0) {
                    break;
                }
                // Pay pending from guaranteed positions before p.
                if before_jj + (p - start_pos) < pending_due(jj == j, pending, p, start_pos) {
                    continue;
                }
                if window_covers(frag, f2[jj], p)
                    && place(f1, i + 1, f2, jj, p + frag.len(), 0, anchor_first)
                {
                    return true;
                }
            }
        }

        // Rule 2: trailing wildcards absorbed past the fragment end.
        if wilds > 0 && jj < f2.len() && gpart.len() <= flen {
            let p = flen - gpart.len();
            let p_ok = p >= start_pos
                && before_jj + (p - start_pos) >= pending_due(jj == j, pending, p, start_pos);
            let anchor_ok = !(anchor_first && i == 0) || (jj == 0 && p == 0);
            if p_ok
                && anchor_ok
                && window_covers(gpart, f2[jj], p)
                && place(f1, i + 1, f2, jj + 1, 0, wilds, anchor_first)
            {
                return true;
            }
        }

        if anchor_first && i == 0 {
            // The anchored first fragment may only sit at the very
            // start; no later candidates.
            break;
        }
    }
    false
}

fn pending_due(same_fragment: bool, pending: usize, _p: usize, _start: usize) -> usize {
    // Pending wildcards owed before the next placement; independent of
    // the placement offset (the offset itself supplies positions, which
    // the caller accounts for via `before_jj + (p - start_pos)`).
    let _ = same_fragment;
    pending
}

/// `s1` fragment window covers `f2[jj][p ..]` position-wise.
fn window_covers(frag: &[Step], target: &[Step], p: usize) -> bool {
    if p + frag.len() > target.len() {
        return false;
    }
    frag.iter().zip(&target[p..]).all(|(a, b)| a.covers(b))
}

/// Splits a fragment into its head and the count of trailing wildcards.
fn split_trailing_wildcards(frag: &[Step]) -> (&[Step], usize) {
    let mut k = 0;
    // A wildcard with predicates still constrains the element, so it
    // cannot be absorbed into a descendant gap.
    while k < frag.len()
        && frag[frag.len() - 1 - k].test.is_wildcard()
        && frag[frag.len() - 1 - k].predicates.is_empty()
    {
        k += 1;
    }
    (&frag[..frag.len() - k], k)
}

/// Guaranteed path elements from state `(j, pos)` to the end of `s2`'s
/// fragments (gaps contribute nothing in the worst case).
fn guaranteed_from(f2: &[&[Step]], j: usize, pos: usize) -> usize {
    if j >= f2.len() {
        return 0;
    }
    (f2[j].len() - pos.min(f2[j].len())) + f2[j + 1..].iter().map(|f| f.len()).sum::<usize>()
}

/// Guaranteed elements strictly between state `(j, pos)` and the start
/// of fragment `jj` (0 when `jj == j`).
fn guaranteed_between(f2: &[&[Step]], j: usize, pos: usize, jj: usize) -> usize {
    if jj == j {
        return 0;
    }
    (f2[j].len() - pos.min(f2[j].len())) + f2[j + 1..jj].iter().map(|f| f.len()).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    fn c(a: &str, b: &str) -> bool {
        covers(&xpe(a), &xpe(b))
    }

    #[test]
    fn abs_sim_basic() {
        assert!(c("/a", "/a/b"));
        assert!(c("/a/*", "/a/b"));
        assert!(c("/a/b", "/a/b"));
        assert!(!c("/a/b", "/a"));
        assert!(!c("/a/b", "/a/c"));
        assert!(!c("/a/b/c", "/a/b")); // longer cannot cover shorter
        assert!(!c("/a/b", "/a/*")); // name cannot cover wildcard
    }

    #[test]
    fn absolute_cannot_cover_relative() {
        assert!(!c("/a", "a"));
        assert!(!c("/a/b", "a/b"));
    }

    #[test]
    fn relative_covers_absolute_and_relative() {
        assert!(c("b", "/a/b"));
        assert!(c("b/c", "/a/b/c"));
        assert!(c("b/c", "a/b/c/d"));
        assert!(c("*", "/a"));
        assert!(!c("b/c", "/a/c/b"));
        assert!(!c("b/c/d", "b/c"));
    }

    #[test]
    fn rel_naive_and_kmp_agree_on_wildcards() {
        let cases = [
            ("*/a", "/x/a/y"),
            ("*/a", "/a/x"),
            ("a/*", "/a/b"),
            ("a/*/a", "/a/b/a"),
            ("*/*", "/a/b"),
            ("a/b", "/a/*"),
            ("a/a", "/x/a/a/y"),
        ];
        for (a, b) in cases {
            let (s1, s2) = (xpe(a), xpe(b));
            assert_eq!(
                rel_sim_cov_naive(&s1, &s2),
                rel_sim_cov(&s1, &s2),
                "disagree on {a} vs {b}"
            );
        }
    }

    #[test]
    fn wildcard_in_coveree_needs_wildcard_coverer() {
        // s2 = /a/* matches paths /a/<anything>; s1 = a/b only matches
        // paths with a literal b.
        assert!(!c("a/b", "/a/*"));
        assert!(c("a/*", "/a/*"));
        assert!(c("*", "/a/*"));
    }

    #[test]
    fn des_cov_paper_example_positive() {
        // §4.2: s1 = /*/a//*/c covers s2 = /a/a/*//c/e/c/d.
        assert!(c("/*/a//*/c", "/a/a/*//c/e/c/d"));
    }

    #[test]
    fn des_cov_paper_example_negative() {
        // §4.2: */c does not cover *//c, so s1 fails against s2.
        assert!(!c("/*/a//*/c", "/a/a/*//c/b/d"));
    }

    #[test]
    fn des_cov_trailing_wildcard_special_case() {
        // §4.2: s1 = /a/*//*/d covers s2 = /a//b/c/d via the trailing
        // wildcard crossing the // boundary.
        assert!(c("/a/*//*/d", "/a//b/c/d"));
    }

    #[test]
    fn des_cov_simple_vs_descendant() {
        assert!(c("/a", "/a//b"));
        assert!(!c("/a/b", "/a//b")); // path a/x/b breaks it
        assert!(c("/a//b", "/a/b")); // descendant includes child
        assert!(c("/a//c", "/a/b/c"));
        // /a/c/b paths carry c at depth 2, which satisfies //c.
        assert!(c("/a//c", "/a/c/b"));
        // But /a//c/b genuinely requires b directly under a deep c.
        assert!(!c("/a//c/b", "/a/b/c"));
    }

    #[test]
    fn des_cov_descendant_both() {
        assert!(c("/a//c", "/a//b//c"));
        assert!(c("//c", "/a/b/c"));
        assert!(c("//c", "a//c"));
        assert!(!c("/a//b//c", "/a//c"));
    }

    #[test]
    fn des_cov_relative() {
        assert!(c("b//d", "/a/b/c/d"));
        assert!(c("b//d", "/a/b//d"));
        assert!(!c("b//d", "/a/d//b"));
    }

    #[test]
    fn des_cov_wildcard_gap_needs_guaranteed_elements() {
        // s1 = a/*/*/d needs two concrete elements between a and d;
        // s2 = /a//d guarantees none.
        assert!(!c("a/*/*//d", "/a//d"));
        // But /a//b/c/d guarantees b and c.
        assert!(c("a/*/*//d", "/a//b/c/d"));
    }

    #[test]
    fn reflexive_on_descendant_expressions() {
        for s in ["/a//b", "a//b/c", "//x/*", "/a/*//*/d"] {
            assert!(c(s, s), "{s} must cover itself");
        }
    }

    #[test]
    fn covering_soundness_spot_checks() {
        // For each claimed covering, every sampled path matching s2
        // must match s1.
        let claims = [
            ("/*/a//*/c", "/a/a/*//c/e/c/d"),
            ("/a/*//*/d", "/a//b/c/d"),
            ("b//d", "/a/b/c/d"),
            ("//c", "/a/b/c"),
        ];
        let paths: Vec<Vec<&str>> = vec![
            vec!["a", "a", "x", "c", "e", "c", "d"],
            vec!["a", "a", "x", "q", "c", "e", "c", "d"],
            vec!["a", "b", "c", "d"],
            vec!["a", "x", "b", "c", "d"],
            vec!["a", "b", "c", "d", "e"],
        ];
        for (a, b) in claims {
            let (s1, s2) = (xpe(a), xpe(b));
            assert!(covers(&s1, &s2));
            for p in &paths {
                if s2.matches_path(p) {
                    assert!(
                        s1.matches_path(p),
                        "{a} claimed to cover {b} but misses path {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn transitivity_spot_checks() {
        let (a, b, c_) = (xpe("/a"), xpe("/a/*"), xpe("/a/b/c"));
        assert!(covers(&a, &b) && covers(&b, &c_) && covers(&a, &c_));
    }
}
