//! Advertisement–subscription overlap (§3.2, §3.3).
//!
//! A broker forwards a subscription toward the publisher of an
//! advertisement `a` iff their publication sets intersect:
//! `P(a) ∩ P(s) ≠ ∅`. Because an advertisement has the same length as
//! the publications it advertises, and a subscription matches a
//! publication by embedding into a prefix-extendable window of the
//! path, the intersection test reduces to positional *overlap* checks
//! (Figure 2(b)): two node tests overlap unless both are distinct
//! names.
//!
//! Soundness note: a false positive here merely forwards a subscription
//! one hop too far (wasted traffic); a false negative breaks delivery.
//! Every algorithm in this module is exact except where explicitly
//! documented.

use crate::adv::{AdvPath, Advertisement};
use xdn_xpath::{Axis, NodeTest, Step, Xpe};

/// `AbsExprAndAdv` (§3.2): overlap of an *absolute simple* XPE (only
/// `/` and `*`) with a non-recursive advertisement.
///
/// The subscription constrains a prefix of every matching publication,
/// so it overlaps the advertisement iff it is no longer than the
/// advertisement and every aligned pair of positions overlaps.
///
/// ```
/// use xdn_core::adv::AdvPath;
/// use xdn_core::advmatch::abs_expr_and_adv;
///
/// // The paper's example: a = /b/*/*/c/c/d, s = /*/c/*/b/c — no
/// // overlap because position 5 pits `c` against `b`.
/// let a = AdvPath::from_names(&["b", "*", "*", "c", "c", "d"]);
/// let s: xdn_xpath::Xpe = "/*/c/*/b/c".parse().unwrap();
/// assert!(!abs_expr_and_adv(&a, &s));
/// ```
pub fn abs_expr_and_adv(adv: &AdvPath, sub: &Xpe) -> bool {
    debug_assert!(sub.is_absolute() && sub.is_simple());
    let steps = sub.steps();
    steps.len() <= adv.len()
        && steps
            .iter()
            .zip(adv.positions())
            .all(|(s, a)| s.test.overlaps(a))
}

/// Naive `RelExprAndAdv` (§3.2): overlap of a *relative simple* XPE
/// with a non-recursive advertisement, trying every alignment.
/// `O(n·k)`; the reference implementation for the optimized variant.
pub fn rel_expr_and_adv_naive(adv: &AdvPath, sub: &Xpe) -> bool {
    debug_assert!(!sub.is_absolute() && sub.is_simple());
    let pattern = sub.steps();
    let text = adv.positions();
    if pattern.len() > text.len() {
        return false;
    }
    (0..=text.len() - pattern.len()).any(|o| {
        pattern
            .iter()
            .zip(&text[o..])
            .all(|(s, a)| s.test.overlaps(a))
    })
}

/// Optimized `RelExprAndAdv` (§3.2): the KMP-style variant.
///
/// The paper observes this is a string-matching problem and applies KMP
/// to reduce comparisons. Plain KMP is unsound when the *text* (the
/// advertisement) contains wildcards — a text wildcard matches the
/// pattern during the scan but carries no information for the shift
/// rule — so this implementation uses the KMP shift computed from the
/// pattern's *overlap borders* when the advertisement is wildcard-free
/// (the case for every DTD-derived advertisement) and falls back to the
/// naive scan otherwise. Agreement with [`rel_expr_and_adv_naive`] is
/// enforced by property tests.
pub fn rel_expr_and_adv(adv: &AdvPath, sub: &Xpe) -> bool {
    if adv.positions().iter().any(NodeTest::is_wildcard) {
        return rel_expr_and_adv_naive(adv, sub);
    }
    debug_assert!(!sub.is_absolute() && sub.is_simple());
    let pattern = sub.steps();
    let text = adv.positions();
    let k = pattern.len();
    let n = text.len();
    if k > n {
        return false;
    }
    let borders = overlap_borders(pattern);
    let mut o = 0usize; // current alignment
    let mut j = 0usize; // matched length at this alignment
    while o + k <= n {
        while j < k && pattern[j].test.overlaps(&text[o + j]) {
            j += 1;
        }
        if j == k {
            return true;
        }
        if j == 0 {
            o += 1;
        } else {
            // Skip alignments that cannot match: alignment o+d is
            // viable only if d is an overlap-period of pattern[..j].
            let shift = j - borders[j];
            o += shift;
            // Re-verify the carried prefix: pattern wildcards in the
            // matched window under-constrain the text, so unlike exact
            // KMP the carried prefix cannot be assumed matched.
            j = 0;
        }
    }
    false
}

/// `borders[j]` = length of the longest proper prefix of `pattern[..j]`
/// that position-wise *overlaps* the suffix of `pattern[..j]`. This is
/// the conservative analogue of the KMP failure function: an alignment
/// shift `d = j - borders[j]` provably skips only alignments that
/// cannot match a wildcard-free text.
pub(crate) fn overlap_borders(pattern: &[Step]) -> Vec<usize> {
    let k = pattern.len();
    let mut borders = vec![0usize; k + 1];
    for j in 2..=k {
        // Longest b < j with pattern[i] ~ pattern[j-b+i] for all i < b.
        borders[j] = (1..j)
            .rev()
            .find(|&b| (0..b).all(|i| pattern[i].test.overlaps(&pattern[j - b + i].test)))
            .unwrap_or(0);
    }
    borders
}

/// `DesExprAndAdv` (§3.2): overlap of an XPE containing descendant
/// (`//`) operators with a non-recursive advertisement.
///
/// The XPE is split into maximal `//`-free fragments; each fragment is
/// placed greedily at its earliest overlapping window of the
/// advertisement. Greedy placement is exact because each advertisement
/// position is constrained by at most one fragment position, so
/// feasibility is position-independent.
pub fn des_expr_and_adv(adv: &AdvPath, sub: &Xpe) -> bool {
    let text = adv.positions();
    let fragments = sub.fragments();
    let anchored = sub.is_absolute() && sub.steps()[0].axis == Axis::Child;
    let mut pos = 0usize;
    for (i, frag) in fragments.iter().enumerate() {
        if i == 0 && anchored {
            if !window_overlaps(frag, text, 0) {
                return false;
            }
            pos = frag.len();
        } else {
            match (pos..=text.len().saturating_sub(frag.len()))
                .find(|&start| window_overlaps(frag, text, start))
            {
                Some(start) => pos = start + frag.len(),
                None => return false,
            }
        }
        if pos > text.len() {
            return false;
        }
    }
    true
}

fn window_overlaps(frag: &[Step], text: &[NodeTest], at: usize) -> bool {
    at + frag.len() <= text.len()
        && frag
            .iter()
            .zip(&text[at..])
            .all(|(s, t)| s.test.overlaps(t))
}

/// `AbsExprAndSimRecAdv` (Figure 3): overlap of an absolute simple XPE
/// with a simple-recursive advertisement `a = a1(a2)+a3`.
///
/// Follows the paper's algorithm: if the subscription fits within
/// `a1 a2` it is checked directly; otherwise the number of repetitions
/// needed to reach the subscription's length is bounded (`q..=p`) and
/// each candidate expansion is checked.
///
/// # Panics
///
/// Panics if `a2` is empty (a repetition must contribute positions).
pub fn abs_expr_and_sim_rec_adv(a1: &AdvPath, a2: &AdvPath, a3: &AdvPath, sub: &Xpe) -> bool {
    assert!(!a2.is_empty(), "recursive pattern must be non-empty");
    debug_assert!(sub.is_absolute() && sub.is_simple());
    let s = sub.len();
    let l12 = a1.len() + a2.len();
    // Line 1: subscription within the first iteration.
    if s <= l12 {
        let prefix = concat(&[a1, a2]);
        return abs_expr_and_adv(&prefix, sub);
    }
    // Lines 2-3: the prefix a1 a2 must overlap the subscription's head.
    let prefix = concat(&[a1, a2]);
    if !prefix_overlaps(&prefix, sub, 0, l12) {
        return false;
    }
    // Lines 4-6: bound the repetition count.
    let l123 = l12 + a3.len();
    let q = if s <= l123 {
        0
    } else {
        (s - l123) / a2.len() + 1
    };
    let p = (s - l12) / a2.len();
    // Lines 7-12: try each repetition count; with c extra repetitions
    // the tail of the subscription beyond a1 a2 a2^c must overlap a3
    // (success) or another copy of a2 (continue).
    for c in q..=p {
        let offset = c * a2.len() + l12;
        if tail_overlaps(a3, sub, offset) {
            return true;
        }
        let end = if c == p { s } else { offset + a2.len() };
        if !segment_overlaps(a2, sub, offset, end) {
            return false;
        }
    }
    true
}

/// Overlap of `sub[from..to]` against `adv` positions `0..(to-from)`.
fn segment_overlaps(adv: &AdvPath, sub: &Xpe, from: usize, to: usize) -> bool {
    let steps = &sub.steps()[from..to.min(sub.len())];
    steps.len() <= adv.len()
        && steps
            .iter()
            .zip(adv.positions())
            .all(|(s, a)| s.test.overlaps(a))
}

/// Overlap of the subscription tail starting at `from` against `adv`
/// (tail must fit within `adv`).
fn tail_overlaps(adv: &AdvPath, sub: &Xpe, from: usize) -> bool {
    if from > sub.len() {
        return false;
    }
    segment_overlaps(adv, sub, from, sub.len())
}

fn prefix_overlaps(adv: &AdvPath, sub: &Xpe, from: usize, to: usize) -> bool {
    segment_overlaps(adv, sub, from, to)
}

fn concat(parts: &[&AdvPath]) -> AdvPath {
    let mut v = Vec::new();
    for p in parts {
        v.extend(p.positions().iter().cloned());
    }
    AdvPath::new(v)
}

/// General advertisement–subscription overlap: dispatches on the
/// subscription's shape and the advertisement's kind.
///
/// Non-recursive advertisements use the §3.2 algorithms directly.
/// Recursive advertisements (simple, series, or embedded) are handled
/// by bounded expansion: a subscription of length `k` overlaps the
/// advertisement iff it overlaps some expansion in which each
/// repetition is unrolled at most `2k + 2` times (a pumping argument —
/// a match embeds into at most `k` positions, so each repetition has at
/// most `2k + 1` iterations touched by fragment windows and the rest
/// can be removed).
///
/// ```
/// use xdn_core::adv::Advertisement;
/// use xdn_core::advmatch::adv_overlaps_sub;
///
/// let a = Advertisement::parse("/news/section(/section)+/article").unwrap();
/// let s: xdn_xpath::Xpe = "/news//article".parse().unwrap();
/// assert!(adv_overlaps_sub(&a, &s));
/// ```
pub fn adv_overlaps_sub(adv: &Advertisement, sub: &Xpe) -> bool {
    if let Some(path) = adv.as_non_recursive() {
        return nonrec_overlaps(path, sub);
    }
    let k = sub.len();
    let max_reps = 2 * k + 2;
    // Expansions longer than the subscription can still overlap
    // (absolute subscriptions constrain only a prefix), but positions
    // beyond `k + period` never interact with the subscription, so the
    // length cap below loses nothing.
    let longest_period = adv
        .segments()
        .iter()
        .map(crate::adv::AdvSegment::min_len)
        .max()
        .unwrap_or(1);
    let max_len = adv.min_len() + k + longest_period + 1;
    adv.expansions(max_reps, max_len)
        .iter()
        .any(|exp| nonrec_overlaps(exp, sub))
}

/// An advertisement prepared for repeated overlap tests: recursive
/// repetitions are expanded once, up to a maximum subscription length,
/// instead of on every [`adv_overlaps_sub`] call.
///
/// A router stores each advertisement for the lifetime of its producer
/// and matches every passing subscription against it, so the one-time
/// expansion (bounded by the same pumping argument as
/// [`adv_overlaps_sub`]) amortizes to a ~100× speedup on recursive
/// advertisement sets. Subscriptions longer than the prepared bound
/// fall back to the exact dynamic algorithm.
///
/// ```
/// use xdn_core::adv::Advertisement;
/// use xdn_core::advmatch::{adv_overlaps_sub, PreparedAdv};
///
/// let adv = Advertisement::parse("/news/section(/section)+/article").unwrap();
/// let prepared = PreparedAdv::new(adv.clone(), 16);
/// let sub: xdn_xpath::Xpe = "/news//article".parse().unwrap();
/// assert_eq!(prepared.overlaps(&sub), adv_overlaps_sub(&adv, &sub));
/// ```
#[derive(Debug, Clone)]
pub struct PreparedAdv {
    adv: Advertisement,
    /// `None` for non-recursive advertisements (matched directly).
    expansions: Option<Vec<AdvPath>>,
    max_sub_len: usize,
}

impl PreparedAdv {
    /// Prepares `adv` for subscriptions up to `max_sub_len` steps.
    pub fn new(adv: Advertisement, max_sub_len: usize) -> Self {
        let expansions = if adv.as_non_recursive().is_some() {
            None
        } else {
            let k = max_sub_len;
            let longest_period = adv
                .segments()
                .iter()
                .map(crate::adv::AdvSegment::min_len)
                .max()
                .unwrap_or(1);
            Some(adv.expansions(2 * k + 2, adv.min_len() + k + longest_period + 1))
        };
        PreparedAdv {
            adv,
            expansions,
            max_sub_len,
        }
    }

    /// The underlying advertisement.
    pub fn adv(&self) -> &Advertisement {
        &self.adv
    }

    /// Exact overlap test, using the precomputed expansions when the
    /// subscription fits the prepared bound.
    pub fn overlaps(&self, sub: &Xpe) -> bool {
        if sub.len() > self.max_sub_len {
            return adv_overlaps_sub(&self.adv, sub);
        }
        match &self.expansions {
            None => nonrec_overlaps(
                self.adv
                    .as_non_recursive()
                    .expect("non-recursive by construction"),
                sub,
            ),
            Some(exps) => exps.iter().any(|e| nonrec_overlaps(e, sub)),
        }
    }
}

fn nonrec_overlaps(path: &AdvPath, sub: &Xpe) -> bool {
    if sub.is_simple() {
        if sub.is_absolute() {
            abs_expr_and_adv(path, sub)
        } else {
            rel_expr_and_adv(path, sub)
        }
    } else {
        des_expr_and_adv(path, sub)
    }
}

/// Covering between non-recursive advertisements: `a1` covers `a2`
/// when every publication advertised by `a2` is advertised by `a1`.
/// Because `P(a)` contains only paths of exactly `a`'s length, this
/// requires equal lengths and position-wise covering — stricter than
/// subscription covering (§4.2 note).
pub fn adv_covers(a1: &AdvPath, a2: &AdvPath) -> bool {
    a1.len() == a2.len()
        && a1
            .positions()
            .iter()
            .zip(a2.positions())
            .all(|(x, y)| x.covers(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    fn path(names: &[&str]) -> AdvPath {
        AdvPath::from_names(names)
    }

    #[test]
    fn abs_overlap_basic() {
        let a = path(&["a", "b", "c"]);
        assert!(abs_expr_and_adv(&a, &xpe("/a/b")));
        assert!(abs_expr_and_adv(&a, &xpe("/a/*/c")));
        assert!(!abs_expr_and_adv(&a, &xpe("/a/c")));
        assert!(!abs_expr_and_adv(&a, &xpe("/a/b/c/d"))); // longer than adv
    }

    #[test]
    fn abs_overlap_paper_example() {
        // §3.2: a = /b/*/*/c/c/d, s = /*/c/*/b/c fails at i = 4
        // (advertisement c vs subscription b).
        let a = path(&["b", "*", "*", "c", "c", "d"]);
        assert!(!abs_expr_and_adv(&a, &xpe("/*/c/*/b/c")));
        // Fixing position 4 makes it overlap.
        assert!(abs_expr_and_adv(&a, &xpe("/*/c/*/c/c")));
    }

    #[test]
    fn abs_overlap_wildcard_adv() {
        let a = path(&["*", "*"]);
        assert!(abs_expr_and_adv(&a, &xpe("/x/y")));
    }

    #[test]
    fn rel_overlap_naive() {
        let a = path(&["a", "b", "c", "d"]);
        assert!(rel_expr_and_adv_naive(&a, &xpe("b/c")));
        assert!(rel_expr_and_adv_naive(&a, &xpe("c/d")));
        assert!(!rel_expr_and_adv_naive(&a, &xpe("b/d")));
        assert!(!rel_expr_and_adv_naive(&a, &xpe("a/b/c/d/e")));
    }

    #[test]
    fn rel_kmp_agrees_on_tricky_cases() {
        // The alignment KMP-with-equality would skip: pattern wildcards.
        let a = path(&["x", "a", "a", "b"]);
        let s = xpe("*/a/b");
        assert!(rel_expr_and_adv_naive(&a, &s));
        assert!(rel_expr_and_adv(&a, &s));

        // Text wildcards force the naive fallback.
        let a2 = path(&["a", "*", "b", "c"]);
        let s2 = xpe("a/b/c");
        assert!(rel_expr_and_adv_naive(&a2, &s2));
        assert!(rel_expr_and_adv(&a2, &s2));
    }

    #[test]
    fn rel_kmp_negative() {
        let a = path(&["a", "b", "a", "b", "a"]);
        assert!(!rel_expr_and_adv(&a, &xpe("a/b/c")));
        assert!(!rel_expr_and_adv_naive(&a, &xpe("a/b/c")));
    }

    #[test]
    fn overlap_borders_wildcard_aware() {
        // pattern */a : border of length-2 prefix is 1 because `*`
        // overlaps `a`.
        let s = xpe("*/a");
        let b = overlap_borders(s.steps());
        assert_eq!(b[2], 1);
        let s2 = xpe("a/b");
        let b2 = overlap_borders(s2.steps());
        assert_eq!(b2[2], 0);
    }

    #[test]
    fn des_overlap_paper_example() {
        // §3.2: a = /a/*/e/*/d/*/c/b, s = */a//d/*/c//b returns 1.
        let a = path(&["a", "*", "e", "*", "d", "*", "c", "b"]);
        assert!(des_expr_and_adv(&a, &xpe("*/a//d/*/c//b")));
    }

    #[test]
    fn des_overlap_anchoring() {
        let a = path(&["a", "b", "c"]);
        assert!(des_expr_and_adv(&a, &xpe("/a//c")));
        assert!(!des_expr_and_adv(&a, &xpe("/b//c"))); // anchored at root
        assert!(des_expr_and_adv(&a, &xpe("//b/c")));
        // Descendant includes child: /a//b//c embeds into a/b/c.
        assert!(des_expr_and_adv(&a, &xpe("/a//b//c")));
        assert!(!des_expr_and_adv(&a, &xpe("/a//c//b")));
    }

    #[test]
    fn des_overlap_order_matters() {
        let a = path(&["a", "c", "b"]);
        assert!(!des_expr_and_adv(&a, &xpe("/a//b/c")));
        assert!(des_expr_and_adv(&a, &xpe("/a//c/b")));
    }

    #[test]
    fn sim_rec_paper_example() {
        // Figure 3 walkthrough: a = /a/*/c(/e/d)+/*/c/e,
        // s = /*/a/c/*/d/e/d/* matches with the pattern doubled.
        let a1 = path(&["a", "*", "c"]);
        let a2 = path(&["e", "d"]);
        let a3 = path(&["*", "c", "e"]);
        assert!(abs_expr_and_sim_rec_adv(
            &a1,
            &a2,
            &a3,
            &xpe("/*/a/c/*/d/e/d/*")
        ));
    }

    #[test]
    fn sim_rec_short_subscription() {
        let a1 = path(&["a"]);
        let a2 = path(&["b"]);
        let a3 = path(&["c"]);
        assert!(abs_expr_and_sim_rec_adv(&a1, &a2, &a3, &xpe("/a/b")));
        assert!(!abs_expr_and_sim_rec_adv(&a1, &a2, &a3, &xpe("/a/c")));
    }

    #[test]
    fn sim_rec_agrees_with_expansion_dispatcher() {
        let adv = Advertisement::parse("/a/*/c(/e/d)+/*/c/e").unwrap();
        let a1 = path(&["a", "*", "c"]);
        let a2 = path(&["e", "d"]);
        let a3 = path(&["*", "c", "e"]);
        for s in [
            "/*/a/c/*/d/e/d/*",
            "/a/b/c/e/d/x/c/e",
            "/a/b/c/e/d/e/d/x/c/e",
            "/a/b/c/e/e",
            "/a/b",
            "/a/b/c/d",
        ] {
            let sub = xpe(s);
            assert_eq!(
                abs_expr_and_sim_rec_adv(&a1, &a2, &a3, &sub),
                adv_overlaps_sub(&adv, &sub),
                "disagreement on {s}"
            );
        }
    }

    #[test]
    fn dispatcher_series_recursive() {
        let adv = Advertisement::parse("/r(/a)+/m(/b)+/z").unwrap();
        assert!(adv_overlaps_sub(&adv, &xpe("/r/a/m")));
        assert!(adv_overlaps_sub(&adv, &xpe("/r/a/a/a/m/b/z")));
        assert!(adv_overlaps_sub(&adv, &xpe("//z")));
        assert!(adv_overlaps_sub(&adv, &xpe("a/m/b")));
        assert!(!adv_overlaps_sub(&adv, &xpe("/r/m")));
        assert!(!adv_overlaps_sub(&adv, &xpe("/r/b")));
    }

    #[test]
    fn dispatcher_embedded_recursive() {
        let adv = Advertisement::parse("/r(/a(/b)+/c)+/z").unwrap();
        assert!(adv_overlaps_sub(&adv, &xpe("/r/a/b/c/z")));
        assert!(adv_overlaps_sub(&adv, &xpe("/r/a/b/b/b/c")));
        assert!(adv_overlaps_sub(&adv, &xpe("b//z")));
        assert!(!adv_overlaps_sub(&adv, &xpe("/r/b")));
    }

    #[test]
    fn dispatcher_relative_and_descendant_vs_recursive() {
        let adv = Advertisement::parse("/news/section(/section)+/article").unwrap();
        assert!(adv_overlaps_sub(&adv, &xpe("section/article")));
        assert!(adv_overlaps_sub(&adv, &xpe("/news//article")));
        assert!(adv_overlaps_sub(
            &adv,
            &xpe("/news/section/section/section/article")
        ));
        assert!(!adv_overlaps_sub(&adv, &xpe("/news/article")));
    }

    #[test]
    fn adv_covering_requires_equal_length() {
        assert!(adv_covers(&path(&["a", "*"]), &path(&["a", "b"])));
        assert!(!adv_covers(&path(&["a"]), &path(&["a", "b"])));
        assert!(!adv_covers(&path(&["a", "b"]), &path(&["a", "*"])));
        assert!(adv_covers(&path(&["*", "*"]), &path(&["x", "y"])));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_recursive_pattern_panics() {
        let a = path(&["a"]);
        let empty = AdvPath::new(vec![]);
        abs_expr_and_sim_rec_adv(&a, &empty, &a, &xpe("/a"));
    }
}
