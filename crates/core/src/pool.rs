//! The match worker pool: the one sanctioned place in `crates/core`
//! and `crates/broker` that spawns threads (`cargo xtask lint` enforces
//! this).
//!
//! [`MatchPool`] runs a fixed number of **named, scoped, joined**
//! workers over an indexed task list. The work queue is an atomic
//! cursor over `0..tasks` — inherently bounded (no channel can grow),
//! and a task is claimed exactly once. Workers borrow the caller's
//! stack via [`std::thread::scope`], so routing tables are shared by
//! reference with no locks, no `Arc`, and no `unsafe`; every worker is
//! joined before the call returns (the scope guarantees it even on
//! panic).
//!
//! The caller's own thread participates as a worker, so the pool
//! degrades gracefully: with one configured thread (or one task) the
//! work runs inline with zero spawn overhead — the path the
//! single-shard equivalence tests exercise.
//!
//! Sizing: [`configured_threads`] reads `XDN_MATCH_THREADS`, falling
//! back to [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The pool-thread budget from the environment: `XDN_MATCH_THREADS` if
/// set to a positive integer, otherwise the machine's available
/// parallelism (1 if even that is unknown).
pub fn configured_threads() -> usize {
    std::env::var("XDN_MATCH_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// A fixed-size scoped worker pool over indexed tasks.
#[derive(Debug)]
pub struct MatchPool {
    threads: usize,
    /// Total tasks executed over the pool's lifetime.
    tasks_run: AtomicU64,
    /// Tasks enqueued by the most recent [`MatchPool::run`] call — the
    /// depth the bounded work queue reached.
    last_depth: AtomicU64,
}

impl MatchPool {
    /// Creates a pool that will use at most `threads` workers
    /// (including the calling thread). Zero is clamped to one.
    pub fn new(threads: usize) -> Self {
        MatchPool {
            threads: threads.max(1),
            tasks_run: AtomicU64::new(0),
            last_depth: AtomicU64::new(0),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total tasks executed since creation.
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run.load(Ordering::Relaxed)
    }

    /// Tasks submitted by the most recent batch (work-queue depth).
    pub fn last_depth(&self) -> u64 {
        self.last_depth.load(Ordering::Relaxed)
    }

    /// Executes `task(0..tasks)`, each index exactly once, across up to
    /// [`MatchPool::threads`] workers. Returns once every task has run
    /// and every spawned worker has been joined. Tasks may run in any
    /// order; callers index into shared output slots for determinism.
    pub fn run<F>(&self, tasks: usize, task: F)
    where
        F: Fn(usize) + Sync,
    {
        self.last_depth.store(tasks as u64, Ordering::Relaxed);
        self.tasks_run.fetch_add(tasks as u64, Ordering::Relaxed);
        let workers = self.threads.min(tasks);
        if workers <= 1 {
            for t in 0..tasks {
                task(t);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        let drain = || loop {
            let t = cursor.fetch_add(1, Ordering::Relaxed);
            if t >= tasks {
                break;
            }
            task(t);
        };
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers - 1);
            for w in 1..workers {
                // A failed spawn (resource exhaustion) is not fatal:
                // the remaining workers and the caller drain the queue.
                if let Ok(h) = std::thread::Builder::new()
                    .name(format!("xdn-match-{w}"))
                    .spawn_scoped(scope, drain)
                {
                    handles.push(h);
                }
            }
            drain();
            for h in handles {
                if h.join().is_err() {
                    // The worker panicked mid-task; surface it rather
                    // than return a partial result set.
                    panic!("match pool worker panicked");
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = MatchPool::new(4);
        let seen = Mutex::new(vec![0u32; 100]);
        pool.run(100, |t| {
            seen.lock().unwrap()[t] += 1;
        });
        assert!(seen.lock().unwrap().iter().all(|&n| n == 1));
        assert_eq!(pool.tasks_run(), 100);
        assert_eq!(pool.last_depth(), 100);
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = MatchPool::new(4);
        pool.run(0, |_| panic!("no task to run"));
        assert_eq!(pool.last_depth(), 0);
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = MatchPool::new(1);
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        pool.run(8, |_| {
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    fn zero_threads_clamped() {
        assert_eq!(MatchPool::new(0).threads(), 1);
    }

    #[test]
    fn tasks_run_accumulates_across_batches() {
        let pool = MatchPool::new(2);
        pool.run(3, |_| {});
        pool.run(5, |_| {});
        assert_eq!(pool.tasks_run(), 8);
        assert_eq!(pool.last_depth(), 5);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
