//! The sharded parallel publication router.
//!
//! [`ShardedRouter`] hash-partitions subscriptions across N inner
//! routing tables (shards) and fans each publication out to every
//! shard on the [`crate::pool::MatchPool`], merging the per-shard
//! destination sets. Matching is embarrassingly parallel — each shard
//! holds a disjoint subset of the subscriptions and evaluates the same
//! publication independently — so the union of the shard answers is
//! *bit-identical* to a single table holding every subscription
//! (property-tested in `crates/core/tests/shard_props.rs`).
//!
//! Mutation (`insert`/`remove`) routes to the single owning shard,
//! selected by a deterministic hash of the [`SubId`] — no locks are
//! needed because the router follows the same exclusive-`&mut`
//! discipline as every other [`PublicationRouter`]. Read-side fan-out
//! borrows the shards immutably from scoped pool workers.
//!
//! The pool is sized by `XDN_MATCH_THREADS` (default: available
//! cores), clamped to the shard count: one shard routes sequentially,
//! N shards use up to N workers. Per-shard match latency histograms
//! and pool counters are exported via [`ShardStats`] for the
//! Prometheus scrape.
//!
//! Batches additionally coalesce duplicate requests: a burst that
//! repeats a hot (path, attrs) pair matches it once and clones the
//! destination set into every duplicate slot, which amortizes matching
//! independently of core count.

use crate::pool::{configured_threads, MatchPool};
use crate::rtable::{
    MergeApplication, PublicationRouter, RouteRequest, SubId, SubscribeOutcome, UnsubscribeOutcome,
};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Mutex, MutexGuard, PoisonError};
use xdn_obs::{Histogram, Stopwatch};
use xdn_xpath::Xpe;

/// Dedup key for batched routing: a request's borrowed (path, attrs).
type RequestKey<'a> = (&'a [String], &'a [Vec<(String, String)>]);

/// A snapshot of a sharded router's parallelism state, for metrics:
/// per-shard occupancy and match-latency histograms plus pool
/// counters.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Subscriptions held by each shard (occupancy gauges).
    pub shard_sizes: Vec<usize>,
    /// Per-shard match latency distributions.
    pub route_times: Vec<Histogram>,
    /// Configured pool worker count.
    pub threads: usize,
    /// Tasks submitted by the most recent fan-out (work-queue depth).
    pub queue_depth: u64,
    /// Total pool tasks executed since creation.
    pub tasks_run: u64,
}

/// A [`PublicationRouter`] that partitions subscriptions across N
/// inner routers and matches them in parallel. See the module docs.
#[derive(Debug)]
pub struct ShardedRouter<R> {
    shards: Vec<R>,
    pool: MatchPool,
    route_times: Vec<Mutex<Histogram>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// splitmix64: a deterministic, platform-independent mix so shard
/// placement (and therefore every equivalence test) is reproducible.
fn mix(v: u64) -> u64 {
    let mut x = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl<R: Default> ShardedRouter<R> {
    /// Creates a router with `shards` empty shards (zero is clamped to
    /// one) and a pool sized by `XDN_MATCH_THREADS` / available cores.
    pub fn new(shards: usize) -> Self {
        Self::with_threads(shards, configured_threads())
    }

    /// [`ShardedRouter::new`] with an explicit thread budget, clamped
    /// to the shard count (shards are the unit of read parallelism).
    pub fn with_threads(shards: usize, threads: usize) -> Self {
        let n = shards.max(1);
        ShardedRouter {
            shards: (0..n).map(|_| R::default()).collect(),
            pool: MatchPool::new(threads.min(n)),
            route_times: (0..n).map(|_| Mutex::new(Histogram::new())).collect(),
        }
    }
}

impl<R> ShardedRouter<R> {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The pool's configured worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The shard owning subscription `id`.
    fn shard_of(&self, id: SubId) -> usize {
        (mix(id.0) % self.shards.len() as u64) as usize
    }

    /// Runs `op(0..tasks)` on the pool, collecting results in task
    /// order regardless of completion order.
    fn fan<T: Send>(&self, tasks: usize, op: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
        self.pool.run(tasks, |t| {
            let out = op(t);
            *lock(&slots[t]) = Some(out);
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("pool ran every task")
            })
            .collect()
    }
}

impl<H, R> PublicationRouter<H> for ShardedRouter<R>
where
    H: Clone + Ord + Send,
    R: PublicationRouter<H> + Sync,
{
    fn insert(&mut self, id: SubId, xpe: Xpe, last_hop: H) -> SubscribeOutcome<H> {
        let k = self.shard_of(id);
        self.shards[k].insert(id, xpe, last_hop)
    }

    fn remove(&mut self, id: SubId) -> UnsubscribeOutcome {
        let k = self.shard_of(id);
        self.shards[k].remove(id)
    }

    fn for_each_matching_with_attrs(
        &self,
        path: &[String],
        attrs: &[Vec<(String, String)>],
        f: &mut dyn FnMut(SubId, &H),
    ) {
        // The visitor is `&mut` and cannot cross threads: collect the
        // per-shard matches in parallel, then visit in shard order so
        // the sequence is deterministic given deterministic shards.
        let per_shard = self.fan(self.shards.len(), |si| {
            let sw = Stopwatch::start();
            let mut matches: Vec<(SubId, H)> = Vec::new();
            self.shards[si].for_each_matching_with_attrs(path, attrs, &mut |id, h| {
                matches.push((id, h.clone()));
            });
            lock(&self.route_times[si]).record(sw.elapsed());
            matches
        });
        for shard_matches in &per_shard {
            for (id, h) in shard_matches {
                f(*id, h);
            }
        }
    }

    fn matching_hops(&self, path: &[String], attrs: &[Vec<(String, String)>]) -> BTreeSet<H> {
        self.route_batch(&[RouteRequest { path, attrs }])
            .pop()
            .unwrap_or_default()
    }

    fn route_batch(&self, requests: &[RouteRequest<'_>]) -> Vec<BTreeSet<H>> {
        let s = self.shards.len();
        if requests.is_empty() {
            return Vec::new();
        }
        // Coalesce identical requests before fanning out: publication
        // bursts repeat hot paths, and two equal (path, attrs) pairs
        // have equal destination sets by definition, so each distinct
        // request is matched once and its answer cloned into every
        // duplicate slot.
        let mut unique: Vec<RouteRequest<'_>> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(requests.len());
        let mut seen: HashMap<RequestKey<'_>, usize> = HashMap::new();
        for req in requests {
            let idx = *seen.entry((req.path, req.attrs)).or_insert_with(|| {
                unique.push(*req);
                unique.len() - 1
            });
            slot_of.push(idx);
        }
        // One task per (distinct publication, shard) pair; the merge
        // unions the shard answers per publication, so the destination
        // set equals the unsharded table's answer exactly.
        let partials = self.fan(unique.len() * s, |t| {
            let (req, si) = (&unique[t / s], t % s);
            let sw = Stopwatch::start();
            let hops = self.shards[si].matching_hops(req.path, req.attrs);
            lock(&self.route_times[si]).record(sw.elapsed());
            hops
        });
        let mut merged = Vec::with_capacity(unique.len());
        let mut it = partials.into_iter();
        for _ in 0..unique.len() {
            let mut set = BTreeSet::new();
            for _ in 0..s {
                set.extend(it.next().expect("one partial per shard"));
            }
            merged.push(set);
        }
        slot_of.into_iter().map(|i| merged[i].clone()).collect()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(PublicationRouter::len).sum()
    }

    fn xpe_of(&self, id: SubId) -> Option<&Xpe> {
        self.shards[self.shard_of(id)].xpe_of(id)
    }

    fn forwarded_subs(&self) -> Vec<(SubId, Xpe, Vec<H>)> {
        self.shards
            .iter()
            .flat_map(PublicationRouter::forwarded_subs)
            .collect()
    }

    fn effective_size(&self) -> usize {
        self.shards
            .iter()
            .map(PublicationRouter::effective_size)
            .sum()
    }

    fn apply_merging(
        &mut self,
        _universe: &[Vec<String>],
        _cfg: &crate::merge::MergeConfig,
        _next_id: &mut dyn FnMut() -> SubId,
    ) -> Vec<MergeApplication> {
        // Shards are non-covering tables; there is nothing to merge.
        Vec::new()
    }

    /// Merges the per-shard automaton snapshots (sizes and counters
    /// sum; the active-set high-water mark takes the maximum); `None`
    /// unless the shards are automaton-backed.
    fn automaton_stats(&self) -> Option<crate::automaton::AutomatonStats> {
        let mut merged: Option<crate::automaton::AutomatonStats> = None;
        for shard in &self.shards {
            let stats = shard.automaton_stats()?;
            match &mut merged {
                Some(m) => m.merge(&stats),
                None => merged = Some(stats),
            }
        }
        merged
    }

    fn shard_stats(&self) -> Option<ShardStats> {
        Some(ShardStats {
            shard_sizes: self.shards.iter().map(PublicationRouter::len).collect(),
            route_times: self.route_times.iter().map(|m| lock(m).clone()).collect(),
            threads: self.pool.threads(),
            queue_depth: self.pool.last_depth(),
            tasks_run: self.pool.tasks_run(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexedPrt;

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    fn path(p: &[&str]) -> Vec<String> {
        p.iter().map(|s| (*s).to_string()).collect()
    }

    fn populated(shards: usize) -> ShardedRouter<IndexedPrt<u32>> {
        let mut r = ShardedRouter::new(shards);
        let subs = ["/a/*", "/a/b", "a//c", "/x/y", "//b", "/*/*"];
        for (i, s) in subs.iter().enumerate() {
            r.insert(SubId(i as u64), xpe(s), i as u32);
        }
        r
    }

    #[test]
    fn matches_unsharded_reference() {
        let mut reference: IndexedPrt<u32> = IndexedPrt::new();
        let subs = ["/a/*", "/a/b", "a//c", "/x/y", "//b", "/*/*"];
        for (i, s) in subs.iter().enumerate() {
            reference.insert(SubId(i as u64), xpe(s), i as u32);
        }
        for shards in [1, 2, 8] {
            let sharded = populated(shards);
            assert_eq!(sharded.len(), reference.len());
            for p in [&["a", "b"][..], &["a", "q", "c"], &["x", "y"], &["q"]] {
                let p = path(p);
                assert_eq!(
                    sharded.matching_hops(&p, &[]),
                    reference.matching_hops(&p, &[]),
                    "divergence at {shards} shards on {p:?}"
                );
            }
        }
    }

    #[test]
    fn route_batch_matches_per_publication_routing() {
        let r = populated(4);
        let paths = [path(&["a", "b"]), path(&["x", "y"]), path(&["q"])];
        let requests: Vec<RouteRequest<'_>> = paths
            .iter()
            .map(|p| RouteRequest {
                path: p,
                attrs: &[],
            })
            .collect();
        let batched = r.route_batch(&requests);
        assert_eq!(batched.len(), 3);
        for (req, got) in requests.iter().zip(&batched) {
            assert_eq!(*got, r.matching_hops(req.path, req.attrs));
        }
    }

    #[test]
    fn route_batch_coalesces_duplicate_requests() {
        let r = populated(4);
        let a = path(&["a", "b"]);
        let b = path(&["x", "y"]);
        let requests = [
            RouteRequest {
                path: &a,
                attrs: &[],
            },
            RouteRequest {
                path: &b,
                attrs: &[],
            },
            RouteRequest {
                path: &a,
                attrs: &[],
            },
        ];
        let before = r.shard_stats().expect("stats").tasks_run;
        let out = r.route_batch(&requests);
        let stats = r.shard_stats().expect("stats");
        assert_eq!(
            stats.tasks_run - before,
            2 * 4,
            "duplicate request routed once: 2 distinct paths x 4 shards"
        );
        assert_eq!(stats.queue_depth, 8);
        assert_eq!(out.len(), 3, "every slot still answered");
        assert_eq!(out[0], out[2], "duplicates share the routed answer");
        assert_eq!(out[0], r.matching_hops(&a, &[]));
        assert_eq!(out[1], r.matching_hops(&b, &[]));
    }

    #[test]
    fn removal_hits_the_owning_shard() {
        let mut r = populated(8);
        assert_eq!(r.len(), 6);
        assert!(r.remove(SubId(1)).forward, "known id removed");
        assert!(!r.remove(SubId(1)).forward, "second removal is a no-op");
        assert_eq!(r.len(), 5);
        assert!(r.xpe_of(SubId(1)).is_none());
        assert_eq!(r.xpe_of(SubId(0)), Some(&xpe("/a/*")));
    }

    #[test]
    fn forwarded_subs_cover_every_shard() {
        let r = populated(3);
        let mut ids: Vec<u64> = r.forwarded_subs().iter().map(|(id, _, _)| id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.effective_size(), 6);
    }

    #[test]
    fn visitor_sees_every_match_once() {
        let r = populated(4);
        let mut seen = Vec::new();
        r.for_each_matching_with_attrs(&path(&["a", "b"]), &[], &mut |id, h| {
            seen.push((id, *h));
        });
        seen.sort_unstable();
        // Matching /a/b: "/a/*", "/a/b", "//b", "/*/*".
        assert_eq!(
            seen,
            vec![(SubId(0), 0), (SubId(1), 1), (SubId(4), 4), (SubId(5), 5)]
        );
    }

    #[test]
    fn shard_stats_expose_occupancy_and_latency() {
        let r = populated(4);
        let _ = r.matching_hops(&path(&["a", "b"]), &[]);
        let stats = r.shard_stats().expect("sharded router reports stats");
        assert_eq!(stats.shard_sizes.len(), 4);
        assert_eq!(stats.shard_sizes.iter().sum::<usize>(), 6);
        assert_eq!(stats.route_times.len(), 4);
        assert_eq!(
            stats.route_times.iter().map(Histogram::count).sum::<u64>(),
            4,
            "one match timing per shard"
        );
        assert!(stats.threads >= 1);
        assert_eq!(
            stats.queue_depth, 4,
            "one task per shard for one publication"
        );
        assert_eq!(stats.tasks_run, 4);
    }

    #[test]
    fn zero_shards_clamped_to_one() {
        let r: ShardedRouter<IndexedPrt<u32>> = ShardedRouter::new(0);
        assert_eq!(r.shard_count(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn placement_is_deterministic() {
        let a = populated(8);
        let b = populated(8);
        let sizes =
            |r: &ShardedRouter<IndexedPrt<u32>>| r.shard_stats().expect("stats").shard_sizes;
        assert_eq!(sizes(&a), sizes(&b));
    }
}
