//! The automaton-backed publication routing table.
//!
//! [`AutomatonPrt`] keeps the non-covering, always-forward semantics of
//! [`crate::rtable::FlatPrt`] and [`crate::index::IndexedPrt`] but
//! matches publications with the shared
//! [`xdn_xpath::automaton::PathAutomaton`]: the whole subscription set
//! is compiled into one NFA and a publication path is matched in a
//! single traversal, independent of how many candidates would match —
//! where [`crate::index::IndexedPrt`] still evaluates each surviving
//! candidate individually.
//!
//! The router composes like every other [`PublicationRouter`]: wrap it
//! in [`crate::rtable::TimedRouter`] for latency histograms or shard it
//! under [`crate::shard::ShardedRouter`] for parallel matching (the
//! automaton's traversal scratch is thread-local, so concurrent
//! read-side fan-out over one shard is safe). Match results are
//! bit-identical to the flat scan (property-tested in
//! `crates/core/tests/automaton_props.rs`).
//!
//! Subscription churn is incremental: inserts thread new steps through
//! the shared trie and removals tombstone structure, with an amortized
//! compaction rebuild (timed here, into the
//! [`AutomatonStats::rebuild_seconds`] histogram) once the stranded
//! structure outweighs the live table.

use crate::rtable::{PublicationRouter, SubId, SubscribeOutcome, UnsubscribeOutcome};
use std::collections::HashMap;
use xdn_obs::{Histogram, Stopwatch};
use xdn_xpath::automaton::PathAutomaton;
use xdn_xpath::Xpe;

/// A snapshot of an automaton router's matching state, for metrics
/// (the `xdn_automaton_*` Prometheus families). Sharded routers merge
/// the per-shard snapshots with [`AutomatonStats::merge`].
#[derive(Debug, Clone, Default)]
pub struct AutomatonStats {
    /// NFA states currently allocated (including tombstoned structure
    /// awaiting compaction).
    pub states: u64,
    /// Live registered subscriptions.
    pub live_subs: u64,
    /// NFA edges traversed by all matches since creation.
    pub transitions_total: u64,
    /// Largest active-state set any single traversal reached (the
    /// active-state high-water mark).
    pub peak_active_states: u64,
    /// Compaction rebuilds performed.
    pub compactions_total: u64,
    /// Compaction rebuild durations.
    pub rebuild_seconds: Histogram,
}

impl AutomatonStats {
    /// Folds another snapshot into this one (shard aggregation): sums
    /// the sizes and counters, takes the maximum high-water mark, and
    /// merges the rebuild histograms.
    pub fn merge(&mut self, other: &AutomatonStats) {
        self.states += other.states;
        self.live_subs += other.live_subs;
        self.transitions_total += other.transitions_total;
        self.peak_active_states = self.peak_active_states.max(other.peak_active_states);
        self.compactions_total += other.compactions_total;
        self.rebuild_seconds.merge(&other.rebuild_seconds);
    }
}

/// The automaton publication routing table. See the module docs.
#[derive(Debug)]
pub struct AutomatonPrt<H> {
    nfa: PathAutomaton,
    /// Last hop per subscription (expressions live in the automaton).
    hops: HashMap<SubId, H>,
    rebuild_seconds: Histogram,
}

impl<H> Default for AutomatonPrt<H> {
    fn default() -> Self {
        Self::new()
    }
}

impl<H> AutomatonPrt<H> {
    /// Creates an empty table.
    pub fn new() -> Self {
        AutomatonPrt {
            nfa: PathAutomaton::new(),
            hops: HashMap::new(),
            rebuild_seconds: Histogram::new(),
        }
    }

    /// The underlying automaton (diagnostics).
    pub fn automaton(&self) -> &PathAutomaton {
        &self.nfa
    }

    /// The automaton metrics snapshot.
    pub fn stats(&self) -> AutomatonStats {
        let nfa = self.nfa.stats();
        AutomatonStats {
            states: nfa.states as u64,
            live_subs: nfa.live_subs as u64,
            transitions_total: nfa.transitions_total,
            peak_active_states: nfa.peak_active_states,
            compactions_total: nfa.compactions_total,
            rebuild_seconds: self.rebuild_seconds.clone(),
        }
    }

    /// Number of stored subscriptions.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True if no subscriptions are stored.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

impl<H: Clone + Ord + std::fmt::Debug> PublicationRouter<H> for AutomatonPrt<H> {
    /// Always forwarded (no covering), like the flat and indexed
    /// tables. Re-registering an id replaces its expression.
    fn insert(&mut self, id: SubId, xpe: Xpe, last_hop: H) -> SubscribeOutcome<H> {
        self.nfa.insert(id.0, xpe);
        self.hops.insert(id, last_hop);
        SubscribeOutcome {
            forward: true,
            retract: Vec::new(),
            covered_root_hops: Vec::new(),
        }
    }

    fn remove(&mut self, id: SubId) -> UnsubscribeOutcome {
        let known = self.hops.remove(&id).is_some();
        if known {
            self.nfa.remove(id.0);
            if self.nfa.needs_compaction() {
                let sw = Stopwatch::start();
                self.nfa.compact();
                self.rebuild_seconds.record(sw.elapsed());
            }
        }
        UnsubscribeOutcome {
            forward: known,
            promote: Vec::new(),
        }
    }

    fn for_each_matching_with_attrs(
        &self,
        path: &[String],
        attrs: &[Vec<(String, String)>],
        f: &mut dyn FnMut(SubId, &H),
    ) {
        self.nfa.for_each_match(path, attrs, &mut |token| {
            let id = SubId(token);
            if let Some(hop) = self.hops.get(&id) {
                f(id, hop);
            }
        });
    }

    fn len(&self) -> usize {
        AutomatonPrt::len(self)
    }

    fn xpe_of(&self, id: SubId) -> Option<&Xpe> {
        self.nfa.xpe(id.0)
    }

    /// Every stored subscription with its last hop (all are forwarded,
    /// as in the flat scheme).
    fn forwarded_subs(&self) -> Vec<(SubId, Xpe, Vec<H>)> {
        self.hops
            .iter()
            .filter_map(|(&id, hop)| {
                self.nfa
                    .xpe(id.0)
                    .map(|xpe| (id, xpe.clone(), vec![hop.clone()]))
            })
            .collect()
    }

    fn automaton_stats(&self) -> Option<AutomatonStats> {
        Some(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtable::{FlatPrt, RouteRequest, TimedRouter};
    use crate::shard::ShardedRouter;

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    fn path(p: &[&str]) -> Vec<String> {
        p.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn routes_like_flat_on_basics() {
        let subs = ["/a/*", "/a/b", "a//c", "/x/y", "//b", "/*/*", "b/c[@k]"];
        let mut flat = FlatPrt::new();
        let mut aut = AutomatonPrt::new();
        for (i, s) in subs.iter().enumerate() {
            flat.insert(SubId(i as u64), xpe(s), i);
            aut.insert(SubId(i as u64), xpe(s), i);
        }
        let paths: [&[&str]; 5] = [
            &["a", "b"],
            &["a", "q", "c"],
            &["x", "y"],
            &["z", "b", "c"],
            &["q"],
        ];
        for p in paths {
            let p = path(p);
            assert_eq!(
                aut.matching_hops(&p, &[]),
                flat.matching_hops(&p, &[]),
                "divergence on {p:?}"
            );
        }
    }

    #[test]
    fn attributes_respected() {
        let mut aut = AutomatonPrt::new();
        aut.insert(SubId(1), xpe("/a/b[@k='v']"), "h1");
        let hit = vec![vec![], vec![("k".to_string(), "v".to_string())]];
        let miss = vec![vec![], vec![("k".to_string(), "w".to_string())]];
        assert_eq!(aut.matching_hops(&path(&["a", "b"]), &hit).len(), 1);
        assert!(aut.matching_hops(&path(&["a", "b"]), &miss).is_empty());
    }

    #[test]
    fn unsubscribe_and_resubscribe() {
        let mut aut = AutomatonPrt::new();
        aut.insert(SubId(1), xpe("/a/b"), "h1");
        aut.insert(SubId(2), xpe("//b"), "h2");
        assert!(aut.remove(SubId(1)).forward);
        assert!(!aut.remove(SubId(1)).forward, "second removal no-op");
        assert_eq!(aut.matching_hops(&path(&["a", "b"]), &[]).len(), 1);
        aut.insert(SubId(1), xpe("/x/y"), "h1");
        assert_eq!(aut.len(), 2);
        assert_eq!(aut.xpe_of(SubId(1)), Some(&xpe("/x/y")));
        assert_eq!(aut.matching_hops(&path(&["x", "y"]), &[]).len(), 1);
    }

    #[test]
    fn churn_triggers_timed_compaction() {
        let mut aut = AutomatonPrt::new();
        for i in 0..200u64 {
            aut.insert(SubId(i), xpe(&format!("/a/b{i}/c/d")), i as u32);
        }
        for i in 0..180u64 {
            aut.remove(SubId(i));
        }
        let stats = aut.stats();
        assert!(stats.compactions_total >= 1, "churn forced a rebuild");
        assert_eq!(
            stats.rebuild_seconds.count(),
            stats.compactions_total,
            "every rebuild was timed"
        );
        assert_eq!(stats.live_subs, 20);
        for i in 180..200u64 {
            let p = path(&["a", &format!("b{i}"), "c", "d"]);
            assert_eq!(aut.matching_hops(&p, &[]).len(), 1);
        }
    }

    #[test]
    fn composes_under_timed_router() {
        let mut r: TimedRouter<AutomatonPrt<u32>> = TimedRouter::new(AutomatonPrt::new());
        r.insert(SubId(1), xpe("/a/b"), 7);
        assert_eq!(r.matching_hops(&path(&["a", "b"]), &[]).len(), 1);
        assert_eq!(r.route_times().count(), 1);
        assert!(r.automaton_stats().is_some(), "stats pass through");
    }

    #[test]
    fn composes_under_sharded_router() {
        let mut sharded: ShardedRouter<AutomatonPrt<u32>> = ShardedRouter::new(4);
        let mut flat = FlatPrt::new();
        let subs = ["/a/*", "/a/b", "a//c", "/x/y", "//b", "/*/*"];
        for (i, s) in subs.iter().enumerate() {
            sharded.insert(SubId(i as u64), xpe(s), i as u32);
            flat.insert(SubId(i as u64), xpe(s), i as u32);
        }
        let paths = [path(&["a", "b"]), path(&["a", "q", "c"]), path(&["q"])];
        let reqs: Vec<RouteRequest<'_>> = paths
            .iter()
            .map(|p| RouteRequest {
                path: p,
                attrs: &[],
            })
            .collect();
        let batched = sharded.route_batch(&reqs);
        for (req, got) in reqs.iter().zip(&batched) {
            assert_eq!(*got, flat.matching_hops(req.path, req.attrs));
        }
        let stats = sharded.automaton_stats().expect("merged shard stats");
        assert_eq!(stats.live_subs, 6, "sums across shards");
    }

    #[test]
    fn forwarded_subs_cover_everything() {
        let mut aut = AutomatonPrt::new();
        aut.insert(SubId(1), xpe("/a"), "h1");
        aut.insert(SubId(2), xpe("/b"), "h2");
        let mut ids: Vec<u64> = aut.forwarded_subs().iter().map(|(id, _, _)| id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(aut.effective_size(), 2);
    }
}
