//! Advertisements and their derivation from DTDs (§3.1).
//!
//! An advertisement describes the publications a data producer will
//! emit: an absolute XPath-like expression with the *same length* as
//! the publication paths it advertises. Advertisements are a system-
//! internal mechanism — they never reach clients — which is why the
//! recursive forms may use the `(...)+` repetition operator that is not
//! part of XPath syntax.
//!
//! * A **non-recursive advertisement** is a plain sequence of element
//!   names or wildcards: `a = /t1/t2/.../tn`.
//! * A **simple-recursive advertisement** has one repetition:
//!   `a = a1(a2)+a3`.
//! * A **series-recursive advertisement** has several repetitions in
//!   sequence: `a = a1(a2)+a3(a4)+a5`.
//! * An **embedded-recursive advertisement** nests repetitions:
//!   `a = a1(a2(a3)+a4)+a5`.
//!
//! [`derive_advertisements`] computes the advertisement set of a DTD by
//! walking its element graph; cycles become `(...)+` segments.

use std::collections::BTreeSet;
use std::fmt;
use xdn_xml::dtd::Dtd;
use xdn_xpath::NodeTest;

/// A non-recursive advertisement: one position per publication element.
///
/// Positions are [`NodeTest`]s — DTD derivation produces concrete
/// names, but wildcard positions are admitted by the format (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AdvPath(Vec<NodeTest>);

impl AdvPath {
    /// Creates an advertisement path from its positions.
    pub fn new(positions: Vec<NodeTest>) -> Self {
        AdvPath(positions)
    }

    /// Builds a path of concrete element names.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Self {
        AdvPath(names.iter().map(|n| NodeTest::from(n.as_ref())).collect())
    }

    /// The positions.
    pub fn positions(&self) -> &[NodeTest] {
        &self.0
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the path has no positions.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True if a concrete publication path (same length) is advertised
    /// by this path: element-wise name equality, wildcards free.
    pub fn matches_path<S: AsRef<str>>(&self, path: &[S]) -> bool {
        self.0.len() == path.len() && self.0.iter().zip(path).all(|(t, e)| t.accepts(e.as_ref()))
    }
}

impl fmt::Display for AdvPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.0 {
            write!(f, "/{t}")?;
        }
        Ok(())
    }
}

/// One segment of a (possibly recursive) advertisement.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AdvSegment {
    /// A fixed run of positions.
    Plain(AdvPath),
    /// A repetition `(...)+` — the contained segments occur one or more
    /// times. Nested repetitions express embedded recursion.
    Repeat(Vec<AdvSegment>),
}

impl AdvSegment {
    /// Minimum number of positions this segment contributes (one
    /// iteration of every repetition).
    pub fn min_len(&self) -> usize {
        match self {
            AdvSegment::Plain(p) => p.len(),
            AdvSegment::Repeat(inner) => inner.iter().map(AdvSegment::min_len).sum(),
        }
    }

    fn contains_repeat(&self) -> bool {
        matches!(self, AdvSegment::Repeat(_))
    }

    fn has_nested_repeat(&self) -> bool {
        match self {
            AdvSegment::Plain(_) => false,
            AdvSegment::Repeat(inner) => inner
                .iter()
                .any(|s| s.contains_repeat() || s.has_nested_repeat()),
        }
    }
}

impl fmt::Display for AdvSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdvSegment::Plain(p) => write!(f, "{p}"),
            AdvSegment::Repeat(inner) => {
                f.write_str("(")?;
                for s in inner {
                    write!(f, "{s}")?;
                }
                f.write_str(")+")
            }
        }
    }
}

/// Classification of an advertisement per §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdvKind {
    /// No repetition.
    NonRecursive,
    /// Exactly one top-level repetition, not nested.
    SimpleRecursive,
    /// Two or more top-level repetitions, none nested.
    SeriesRecursive,
    /// At least one repetition nested inside another.
    EmbeddedRecursive,
}

/// An advertisement: a sequence of plain and repeated segments.
///
/// ```
/// use xdn_core::adv::{Advertisement, AdvKind};
///
/// // a = /a/b(/c/d)+/e  — simple-recursive
/// let a = Advertisement::parse("/a/b(/c/d)+/e")?;
/// assert_eq!(a.kind(), AdvKind::SimpleRecursive);
/// assert!(a.matches_path(&["a", "b", "c", "d", "c", "d", "e"]));
/// assert!(!a.matches_path(&["a", "b", "c", "e"]));
/// # Ok::<(), xdn_core::adv::AdvParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Advertisement {
    segments: Vec<AdvSegment>,
}

impl Advertisement {
    /// Creates an advertisement from segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty or contributes zero positions.
    pub fn new(segments: Vec<AdvSegment>) -> Self {
        let adv = Advertisement { segments };
        assert!(
            adv.min_len() > 0,
            "an advertisement has at least one position"
        );
        adv
    }

    /// A non-recursive advertisement from a single path.
    pub fn non_recursive(path: AdvPath) -> Self {
        Advertisement::new(vec![AdvSegment::Plain(path)])
    }

    /// The segments.
    pub fn segments(&self) -> &[AdvSegment] {
        &self.segments
    }

    /// Minimum advertised path length (one iteration per repetition).
    pub fn min_len(&self) -> usize {
        self.segments.iter().map(AdvSegment::min_len).sum()
    }

    /// Classifies the advertisement per §3.1.
    pub fn kind(&self) -> AdvKind {
        let top_repeats = self.segments.iter().filter(|s| s.contains_repeat()).count();
        let nested = self.segments.iter().any(AdvSegment::has_nested_repeat);
        match (top_repeats, nested) {
            (0, _) => AdvKind::NonRecursive,
            (_, true) => AdvKind::EmbeddedRecursive,
            (1, false) => AdvKind::SimpleRecursive,
            (_, false) => AdvKind::SeriesRecursive,
        }
    }

    /// For a non-recursive advertisement, its single path.
    pub fn as_non_recursive(&self) -> Option<&AdvPath> {
        match self.segments.as_slice() {
            [AdvSegment::Plain(p)] => Some(p),
            _ => None,
        }
    }

    /// True if the concrete publication path is advertised: some
    /// expansion of the repetitions has the path's length and matches
    /// element-wise.
    pub fn matches_path<S: AsRef<str>>(&self, path: &[S]) -> bool {
        matches_segments(&self.segments, path, 0)
    }

    /// Enumerates non-recursive expansions in which every repetition is
    /// unrolled between 1 and `max_reps` times, keeping only expansions
    /// of length at most `max_len`.
    ///
    /// The advertisement–subscription overlap algorithms for relative
    /// and descendant XPEs against recursive advertisements are built on
    /// this: a subscription of length `k` overlaps the advertisement iff
    /// it overlaps an expansion with every repetition unrolled at most
    /// `k + 2` times (a pumping argument — a match window touches at
    /// most `k` positions, so surplus iterations outside the window can
    /// be removed).
    pub fn expansions(&self, max_reps: usize, max_len: usize) -> Vec<AdvPath> {
        let mut out = Vec::new();
        let mut acc: Vec<NodeTest> = Vec::new();
        expand_rec(&self.segments, 0, max_reps, max_len, &mut acc, &mut out);
        // Deduplicate: different unroll counts can coincide.
        let mut seen = BTreeSet::new();
        out.retain(|p| seen.insert(p.clone()));
        out
    }

    /// Parses the paper's textual advertisement form, e.g.
    /// `/a/b(/c/d)+/e` or `/a(/b(/c)+/d)+/e`.
    ///
    /// # Errors
    ///
    /// Returns [`AdvParseError`] on unbalanced parentheses, a missing
    /// `+`, or empty element names.
    pub fn parse(input: &str) -> Result<Self, AdvParseError> {
        let mut chars = input.trim().char_indices().peekable();
        let segments = parse_segments(&mut chars, 0)?;
        if segments.is_empty() {
            return Err(AdvParseError::new("empty advertisement"));
        }
        let adv = Advertisement { segments };
        if adv.min_len() == 0 {
            return Err(AdvParseError::new("advertisement has no positions"));
        }
        Ok(adv)
    }
}

impl fmt::Display for Advertisement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.segments {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Error parsing the textual advertisement form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvParseError {
    message: String,
}

impl AdvParseError {
    fn new(message: impl Into<String>) -> Self {
        AdvParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for AdvParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid advertisement: {}", self.message)
    }
}

impl std::error::Error for AdvParseError {}

type CharIter<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn parse_segments(
    chars: &mut CharIter<'_>,
    depth: usize,
) -> Result<Vec<AdvSegment>, AdvParseError> {
    let mut segments = Vec::new();
    let mut run: Vec<NodeTest> = Vec::new();
    loop {
        match chars.peek().copied() {
            None => {
                if depth > 0 {
                    return Err(AdvParseError::new("unbalanced `(`"));
                }
                flush_run(&mut run, &mut segments);
                return Ok(segments);
            }
            Some((_, ')')) => {
                if depth == 0 {
                    return Err(AdvParseError::new("unbalanced `)`"));
                }
                chars.next();
                match chars.next() {
                    Some((_, '+')) => {}
                    _ => return Err(AdvParseError::new("expected `+` after `)`")),
                }
                flush_run(&mut run, &mut segments);
                return Ok(segments);
            }
            Some((_, '(')) => {
                chars.next();
                flush_run(&mut run, &mut segments);
                let inner = parse_segments(chars, depth + 1)?;
                if inner.is_empty() {
                    return Err(AdvParseError::new("empty repetition"));
                }
                segments.push(AdvSegment::Repeat(inner));
            }
            Some((_, '/')) => {
                chars.next();
                let mut name = String::new();
                while let Some((_, c)) = chars.peek().copied() {
                    if c == '/' || c == '(' || c == ')' {
                        break;
                    }
                    name.push(c);
                    chars.next();
                }
                if name.is_empty() {
                    return Err(AdvParseError::new("empty element name"));
                }
                run.push(NodeTest::from(name.as_str()));
            }
            Some((_, c)) => {
                return Err(AdvParseError::new(format!("unexpected character {c:?}")));
            }
        }
    }
}

fn flush_run(run: &mut Vec<NodeTest>, segments: &mut Vec<AdvSegment>) {
    if !run.is_empty() {
        segments.push(AdvSegment::Plain(AdvPath::new(std::mem::take(run))));
    }
}

/// Backtracking matcher: can `segments` consume exactly `path[pos..]`?
fn matches_segments<S: AsRef<str>>(segments: &[AdvSegment], path: &[S], pos: usize) -> bool {
    match segments.split_first() {
        None => pos == path.len(),
        Some((AdvSegment::Plain(p), rest)) => {
            if pos + p.len() > path.len() {
                return false;
            }
            p.positions()
                .iter()
                .zip(&path[pos..pos + p.len()])
                .all(|(t, e)| t.accepts(e.as_ref()))
                && matches_segments(rest, path, pos + p.len())
        }
        Some((AdvSegment::Repeat(inner), rest)) => {
            // One or more iterations of `inner`, then the rest. Try each
            // feasible number of iterations via recursion.
            matches_repeat(inner, rest, path, pos)
        }
    }
}

fn matches_repeat<S: AsRef<str>>(
    inner: &[AdvSegment],
    rest: &[AdvSegment],
    path: &[S],
    pos: usize,
) -> bool {
    // Consume one iteration of `inner`, then either stop or iterate
    // again. `inner` may itself contain repetitions, so iterate over
    // every split position it can reach.
    let min = inner.iter().map(AdvSegment::min_len).sum::<usize>();
    if min == 0 || pos + min > path.len() {
        return false;
    }
    for end in pos + min..=path.len() {
        if consumes_exactly(inner, path, pos, end)
            && (matches_segments(rest, path, end) || matches_repeat(inner, rest, path, end))
        {
            return true;
        }
    }
    false
}

/// Can `segments` consume exactly `path[pos..end]`?
fn consumes_exactly<S: AsRef<str>>(
    segments: &[AdvSegment],
    path: &[S],
    pos: usize,
    end: usize,
) -> bool {
    matches_segments(segments, &path[..end], pos)
}

#[allow(clippy::only_used_in_recursion)] // threading the caps through the recursion is clearer
fn expand_rec(
    segments: &[AdvSegment],
    idx: usize,
    max_reps: usize,
    max_len: usize,
    acc: &mut Vec<NodeTest>,
    out: &mut Vec<AdvPath>,
) {
    if acc.len() > max_len {
        return;
    }
    if idx == segments.len() {
        out.push(AdvPath::new(acc.clone()));
        return;
    }
    match &segments[idx] {
        AdvSegment::Plain(p) => {
            acc.extend(p.positions().iter().cloned());
            expand_rec(segments, idx + 1, max_reps, max_len, acc, out);
            acc.truncate(acc.len() - p.len());
        }
        AdvSegment::Repeat(inner) => {
            // Expand `inner` 1..=max_reps times. Each iteration of a
            // nested repetition is expanded independently.
            #[allow(clippy::too_many_arguments)] // recursion state, not an API
            fn iterate(
                inner: &[AdvSegment],
                segments: &[AdvSegment],
                idx: usize,
                reps_left: usize,
                max_reps: usize,
                max_len: usize,
                acc: &mut Vec<NodeTest>,
                out: &mut Vec<AdvPath>,
            ) {
                if acc.len() > max_len {
                    return;
                }
                // Expand one iteration of `inner`, then recurse for more
                // iterations or continue with the following segments.
                let mut iteration_variants = Vec::new();
                let mut tmp = Vec::new();
                expand_rec(
                    inner,
                    0,
                    max_reps,
                    max_len,
                    &mut tmp,
                    &mut iteration_variants,
                );
                for variant in iteration_variants {
                    let before = acc.len();
                    acc.extend(variant.positions().iter().cloned());
                    // Stop after this iteration…
                    expand_rec(segments, idx + 1, max_reps, max_len, acc, out);
                    // …or keep iterating.
                    if reps_left > 1 {
                        iterate(
                            inner,
                            segments,
                            idx,
                            reps_left - 1,
                            max_reps,
                            max_len,
                            acc,
                            out,
                        );
                    }
                    acc.truncate(before);
                }
            }
            iterate(inner, segments, idx, max_reps, max_reps, max_len, acc, out);
        }
    }
}

/// Options controlling DTD-to-advertisement derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeriveOptions {
    /// Maximum flattened advertisement length (positions). The paper
    /// caps document depth at 10 in the evaluation.
    pub max_len: usize,
    /// Hard cap on the number of derived advertisements.
    pub max_advertisements: usize,
}

impl Default for DeriveOptions {
    fn default() -> Self {
        DeriveOptions {
            max_len: 10,
            max_advertisements: 200_000,
        }
    }
}

/// Derives the advertisement set of a DTD (§3.1).
///
/// The element graph is walked depth-first from the root. A walk that
/// revisits an element still on the stack closes a *cycle*; the cycle
/// body becomes a `(...)+` repetition and the walk continues past it
/// (re-entering the body once more to cover exits from mid-cycle
/// positions). Non-recursive DTDs therefore yield plain advertisements,
/// and recursive DTDs yield simple- or series-recursive advertisements;
/// embedded forms can be constructed via [`Advertisement::new`] and are
/// fully supported by matching.
///
/// The derived set is *complete for bounded documents*: every
/// root-to-leaf path of a document generated within `max_len` depth
/// matches some derived advertisement (covered by tests against the
/// document generator).
pub fn derive_advertisements(dtd: &Dtd, opts: &DeriveOptions) -> Vec<Advertisement> {
    let mut out = Vec::new();
    let mut walker = Walker {
        dtd,
        opts,
        out: &mut out,
        names: Vec::new(),
        repeats: Vec::new(),
        closed: BTreeSet::new(),
    };
    walker.visit(dtd.root());
    let mut seen = BTreeSet::new();
    out.retain(|a| seen.insert(a.to_string()));
    out
}

struct Walker<'a> {
    dtd: &'a Dtd,
    opts: &'a DeriveOptions,
    out: &'a mut Vec<Advertisement>,
    /// Flattened element names on the current walk.
    names: Vec<String>,
    /// Closed cycle intervals `[start, end)` over `names`, disjoint and
    /// in increasing order.
    repeats: Vec<(usize, usize)>,
    /// Elements that already closed a cycle on this walk (may not close
    /// another).
    closed: BTreeSet<String>,
}

impl Walker<'_> {
    fn visit(&mut self, name: &str) {
        if self.out.len() >= self.opts.max_advertisements {
            return;
        }
        if self.names.len() >= self.opts.max_len {
            return;
        }
        // A cycle closes when `name` is already on the walk.
        if let Some(first) = self.names.iter().position(|n| n == name) {
            if self.closed.contains(name) {
                return; // each element closes at most one cycle per walk
            }
            // The body spans from the earlier occurrence to the end.
            let start = first;
            let end = self.names.len();
            // Overlapping a previously closed cycle would nest repeats;
            // derivation keeps them disjoint (series form).
            if self.repeats.last().is_some_and(|&(_, e)| start < e) {
                return;
            }
            self.repeats.push((start, end));
            self.closed.insert(name.to_owned());
            // A document may end a path right after a whole number of
            // body iterations, when the body's last element can be
            // childless.
            if self
                .names
                .last()
                .is_some_and(|last| self.dtd.may_be_empty(last))
            {
                self.emit();
            }
            // Continue the walk re-entering the body once: this covers
            // documents that exit the cycle mid-body.
            self.descend(name);
            self.closed.remove(name);
            self.repeats.pop();
            return;
        }
        self.descend(name);
    }

    fn descend(&mut self, name: &str) {
        self.names.push(name.to_owned());
        let children = self.dtd.children_of(name);
        if children.is_empty() {
            self.emit();
        } else {
            // Conforming documents may end a path at any element whose
            // children are all optional — advertise those endings too.
            if self.dtd.may_be_empty(name) {
                self.emit();
            }
            let mut any = false;
            for child in children {
                let child = child.to_owned();
                let before = self.out.len();
                self.visit(&child);
                any |= self.out.len() > before;
            }
            // Depth-capped walks still advertise what was reached.
            if !any && self.names.len() >= self.opts.max_len {
                self.emit();
            }
        }
        self.names.pop();
    }

    fn emit(&mut self) {
        if self.out.len() >= self.opts.max_advertisements {
            return;
        }
        let mut segments = Vec::new();
        let mut pos = 0usize;
        for &(start, end) in &self.repeats {
            if start > pos {
                segments.push(AdvSegment::Plain(AdvPath::from_names(
                    &self.names[pos..start],
                )));
            }
            segments.push(AdvSegment::Repeat(vec![AdvSegment::Plain(
                AdvPath::from_names(&self.names[start..end]),
            )]));
            pos = end;
        }
        if pos < self.names.len() {
            segments.push(AdvSegment::Plain(AdvPath::from_names(&self.names[pos..])));
        }
        if !segments.is_empty() {
            self.out.push(Advertisement::new(segments));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adv(s: &str) -> Advertisement {
        Advertisement::parse(s).unwrap()
    }

    #[test]
    fn adv_path_matching_same_length_only() {
        let p = AdvPath::from_names(&["a", "*", "c"]);
        assert!(p.matches_path(&["a", "x", "c"]));
        assert!(!p.matches_path(&["a", "x"]));
        assert!(!p.matches_path(&["a", "x", "c", "d"]));
        assert!(!p.matches_path(&["b", "x", "c"]));
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for src in [
            "/a/b/c",
            "/a/b(/c/d)+/e",
            "/a(/b)+/c(/d)+/e",
            "/a(/b(/c)+/d)+/e",
        ] {
            let a = adv(src);
            assert_eq!(a.to_string(), src);
            let re = Advertisement::parse(&a.to_string()).unwrap();
            assert_eq!(a, re);
        }
    }

    #[test]
    fn parse_errors() {
        assert!(Advertisement::parse("").is_err());
        assert!(Advertisement::parse("/a(/b/c").is_err());
        assert!(Advertisement::parse("/a(/b)+)").is_err());
        assert!(Advertisement::parse("/a(/b)").is_err());
        assert!(Advertisement::parse("/a//b").is_err());
        assert!(Advertisement::parse("()+").is_err());
    }

    #[test]
    fn kind_classification() {
        assert_eq!(adv("/a/b").kind(), AdvKind::NonRecursive);
        assert_eq!(adv("/a(/b)+/c").kind(), AdvKind::SimpleRecursive);
        assert_eq!(adv("/a(/b)+/c(/d)+/e").kind(), AdvKind::SeriesRecursive);
        assert_eq!(adv("/a(/b(/c)+/d)+/e").kind(), AdvKind::EmbeddedRecursive);
    }

    #[test]
    fn as_non_recursive() {
        assert!(adv("/a/b").as_non_recursive().is_some());
        assert!(adv("/a(/b)+").as_non_recursive().is_none());
    }

    #[test]
    fn simple_recursive_matching() {
        // Paper's example shape: a = /a/*/c(/e/d)+/*/c/e
        let a = adv("/a/*/c(/e/d)+/*/c/e");
        assert!(a.matches_path(&["a", "x", "c", "e", "d", "y", "c", "e"]));
        assert!(a.matches_path(&["a", "x", "c", "e", "d", "e", "d", "y", "c", "e"]));
        assert!(!a.matches_path(&["a", "x", "c", "y", "c", "e"]));
        assert!(!a.matches_path(&["a", "x", "c", "e", "d", "e", "y", "c", "e"]));
    }

    #[test]
    fn series_recursive_matching() {
        let a = adv("/r(/a)+/m(/b)+/z");
        assert!(a.matches_path(&["r", "a", "m", "b", "z"]));
        assert!(a.matches_path(&["r", "a", "a", "a", "m", "b", "b", "z"]));
        assert!(!a.matches_path(&["r", "m", "b", "z"]));
        assert!(!a.matches_path(&["r", "a", "m", "z"]));
    }

    #[test]
    fn embedded_recursive_matching() {
        let a = adv("/r(/a(/b)+/c)+/z");
        assert!(a.matches_path(&["r", "a", "b", "c", "z"]));
        assert!(a.matches_path(&["r", "a", "b", "b", "c", "a", "b", "c", "z"]));
        assert!(!a.matches_path(&["r", "a", "c", "z"]));
    }

    #[test]
    fn min_len() {
        assert_eq!(adv("/a/b").min_len(), 2);
        assert_eq!(adv("/a(/b/c)+/d").min_len(), 4);
        assert_eq!(adv("/a(/b(/c)+)+/d").min_len(), 4);
    }

    #[test]
    fn expansions_cover_unrolls() {
        let a = adv("/a(/b)+/c");
        let exps = a.expansions(3, 10);
        let strs: BTreeSet<String> = exps.iter().map(std::string::ToString::to_string).collect();
        assert!(strs.contains("/a/b/c"));
        assert!(strs.contains("/a/b/b/c"));
        assert!(strs.contains("/a/b/b/b/c"));
        assert_eq!(exps.len(), 3);
    }

    #[test]
    fn expansions_respect_max_len() {
        let a = adv("/a(/b/c)+/d");
        let exps = a.expansions(10, 6);
        assert!(exps.iter().all(|e| e.len() <= 6));
        assert!(!exps.is_empty());
    }

    #[test]
    fn expansion_matches_iff_adv_matches() {
        let a = adv("/r(/a/b)+/c");
        for exp in a.expansions(4, 12) {
            let concrete: Vec<String> = exp
                .positions()
                .iter()
                .map(|t| t.name().expect("derivation emits names").to_owned())
                .collect();
            assert!(
                a.matches_path(&concrete),
                "expansion {exp} must match its advertisement"
            );
        }
    }

    #[test]
    fn derive_non_recursive() {
        let dtd =
            Dtd::parse("<!ELEMENT a (b, c)><!ELEMENT b (d)><!ELEMENT c EMPTY><!ELEMENT d EMPTY>")
                .unwrap();
        let advs = derive_advertisements(&dtd, &DeriveOptions::default());
        let strs: BTreeSet<String> = advs.iter().map(std::string::ToString::to_string).collect();
        assert_eq!(
            strs,
            BTreeSet::from(["/a/b/d".to_string(), "/a/c".to_string()])
        );
        assert!(advs.iter().all(|a| a.kind() == AdvKind::NonRecursive));
    }

    #[test]
    fn derive_simple_recursion() {
        let dtd = Dtd::parse("<!ELEMENT a (a?, b)><!ELEMENT b EMPTY>").unwrap();
        let advs = derive_advertisements(&dtd, &DeriveOptions::default());
        let strs: BTreeSet<String> = advs.iter().map(std::string::ToString::to_string).collect();
        // Direct exit and the cycled form.
        assert!(strs.contains("/a/b"), "missing /a/b in {strs:?}");
        assert!(
            strs.iter().any(|s| s.contains(")+")),
            "no recursive advertisement in {strs:?}"
        );
        // Recursive advertisement matches deep nestings.
        let rec = advs
            .iter()
            .find(|a| a.kind() != AdvKind::NonRecursive)
            .unwrap();
        assert!(
            rec.matches_path(&["a", "a", "a", "b"]) || {
                // at minimum, SOME derived adv matches the deep path
                advs.iter().any(|a| a.matches_path(&["a", "a", "a", "b"]))
            }
        );
    }

    #[test]
    fn derived_set_covers_generated_documents() {
        use rand::SeedableRng;
        let dtd = Dtd::parse(
            "<!ELEMENT doc (sec+)>\n\
             <!ELEMENT sec (sec?, par*, note?)>\n\
             <!ELEMENT par (#PCDATA)>\n\
             <!ELEMENT note (quote?)>\n\
             <!ELEMENT quote (note?)>",
        )
        .unwrap();
        let advs = derive_advertisements(&dtd, &DeriveOptions::default());
        let cfg = xdn_xml::generate::GeneratorConfig {
            max_depth: 8,
            ..Default::default()
        };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        for _ in 0..30 {
            let doc = xdn_xml::generate::generate_document(&dtd, &cfg, &mut rng);
            for path in xdn_xml::paths::extract_paths(&doc, xdn_xml::DocId(0)) {
                assert!(
                    advs.iter().any(|a| a.matches_path(&path.elements)),
                    "path {path} not covered by any derived advertisement"
                );
            }
        }
    }

    #[test]
    fn derive_respects_caps() {
        let dtd = Dtd::parse("<!ELEMENT a (a?, b)><!ELEMENT b EMPTY>").unwrap();
        let opts = DeriveOptions {
            max_len: 10,
            max_advertisements: 2,
        };
        let advs = derive_advertisements(&dtd, &opts);
        assert!(advs.len() <= 2);
    }

    #[test]
    #[should_panic(expected = "at least one position")]
    fn empty_advertisement_panics() {
        let _ = Advertisement::new(vec![]);
    }
}
