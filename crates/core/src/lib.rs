#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # xdn-core — advertisement-based routing, covering, and merging
//!
//! This crate is the paper's primary contribution: the routing machinery
//! of a content-based XML router.
//!
//! * [`adv`] — advertisements derived from DTDs (§3.1): non-recursive
//!   paths plus the simple-, series-, and embedded-recursive forms
//!   `a1(a2)+a3`, `a1(a2)+a3(a4)+a5`, `a1(a2(a3)+a4)+a5`.
//! * [`advmatch`] — the advertisement–subscription overlap algorithms
//!   of §3.2/§3.3 (`AbsExprAndAdv`, `RelExprAndAdv`, `DesExprAndAdv`,
//!   `AbsExprAndSimRecAdv`, and the series/embedded generalizations).
//! * [`cover`] — the covering (containment) algorithms of §4.2
//!   (`AbsSimCov`, `RelSimCov`, `DesCov`).
//! * [`subtree`] — the subscription tree with super pointers (§4.1),
//!   the router's core data structure.
//! * [`merge`] — the merging rules and the imperfect-merging degree
//!   `D_imperfect` (§4.3).
//! * [`rtable`] — the subscription routing table (SRT) and publication
//!   routing table (PRT) that advertisement-based routing maintains
//!   (§2.1, Figure 1), unified behind the
//!   [`rtable::PublicationRouter`] trait.
//! * [`index`] — the candidate-pruning match index: an inverted index
//!   over the element names of registered expressions plus a
//!   prepared-XPE cache, making publication matching sub-linear in the
//!   subscription count.
//! * [`automaton`] — the automaton-backed table: the whole subscription
//!   set compiled into one shared NFA
//!   ([`xdn_xpath::automaton::PathAutomaton`]), matching a publication
//!   in a single traversal regardless of the candidate count.
//! * [`shard`] — the sharded parallel router: subscriptions
//!   hash-partitioned across independent [`index::IndexedPrt`] shards,
//!   matched concurrently on the [`pool`] worker pool.
//! * [`pool`] — the fixed scoped-thread worker pool behind [`shard`],
//!   the one sanctioned thread-spawning site in the routing crates.
//!
//! ```
//! use xdn_core::cover::covers;
//! use xdn_xpath::Xpe;
//!
//! let general: Xpe = "/a/*".parse()?;
//! let specific: Xpe = "/a/b/c".parse()?;
//! assert!(covers(&general, &specific));
//! assert!(!covers(&specific, &general));
//! # Ok::<(), xdn_xpath::XpeParseError>(())
//! ```

pub mod adv;
pub mod advmatch;
pub mod automaton;
pub mod cover;
pub mod index;
pub mod merge;
pub mod pool;
pub mod rtable;
pub mod shard;
pub mod subtree;

pub use adv::{AdvKind, AdvPath, AdvSegment, Advertisement};
pub use automaton::{AutomatonPrt, AutomatonStats};
pub use cover::covers;
pub use index::{CandidateKey, IndexedPrt, PreparedXpe, XpeCache};
pub use pool::MatchPool;
pub use rtable::{PublicationRouter, RouteRequest};
pub use shard::{ShardStats, ShardedRouter};
pub use subtree::{Insertion, NodeId, SubscriptionTree};
