//! Routing tables (§2.1, Figure 1).
//!
//! Advertisement-based routing maintains two tables at each broker:
//!
//! * the **subscription routing table** ([`Srt`]) stores
//!   ⟨advertisement, last hop⟩ tuples; a subscription is forwarded only
//!   to the last hops of advertisements it overlaps;
//! * the **publication routing table** ([`Prt`]) stores
//!   ⟨subscription, last hop⟩ tuples; a publication is forwarded to the
//!   last hops of subscriptions it matches, tracing the reverse path
//!   the subscription built.
//!
//! [`Prt`] is built on the covering [`SubscriptionTree`]; [`FlatPrt`]
//! is the non-covering baseline used by the paper's `no-Cov` routing
//! strategies (Tables 2 and 3). Both — and the candidate-pruning
//! [`crate::index::IndexedPrt`] — implement [`PublicationRouter`], the
//! strategy-agnostic interface brokers program against.

use crate::adv::Advertisement;
use crate::advmatch::PreparedAdv;
use crate::subtree::{Insertion, NodeId, SubscriptionTree};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use xdn_xpath::Xpe;

/// Network-wide identifier of an advertisement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AdvId(pub u64);

/// Network-wide identifier of a subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SubId(pub u64);

impl fmt::Display for AdvId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "adv{}", self.0)
    }
}

impl fmt::Display for SubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

/// The subscription routing table: advertisements with the neighbour
/// they arrived from. Generic over the hop type `H` (a broker id, a
/// client handle, …).
#[derive(Debug, Clone)]
pub struct Srt<H> {
    entries: HashMap<AdvId, (PreparedAdv, H)>,
}

/// Longest subscription the SRT pre-expands recursive advertisements
/// for; longer subscriptions use the exact dynamic algorithm. The
/// paper caps query length at 10.
const SRT_PREPARED_SUB_LEN: usize = 16;

impl<H> Default for Srt<H> {
    fn default() -> Self {
        Srt {
            entries: HashMap::new(),
        }
    }
}

impl<H: Clone + Ord> Srt<H> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an advertisement from `last_hop`, pre-expanding its
    /// repetitions for fast repeated matching. Replaces any previous
    /// entry for the same id (re-flooded advertisements).
    pub fn insert(&mut self, id: AdvId, adv: Advertisement, last_hop: H) {
        self.entries
            .insert(id, (PreparedAdv::new(adv, SRT_PREPARED_SUB_LEN), last_hop));
    }

    /// Removes an advertisement (producer departure).
    pub fn remove(&mut self, id: AdvId) -> Option<(Advertisement, H)> {
        self.entries.remove(&id).map(|(p, h)| (p.adv().clone(), h))
    }

    /// Number of stored advertisements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The last hops whose advertisements overlap `sub` — where the
    /// subscription must be forwarded. Deduplicated.
    pub fn match_sub(&self, sub: &Xpe) -> BTreeSet<H> {
        self.entries
            .values()
            .filter(|(adv, _)| adv.overlaps(sub))
            .map(|(_, hop)| hop.clone())
            .collect()
    }

    /// Iterates over the stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (AdvId, &Advertisement, &H)> {
        self.entries
            .iter()
            .map(|(&id, (adv, hop))| (id, adv.adv(), hop))
    }

    /// Compacts the table by dropping non-recursive advertisements
    /// covered by another non-recursive advertisement **from the same
    /// last hop** (§4.2 notes advertisement covering works like
    /// subscription covering). Routing is unchanged: `P(a2) ⊆ P(a1)`
    /// means every subscription overlapping `a2` overlaps `a1`, and the
    /// hop — the routing answer — is identical. Returns the number of
    /// entries removed.
    pub fn compact(&mut self) -> usize {
        let mut ids: Vec<AdvId> = self.entries.keys().copied().collect();
        ids.sort();
        let mut dropped = Vec::new();
        for &a in &ids {
            let (pa, ha) = &self.entries[&a];
            let Some(path_a) = pa.adv().as_non_recursive() else {
                continue;
            };
            let covered = ids.iter().any(|&b| {
                if a == b || dropped.contains(&b) {
                    return false;
                }
                let (pb, hb) = &self.entries[&b];
                if ha != hb {
                    return false;
                }
                let Some(path_b) = pb.adv().as_non_recursive() else {
                    return false;
                };
                // Equal advertisements tie-break on id so exactly one
                // survives.
                crate::advmatch::adv_covers(path_b, path_a)
                    && !(crate::advmatch::adv_covers(path_a, path_b) && b > a)
            });
            if covered {
                dropped.push(a);
            }
        }
        for id in &dropped {
            self.entries.remove(id);
        }
        dropped.len()
    }
}

/// One publication in a [`PublicationRouter::route_batch`] call: the
/// root-to-leaf element path and its aligned per-element attributes,
/// borrowed from the caller.
#[derive(Debug, Clone, Copy)]
pub struct RouteRequest<'a> {
    /// Element names from root to leaf.
    pub path: &'a [String],
    /// Per-element attributes aligned with `path` (may be empty).
    pub attrs: &'a [Vec<(String, String)>],
}

/// The publication routing table abstraction: everything a broker needs
/// from its PRT, independent of the matching strategy behind it.
///
/// Implemented by the covering [`Prt`], the linear-scan [`FlatPrt`],
/// the candidate-pruning [`crate::index::IndexedPrt`], and the
/// parallel [`crate::shard::ShardedRouter`]; brokers, the simulator,
/// and the benches program against `Box<dyn PublicationRouter<H>>` and
/// stop branching on strategy internals. The trait is dyn-compatible:
/// the match visitor is a `&mut dyn FnMut`, and paths arrive as
/// concrete `&[String]`.
pub trait PublicationRouter<H: Clone + Ord>: fmt::Debug {
    /// Registers a subscription from `last_hop` and reports what the
    /// broker owes the wire (forwarding, retractions, owed directions).
    fn insert(&mut self, id: SubId, xpe: Xpe, last_hop: H) -> SubscribeOutcome<H>;

    /// Removes a subscription; reports forwarding and promotions.
    fn remove(&mut self, id: SubId) -> UnsubscribeOutcome;

    /// Calls `f` with every ⟨subscription, last hop⟩ whose expression
    /// matches `path` (with per-element `attrs`). Hops repeat if
    /// several matching subscriptions share one; dedup with
    /// [`Self::matching_hops`] when only directions are needed.
    fn for_each_matching_with_attrs(
        &self,
        path: &[String],
        attrs: &[Vec<(String, String)>],
        f: &mut dyn FnMut(SubId, &H),
    );

    /// Number of stored subscriptions (distinct expressions for the
    /// covering table).
    fn len(&self) -> usize;

    /// True if no subscriptions are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The expression registered under `id`, if present.
    fn xpe_of(&self, id: SubId) -> Option<&Xpe>;

    /// The forwarded subscriptions: a representative id, the
    /// expression, and the last hops each was received from. Used to
    /// re-forward state toward newly arrived advertisements.
    fn forwarded_subs(&self) -> Vec<(SubId, Xpe, Vec<H>)>;

    /// The effective routing table size after covering (Figures 6/7);
    /// equals [`Self::len`] for non-covering tables.
    fn effective_size(&self) -> usize {
        self.len()
    }

    /// The deduplicated last hops owed a publication on `path` — the
    /// broker's forwarding set.
    fn matching_hops(&self, path: &[String], attrs: &[Vec<(String, String)>]) -> BTreeSet<H> {
        let mut out = BTreeSet::new();
        self.for_each_matching_with_attrs(path, attrs, &mut |_, h| {
            out.insert(h.clone());
        });
        out
    }

    /// Runs the merging engine (§4.3) if the strategy supports it.
    /// Non-covering tables have nothing to merge and return no
    /// applications.
    fn apply_merging(
        &mut self,
        _universe: &[Vec<String>],
        _cfg: &crate::merge::MergeConfig,
        _next_id: &mut dyn FnMut() -> SubId,
    ) -> Vec<MergeApplication> {
        Vec::new()
    }

    /// The forwarding sets for a whole batch of publications, in
    /// request order. Sequential tables answer one request at a time;
    /// [`crate::shard::ShardedRouter`] fans the batch across its
    /// worker pool. Either way `route_batch(reqs)[i]` equals
    /// `matching_hops(reqs[i].path, reqs[i].attrs)` exactly.
    fn route_batch(&self, requests: &[RouteRequest<'_>]) -> Vec<BTreeSet<H>> {
        requests
            .iter()
            .map(|r| self.matching_hops(r.path, r.attrs))
            .collect()
    }

    /// Parallel-matching metrics (per-shard occupancy and latency,
    /// pool counters); `None` for unsharded tables.
    fn shard_stats(&self) -> Option<crate::shard::ShardStats> {
        None
    }

    /// Shared-automaton metrics (state count, transitions, rebuild
    /// timings); `None` unless the table matches with
    /// [`crate::automaton::AutomatonPrt`].
    fn automaton_stats(&self) -> Option<crate::automaton::AutomatonStats> {
        None
    }
}

/// Result of a [`PublicationRouter::insert`] call, telling the broker
/// what to do on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscribeOutcome<H = ()> {
    /// Forward this subscription to matching neighbours (it is not
    /// covered by anything already forwarded).
    pub forward: bool,
    /// Previously forwarded subscriptions now covered by the new one:
    /// send unsubscriptions for them (covering-based routing, §4.1).
    pub retract: Vec<SubId>,
    /// When covered (`forward == false`): the last hops of the
    /// *top-level* covering subscription. Suppression is only valid
    /// toward neighbours the coverer was itself sent to — it was sent
    /// everywhere **except** its own last hops — so the broker must
    /// still forward this subscription toward any of these hops that
    /// are routing targets. Empty for synthetic mergers (which were
    /// forwarded everywhere on creation).
    pub covered_root_hops: Vec<H>,
}

/// Result of a [`PublicationRouter::remove`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsubscribeOutcome {
    /// Forward the unsubscription (the subscription had been forwarded).
    pub forward: bool,
    /// Subscriptions uncovered by the removal that must now be
    /// (re-)forwarded.
    pub promote: Vec<SubId>,
}

/// The covering publication routing table: a [`SubscriptionTree`] whose
/// payloads are the ⟨subscription id, last hop⟩ pairs sharing an
/// expression.
#[derive(Debug)]
pub struct Prt<H> {
    tree: SubscriptionTree<Vec<(SubId, H)>>,
    by_sub: HashMap<SubId, NodeId>,
    by_xpe: HashMap<Xpe, NodeId>,
    /// Synthetic merger subscriptions (empty payload) by node.
    synthetic: HashMap<NodeId, SubId>,
}

impl<H> Default for Prt<H> {
    fn default() -> Self {
        Prt {
            tree: SubscriptionTree::new(),
            by_sub: HashMap::new(),
            by_xpe: HashMap::new(),
            synthetic: HashMap::new(),
        }
    }
}

/// One merger produced by [`Prt::apply_merging`], with the control
/// traffic it implies: subscribe `xpe` under `merger_id` upstream and
/// retract the absorbed subscriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeApplication {
    /// Fresh id under which the merger is forwarded.
    pub merger_id: SubId,
    /// The merger expression.
    pub xpe: Xpe,
    /// Previously forwarded subscription ids the merger replaces.
    pub retract: Vec<SubId>,
}

impl<H: Clone + Ord> Prt<H> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The unique last hops of `node`'s top-level ancestor, excluding
    /// `arriving` (the coverer was never forwarded toward its own
    /// origins, so a covered subscription still owes those directions).
    fn root_hops_of(&self, node: NodeId, arriving: &H) -> Vec<H> {
        let mut root = node;
        while let Some(p) = self.tree.parent(root) {
            root = p;
        }
        if self.synthetic.contains_key(&root) {
            // Mergers are created locally and forwarded to every
            // routing target; nothing is owed.
            return Vec::new();
        }
        let mut hops: Vec<H> = self
            .tree
            .payload(root)
            .iter()
            .map(|(_, h)| h.clone())
            .collect();
        hops.sort();
        hops.dedup();
        hops.retain(|h| h != arriving);
        hops
    }

    /// The expression registered under `id`, if present.
    pub fn xpe_of(&self, id: SubId) -> Option<&Xpe> {
        self.by_sub.get(&id).map(|&n| self.tree.xpe(n))
    }

    /// Number of distinct expressions stored (tree nodes).
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True if no subscriptions are stored.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The effective (top-level) routing table size after covering —
    /// the metric of Figures 6 and 7.
    pub fn effective_size(&self) -> usize {
        self.tree.root_count()
    }

    /// Runs the merging engine (§4.3) over the table and returns, for
    /// each merger created, the subscription to issue upstream and the
    /// absorbed subscriptions to retract. `next_id` supplies fresh ids
    /// for the synthetic merger subscriptions.
    pub fn apply_merging<S: AsRef<str>>(
        &mut self,
        universe: &[Vec<S>],
        cfg: &crate::merge::MergeConfig,
        mut next_id: impl FnMut() -> SubId,
    ) -> Vec<MergeApplication> {
        let report = crate::merge::merge_tree(&mut self.tree, universe, cfg);
        let mut out = Vec::new();
        for (node, demoted) in report.mergers {
            let merger_id = next_id();
            self.by_sub.insert(merger_id, node);
            self.by_xpe.insert(self.tree.xpe(node).clone(), node);
            self.synthetic.insert(node, merger_id);
            let mut retract = Vec::new();
            for d in demoted {
                retract.extend(self.tree.payload(d).iter().map(|(s, _)| *s));
                if let Some(&syn) = self.synthetic.get(&d) {
                    retract.push(syn);
                }
            }
            out.push(MergeApplication {
                merger_id,
                xpe: self.tree.xpe(node).clone(),
                retract,
            });
        }
        out
    }

    /// Access to the underlying tree (merging, diagnostics).
    pub fn tree_mut(&mut self) -> &mut SubscriptionTree<Vec<(SubId, H)>> {
        &mut self.tree
    }

    /// Shared access to the underlying tree.
    pub fn tree(&self) -> &SubscriptionTree<Vec<(SubId, H)>> {
        &self.tree
    }
}

impl<H: Clone + Ord + fmt::Debug> PublicationRouter<H> for Prt<H> {
    /// Equal expressions share a tree node (their hops are unioned); a
    /// covered expression is stored but not forwarded; a covering
    /// expression demotes the top-level expressions it covers, which
    /// are reported in [`SubscribeOutcome::retract`].
    fn insert(&mut self, id: SubId, xpe: Xpe, last_hop: H) -> SubscribeOutcome<H> {
        if let Some(&node) = self.by_xpe.get(&xpe) {
            let payload = self.tree.payload_mut(node);
            // Re-forwarded subscriptions (advertisement re-evaluation)
            // are idempotent.
            if !payload.contains(&(id, last_hop.clone())) {
                payload.push((id, last_hop.clone()));
            }
            self.by_sub.insert(id, node);
            // An equal expression was already handled upstream except
            // toward the hops it arrived from (including this one, if
            // it differs).
            return SubscribeOutcome {
                forward: false,
                retract: Vec::new(),
                covered_root_hops: self.root_hops_of(node, &last_hop),
            };
        }
        let insertion = self.tree.insert(xpe.clone(), vec![(id, last_hop.clone())]);
        let node = insertion.id();
        self.by_xpe.insert(xpe, node);
        self.by_sub.insert(id, node);
        match insertion {
            Insertion::CoveredBy { .. } => SubscribeOutcome {
                forward: false,
                retract: Vec::new(),
                covered_root_hops: self.root_hops_of(node, &last_hop),
            },
            Insertion::NewTop { demoted, .. } => SubscribeOutcome {
                forward: true,
                retract: demoted
                    .iter()
                    .flat_map(|&d| self.tree.payload(d).iter().map(|(s, _)| *s))
                    .collect(),
                covered_root_hops: Vec::new(),
            },
        }
    }

    /// When the last subscriber of an expression leaves, the node is
    /// dropped and any children it was covering are promoted — those
    /// must be re-forwarded upstream. Unknown ids are ignored
    /// (duplicate unsubscriptions are routine in a network that
    /// retracts covered subscriptions).
    fn remove(&mut self, id: SubId) -> UnsubscribeOutcome {
        let Some(node) = self.by_sub.remove(&id) else {
            return UnsubscribeOutcome {
                forward: false,
                promote: Vec::new(),
            };
        };
        let subs = self.tree.payload_mut(node);
        subs.retain(|(s, _)| *s != id);
        if !subs.is_empty() {
            return UnsubscribeOutcome {
                forward: false,
                promote: Vec::new(),
            };
        }
        let was_top = self.tree.parent(node).is_none();
        self.by_xpe.remove(&self.tree.xpe(node).clone());
        self.synthetic.remove(&node);
        let (_, promoted) = self.tree.remove(node);
        UnsubscribeOutcome {
            forward: was_top,
            promote: promoted
                .iter()
                .flat_map(|&p| {
                    self.tree
                        .payload(p)
                        .iter()
                        .map(|(s, _)| *s)
                        .chain(self.synthetic.get(&p).copied())
                })
                .collect(),
        }
    }

    fn for_each_matching_with_attrs(
        &self,
        path: &[String],
        attrs: &[Vec<(String, String)>],
        f: &mut dyn FnMut(SubId, &H),
    ) {
        self.tree
            .for_each_matching_with_attrs(path, attrs, |_, subs| {
                for (id, hop) in subs {
                    f(*id, hop);
                }
            });
    }

    fn len(&self) -> usize {
        Prt::len(self)
    }

    fn xpe_of(&self, id: SubId) -> Option<&Xpe> {
        Prt::xpe_of(self, id)
    }

    /// Each top-level tree node yields a representative id (the
    /// synthetic merger's, or the first subscriber's) with the hops the
    /// expression was received from.
    fn forwarded_subs(&self) -> Vec<(SubId, Xpe, Vec<H>)> {
        self.tree
            .roots()
            .iter()
            .filter_map(|&n| {
                let payload = self.tree.payload(n);
                let id = self
                    .synthetic
                    .get(&n)
                    .copied()
                    .or_else(|| payload.first().map(|(s, _)| *s))?;
                let hops = payload.iter().map(|(_, h)| h.clone()).collect();
                Some((id, self.tree.xpe(n).clone(), hops))
            })
            .collect()
    }

    fn effective_size(&self) -> usize {
        Prt::effective_size(self)
    }

    fn apply_merging(
        &mut self,
        universe: &[Vec<String>],
        cfg: &crate::merge::MergeConfig,
        next_id: &mut dyn FnMut() -> SubId,
    ) -> Vec<MergeApplication> {
        Prt::apply_merging(self, universe, cfg, next_id)
    }
}

/// The non-covering baseline: a flat list of subscriptions, each
/// matched independently (the `no-Cov` strategies of Tables 2/3).
#[derive(Debug, Clone)]
pub struct FlatPrt<H> {
    entries: HashMap<SubId, (Xpe, H)>,
}

impl<H> Default for FlatPrt<H> {
    fn default() -> Self {
        FlatPrt {
            entries: HashMap::new(),
        }
    }
}

impl<H: Clone + Ord> FlatPrt<H> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The expression registered under `id`, if present.
    pub fn xpe_of(&self, id: SubId) -> Option<&Xpe> {
        self.entries.get(&id).map(|(xpe, _)| xpe)
    }

    /// Number of stored subscriptions — also the effective routing
    /// table size, since nothing is elided.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no subscriptions are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<H: Clone + Ord + fmt::Debug> PublicationRouter<H> for FlatPrt<H> {
    /// Always forwarded (no covering).
    fn insert(&mut self, id: SubId, xpe: Xpe, last_hop: H) -> SubscribeOutcome<H> {
        self.entries.insert(id, (xpe, last_hop));
        SubscribeOutcome {
            forward: true,
            retract: Vec::new(),
            covered_root_hops: Vec::new(),
        }
    }

    fn remove(&mut self, id: SubId) -> UnsubscribeOutcome {
        let known = self.entries.remove(&id).is_some();
        UnsubscribeOutcome {
            forward: known,
            promote: Vec::new(),
        }
    }

    fn for_each_matching_with_attrs(
        &self,
        path: &[String],
        attrs: &[Vec<(String, String)>],
        f: &mut dyn FnMut(SubId, &H),
    ) {
        for (&id, (xpe, hop)) in &self.entries {
            if xdn_xpath::matching::matches_path_with_attrs(xpe, path, attrs) {
                f(id, hop);
            }
        }
    }

    fn len(&self) -> usize {
        FlatPrt::len(self)
    }

    fn xpe_of(&self, id: SubId) -> Option<&Xpe> {
        FlatPrt::xpe_of(self, id)
    }

    /// Every stored subscription with its last hop (all are forwarded
    /// in the flat scheme).
    fn forwarded_subs(&self) -> Vec<(SubId, Xpe, Vec<H>)> {
        self.entries
            .iter()
            .map(|(&id, (xpe, h))| (id, xpe.clone(), vec![h.clone()]))
            .collect()
    }
}

/// A [`PublicationRouter`] decorator that records per-operation latency
/// into [`xdn_obs::Histogram`]s: one for match/route calls
/// ([`TimedRouter::route_times`]), one for subscription inserts
/// ([`TimedRouter::insert_times`]).
///
/// This is the sanctioned timing hook for routing-table operations —
/// benchmark reports read these histograms instead of re-deriving means
/// from ad-hoc `Instant` arithmetic (which `cargo xtask lint` forbids
/// in this crate).
#[derive(Debug, Default)]
pub struct TimedRouter<R> {
    inner: R,
    route_times: std::cell::RefCell<xdn_obs::Histogram>,
    insert_times: std::cell::RefCell<xdn_obs::Histogram>,
}

impl<R> TimedRouter<R> {
    /// Wraps `inner`, starting with empty histograms.
    pub fn new(inner: R) -> Self {
        TimedRouter {
            inner,
            route_times: std::cell::RefCell::new(xdn_obs::Histogram::new()),
            insert_times: std::cell::RefCell::new(xdn_obs::Histogram::new()),
        }
    }

    /// The wrapped router.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// The wrapped router, mutably. Operations through this reference
    /// bypass timing.
    pub fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Unwraps the router, dropping the recorded times.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Snapshot of the match/route latency distribution.
    pub fn route_times(&self) -> xdn_obs::Histogram {
        self.route_times.borrow().clone()
    }

    /// Snapshot of the insert latency distribution.
    pub fn insert_times(&self) -> xdn_obs::Histogram {
        self.insert_times.borrow().clone()
    }

    /// Clears both histograms (e.g. between a warm-up and a measured
    /// phase).
    pub fn reset_times(&self) {
        *self.route_times.borrow_mut() = xdn_obs::Histogram::new();
        *self.insert_times.borrow_mut() = xdn_obs::Histogram::new();
    }
}

impl<H: Clone + Ord, R: PublicationRouter<H>> PublicationRouter<H> for TimedRouter<R> {
    fn insert(&mut self, id: SubId, xpe: Xpe, last_hop: H) -> SubscribeOutcome<H> {
        let sw = xdn_obs::Stopwatch::start();
        let outcome = self.inner.insert(id, xpe, last_hop);
        self.insert_times.borrow_mut().record(sw.elapsed());
        outcome
    }

    fn remove(&mut self, id: SubId) -> UnsubscribeOutcome {
        self.inner.remove(id)
    }

    fn for_each_matching_with_attrs(
        &self,
        path: &[String],
        attrs: &[Vec<(String, String)>],
        f: &mut dyn FnMut(SubId, &H),
    ) {
        let sw = xdn_obs::Stopwatch::start();
        self.inner.for_each_matching_with_attrs(path, attrs, f);
        self.route_times.borrow_mut().record(sw.elapsed());
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn xpe_of(&self, id: SubId) -> Option<&Xpe> {
        self.inner.xpe_of(id)
    }

    fn forwarded_subs(&self) -> Vec<(SubId, Xpe, Vec<H>)> {
        self.inner.forwarded_subs()
    }

    fn effective_size(&self) -> usize {
        self.inner.effective_size()
    }

    fn apply_merging(
        &mut self,
        universe: &[Vec<String>],
        cfg: &crate::merge::MergeConfig,
        next_id: &mut dyn FnMut() -> SubId,
    ) -> Vec<MergeApplication> {
        self.inner.apply_merging(universe, cfg, next_id)
    }

    /// Delegates to the inner batch path (which may be parallel) and
    /// spreads the batch's wall time over its requests so the
    /// histogram's count stays one sample per routed publication.
    fn route_batch(&self, requests: &[RouteRequest<'_>]) -> Vec<BTreeSet<H>> {
        let sw = xdn_obs::Stopwatch::start();
        let out = self.inner.route_batch(requests);
        if !requests.is_empty() {
            let per = sw.elapsed() / requests.len() as u32;
            let mut times = self.route_times.borrow_mut();
            for _ in requests {
                times.record(per);
            }
        }
        out
    }

    fn shard_stats(&self) -> Option<crate::shard::ShardStats> {
        self.inner.shard_stats()
    }

    fn automaton_stats(&self) -> Option<crate::automaton::AutomatonStats> {
        self.inner.automaton_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adv::AdvPath;

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    fn adv(names: &[&str]) -> Advertisement {
        Advertisement::non_recursive(AdvPath::from_names(names))
    }

    fn path(p: &[&str]) -> Vec<String> {
        p.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn timed_router_records_and_delegates() {
        let mut r: TimedRouter<FlatPrt<u32>> = TimedRouter::new(FlatPrt::new());
        r.insert(SubId(1), xpe("/a/b"), 7);
        r.insert(SubId(2), xpe("//c"), 8);
        assert_eq!(r.len(), 2);
        assert_eq!(r.insert_times().count(), 2);
        let hops = r.matching_hops(&["a".to_string(), "b".to_string()], &[]);
        assert_eq!(hops.into_iter().collect::<Vec<_>>(), vec![7]);
        assert_eq!(r.route_times().count(), 1);
        r.reset_times();
        assert!(r.route_times().is_empty());
        assert!(r.insert_times().is_empty());
        assert_eq!(r.into_inner().len(), 2);
    }

    #[test]
    fn srt_matches_overlapping_advertisements() {
        let mut srt = Srt::new();
        srt.insert(AdvId(1), adv(&["quotes", "nyse", "price"]), "west");
        srt.insert(AdvId(2), adv(&["news", "sports", "story"]), "east");
        let hops = srt.match_sub(&xpe("/quotes/*/price"));
        assert_eq!(hops.into_iter().collect::<Vec<_>>(), vec!["west"]);
        let both = srt.match_sub(&xpe("//price"));
        assert_eq!(both.len(), 1);
        assert_eq!(srt.len(), 2);
    }

    #[test]
    fn srt_dedups_hops() {
        let mut srt = Srt::new();
        srt.insert(AdvId(1), adv(&["a", "b"]), "n1");
        srt.insert(AdvId(2), adv(&["a", "c"]), "n1");
        assert_eq!(srt.match_sub(&xpe("/a")).len(), 1);
    }

    #[test]
    fn srt_remove() {
        let mut srt = Srt::new();
        srt.insert(AdvId(1), adv(&["a"]), "n1");
        assert!(srt.remove(AdvId(1)).is_some());
        assert!(srt.remove(AdvId(1)).is_none());
        assert!(srt.is_empty());
    }

    #[test]
    fn prt_forwarding_and_covering() {
        let mut prt = Prt::new();
        let wide = prt.insert(SubId(1), xpe("/a/*"), "hopA");
        assert!(wide.forward);
        let narrow = prt.insert(SubId(2), xpe("/a/b"), "hopB");
        assert!(!narrow.forward, "covered by /a/*");
        assert_eq!(prt.effective_size(), 1);
        assert_eq!(prt.len(), 2);
    }

    #[test]
    fn prt_retracts_on_takeover() {
        let mut prt = Prt::new();
        prt.insert(SubId(1), xpe("/a/b"), "h1");
        prt.insert(SubId(2), xpe("/a/c"), "h2");
        let top = prt.insert(SubId(3), xpe("/a/*"), "h3");
        assert!(top.forward);
        let mut retract = top.retract;
        retract.sort();
        assert_eq!(retract, vec![SubId(1), SubId(2)]);
    }

    #[test]
    fn prt_equal_xpes_share_node() {
        let mut prt = Prt::new();
        let first = prt.insert(SubId(1), xpe("/a/b"), "h1");
        assert!(first.forward);
        let second = prt.insert(SubId(2), xpe("/a/b"), "h2");
        assert!(!second.forward);
        assert_eq!(prt.len(), 1);
        let hops = prt.matching_hops(&path(&["a", "b"]), &[]);
        assert_eq!(hops.len(), 2);
    }

    #[test]
    fn prt_routing_collects_all_matching_hops() {
        let mut prt = Prt::new();
        prt.insert(SubId(1), xpe("/a/*"), "h1");
        prt.insert(SubId(2), xpe("/a/b"), "h2");
        prt.insert(SubId(3), xpe("/x"), "h3");
        let hops = prt.matching_hops(&path(&["a", "b"]), &[]);
        assert_eq!(hops.into_iter().collect::<Vec<_>>(), vec!["h1", "h2"]);
    }

    #[test]
    fn prt_unsubscribe_promotes() {
        let mut prt = Prt::new();
        prt.insert(SubId(1), xpe("/a/*"), "h1");
        prt.insert(SubId(2), xpe("/a/b"), "h2");
        let out = prt.remove(SubId(1));
        assert!(out.forward, "the wide subscription had been forwarded");
        assert_eq!(out.promote, vec![SubId(2)], "/a/b is now uncovered");
        assert_eq!(prt.effective_size(), 1);
    }

    #[test]
    fn prt_unsubscribe_shared_node_keeps_entry() {
        let mut prt = Prt::new();
        prt.insert(SubId(1), xpe("/a/b"), "h1");
        prt.insert(SubId(2), xpe("/a/b"), "h2");
        let out = prt.remove(SubId(1));
        assert!(
            !out.forward,
            "another subscriber still needs the expression"
        );
        assert_eq!(prt.matching_hops(&path(&["a", "b"]), &[]).len(), 1);
    }

    #[test]
    fn prt_unknown_unsubscribe_is_noop() {
        let mut prt = Prt::<&str>::new();
        let out = prt.remove(SubId(42));
        assert!(!out.forward && out.promote.is_empty());
    }

    #[test]
    fn flat_prt_always_forwards() {
        let mut flat = FlatPrt::new();
        assert!(flat.insert(SubId(1), xpe("/a/*"), "h1").forward);
        assert!(flat.insert(SubId(2), xpe("/a/b"), "h2").forward);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.matching_hops(&path(&["a", "b"]), &[]).len(), 2);
        assert!(flat.remove(SubId(1)).forward);
        assert!(!flat.remove(SubId(1)).forward);
    }

    #[test]
    fn flat_and_covering_route_identically() {
        let subs = ["/a/*", "/a/b", "a//c", "/x/y", "//b"];
        let mut prt = Prt::new();
        let mut flat = FlatPrt::new();
        for (i, s) in subs.iter().enumerate() {
            prt.insert(SubId(i as u64), xpe(s), i);
            flat.insert(SubId(i as u64), xpe(s), i);
        }
        let paths: [&[&str]; 4] = [&["a", "b"], &["a", "q", "c"], &["x", "y"], &["z", "b", "c"]];
        for p in paths {
            let p = path(p);
            assert_eq!(
                prt.matching_hops(&p, &[]),
                flat.matching_hops(&p, &[]),
                "divergence on {p:?}"
            );
        }
    }

    #[test]
    fn route_batch_default_matches_per_request_routing() {
        let mut prt = Prt::new();
        prt.insert(SubId(1), xpe("/a/*"), "h1");
        prt.insert(SubId(2), xpe("/x"), "h2");
        let (pa, px) = (path(&["a", "b"]), path(&["x"]));
        let reqs = [
            RouteRequest {
                path: &pa,
                attrs: &[],
            },
            RouteRequest {
                path: &px,
                attrs: &[],
            },
        ];
        let batched = prt.route_batch(&reqs);
        assert_eq!(batched[0], prt.matching_hops(&pa, &[]));
        assert_eq!(batched[1], prt.matching_hops(&px, &[]));
        assert!(prt.shard_stats().is_none(), "unsharded tables have none");
    }
}

#[cfg(test)]
mod compact_tests {
    use super::*;
    use crate::adv::AdvPath;

    fn adv(names: &[&str]) -> Advertisement {
        Advertisement::non_recursive(AdvPath::from_names(names))
    }

    #[test]
    fn compact_drops_covered_same_hop() {
        let mut srt = Srt::new();
        srt.insert(AdvId(1), adv(&["a", "*"]), "n1");
        srt.insert(AdvId(2), adv(&["a", "b"]), "n1");
        srt.insert(AdvId(3), adv(&["a", "b"]), "n2"); // different hop: kept
        let removed = srt.compact();
        assert_eq!(removed, 1);
        assert_eq!(srt.len(), 2);
        // Routing unchanged for the sub that only overlapped the
        // dropped advertisement.
        let hops = srt.match_sub(&"/a/b".parse().unwrap());
        assert_eq!(hops.len(), 2);
    }

    #[test]
    fn compact_keeps_one_of_equal_pair() {
        let mut srt = Srt::new();
        srt.insert(AdvId(1), adv(&["x", "y"]), "n1");
        srt.insert(AdvId(2), adv(&["x", "y"]), "n1");
        assert_eq!(srt.compact(), 1);
        assert_eq!(srt.len(), 1);
    }

    #[test]
    fn compact_ignores_recursive() {
        let mut srt = Srt::new();
        srt.insert(AdvId(1), Advertisement::parse("/a(/b)+/c").unwrap(), "n1");
        srt.insert(AdvId(2), Advertisement::parse("/a(/b)+/c").unwrap(), "n1");
        assert_eq!(srt.compact(), 0, "recursive advertisements are left alone");
    }

    #[test]
    fn compact_empty_and_singleton() {
        let mut srt: Srt<&str> = Srt::new();
        assert_eq!(srt.compact(), 0);
        srt.insert(AdvId(1), adv(&["a"]), "n1");
        assert_eq!(srt.compact(), 0);
        assert_eq!(srt.len(), 1);
    }
}
