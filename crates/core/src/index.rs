//! The candidate-pruning publication-match index.
//!
//! The flat baseline ([`crate::rtable::FlatPrt`]) matches a publication
//! by evaluating every stored XPE — linear in the subscription count,
//! the dominant cost of the paper's routing-time measurements (Tables
//! 2/3). [`IndexedPrt`] keeps the same always-forward semantics but
//! evaluates only *candidate* subscriptions selected by an inverted
//! index over the element names of the registered expressions.
//!
//! # The pruning rule
//!
//! Every registered XPE is analysed once into a [`PreparedXpe`]:
//!
//! * its **required names** — the concrete (non-wildcard) node tests;
//!   a path can only satisfy the XPE if every required name occurs
//!   among the path's elements, because each name test must accept
//!   some path element verbatim;
//! * its **minimum path length** — each location step consumes at
//!   least one path element, so shorter paths can never match;
//! * a single **candidate key**, the most selective necessary
//!   condition the analysis can prove:
//!   - [`CandidateKey::Anchored`] `{depth, name}` — for absolute
//!     expressions whose steps up to `depth` all use the child axis,
//!     the concrete name at `depth` must equal the path element at
//!     that exact position (wildcards before it keep positions fixed;
//!     the *deepest* such pair is chosen, since document trees fan out
//!     with depth);
//!   - [`CandidateKey::Contains`] `(name)` — otherwise, some concrete
//!     name must occur somewhere in the path (the last one is chosen,
//!     as later steps sit deeper in the document and are rarer);
//!   - [`CandidateKey::Any`] — all-wildcard expressions, which must
//!     always be evaluated.
//!
//! Each subscription lives in exactly **one** bucket, so candidate
//! collection never produces duplicates. The rule is *exact* — it only
//! ever discards expressions that provably cannot match — so
//! [`IndexedPrt`] returns bit-identical results to the linear scan
//! (property-tested in `crates/core/tests/index_props.rs`).

use crate::rtable::{PublicationRouter, SubId, SubscribeOutcome, UnsubscribeOutcome};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use xdn_xpath::ast::{Axis, NodeTest};
use xdn_xpath::Xpe;

/// The most selective necessary match condition of one XPE — the
/// bucket the subscription is filed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateKey {
    /// `path[depth]` must be exactly `name` (absolute child-axis
    /// prefix).
    Anchored {
        /// Zero-based position the name is pinned to.
        depth: usize,
        /// The required element name at that position.
        name: String,
    },
    /// Some path element must be `name`.
    Contains(String),
    /// No concrete name anywhere — always a candidate.
    Any,
}

/// One XPE analysed for indexed matching. Analysis runs once per
/// distinct expression (see [`XpeCache`]); matching a publication
/// reuses the precomputed facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedXpe {
    xpe: Xpe,
    /// Deduplicated concrete names; all must occur in a matching path.
    required: Vec<String>,
    /// Minimum number of path elements a match needs (the step count).
    min_len: usize,
    key: CandidateKey,
}

impl PreparedXpe {
    /// Analyses `xpe` into its pruning facts.
    pub fn analyze(xpe: &Xpe) -> Self {
        let steps = xpe.steps();
        let mut required: Vec<String> = Vec::new();
        for step in steps {
            if let NodeTest::Name(n) = &step.test {
                if !required.iter().any(|r| r == n) {
                    required.push(n.clone());
                }
            }
        }
        // Deepest concrete name inside the absolute child-axis prefix.
        let mut anchored: Option<(usize, String)> = None;
        if xpe.is_absolute() {
            for (depth, step) in steps.iter().enumerate() {
                if step.axis != Axis::Child {
                    break;
                }
                if let NodeTest::Name(n) = &step.test {
                    anchored = Some((depth, n.clone()));
                }
            }
        }
        let key = match (anchored, required.last()) {
            (Some((depth, name)), _) => CandidateKey::Anchored { depth, name },
            (None, Some(last)) => CandidateKey::Contains(last.clone()),
            (None, None) => CandidateKey::Any,
        };
        PreparedXpe {
            xpe: xpe.clone(),
            required,
            min_len: steps.len(),
            key,
        }
    }

    /// The analysed expression.
    pub fn xpe(&self) -> &Xpe {
        &self.xpe
    }

    /// The bucket this expression is filed under.
    pub fn key(&self) -> &CandidateKey {
        &self.key
    }

    /// Cheap necessary-condition check ahead of the full matcher:
    /// length and required-name containment. `names` holds the path's
    /// distinct element names.
    fn prefilter(&self, path_len: usize, names: &HashSet<&str>) -> bool {
        path_len >= self.min_len && self.required.iter().all(|r| names.contains(r.as_str()))
    }

    /// Full evaluation against a path with per-element attributes.
    pub fn matches<S: AsRef<str>>(&self, path: &[S], attrs: &[Vec<(String, String)>]) -> bool {
        xdn_xpath::matching::matches_path_with_attrs(&self.xpe, path, attrs)
    }
}

/// A memo of analysed expressions, so re-subscriptions of an XPE the
/// table has already seen (equal filters from many clients are the
/// common case in dissemination workloads) skip re-analysis.
#[derive(Debug, Default)]
pub struct XpeCache {
    prepared: HashMap<Xpe, Arc<PreparedXpe>>,
    hits: u64,
    misses: u64,
}

impl XpeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The prepared form of `xpe`, analysing it on first sight.
    pub fn prepare(&mut self, xpe: &Xpe) -> Arc<PreparedXpe> {
        if let Some(p) = self.prepared.get(xpe) {
            self.hits += 1;
            return p.clone();
        }
        self.misses += 1;
        let p = Arc::new(PreparedXpe::analyze(xpe));
        self.prepared.insert(xpe.clone(), p.clone());
        p
    }

    /// Number of distinct expressions analysed.
    pub fn len(&self) -> usize {
        self.prepared.len()
    }

    /// True if nothing has been analysed yet.
    pub fn is_empty(&self) -> bool {
        self.prepared.is_empty()
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// The indexed publication routing table: [`crate::rtable::FlatPrt`]
/// semantics (no covering, every subscription forwarded) with
/// sub-linear matching via the candidate index.
#[derive(Debug)]
pub struct IndexedPrt<H> {
    entries: HashMap<SubId, (Arc<PreparedXpe>, H)>,
    /// `depth -> name -> subscriptions` for [`CandidateKey::Anchored`].
    by_anchor: HashMap<usize, HashMap<String, Vec<SubId>>>,
    /// `name -> subscriptions` for [`CandidateKey::Contains`].
    by_name: HashMap<String, Vec<SubId>>,
    /// Subscriptions that must be evaluated against every path.
    unkeyed: Vec<SubId>,
    cache: XpeCache,
}

impl<H> Default for IndexedPrt<H> {
    fn default() -> Self {
        Self::new()
    }
}

impl<H> IndexedPrt<H> {
    /// Creates an empty table.
    pub fn new() -> Self {
        IndexedPrt {
            entries: HashMap::new(),
            by_anchor: HashMap::new(),
            by_name: HashMap::new(),
            unkeyed: Vec::new(),
            cache: XpeCache::new(),
        }
    }

    /// The prepared-expression cache (diagnostics).
    pub fn cache(&self) -> &XpeCache {
        &self.cache
    }

    fn bucket_mut(&mut self, key: &CandidateKey) -> &mut Vec<SubId> {
        match key {
            CandidateKey::Anchored { depth, name } => self
                .by_anchor
                .entry(*depth)
                .or_default()
                .entry(name.clone())
                .or_default(),
            CandidateKey::Contains(name) => self.by_name.entry(name.clone()).or_default(),
            CandidateKey::Any => &mut self.unkeyed,
        }
    }

    fn unindex(&mut self, id: SubId, key: &CandidateKey) {
        let bucket = match key {
            CandidateKey::Anchored { depth, name } => self
                .by_anchor
                .get_mut(depth)
                .and_then(|m| m.get_mut(name.as_str())),
            CandidateKey::Contains(name) => self.by_name.get_mut(name.as_str()),
            CandidateKey::Any => Some(&mut self.unkeyed),
        };
        if let Some(bucket) = bucket {
            if let Some(pos) = bucket.iter().position(|&s| s == id) {
                bucket.swap_remove(pos);
            }
        }
    }
}

impl<H: Clone + Ord> IndexedPrt<H> {
    /// Registers a subscription; always forwarded (no covering), like
    /// the flat baseline. Re-registering an id replaces its expression.
    pub fn subscribe(&mut self, id: SubId, xpe: Xpe, last_hop: H) -> SubscribeOutcome<H> {
        let prepared = self.cache.prepare(&xpe);
        if let Some((old, _)) = self.entries.insert(id, (prepared.clone(), last_hop)) {
            let key = old.key().clone();
            self.unindex(id, &key);
        }
        let key = prepared.key().clone();
        self.bucket_mut(&key).push(id);
        SubscribeOutcome {
            forward: true,
            retract: Vec::new(),
            covered_root_hops: Vec::new(),
        }
    }

    /// Removes a subscription.
    pub fn unsubscribe(&mut self, id: SubId) -> UnsubscribeOutcome {
        let known = match self.entries.remove(&id) {
            Some((prepared, _)) => {
                let key = prepared.key().clone();
                self.unindex(id, &key);
                true
            }
            None => false,
        };
        UnsubscribeOutcome {
            forward: known,
            promote: Vec::new(),
        }
    }

    /// Calls `f` for every stored subscription matching the path —
    /// evaluating only the index's candidates.
    pub fn for_each_match<S: AsRef<str>>(
        &self,
        path: &[S],
        attrs: &[Vec<(String, String)>],
        mut f: impl FnMut(SubId, &H),
    ) {
        if self.entries.is_empty() || path.is_empty() {
            return;
        }
        let names: HashSet<&str> = path.iter().map(AsRef::as_ref).collect();
        let consider = |id: SubId, f: &mut dyn FnMut(SubId, &H)| {
            let (prepared, hop) = &self.entries[&id];
            if prepared.prefilter(path.len(), &names) && prepared.matches(path, attrs) {
                f(id, hop);
            }
        };
        for (depth, element) in path.iter().enumerate() {
            if let Some(bucket) = self
                .by_anchor
                .get(&depth)
                .and_then(|m| m.get(element.as_ref()))
            {
                for &id in bucket {
                    consider(id, &mut f);
                }
            }
        }
        for &name in &names {
            if let Some(bucket) = self.by_name.get(name) {
                for &id in bucket {
                    consider(id, &mut f);
                }
            }
        }
        for &id in &self.unkeyed {
            consider(id, &mut f);
        }
    }

    /// The last hops subscribed to publications matching `path`,
    /// deduplicated.
    pub fn route<S: AsRef<str>>(&self, path: &[S]) -> std::collections::BTreeSet<H> {
        self.route_with_attrs(path, &[])
    }

    /// [`Self::route`] with per-element attribute data.
    pub fn route_with_attrs<S: AsRef<str>>(
        &self,
        path: &[S],
        attrs: &[Vec<(String, String)>],
    ) -> std::collections::BTreeSet<H> {
        let mut out = std::collections::BTreeSet::new();
        self.for_each_match(path, attrs, |_, h| {
            out.insert(h.clone());
        });
        out
    }

    /// Every stored subscription with its last hop (all are forwarded,
    /// as in the flat scheme).
    pub fn forwarded_subs(&self) -> Vec<(SubId, Xpe, Vec<H>)> {
        self.entries
            .iter()
            .map(|(&id, (p, h))| (id, p.xpe().clone(), vec![h.clone()]))
            .collect()
    }

    /// Number of stored subscriptions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no subscriptions are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<H: Clone + Ord + std::fmt::Debug> PublicationRouter<H> for IndexedPrt<H> {
    fn insert(&mut self, id: SubId, xpe: Xpe, last_hop: H) -> SubscribeOutcome<H> {
        self.subscribe(id, xpe, last_hop)
    }

    fn remove(&mut self, id: SubId) -> UnsubscribeOutcome {
        self.unsubscribe(id)
    }

    fn for_each_matching_with_attrs(
        &self,
        path: &[String],
        attrs: &[Vec<(String, String)>],
        f: &mut dyn FnMut(SubId, &H),
    ) {
        self.for_each_match(path, attrs, |id, h| f(id, h));
    }

    fn len(&self) -> usize {
        IndexedPrt::len(self)
    }

    fn xpe_of(&self, id: SubId) -> Option<&Xpe> {
        self.entries.get(&id).map(|(p, _)| p.xpe())
    }

    fn forwarded_subs(&self) -> Vec<(SubId, Xpe, Vec<H>)> {
        IndexedPrt::forwarded_subs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtable::FlatPrt;

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    #[test]
    fn keys_pick_the_most_selective_condition() {
        let anchored = PreparedXpe::analyze(&xpe("/a/*/c//d"));
        assert_eq!(
            *anchored.key(),
            CandidateKey::Anchored {
                depth: 2,
                name: "c".into()
            },
            "deepest concrete name of the child-axis prefix"
        );
        let relative = PreparedXpe::analyze(&xpe("a/b"));
        assert_eq!(*relative.key(), CandidateKey::Contains("b".into()));
        let descendant_first = PreparedXpe::analyze(&xpe("//a/b"));
        assert_eq!(
            *descendant_first.key(),
            CandidateKey::Contains("b".into()),
            "a leading descendant pins nothing to a position"
        );
        let wild = PreparedXpe::analyze(&xpe("/*/*"));
        assert_eq!(*wild.key(), CandidateKey::Any);
    }

    #[test]
    fn anchored_key_stops_at_descendant() {
        let p = PreparedXpe::analyze(&xpe("/a//b/c"));
        assert_eq!(
            *p.key(),
            CandidateKey::Anchored {
                depth: 0,
                name: "a".into()
            }
        );
    }

    #[test]
    fn routes_like_flat_on_basics() {
        let subs = ["/a/*", "/a/b", "a//c", "/x/y", "//b", "/*/*", "b/c[@k]"];
        let mut flat = FlatPrt::new();
        let mut idx = IndexedPrt::new();
        for (i, s) in subs.iter().enumerate() {
            flat.insert(SubId(i as u64), xpe(s), i);
            idx.subscribe(SubId(i as u64), xpe(s), i);
        }
        let paths: [&[&str]; 5] = [
            &["a", "b"],
            &["a", "q", "c"],
            &["x", "y"],
            &["z", "b", "c"],
            &["q"],
        ];
        for p in paths {
            let owned: Vec<String> = p.iter().map(|s| (*s).to_string()).collect();
            assert_eq!(
                idx.route(p),
                flat.matching_hops(&owned, &[]),
                "divergence on {p:?}"
            );
        }
    }

    #[test]
    fn attributes_respected() {
        let mut idx = IndexedPrt::new();
        idx.subscribe(SubId(1), xpe("/a/b[@k='v']"), "h1");
        let attrs_hit = vec![vec![], vec![("k".to_string(), "v".to_string())]];
        let attrs_miss = vec![vec![], vec![("k".to_string(), "w".to_string())]];
        assert_eq!(idx.route_with_attrs(&["a", "b"], &attrs_hit).len(), 1);
        assert!(idx.route_with_attrs(&["a", "b"], &attrs_miss).is_empty());
    }

    #[test]
    fn unsubscribe_unindexes() {
        let mut idx = IndexedPrt::new();
        idx.subscribe(SubId(1), xpe("/a/b"), "h1");
        idx.subscribe(SubId(2), xpe("//b"), "h2");
        assert!(idx.unsubscribe(SubId(1)).forward);
        assert!(!idx.unsubscribe(SubId(1)).forward, "second removal no-op");
        assert_eq!(idx.route(&["a", "b"]).len(), 1, "only //b left");
        assert!(idx.unsubscribe(SubId(2)).forward);
        assert!(idx.is_empty());
        assert!(idx.route(&["a", "b"]).is_empty());
    }

    #[test]
    fn resubscribe_replaces_expression() {
        let mut idx = IndexedPrt::new();
        idx.subscribe(SubId(1), xpe("/a/b"), "h1");
        idx.subscribe(SubId(1), xpe("/x/y"), "h1");
        assert_eq!(idx.len(), 1);
        assert!(idx.route(&["a", "b"]).is_empty(), "old expression is gone");
        assert_eq!(idx.route(&["x", "y"]).len(), 1);
    }

    #[test]
    fn cache_skips_reanalysis_of_equal_expressions() {
        let mut idx = IndexedPrt::new();
        idx.subscribe(SubId(1), xpe("/a/b"), "h1");
        idx.subscribe(SubId(2), xpe("/a/b"), "h2");
        idx.subscribe(SubId(3), xpe("/a/c"), "h3");
        let (hits, misses) = idx.cache().stats();
        assert_eq!((hits, misses), (1, 2));
        assert_eq!(idx.cache().len(), 2);
        assert_eq!(idx.route(&["a", "b"]).len(), 2, "both equal subs match");
    }

    #[test]
    fn required_names_with_repetition_stay_exact() {
        // `/a//a` needs two `a` levels; a single-element path must not
        // match, and the prefilter must not reject the two-level one.
        let mut idx = IndexedPrt::new();
        idx.subscribe(SubId(1), xpe("/a//a"), "h");
        assert!(idx.route(&["a"]).is_empty());
        assert_eq!(idx.route(&["a", "a"]).len(), 1);
    }

    #[test]
    fn empty_path_matches_nothing() {
        let mut idx = IndexedPrt::new();
        idx.subscribe(SubId(1), xpe("//*"), "h");
        let none: [&str; 0] = [];
        assert!(idx.route(&none).is_empty());
    }
}
