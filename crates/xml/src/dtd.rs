//! DTD (Document Type Definition) content models.
//!
//! Advertisements in the paper are derived from the publisher's DTD
//! (§3.1): the DTD determines every root-to-leaf element path that can
//! occur in a conforming document. This module provides
//!
//! * a content-model data structure ([`Dtd`], [`Particle`]) and a parser
//!   for `<!ELEMENT ...>` declarations,
//! * recursion analysis ([`Dtd::is_recursive`],
//!   [`Dtd::recursive_elements`]) — a DTD is *recursive* when an element
//!   is (transitively) defined in terms of itself, which is what forces
//!   the recursive advertisement forms `a1(a2)+a3`,
//! * bounded root-to-leaf path enumeration
//!   ([`Dtd::enumerate_paths`]), the universe over which perfect and
//!   imperfect merging degrees are computed (§4.3),
//! * per-depth element alphabets ([`Dtd::position_alphabet`]) used to
//!   estimate false-positive rates of imperfect mergers.

use crate::error::{XmlError, XmlErrorKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How often a content particle may occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Occurrence {
    /// Exactly once (no suffix).
    One,
    /// Zero or one time (`?`).
    Optional,
    /// Zero or more times (`*`).
    ZeroOrMore,
    /// One or more times (`+`).
    OneOrMore,
}

impl Occurrence {
    /// True if the particle may be omitted entirely.
    pub fn is_optional(self) -> bool {
        matches!(self, Occurrence::Optional | Occurrence::ZeroOrMore)
    }

    /// The suffix character, if any.
    pub fn suffix(self) -> Option<char> {
        match self {
            Occurrence::One => None,
            Occurrence::Optional => Some('?'),
            Occurrence::ZeroOrMore => Some('*'),
            Occurrence::OneOrMore => Some('+'),
        }
    }
}

/// The structural part of a content particle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParticleKind {
    /// A reference to a child element by name.
    Name(String),
    /// An ordered sequence `(a, b, c)`.
    Seq(Vec<Particle>),
    /// An alternative `(a | b | c)`.
    Choice(Vec<Particle>),
}

/// A content particle: structure plus an occurrence indicator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Particle {
    /// What the particle contains.
    pub kind: ParticleKind,
    /// How many times it may occur.
    pub occurrence: Occurrence,
}

impl Particle {
    /// A single-name particle occurring exactly once.
    pub fn name(n: impl Into<String>) -> Self {
        Particle {
            kind: ParticleKind::Name(n.into()),
            occurrence: Occurrence::One,
        }
    }

    /// Returns a copy with the given occurrence.
    pub fn with_occurrence(mut self, occ: Occurrence) -> Self {
        self.occurrence = occ;
        self
    }

    /// A sequence particle occurring exactly once.
    pub fn seq(items: Vec<Particle>) -> Self {
        Particle {
            kind: ParticleKind::Seq(items),
            occurrence: Occurrence::One,
        }
    }

    /// A choice particle occurring exactly once.
    pub fn choice(items: Vec<Particle>) -> Self {
        Particle {
            kind: ParticleKind::Choice(items),
            occurrence: Occurrence::One,
        }
    }

    fn collect_names<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match &self.kind {
            ParticleKind::Name(n) => {
                out.insert(n);
            }
            ParticleKind::Seq(items) | ParticleKind::Choice(items) => {
                for item in items {
                    item.collect_names(out);
                }
            }
        }
    }
}

impl fmt::Display for Particle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParticleKind::Name(n) => f.write_str(n)?,
            ParticleKind::Seq(items) => {
                f.write_str("(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str(")")?;
            }
            ParticleKind::Choice(items) => {
                f.write_str("(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" | ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str(")")?;
            }
        }
        if let Some(c) = self.occurrence.suffix() {
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// The content model of one declared element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentModel {
    /// `EMPTY` — a leaf element.
    Empty,
    /// `(#PCDATA)` — text-only; a leaf for routing purposes.
    PcData,
    /// `ANY` — any declared element may appear.
    Any,
    /// An element-content particle.
    Children(Particle),
    /// Mixed content `(#PCDATA | a | b)*`.
    Mixed(Vec<String>),
}

impl ContentModel {
    /// True if the model admits no child elements.
    pub fn is_leaf(&self) -> bool {
        matches!(self, ContentModel::Empty | ContentModel::PcData)
            || matches!(self, ContentModel::Mixed(names) if names.is_empty())
    }
}

/// A parsed DTD: the root element plus every element declaration.
///
/// ```
/// use xdn_xml::dtd::Dtd;
///
/// let dtd = Dtd::parse(
///     "<!ELEMENT doc (head, body+)>\n\
///      <!ELEMENT head (#PCDATA)>\n\
///      <!ELEMENT body (body?, par*)>\n\
///      <!ELEMENT par EMPTY>",
/// )?;
/// assert!(dtd.is_recursive()); // body references body
/// assert!(dtd.recursive_elements().contains("body"));
/// # Ok::<(), xdn_xml::XmlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dtd {
    root: String,
    elements: BTreeMap<String, ContentModel>,
}

impl Dtd {
    /// Builds a DTD from a root name and element declarations.
    ///
    /// # Errors
    ///
    /// Returns an error if the root or any referenced element is
    /// undeclared.
    pub fn from_declarations(
        root: impl Into<String>,
        elements: BTreeMap<String, ContentModel>,
    ) -> Result<Self, XmlError> {
        let dtd = Dtd {
            root: root.into(),
            elements,
        };
        dtd.validate()?;
        Ok(dtd)
    }

    /// Parses a sequence of `<!ELEMENT ...>` declarations.
    ///
    /// The first declared element is taken as the document root, which
    /// matches the convention of the NITF and PSD DTDs. Other DTD
    /// declarations (`<!ATTLIST>`, `<!ENTITY>`, comments) are skipped.
    ///
    /// # Errors
    ///
    /// Returns an error if a declaration is malformed or an element is
    /// referenced but never declared.
    pub fn parse(input: &str) -> Result<Self, XmlError> {
        let mut parser = DtdParser {
            input: input.as_bytes(),
            pos: 0,
        };
        let mut elements = BTreeMap::new();
        let mut root: Option<String> = None;
        while let Some((name, model)) = parser.next_element_decl()? {
            if root.is_none() {
                root = Some(name.clone());
            }
            elements.insert(name, model);
        }
        let root = root.ok_or_else(|| XmlError::new(XmlErrorKind::EmptyDocument, 0))?;
        Self::from_declarations(root, elements)
    }

    /// The root element name.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// The content model of `name`, if declared.
    pub fn content_model(&self, name: &str) -> Option<&ContentModel> {
        self.elements.get(name)
    }

    /// All declared element names, sorted.
    pub fn element_names(&self) -> impl Iterator<Item = &str> {
        self.elements.keys().map(String::as_str)
    }

    /// Number of declared elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if no elements are declared.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The set of element names that may appear as a direct child of
    /// `name` (empty for leaves and undeclared names).
    pub fn children_of(&self, name: &str) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        match self.elements.get(name) {
            Some(ContentModel::Children(p)) => p.collect_names(&mut out),
            Some(ContentModel::Mixed(names)) => {
                out.extend(names.iter().map(String::as_str));
            }
            Some(ContentModel::Any) => {
                out.extend(self.elements.keys().map(String::as_str));
            }
            _ => {}
        }
        out
    }

    /// True if a conforming document may contain `name` with no child
    /// elements — its content model is a leaf model, or every particle
    /// in it is optional. Advertisement derivation must emit a path
    /// ending at every such element, since conforming documents can.
    pub fn may_be_empty(&self, name: &str) -> bool {
        match self.elements.get(name) {
            None | Some(ContentModel::Empty) | Some(ContentModel::PcData) => true,
            Some(ContentModel::Any) | Some(ContentModel::Mixed(_)) => true,
            Some(ContentModel::Children(p)) => Self::particle_min(p) == 0,
        }
    }

    /// Minimum number of child elements a particle forces.
    fn particle_min(p: &Particle) -> usize {
        if p.occurrence.is_optional() {
            return 0;
        }
        match &p.kind {
            ParticleKind::Name(_) => 1,
            ParticleKind::Seq(items) => items.iter().map(Self::particle_min).sum(),
            ParticleKind::Choice(items) => items.iter().map(Self::particle_min).min().unwrap_or(0),
        }
    }

    fn validate(&self) -> Result<(), XmlError> {
        if !self.elements.contains_key(&self.root) {
            return Err(XmlError::new(
                XmlErrorKind::UndeclaredElement(self.root.clone()),
                0,
            ));
        }
        for name in self.elements.keys() {
            for child in self.children_of(name) {
                if !self.elements.contains_key(child) {
                    return Err(XmlError::new(
                        XmlErrorKind::UndeclaredElement(child.to_owned()),
                        0,
                    ));
                }
            }
        }
        Ok(())
    }

    /// True if any element reachable from the root participates in a
    /// reference cycle.
    pub fn is_recursive(&self) -> bool {
        !self.recursive_elements().is_empty()
    }

    /// The set of elements reachable from the root that lie on a
    /// reference cycle (i.e. are transitively defined in terms of
    /// themselves).
    pub fn recursive_elements(&self) -> BTreeSet<String> {
        // Tarjan-style: an element is recursive if it can reach itself.
        // With DTD-scale graphs (tens to low hundreds of elements) a
        // simple reachability closure is plenty.
        let reachable_from_root = self.reachable(&self.root);
        let mut out = BTreeSet::new();
        for name in &reachable_from_root {
            if self
                .children_of(name)
                .iter()
                .any(|child| self.reachable(child).contains(name.as_str()))
            {
                out.insert(name.clone());
            }
        }
        out
    }

    fn reachable(&self, from: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from.to_owned()];
        while let Some(n) = stack.pop() {
            if !seen.insert(n.clone()) {
                continue;
            }
            for c in self.children_of(&n) {
                if !seen.contains(c) {
                    stack.push(c.to_owned());
                }
            }
        }
        seen
    }

    /// Enumerates root-to-leaf element-name paths permitted by the DTD.
    ///
    /// `max_depth` bounds path length and `cycle_unroll` bounds how many
    /// times any single element may repeat on a path (the paper notes it
    /// is "reasonable to limit the maximum nesting depth of items in a
    /// document"). `max_paths` caps output size for pathological DTDs;
    /// enumeration stops once the cap is hit.
    pub fn enumerate_paths(
        &self,
        max_depth: usize,
        cycle_unroll: usize,
        max_paths: usize,
    ) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.enum_rec(
            &self.root,
            max_depth,
            cycle_unroll,
            max_paths,
            &mut stack,
            &mut out,
        );
        out
    }

    fn enum_rec(
        &self,
        name: &str,
        max_depth: usize,
        cycle_unroll: usize,
        max_paths: usize,
        stack: &mut Vec<String>,
        out: &mut Vec<Vec<String>>,
    ) {
        if out.len() >= max_paths {
            return;
        }
        let occurrences = stack.iter().filter(|n| n.as_str() == name).count();
        if occurrences > cycle_unroll {
            return;
        }
        stack.push(name.to_owned());
        let children = self.children_of(name);
        if children.is_empty() || stack.len() >= max_depth {
            out.push(stack.clone());
        } else {
            for child in children {
                self.enum_rec(child, max_depth, cycle_unroll, max_paths, stack, out);
            }
        }
        stack.pop();
    }

    /// For each depth `0..max_depth`, the set of element names that can
    /// occur at that depth (depth 0 is the root). Used to estimate the
    /// false positives introduced by an imperfect merger (§4.3).
    pub fn position_alphabet(&self, max_depth: usize) -> Vec<BTreeSet<String>> {
        let mut levels: Vec<BTreeSet<String>> = vec![BTreeSet::new(); max_depth];
        if max_depth == 0 {
            return levels;
        }
        levels[0].insert(self.root.clone());
        for d in 1..max_depth {
            let prev = levels[d - 1].clone();
            for name in prev {
                for c in self.children_of(&name) {
                    levels[d].insert(c.to_owned());
                }
            }
        }
        levels
    }
}

struct DtdParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> DtdParser<'a> {
    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError::new(XmlErrorKind::InvalidDtdDeclaration(msg.into()), self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.input.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_until_gt(&mut self) {
        while let Some(&c) = self.input.get(self.pos) {
            self.pos += 1;
            if c == b'>' {
                return;
            }
        }
    }

    fn next_element_decl(&mut self) -> Result<Option<(String, ContentModel)>, XmlError> {
        loop {
            self.skip_ws();
            if self.pos >= self.input.len() {
                return Ok(None);
            }
            if self.starts_with("<!--") {
                while self.pos < self.input.len() && !self.starts_with("-->") {
                    self.pos += 1;
                }
                self.pos = (self.pos + 3).min(self.input.len());
                continue;
            }
            if self.starts_with("<!ELEMENT") {
                self.pos += "<!ELEMENT".len();
                let (name, model) = self.parse_element_decl()?;
                return Ok(Some((name, model)));
            }
            if self.starts_with("<!") {
                // ATTLIST / ENTITY / NOTATION — irrelevant to routing.
                self.skip_until_gt();
                continue;
            }
            return Err(self.err("expected `<!ELEMENT` declaration"));
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&c) = self.input.get(self.pos) {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .unwrap()
            .to_owned())
    }

    fn parse_element_decl(&mut self) -> Result<(String, ContentModel), XmlError> {
        let name = self.parse_name()?;
        self.skip_ws();
        let model = if self.starts_with("EMPTY") {
            self.pos += "EMPTY".len();
            ContentModel::Empty
        } else if self.starts_with("ANY") {
            self.pos += "ANY".len();
            ContentModel::Any
        } else if self.starts_with("(") {
            self.parse_content_spec()?
        } else {
            return Err(self.err("expected EMPTY, ANY, or `(`"));
        };
        self.skip_ws();
        if self.input.get(self.pos) != Some(&b'>') {
            return Err(self.err("expected `>` closing element declaration"));
        }
        self.pos += 1;
        Ok((name, model))
    }

    fn parse_content_spec(&mut self) -> Result<ContentModel, XmlError> {
        // Positioned at '('. Look ahead for #PCDATA to distinguish mixed
        // content from element content.
        let save = self.pos;
        self.pos += 1;
        self.skip_ws();
        if self.starts_with("#PCDATA") {
            self.pos += "#PCDATA".len();
            let mut names = Vec::new();
            loop {
                self.skip_ws();
                match self.input.get(self.pos) {
                    Some(b'|') => {
                        self.pos += 1;
                        names.push(self.parse_name()?);
                    }
                    Some(b')') => {
                        self.pos += 1;
                        // Optional trailing '*' on mixed content.
                        if self.input.get(self.pos) == Some(&b'*') {
                            self.pos += 1;
                        }
                        return Ok(if names.is_empty() {
                            ContentModel::PcData
                        } else {
                            ContentModel::Mixed(names)
                        });
                    }
                    _ => return Err(self.err("malformed mixed-content model")),
                }
            }
        }
        self.pos = save;
        let particle = self.parse_particle()?;
        Ok(ContentModel::Children(particle))
    }

    fn parse_particle(&mut self) -> Result<Particle, XmlError> {
        self.skip_ws();
        let mut particle = if self.input.get(self.pos) == Some(&b'(') {
            self.pos += 1;
            let first = self.parse_particle()?;
            self.skip_ws();
            match self.input.get(self.pos) {
                Some(b')') => {
                    self.pos += 1;
                    // Keep the group wrapper: a suffix after `)` applies
                    // to the group, and must not clobber the inner
                    // particle's own occurrence (e.g. `(quote?)`).
                    Particle::seq(vec![first])
                }
                Some(sep @ (b',' | b'|')) => {
                    let sep = *sep;
                    let mut items = vec![first];
                    while self.input.get(self.pos) == Some(&sep) {
                        self.pos += 1;
                        items.push(self.parse_particle()?);
                        self.skip_ws();
                    }
                    if self.input.get(self.pos) != Some(&b')') {
                        return Err(self.err("expected `)`"));
                    }
                    self.pos += 1;
                    if sep == b',' {
                        Particle::seq(items)
                    } else {
                        Particle::choice(items)
                    }
                }
                _ => return Err(self.err("expected `)`, `,`, or `|`")),
            }
        } else {
            Particle::name(self.parse_name()?)
        };
        particle.occurrence = match self.input.get(self.pos) {
            Some(b'?') => {
                self.pos += 1;
                Occurrence::Optional
            }
            Some(b'*') => {
                self.pos += 1;
                Occurrence::ZeroOrMore
            }
            Some(b'+') => {
                self.pos += 1;
                Occurrence::OneOrMore
            }
            _ => Occurrence::One,
        };
        Ok(particle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dtd {
        Dtd::parse(
            "<!ELEMENT doc (head, body+)>\n\
             <!ELEMENT head (#PCDATA)>\n\
             <!ELEMENT body (body?, (par | note)*)>\n\
             <!ELEMENT par EMPTY>\n\
             <!ELEMENT note (#PCDATA)>",
        )
        .unwrap()
    }

    #[test]
    fn parse_basic_declarations() {
        let dtd = sample();
        assert_eq!(dtd.root(), "doc");
        assert_eq!(dtd.len(), 5);
        assert_eq!(
            dtd.children_of("doc").into_iter().collect::<Vec<_>>(),
            vec!["body", "head"]
        );
        assert!(dtd.children_of("par").is_empty());
    }

    #[test]
    fn recursion_detected() {
        let dtd = sample();
        assert!(dtd.is_recursive());
        assert_eq!(
            dtd.recursive_elements().into_iter().collect::<Vec<_>>(),
            vec!["body"]
        );
    }

    #[test]
    fn non_recursive_dtd() {
        let dtd =
            Dtd::parse("<!ELEMENT a (b, c)><!ELEMENT b EMPTY><!ELEMENT c (#PCDATA)>").unwrap();
        assert!(!dtd.is_recursive());
        assert!(dtd.recursive_elements().is_empty());
    }

    #[test]
    fn mutual_recursion_detected() {
        let dtd = Dtd::parse("<!ELEMENT a (b?)><!ELEMENT b (a?)>").unwrap();
        assert!(dtd.is_recursive());
        assert_eq!(dtd.recursive_elements().len(), 2);
    }

    #[test]
    fn undeclared_element_rejected() {
        let err = Dtd::parse("<!ELEMENT a (b)>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UndeclaredElement(n) if n == "b"));
    }

    #[test]
    fn attlist_and_comments_skipped() {
        let dtd = Dtd::parse(
            "<!-- news -->\n<!ELEMENT a (b)>\n<!ATTLIST a id CDATA #REQUIRED>\n<!ELEMENT b EMPTY>",
        )
        .unwrap();
        assert_eq!(dtd.root(), "a");
    }

    #[test]
    fn mixed_content_children() {
        let dtd = Dtd::parse("<!ELEMENT a (#PCDATA | b)*><!ELEMENT b EMPTY>").unwrap();
        assert_eq!(
            dtd.children_of("a").into_iter().collect::<Vec<_>>(),
            vec!["b"]
        );
    }

    #[test]
    fn any_content_children() {
        let dtd = Dtd::parse("<!ELEMENT a ANY><!ELEMENT b EMPTY>").unwrap();
        let kids = dtd.children_of("a");
        assert!(kids.contains("a") && kids.contains("b"));
    }

    #[test]
    fn enumerate_paths_non_recursive() {
        let dtd =
            Dtd::parse("<!ELEMENT a (b, c)><!ELEMENT b (d)><!ELEMENT c EMPTY><!ELEMENT d EMPTY>")
                .unwrap();
        let mut paths = dtd.enumerate_paths(10, 1, 1000);
        paths.sort();
        assert_eq!(
            paths,
            vec![
                vec!["a".to_string(), "b".into(), "d".into()],
                vec!["a".to_string(), "c".into()],
            ]
        );
    }

    #[test]
    fn enumerate_paths_bounds_recursion() {
        let dtd = Dtd::parse("<!ELEMENT a (a?, b)><!ELEMENT b EMPTY>").unwrap();
        let paths = dtd.enumerate_paths(10, 2, 1000);
        // a/b, a/a/b, a/a/a... bounded: each path has at most 2 extra `a`s.
        assert!(paths
            .iter()
            .all(|p| p.iter().filter(|e| *e == "a").count() <= 3));
        assert!(paths.contains(&vec!["a".to_string(), "b".into()]));
        assert!(paths.contains(&vec!["a".to_string(), "a".into(), "b".into()]));
    }

    #[test]
    fn enumerate_paths_respects_cap() {
        let dtd = Dtd::parse("<!ELEMENT a (a?, b)><!ELEMENT b EMPTY>").unwrap();
        let paths = dtd.enumerate_paths(10, 5, 3);
        assert!(paths.len() <= 3);
    }

    #[test]
    fn position_alphabet_levels() {
        let dtd = sample();
        let levels = dtd.position_alphabet(4);
        assert_eq!(levels[0].iter().collect::<Vec<_>>(), vec!["doc"]);
        assert!(levels[1].contains("head") && levels[1].contains("body"));
        assert!(levels[2].contains("par") && levels[2].contains("body"));
    }

    #[test]
    fn particle_display_roundtrip_shape() {
        let p = Particle::seq(vec![
            Particle::name("a"),
            Particle::choice(vec![Particle::name("b"), Particle::name("c")])
                .with_occurrence(Occurrence::ZeroOrMore),
        ])
        .with_occurrence(Occurrence::OneOrMore);
        assert_eq!(p.to_string(), "(a, (b | c)*)+");
    }

    #[test]
    fn occurrence_helpers() {
        assert!(Occurrence::Optional.is_optional());
        assert!(Occurrence::ZeroOrMore.is_optional());
        assert!(!Occurrence::OneOrMore.is_optional());
        assert_eq!(Occurrence::OneOrMore.suffix(), Some('+'));
        assert_eq!(Occurrence::One.suffix(), None);
    }
}
