//! Root-to-leaf path extraction.
//!
//! The routing unit in the paper is not the whole XML document but each
//! of its root-to-leaf element paths, annotated with a `docId` and
//! `pathId` (§3.1). A publication routed through the broker network is
//! one such [`DocPath`]; subscribers transparently receive whole
//! documents reassembled from their paths.

use crate::tree::{Document, Element};
use std::fmt;

/// Identifier of a published document, unique per publisher session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DocId(pub u64);

/// Identifier of one root-to-leaf path within a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PathId(pub u32);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc{}", self.0)
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path{}", self.0)
    }
}

/// One root-to-leaf element path of a document: the publication format
/// routed through the network.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DocPath {
    /// The document this path was extracted from.
    pub doc_id: DocId,
    /// Position of this path within the document (document order).
    pub path_id: PathId,
    /// Element names from the root to a leaf.
    pub elements: Vec<String>,
    /// Per-element attributes, aligned with `elements` (empty when the
    /// source carried none) — consumed by the attribute-predicate
    /// matching extension.
    pub attributes: Vec<Vec<(String, String)>>,
}

impl DocPath {
    /// Creates a path from raw parts, carrying no attributes.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty — a document always has a root.
    pub fn new(doc_id: DocId, path_id: PathId, elements: Vec<String>) -> Self {
        assert!(
            !elements.is_empty(),
            "a document path has at least the root element"
        );
        let attributes = vec![Vec::new(); elements.len()];
        DocPath {
            doc_id,
            path_id,
            elements,
            attributes,
        }
    }

    /// Replaces the attribute lists (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `attributes` is not aligned with the elements.
    pub fn with_attributes(mut self, attributes: Vec<Vec<(String, String)>>) -> Self {
        assert_eq!(
            attributes.len(),
            self.elements.len(),
            "attribute lists must align with elements"
        );
        self.attributes = attributes;
        self
    }

    /// Number of elements on the path.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Always false; paths contain at least the root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Element names as `&str` slices, convenient for matching.
    pub fn as_strs(&self) -> Vec<&str> {
        self.elements.iter().map(String::as_str).collect()
    }
}

impl fmt::Display for DocPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.elements {
            write!(f, "/{e}")?;
        }
        write!(f, " [{} {}]", self.doc_id, self.path_id)
    }
}

/// Decomposes a document into its root-to-leaf paths in document order.
///
/// This is the publisher-side step performed "before the publisher
/// submits the document to the network" (§3.1).
///
/// ```
/// use xdn_xml::{parse_document, paths::extract_paths, DocId};
///
/// let doc = parse_document("<r><a><b/></a><c/></r>")?;
/// let paths = extract_paths(&doc, DocId(1));
/// assert_eq!(paths[0].elements, ["r", "a", "b"]);
/// assert_eq!(paths[1].elements, ["r", "c"]);
/// # Ok::<(), xdn_xml::XmlError>(())
/// ```
pub fn extract_paths(doc: &Document, doc_id: DocId) -> Vec<DocPath> {
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    let mut attrs = Vec::new();
    walk(doc.root(), doc_id, &mut prefix, &mut attrs, &mut out);
    out
}

fn walk(
    elem: &Element,
    doc_id: DocId,
    prefix: &mut Vec<String>,
    attrs: &mut Vec<Vec<(String, String)>>,
    out: &mut Vec<DocPath>,
) {
    prefix.push(elem.name().to_owned());
    attrs.push(elem.attributes().to_vec());
    if elem.is_leaf() {
        out.push(
            DocPath::new(doc_id, PathId(out.len() as u32), prefix.clone())
                .with_attributes(attrs.clone()),
        );
    } else {
        for child in elem.child_elements() {
            walk(child, doc_id, prefix, attrs, out);
        }
    }
    prefix.pop();
    attrs.pop();
}

/// Deduplicates paths that share the same element sequence, keeping the
/// first occurrence. Brokers route on element sequences, so duplicate
/// sibling subtrees produce redundant routing work that publishers can
/// elide.
pub fn dedup_paths(paths: Vec<DocPath>) -> Vec<DocPath> {
    let mut seen = std::collections::HashSet::new();
    paths
        .into_iter()
        .filter(|p| seen.insert(p.elements.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;

    #[test]
    fn extract_single_leaf() {
        let doc = parse_document("<a/>").unwrap();
        let paths = extract_paths(&doc, DocId(0));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].elements, vec!["a"]);
    }

    #[test]
    fn extract_document_order() {
        let doc = parse_document("<r><a><b/><c/></a><d/></r>").unwrap();
        let paths = extract_paths(&doc, DocId(3));
        let seqs: Vec<Vec<&str>> = paths.iter().map(|p| p.as_strs()).collect();
        assert_eq!(
            seqs,
            vec![vec!["r", "a", "b"], vec!["r", "a", "c"], vec!["r", "d"]]
        );
        assert_eq!(paths[2].path_id, PathId(2));
        assert!(paths.iter().all(|p| p.doc_id == DocId(3)));
    }

    #[test]
    fn text_only_element_is_leaf() {
        let doc = parse_document("<a><b>text</b></a>").unwrap();
        let paths = extract_paths(&doc, DocId(0));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].elements, vec!["a", "b"]);
    }

    #[test]
    fn dedup_removes_repeated_sequences() {
        let doc = parse_document("<a><b/><b/><c/></a>").unwrap();
        let paths = extract_paths(&doc, DocId(0));
        assert_eq!(paths.len(), 3);
        let deduped = dedup_paths(paths);
        assert_eq!(deduped.len(), 2);
        assert_eq!(deduped[0].elements, vec!["a", "b"]);
        assert_eq!(deduped[1].elements, vec!["a", "c"]);
    }

    #[test]
    fn display_formats() {
        let p = DocPath::new(DocId(1), PathId(2), vec!["a".into(), "b".into()]);
        assert_eq!(p.to_string(), "/a/b [doc1 path2]");
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least the root")]
    fn empty_path_panics() {
        let _ = DocPath::new(DocId(0), PathId(0), vec![]);
    }
}
