//! Subscriber-side document reassembly.
//!
//! Publishers decompose documents into root-to-leaf paths; "this is
//! transparent to publishers and subscribers who handle entire XML
//! documents" (§3.1). This module is the subscriber half of that
//! transparency: collecting the delivered paths of one document and
//! rebuilding an element tree.
//!
//! Reassembly merges paths on shared prefixes, so the result contains
//! each distinct path once, in the order of first appearance — the
//! same shape [`crate::paths::dedup_paths`] ships. Duplicate sibling
//! subtrees elided by the publisher are not re-duplicated (brokers
//! route on element sequences, so the duplicates carried no routing
//! information).

use crate::error::{XmlError, XmlErrorKind};
use crate::paths::DocPath;
use crate::tree::{Document, Element};
use std::collections::BTreeMap;

/// Rebuilds a document from the delivered paths of one `docId`.
///
/// Paths are merged on shared prefixes; attributes seen on any path
/// are attached to the corresponding element (first occurrence wins on
/// conflicts, which cannot arise for paths extracted from one
/// document).
///
/// Prefix merging is lossy in exactly one case: a childless element
/// whose path is a strict prefix of a sibling branch merges into that
/// branch (the wire format cannot distinguish the two).
///
/// # Errors
///
/// Returns an error if `paths` is empty, the paths disagree on the
/// root element, or they belong to different documents.
///
/// ```
/// use xdn_xml::{parse_document, paths::{dedup_paths, extract_paths}, reassemble::reassemble, DocId};
///
/// let original = parse_document(r#"<a x="1"><b><c/></b><d/></a>"#)?;
/// let paths = dedup_paths(extract_paths(&original, DocId(9)));
/// let rebuilt = reassemble(&paths)?;
/// assert_eq!(rebuilt, original);
/// # Ok::<(), xdn_xml::XmlError>(())
/// ```
pub fn reassemble(paths: &[DocPath]) -> Result<Document, XmlError> {
    let first = paths
        .first()
        .ok_or_else(|| XmlError::new(XmlErrorKind::EmptyDocument, 0))?;
    let doc_id = first.doc_id;
    let root_name = &first.elements[0];
    for p in paths {
        if p.doc_id != doc_id {
            return Err(XmlError::new(
                XmlErrorKind::InvalidDtdDeclaration(format!(
                    "paths from different documents: {} vs {}",
                    doc_id, p.doc_id
                )),
                0,
            ));
        }
        if &p.elements[0] != root_name {
            return Err(XmlError::new(
                XmlErrorKind::MismatchedTag {
                    expected: root_name.clone(),
                    found: p.elements[0].clone(),
                },
                0,
            ));
        }
    }

    let mut root = TreeNode {
        attrs: first.attributes.first().cloned().unwrap_or_default(),
        ..TreeNode::default()
    };
    for p in paths {
        root.merge(p, 1);
    }
    Ok(Document::new(root.into_element(root_name.clone())))
}

/// A prefix-merged trie of delivered paths.
#[derive(Default)]
struct TreeNode {
    attrs: Vec<(String, String)>,
    /// Children in first-appearance order.
    children: BTreeMap<usize, (String, TreeNode)>,
    order: usize,
}

impl TreeNode {
    fn merge(&mut self, path: &DocPath, depth: usize) {
        if depth >= path.elements.len() {
            return;
        }
        let name = &path.elements[depth];
        let attrs = path.attributes.get(depth).cloned().unwrap_or_default();
        // Find an existing child with this name (paths are deduplicated
        // per element sequence, so one child per name per branch).
        let existing = self
            .children
            .iter()
            .find(|(_, (n, _))| n == name)
            .map(|(&k, _)| k);
        let key = match existing {
            Some(k) => k,
            None => {
                let idx = self.order;
                self.order += 1;
                let node = TreeNode {
                    attrs,
                    ..TreeNode::default()
                };
                self.children.insert(idx, (name.clone(), node));
                idx
            }
        };
        let child = &mut self.children.get_mut(&key).expect("present").1;
        child.merge(path, depth + 1);
    }

    fn into_element(self, name: String) -> Element {
        let mut e = Element::new(name);
        for (k, v) in self.attrs {
            e.push_attribute(k, v);
        }
        for (_, (child_name, child)) in self.children {
            e.push_element(child.into_element(child_name));
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;
    use crate::paths::{dedup_paths, extract_paths};
    use crate::DocId;

    fn roundtrip(src: &str) -> (Document, Document) {
        let original = parse_document(src).unwrap();
        let paths = dedup_paths(extract_paths(&original, DocId(1)));
        let rebuilt = reassemble(&paths).unwrap();
        (original, rebuilt)
    }

    #[test]
    fn roundtrips_structure_and_attributes() {
        let (original, rebuilt) = roundtrip(r#"<a x="1"><b y="2"><c/></b><d/><e><f/><g/></e></a>"#);
        assert_eq!(rebuilt, original);
    }

    #[test]
    fn single_element() {
        let (original, rebuilt) = roundtrip("<only/>");
        assert_eq!(rebuilt, original);
    }

    #[test]
    fn duplicate_siblings_collapse_like_dedup() {
        // The publisher dedups equal sibling paths; reassembly yields
        // the deduplicated document.
        let original = parse_document("<a><b/><b/><c/></a>").unwrap();
        let paths = dedup_paths(extract_paths(&original, DocId(1)));
        let rebuilt = reassemble(&paths).unwrap();
        assert_eq!(rebuilt, parse_document("<a><b/><c/></a>").unwrap());
    }

    #[test]
    fn preserves_sibling_order() {
        let (original, rebuilt) = roundtrip("<r><z/><a/><m><q/><b/></m></r>");
        assert_eq!(rebuilt, original);
    }

    #[test]
    fn empty_input_is_error() {
        assert!(reassemble(&[]).is_err());
    }

    #[test]
    fn mismatched_roots_rejected() {
        let p1 = DocPath::new(DocId(1), crate::PathId(0), vec!["a".into()]);
        let p2 = DocPath::new(DocId(1), crate::PathId(1), vec!["b".into()]);
        assert!(reassemble(&[p1, p2]).is_err());
    }

    #[test]
    fn mixed_documents_rejected() {
        let p1 = DocPath::new(DocId(1), crate::PathId(0), vec!["a".into()]);
        let p2 = DocPath::new(DocId(2), crate::PathId(0), vec!["a".into()]);
        assert!(reassemble(&[p1, p2]).is_err());
    }

    #[test]
    fn partial_delivery_reassembles_the_matching_subset() {
        // A subscriber whose filter matched only some paths still gets
        // a well-formed document containing exactly those.
        let original = parse_document("<a><b><c/></b><d/></a>").unwrap();
        let paths = extract_paths(&original, DocId(1));
        let only_bc = vec![paths[0].clone()];
        let rebuilt = reassemble(&only_bc).unwrap();
        assert_eq!(rebuilt, parse_document("<a><b><c/></b></a>").unwrap());
    }

    #[test]
    fn generated_documents_roundtrip() {
        use rand::SeedableRng;
        let dtd = crate::dtd::Dtd::parse(
            "<!ELEMENT doc (sec+)><!ELEMENT sec (par*, note?)>\
             <!ELEMENT par EMPTY><!ELEMENT note EMPTY>",
        )
        .unwrap();
        let cfg = crate::generate::GeneratorConfig {
            text_content: false,
            ..Default::default()
        };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..20 {
            let doc = crate::generate::generate_document(&dtd, &cfg, &mut rng);
            let paths = dedup_paths(extract_paths(&doc, DocId(1)));
            let rebuilt = reassemble(&paths).unwrap();
            // Reassembly preserves exactly the *maximal* distinct paths:
            // a childless sibling whose path is a prefix of another
            // path merges into it (prefix-merging is lossy only there).
            let rb_paths = dedup_paths(extract_paths(&rebuilt, DocId(1)));
            let orig_seqs: Vec<_> = paths.iter().map(|p| p.elements.clone()).collect();
            let maximal: Vec<_> = orig_seqs
                .iter()
                .filter(|p| {
                    !orig_seqs
                        .iter()
                        .any(|q| q.len() > p.len() && q.starts_with(p))
                })
                .cloned()
                .collect();
            let rb_seqs: Vec<_> = rb_paths.iter().map(|p| p.elements.clone()).collect();
            assert_eq!(maximal, rb_seqs);
        }
    }
}
