//! Error types for XML and DTD parsing.

use std::error::Error;
use std::fmt;

/// An error produced while parsing an XML document or a DTD.
///
/// The error carries the byte offset into the input at which the
/// problem was detected, which makes malformed generator output and
/// hand-written test fixtures easy to debug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    kind: XmlErrorKind,
    offset: usize,
}

/// The specific kind of [`XmlError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlErrorKind {
    /// The input ended while more content was expected.
    UnexpectedEof,
    /// An unexpected character was found.
    UnexpectedChar(char),
    /// A closing tag did not match the open element.
    MismatchedTag {
        /// Name of the element that was open.
        expected: String,
        /// Name found in the closing tag.
        found: String,
    },
    /// The document has no root element.
    EmptyDocument,
    /// Trailing non-whitespace content after the root element.
    TrailingContent,
    /// An element name was empty or contained an invalid character.
    InvalidName(String),
    /// A DTD declaration could not be parsed.
    InvalidDtdDeclaration(String),
    /// A DTD references an element that has no `<!ELEMENT>` declaration.
    UndeclaredElement(String),
}

impl XmlError {
    /// Creates a new error at the given byte offset.
    pub fn new(kind: XmlErrorKind, offset: usize) -> Self {
        XmlError { kind, offset }
    }

    /// The kind of failure.
    pub fn kind(&self) -> &XmlErrorKind {
        &self.kind
    }

    /// Byte offset into the input at which the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            XmlErrorKind::MismatchedTag { expected, found } => {
                write!(
                    f,
                    "mismatched closing tag: expected </{expected}>, found </{found}>"
                )
            }
            XmlErrorKind::EmptyDocument => write!(f, "document has no root element"),
            XmlErrorKind::TrailingContent => write!(f, "trailing content after root element"),
            XmlErrorKind::InvalidName(n) => write!(f, "invalid element name {n:?}"),
            XmlErrorKind::InvalidDtdDeclaration(d) => {
                write!(f, "invalid DTD declaration: {d}")
            }
            XmlErrorKind::UndeclaredElement(n) => {
                write!(f, "element {n:?} referenced but never declared")
            }
        }?;
        write!(f, " at offset {}", self.offset)
    }
}

impl Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = XmlError::new(XmlErrorKind::UnexpectedEof, 42);
        assert!(e.to_string().contains("offset 42"));
    }

    #[test]
    fn display_mismatched_tag() {
        let e = XmlError::new(
            XmlErrorKind::MismatchedTag {
                expected: "a".into(),
                found: "b".into(),
            },
            3,
        );
        let s = e.to_string();
        assert!(s.contains("</a>") && s.contains("</b>"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XmlError>();
    }
}
