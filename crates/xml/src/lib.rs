#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # xdn-xml — XML substrate for the XDN dissemination network
//!
//! This crate provides the XML-side substrate the paper's router depends
//! on:
//!
//! * a minimal element-centric XML document model and parser
//!   ([`Document`], [`parse_document`]),
//! * a DTD content-model parser and analyzer ([`dtd::Dtd`]) including
//!   recursion detection (the paper distinguishes recursive from
//!   non-recursive DTDs when deriving advertisements),
//! * root-to-leaf *path extraction* ([`paths::extract_paths`]) — the
//!   unit of routing in the paper is an XML path annotated with a
//!   `docId` and `pathId`, not the whole document,
//! * a DTD-driven random document generator ([`generate`]) standing in
//!   for the IBM XML Generator used in the paper's evaluation.
//!
//! The paper's discussion (§3.1) focuses on elements; attributes and
//! text content are carried by the model but play no role in routing.
//!
//! ```
//! use xdn_xml::{parse_document, paths::extract_paths, DocId};
//!
//! # fn main() -> Result<(), xdn_xml::XmlError> {
//! let doc = parse_document("<a><b><c/></b><d/></a>")?;
//! let paths = extract_paths(&doc, DocId(7));
//! assert_eq!(paths.len(), 2); // /a/b/c and /a/d
//! assert_eq!(paths[0].elements, vec!["a", "b", "c"]);
//! # Ok(())
//! # }
//! ```

pub mod dtd;
pub mod error;
pub mod generate;
pub mod paths;
pub mod pretty;
pub mod reassemble;
pub mod tree;

pub use error::XmlError;
pub use paths::{DocId, DocPath, PathId};
pub use tree::{parse_document, Document, Element, Node};
