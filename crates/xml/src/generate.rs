//! DTD-driven random document generation.
//!
//! The paper's evaluation uses the IBM XML Generator to create document
//! workloads from the NITF and PSD DTDs, with the maximum number of
//! levels set to 10. That tool is not available; this module is the
//! substitute documented in `DESIGN.md`: a seeded random generator that
//! expands a [`Dtd`] content model into conforming [`Document`]s with
//! the same controls (maximum depth, repetition behaviour) the paper
//! relies on.

use crate::dtd::{ContentModel, Dtd, Occurrence, Particle, ParticleKind};
use crate::tree::{Document, Element};
use rand::Rng;

/// Tuning parameters for the document generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Maximum element nesting depth (paper: 10). Elements at this
    /// depth are emitted as leaves even if their content model declares
    /// children, exactly like the IBM generator's `maxLevels` cutoff.
    pub max_depth: usize,
    /// Probability of continuing a `*`/`+` repetition after each
    /// emitted instance (geometric distribution).
    pub repeat_continue: f64,
    /// Probability that a `?`-particle is present.
    pub optional_present: f64,
    /// Whether to emit short text content inside `#PCDATA` elements
    /// (contributes to document wire size but not to routing).
    pub text_content: bool,
    /// Hard cap on total elements per document, a backstop against
    /// explosive content models.
    pub max_elements: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            max_depth: 10,
            repeat_continue: 0.3,
            optional_present: 0.5,
            text_content: true,
            max_elements: 10_000,
        }
    }
}

/// Generates one random document conforming to `dtd` (up to the depth
/// and size cutoffs in `config`).
///
/// ```
/// use xdn_xml::{dtd::Dtd, generate::{generate_document, GeneratorConfig}};
/// use rand::SeedableRng;
///
/// let dtd = Dtd::parse("<!ELEMENT a (b+)><!ELEMENT b EMPTY>")?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let doc = generate_document(&dtd, &GeneratorConfig::default(), &mut rng);
/// assert_eq!(doc.root().name(), "a");
/// # Ok::<(), xdn_xml::XmlError>(())
/// ```
pub fn generate_document<R: Rng + ?Sized>(
    dtd: &Dtd,
    config: &GeneratorConfig,
    rng: &mut R,
) -> Document {
    let mut budget = config.max_elements;
    let root = expand(dtd, dtd.root(), 1, config, rng, &mut budget);
    Document::new(root)
}

/// Generates a document whose serialized size is at least
/// `target_bytes` by repeatedly duplicating random child subtrees of the
/// root. Used by the notification-delay experiments (Figures 10 and 11)
/// which sweep document size (2 KB … 40 KB).
///
/// The result may exceed the target by one subtree's size; callers that
/// need the exact size should check [`Document::to_xml_string`].
pub fn generate_sized_document<R: Rng + ?Sized>(
    dtd: &Dtd,
    target_bytes: usize,
    config: &GeneratorConfig,
    rng: &mut R,
) -> Document {
    let doc = generate_document(dtd, config, rng);
    let mut root = doc.root().clone();
    let mut size = Document::new(root.clone()).to_xml_string().len();
    // Grow by duplicating existing child subtrees; this keeps every
    // root-to-leaf path DTD-derivable, which the routing layer requires.
    while size < target_bytes && root.child_elements().next().is_some() {
        let children: Vec<Element> = root.child_elements().cloned().collect();
        let pick = children[rng.gen_range(0..children.len())].clone();
        size += pick.clone().subtree_xml_len();
        root.push_element(pick);
    }
    Document::new(root)
}

impl Element {
    fn subtree_xml_len(self) -> usize {
        Document::new(self).to_xml_string().len()
    }
}

fn expand<R: Rng + ?Sized>(
    dtd: &Dtd,
    name: &str,
    depth: usize,
    config: &GeneratorConfig,
    rng: &mut R,
    budget: &mut usize,
) -> Element {
    let mut elem = Element::new(name);
    if *budget == 0 {
        return elem;
    }
    *budget -= 1;
    if depth >= config.max_depth {
        return elem;
    }
    match dtd.content_model(name) {
        None | Some(ContentModel::Empty) => {}
        Some(ContentModel::PcData) => {
            if config.text_content {
                elem.push_text(sample_text(rng));
            }
        }
        Some(ContentModel::Any) => {
            // Pick 0..3 random declared elements as children.
            let names: Vec<&str> = dtd.element_names().collect();
            let n = rng.gen_range(0..=3usize.min(names.len()));
            for _ in 0..n {
                let child = names[rng.gen_range(0..names.len())];
                let e = expand(dtd, child, depth + 1, config, rng, budget);
                elem.push_element(e);
            }
        }
        Some(ContentModel::Mixed(names)) => {
            if config.text_content {
                elem.push_text(sample_text(rng));
            }
            if !names.is_empty() {
                let n = rng.gen_range(0..=2usize);
                for _ in 0..n {
                    let child = &names[rng.gen_range(0..names.len())];
                    let e = expand(dtd, child, depth + 1, config, rng, budget);
                    elem.push_element(e);
                }
            }
        }
        Some(ContentModel::Children(p)) => {
            let particle = p.clone();
            expand_particle(dtd, &particle, &mut elem, depth, config, rng, budget);
        }
    }
    elem
}

fn expand_particle<R: Rng + ?Sized>(
    dtd: &Dtd,
    particle: &Particle,
    parent: &mut Element,
    depth: usize,
    config: &GeneratorConfig,
    rng: &mut R,
    budget: &mut usize,
) {
    let count = match particle.occurrence {
        Occurrence::One => 1,
        Occurrence::Optional => usize::from(rng.gen_bool(config.optional_present)),
        Occurrence::ZeroOrMore => geometric(rng, config.repeat_continue, 0),
        Occurrence::OneOrMore => geometric(rng, config.repeat_continue, 1),
    };
    for _ in 0..count {
        if *budget == 0 {
            return;
        }
        match &particle.kind {
            ParticleKind::Name(n) => {
                let e = expand(dtd, n, depth + 1, config, rng, budget);
                parent.push_element(e);
            }
            ParticleKind::Seq(items) => {
                for item in items {
                    expand_particle(dtd, item, parent, depth, config, rng, budget);
                }
            }
            ParticleKind::Choice(items) => {
                let pick = &items[rng.gen_range(0..items.len())];
                expand_particle(dtd, pick, parent, depth, config, rng, budget);
            }
        }
    }
}

fn geometric<R: Rng + ?Sized>(rng: &mut R, continue_p: f64, min: usize) -> usize {
    let mut n = min;
    // Cap repetitions to keep documents bounded even with continue_p
    // close to 1.
    while n < min + 16 && rng.gen_bool(continue_p) {
        n += 1;
    }
    n.max(min)
}

fn sample_text<R: Rng + ?Sized>(rng: &mut R) -> String {
    const WORDS: &[&str] = &[
        "claim", "quote", "report", "update", "alert", "note", "summary", "detail",
    ];
    let n = rng.gen_range(1..=4);
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{extract_paths, DocId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn recursive_dtd() -> Dtd {
        Dtd::parse(
            "<!ELEMENT doc (sec+)>\n\
             <!ELEMENT sec (sec?, par*)>\n\
             <!ELEMENT par (#PCDATA)>",
        )
        .unwrap()
    }

    #[test]
    fn generated_document_conforms_structurally() {
        let dtd = recursive_dtd();
        let cfg = GeneratorConfig::default();
        for seed in 0..20 {
            let doc = generate_document(&dtd, &cfg, &mut rng(seed));
            assert_eq!(doc.root().name(), "doc");
            assert!(doc.depth() <= cfg.max_depth);
            // Every parent-child pair must be allowed by the DTD.
            for p in extract_paths(&doc, DocId(0)) {
                for w in p.elements.windows(2) {
                    assert!(
                        dtd.children_of(&w[0]).contains(w[1].as_str()),
                        "{} -> {} not allowed",
                        w[0],
                        w[1]
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let dtd = recursive_dtd();
        let cfg = GeneratorConfig::default();
        let a = generate_document(&dtd, &cfg, &mut rng(42));
        let b = generate_document(&dtd, &cfg, &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let dtd = recursive_dtd();
        let cfg = GeneratorConfig::default();
        let a = generate_document(&dtd, &cfg, &mut rng(1));
        let b = generate_document(&dtd, &cfg, &mut rng(2));
        assert_ne!(a, b, "two seeds should virtually never coincide");
    }

    #[test]
    fn respects_max_depth() {
        let dtd = Dtd::parse("<!ELEMENT a (a)>").unwrap(); // infinitely recursive
        let cfg = GeneratorConfig {
            max_depth: 5,
            ..GeneratorConfig::default()
        };
        let doc = generate_document(&dtd, &cfg, &mut rng(7));
        assert!(doc.depth() <= 5);
    }

    #[test]
    fn respects_element_budget() {
        let dtd = Dtd::parse("<!ELEMENT a (a*, a*)>").unwrap();
        let cfg = GeneratorConfig {
            max_depth: 50,
            repeat_continue: 0.9,
            max_elements: 100,
            ..GeneratorConfig::default()
        };
        let doc = generate_document(&dtd, &cfg, &mut rng(9));
        assert!(doc.element_count() <= 100);
    }

    #[test]
    fn sized_document_reaches_target() {
        let dtd = recursive_dtd();
        let cfg = GeneratorConfig::default();
        let doc = generate_sized_document(&dtd, 2048, &cfg, &mut rng(11));
        assert!(doc.to_xml_string().len() >= 2048);
        // Paths must still be DTD-derivable after growth.
        for p in extract_paths(&doc, DocId(0)) {
            for w in p.elements.windows(2) {
                assert!(dtd.children_of(&w[0]).contains(w[1].as_str()));
            }
        }
    }

    #[test]
    fn pcdata_text_toggle() {
        let dtd = Dtd::parse("<!ELEMENT a (#PCDATA)>").unwrap();
        let with = generate_document(
            &dtd,
            &GeneratorConfig {
                text_content: true,
                ..Default::default()
            },
            &mut rng(3),
        );
        let without = generate_document(
            &dtd,
            &GeneratorConfig {
                text_content: false,
                ..Default::default()
            },
            &mut rng(3),
        );
        assert!(!with.root().children().is_empty());
        assert!(without.root().children().is_empty());
    }

    #[test]
    fn geometric_respects_min() {
        let mut r = rng(5);
        for _ in 0..100 {
            assert!(geometric(&mut r, 0.5, 1) >= 1);
            assert_eq!(geometric(&mut r, 0.0, 0), 0);
        }
    }
}
