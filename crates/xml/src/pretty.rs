//! Pretty-printing and tree navigation helpers.
//!
//! Routing never needs these, but a library users adopt does: indented
//! serialization for logs and fixtures, and simple navigation over the
//! element tree (the subscriber-side counterpart of path extraction).

use crate::tree::{Document, Element, Node};

impl Document {
    /// Serializes the document with two-space indentation.
    ///
    /// Text content is kept inline with its element so mixed content
    /// stays readable; attribute order is preserved.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        write_pretty(self.root(), 0, &mut out);
        out
    }
}

fn write_pretty(elem: &Element, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    out.push_str(&pad);
    out.push('<');
    out.push_str(elem.name());
    for (k, v) in elem.attributes() {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    if elem.children().is_empty() {
        out.push_str("/>\n");
        return;
    }
    let only_text = elem.children().iter().all(|c| matches!(c, Node::Text(_)));
    if only_text {
        out.push('>');
        for c in elem.children() {
            if let Node::Text(t) = c {
                out.push_str(t);
            }
        }
        out.push_str("</");
        out.push_str(elem.name());
        out.push_str(">\n");
        return;
    }
    out.push_str(">\n");
    for c in elem.children() {
        match c {
            Node::Element(e) => write_pretty(e, depth + 1, out),
            Node::Text(t) => {
                out.push_str(&"  ".repeat(depth + 1));
                out.push_str(t.trim());
                out.push('\n');
            }
        }
    }
    out.push_str(&pad);
    out.push_str("</");
    out.push_str(elem.name());
    out.push_str(">\n");
}

impl Element {
    /// The first child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name() == name)
    }

    /// All child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.child_elements().filter(move |e| e.name() == name)
    }

    /// Descends through a chain of child names (`["body", "p"]` finds
    /// the first `p` under the first `body`).
    pub fn descend<'a>(&'a self, names: &[&str]) -> Option<&'a Element> {
        let mut here = self;
        for n in names {
            here = here.child(n)?;
        }
        Some(here)
    }

    /// The value of an attribute, if present.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes()
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The concatenated text content of this element's direct text
    /// children.
    pub fn text(&self) -> String {
        self.children()
            .iter()
            .filter_map(|c| match c {
                Node::Text(t) => Some(t.as_str()),
                Node::Element(_) => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_document;

    #[test]
    fn pretty_roundtrips_through_parser() {
        let doc = parse_document(r#"<a x="1"><b>hi</b><c><d/></c></a>"#).unwrap();
        let pretty = doc.to_pretty_string();
        assert!(pretty.contains("  <b>hi</b>"));
        assert!(pretty.contains("    <d/>"));
        let reparsed = parse_document(&pretty).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn pretty_empty_element() {
        let doc = parse_document("<a/>").unwrap();
        assert_eq!(doc.to_pretty_string(), "<a/>\n");
    }

    #[test]
    fn navigation_helpers() {
        let doc = parse_document(
            r#"<claim id="7"><line><marine/></line><line><auto/></line><amount>90</amount></claim>"#,
        )
        .unwrap();
        let root = doc.root();
        assert_eq!(root.attribute("id"), Some("7"));
        assert_eq!(root.attribute("missing"), None);
        assert_eq!(root.children_named("line").count(), 2);
        assert!(root.descend(&["line", "marine"]).is_some());
        assert!(root.descend(&["line", "health"]).is_none());
        assert_eq!(root.child("amount").unwrap().text(), "90");
        assert_eq!(root.child("nope"), None);
    }
}
