//! XML document tree model and a minimal parser.
//!
//! The paper interprets an XML document as a tree of elements and routes
//! on root-to-leaf element paths (§3.1). This module provides exactly
//! that model: elements with optional attributes and text, a
//! recursive-descent parser, and serialization back to markup (used by
//! the evaluation to measure document sizes on the wire).

use crate::error::{XmlError, XmlErrorKind};
use std::fmt;

/// A parsed XML document: a single root [`Element`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The root element.
    root: Element,
}

impl Document {
    /// Creates a document from its root element.
    pub fn new(root: Element) -> Self {
        Document { root }
    }

    /// The root element.
    pub fn root(&self) -> &Element {
        &self.root
    }

    /// Serializes the document back to XML markup.
    ///
    /// The output is compact (no indentation); its byte length is the
    /// document's wire size used in the notification-delay experiments.
    pub fn to_xml_string(&self) -> String {
        let mut out = String::new();
        self.root.write_xml(&mut out);
        out
    }

    /// Total number of elements in the document.
    pub fn element_count(&self) -> usize {
        self.root.subtree_size()
    }

    /// Maximum element nesting depth (the root is depth 1).
    pub fn depth(&self) -> usize {
        self.root.subtree_depth()
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml_string())
    }
}

/// An XML element: a name, attributes, and child nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    name: String,
    attributes: Vec<(String, String)>,
    children: Vec<Node>,
}

/// A child of an [`Element`]: either a nested element or character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (text content).
    Text(String),
}

impl Element {
    /// Creates an element with no attributes or children.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty; element names are validated statically
    /// by the parser and generator, so an empty name here is a logic bug.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "element name must be non-empty");
        Element {
            name,
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The element's tag name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The element's attributes in document order.
    pub fn attributes(&self) -> &[(String, String)] {
        &self.attributes
    }

    /// The element's children in document order.
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// Child elements only, skipping text nodes.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Appends an attribute.
    pub fn push_attribute(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.attributes.push((name.into(), value.into()));
    }

    /// Appends a child element.
    pub fn push_element(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Appends a text child.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// True if the element has no child elements (text children allowed).
    pub fn is_leaf(&self) -> bool {
        self.child_elements().next().is_none()
    }

    fn subtree_size(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_size)
            .sum::<usize>()
    }

    fn subtree_depth(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_depth)
            .max()
            .unwrap_or(0)
    }

    fn write_xml(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            push_escaped(out, v);
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for child in &self.children {
            match child {
                Node::Element(e) => e.write_xml(out),
                Node::Text(t) => push_escaped(out, t),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Parses an XML document from markup.
///
/// The parser supports the subset of XML the dissemination network
/// routes on: nested elements, attributes, text content, comments,
/// processing instructions, a leading XML declaration and DOCTYPE line,
/// and the standard entity references.
///
/// # Errors
///
/// Returns an [`XmlError`] describing the first syntax problem and the
/// byte offset at which it occurred.
///
/// ```
/// let doc = xdn_xml::parse_document("<a x=\"1\"><b>hi</b></a>")?;
/// assert_eq!(doc.root().name(), "a");
/// # Ok::<(), xdn_xml::XmlError>(())
/// ```
pub fn parse_document(input: &str) -> Result<Document, XmlError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog();
    p.skip_ws_and_misc();
    if p.at_end() {
        return Err(p.err(XmlErrorKind::EmptyDocument));
    }
    let root = p.parse_element()?;
    p.skip_ws_and_misc();
    if !p.at_end() {
        return Err(p.err(XmlErrorKind::TrailingContent));
    }
    Ok(Document::new(root))
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.pos)
    }

    fn eof(&self) -> XmlError {
        self.err(XmlErrorKind::UnexpectedEof)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_until(&mut self, s: &str) {
        while !self.at_end() && !self.starts_with(s) {
            self.pos += 1;
        }
        if self.starts_with(s) {
            self.pos += s.len();
        }
    }

    /// Skips `<?xml ...?>` and `<!DOCTYPE ...>` (without internal subset
    /// nesting beyond bracket matching).
    fn skip_prolog(&mut self) {
        self.skip_ws();
        if self.starts_with("<?xml") {
            self.skip_until("?>");
        }
        self.skip_ws();
        if self.starts_with("<!DOCTYPE") {
            // Skip to matching '>', honoring an optional [..] internal subset.
            let mut depth = 0usize;
            while let Some(c) = self.bump() {
                match c {
                    b'[' => depth += 1,
                    b']' => depth = depth.saturating_sub(1),
                    b'>' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }

    /// Skips whitespace, comments, and processing instructions.
    fn skip_ws_and_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->");
            } else if self.starts_with("<?") {
                self.skip_until("?>");
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err(XmlErrorKind::InvalidName(String::new())));
        }
        // Names in this subset are ASCII; the slice is valid UTF-8.
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .unwrap()
            .to_owned())
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        if self.bump() != Some(b'<') {
            return Err(self.err(XmlErrorKind::UnexpectedChar(
                self.peek().unwrap_or(b'?') as char
            )));
        }
        let name = self.parse_name()?;
        let mut elem = Element::new(name);
        loop {
            self.skip_ws();
            match self.peek().ok_or_else(|| self.eof())? {
                b'/' => {
                    self.pos += 1;
                    if self.bump() != Some(b'>') {
                        return Err(self.err(XmlErrorKind::UnexpectedChar('/')));
                    }
                    return Ok(elem);
                }
                b'>' => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    let attr = self.parse_name()?;
                    self.skip_ws();
                    if self.bump() != Some(b'=') {
                        return Err(self.err(XmlErrorKind::UnexpectedChar('=')));
                    }
                    self.skip_ws();
                    let quote = self.bump().ok_or_else(|| self.eof())?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err(XmlErrorKind::UnexpectedChar(quote as char)));
                    }
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.at_end() {
                        return Err(self.eof());
                    }
                    let raw = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.err(XmlErrorKind::UnexpectedChar('\u{FFFD}')))?;
                    elem.push_attribute(attr, unescape(raw));
                    self.pos += 1; // closing quote
                }
            }
        }
        // Content until matching close tag.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                self.skip_ws();
                if self.bump() != Some(b'>') {
                    return Err(self.err(XmlErrorKind::UnexpectedChar('>')));
                }
                if close != elem.name {
                    return Err(self.err(XmlErrorKind::MismatchedTag {
                        expected: elem.name.clone(),
                        found: close,
                    }));
                }
                return Ok(elem);
            } else if self.starts_with("<!--") {
                self.skip_until("-->");
            } else if self.starts_with("<?") {
                self.skip_until("?>");
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                elem.push_element(child);
            } else if self.at_end() {
                return Err(self.eof());
            } else {
                let start = self.pos;
                while self.peek().is_some_and(|c| c != b'<') {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err(XmlErrorKind::UnexpectedChar('\u{FFFD}')))?;
                let text = unescape(raw);
                if !text.trim().is_empty() {
                    elem.push_text(text);
                }
            }
        }
    }
}

fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let known = [
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&amp;", '&'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ];
        if let Some((ent, ch)) = known.iter().find(|(ent, _)| rest.starts_with(ent)) {
            out.push(*ch);
            rest = &rest[ent.len()..];
        } else {
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_nested() {
        let doc = parse_document("<a><b><c/></b><d/></a>").unwrap();
        assert_eq!(doc.root().name(), "a");
        assert_eq!(doc.root().child_elements().count(), 2);
        assert_eq!(doc.element_count(), 4);
        assert_eq!(doc.depth(), 3);
    }

    #[test]
    fn parse_attributes_and_text() {
        let doc = parse_document(r#"<claim id="7" lang='en'>text body</claim>"#).unwrap();
        let root = doc.root();
        assert_eq!(
            root.attributes(),
            &[("id".into(), "7".into()), ("lang".into(), "en".into())]
        );
        assert_eq!(root.children().len(), 1);
        assert!(matches!(&root.children()[0], Node::Text(t) if t == "text body"));
    }

    #[test]
    fn parse_with_prolog_doctype_comments() {
        let src =
            "<?xml version=\"1.0\"?>\n<!DOCTYPE a [ <!ELEMENT a (b)> ]>\n<!-- c -->\n<a><b/></a>";
        let doc = parse_document(src).unwrap();
        assert_eq!(doc.root().name(), "a");
    }

    #[test]
    fn roundtrip_serialization() {
        let src = r#"<a x="1"><b>hi &amp; bye</b><c/></a>"#;
        let doc = parse_document(src).unwrap();
        let out = doc.to_xml_string();
        let doc2 = parse_document(&out).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn mismatched_tag_is_error() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn empty_input_is_error() {
        let err = parse_document("   ").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::EmptyDocument));
    }

    #[test]
    fn trailing_content_is_error() {
        let err = parse_document("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::TrailingContent));
    }

    #[test]
    fn unterminated_element_is_eof() {
        let err = parse_document("<a><b>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnexpectedEof));
    }

    #[test]
    fn entity_unescape() {
        assert_eq!(unescape("a&lt;b&gt;c&amp;&quot;&apos;"), "a<b>c&\"'");
        assert_eq!(unescape("no entities"), "no entities");
        assert_eq!(unescape("lone & amp"), "lone & amp");
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let doc = parse_document("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.root().children().len(), 1);
    }

    #[test]
    fn display_matches_to_xml_string() {
        let doc = parse_document("<a><b/></a>").unwrap();
        assert_eq!(doc.to_string(), doc.to_xml_string());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_element_name_panics() {
        let _ = Element::new("");
    }
}
