//! Parser-robustness properties for [`xdn_xpath`]:
//!
//! 1. `Xpe::parse` (via `str::parse`) never panics, whatever bytes it
//!    is fed — it either produces an expression or a typed
//!    `XpeParseError`. The generator is fuzz-shaped: raw byte soup run
//!    through lossy UTF-8 conversion (so replacement characters and
//!    multi-byte boundaries appear), plus structured near-misses built
//!    from XPE fragments (truncated predicates, unbalanced brackets,
//!    doubled operators).
//! 2. `Display` → `parse` round-trips every valid expression: the
//!    canonical text is itself parsable and reproduces the AST. This
//!    is the contract the wire codec relies on (XPEs travel as text).

use proptest::prelude::*;
use xdn_xpath::{Axis, NodeTest, Predicate, Step, Xpe};

const ALPHABET: &[&str] = &["a", "b", "news", "x-y.z:w"];
const ATTR_NAMES: &[&str] = &["p", "lang"];
const ATTR_VALUES: &[&str] = &["1", "en us"];

/// Fragments an adversarial input is assembled from: valid pieces,
/// truncations, and junk — concatenations of these hit the parser's
/// edge cases far more often than uniform bytes.
const FRAGMENTS: &[&str] = &[
    "/", "//", ".//", "*", "a", "news", "[", "]", "[@", "[@p", "[@p=", "[@p='", "[@p='v",
    "[@p='v']", "@", "'", "\"", "=", "", " ", "\t", "][", "[[", "]]", "[]", "/a[", "a//",
    "\u{fffd}", "\u{7f}", "\0",
];

fn arb_fragment_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0..FRAGMENTS.len(), 0..8)
        .prop_map(|ix| ix.into_iter().map(|i| FRAGMENTS[i]).collect::<String>())
}

fn arb_byte_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..40)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

fn arb_predicates() -> impl Strategy<Value = Vec<Predicate>> {
    prop::collection::vec(
        prop_oneof![
            2 => (0..ATTR_NAMES.len()).prop_map(|i| Predicate::HasAttr(ATTR_NAMES[i].into())),
            1 => ((0..ATTR_NAMES.len()), (0..ATTR_VALUES.len())).prop_map(|(i, j)| {
                Predicate::AttrEq(ATTR_NAMES[i].into(), ATTR_VALUES[j].into())
            }),
        ],
        0..3,
    )
}

fn arb_xpe() -> impl Strategy<Value = Xpe> {
    (
        any::<bool>(),
        prop::collection::vec(
            (
                prop_oneof![3 => Just(Axis::Child), 1 => Just(Axis::Descendant)],
                prop_oneof![
                    3 => (0..ALPHABET.len()).prop_map(|i| NodeTest::Name(ALPHABET[i].into())),
                    1 => Just(NodeTest::Wildcard),
                ],
                arb_predicates(),
            ),
            1..6,
        ),
    )
        .prop_map(|(absolute, steps)| {
            Xpe::new(
                absolute,
                steps
                    .into_iter()
                    .map(|(axis, test, predicates)| Step {
                        axis,
                        test,
                        predicates,
                    })
                    .collect(),
            )
        })
}

proptest! {
    /// Arbitrary (lossy-decoded) bytes never panic the parser.
    #[test]
    fn parse_never_panics_on_byte_soup(s in arb_byte_soup()) {
        let _ = s.parse::<Xpe>();
    }

    /// Concatenated XPE fragments — truncated predicates, unbalanced
    /// brackets, doubled axes — never panic the parser either.
    #[test]
    fn parse_never_panics_on_fragment_soup(s in arb_fragment_soup()) {
        let _ = s.parse::<Xpe>();
    }

    /// The canonical display form parses back to the same AST.
    #[test]
    fn display_then_parse_round_trips(xpe in arb_xpe()) {
        let text = xpe.to_string();
        let back: Xpe = text.parse().unwrap_or_else(|e| {
            panic!("canonical form {text:?} must re-parse, got {e}")
        });
        prop_assert_eq!(back, xpe);
    }
}

/// Deterministic nasty corpus, kept alongside the generators so a
/// regression in any historically tricky case fails by name.
#[test]
fn nasty_corpus_never_panics() {
    let cases: &[&str] = &[
        "",
        " ",
        "/",
        "//",
        ".//",
        "///",
        "/a//",
        "a[",
        "a]",
        "a[]",
        "a[@",
        "a[@p",
        "a[@p=",
        "a[@p='",
        "a[@p='v",
        "a[@p='v'",
        "a[@p=\"v]",
        "a[@p='v'][",
        "a[[@p]]",
        "a][@p[",
        "/a/*[@p]['",
        "*[@*]",
        "a\u{0}b",
        "\u{fffd}\u{fffd}",
        "a/\u{1f600}/b",
        "//*//*//*//",
        "[@a]/b",
    ];
    for c in cases {
        let _ = c.parse::<Xpe>();
    }
}
