//! Publication matching: does a root-to-leaf XML path satisfy an XPE?
//!
//! A publication in the network is a document path `e = /t1/t2/.../tn`
//! (§3.1). An XPE selects a node; a path satisfies the XPE when some
//! node *on the path* is selected (the path may continue below the
//! selected node, and may have begun above the first matched step for
//! relative expressions).
//!
//! The implementation splits the expression into maximal
//! child-connected *fragments* (see [`Xpe::fragments`]) and places each
//! fragment at its earliest feasible position — the classic greedy
//! strategy for subsequence matching with contiguous blocks, which is
//! optimal because moving an earlier block right can never enable a
//! later block to match.

use crate::ast::{Axis, Step, Xpe};
use xdn_xml::paths::DocPath;
use xdn_xml::Document;

/// Per-element attribute lists aligned with a path's elements.
pub type AttrList = [(String, String)];

const NO_ATTRS: &AttrList = &[];

/// True if `path` (a root-to-leaf sequence of element names) satisfies
/// `xpe`. Elements are taken to carry no attributes, so predicate
/// steps only match when their predicates are vacuous; use
/// [`matches_path_with_attrs`] when attribute data is available.
pub fn matches_path<S: AsRef<str>>(xpe: &Xpe, path: &[S]) -> bool {
    matches_path_with_attrs(xpe, path, &[])
}

/// True if the path with per-element `attrs` satisfies `xpe` — the
/// attribute-predicate extension the paper notes (§3.1). `attrs` is
/// aligned with `path`; elements beyond its length carry none.
pub fn matches_path_with_attrs<S: AsRef<str>>(
    xpe: &Xpe,
    path: &[S],
    attrs: &[Vec<(String, String)>],
) -> bool {
    if path.is_empty() {
        return false;
    }
    let fragments = xpe.fragments();
    let anchored = xpe.is_absolute() && xpe.steps()[0].axis == Axis::Child;
    let mut pos = 0usize;
    for (i, frag) in fragments.iter().enumerate() {
        if i == 0 && anchored {
            if !fragment_matches_at(frag, path, attrs, 0) {
                return false;
            }
            pos = frag.len();
        } else {
            match find_fragment(frag, path, attrs, pos) {
                Some(start) => pos = start + frag.len(),
                None => return false,
            }
        }
    }
    true
}

/// True if `frag` matches `path[at .. at + frag.len()]` element-wise.
fn fragment_matches_at<S: AsRef<str>>(
    frag: &[Step],
    path: &[S],
    attrs: &[Vec<(String, String)>],
    at: usize,
) -> bool {
    if at + frag.len() > path.len() {
        return false;
    }
    frag.iter().enumerate().all(|(i, step)| {
        let idx = at + i;
        let a: &AttrList = attrs.get(idx).map_or(NO_ATTRS, Vec::as_slice);
        step.accepts(path[idx].as_ref(), a)
    })
}

/// Earliest position `>= from` at which `frag` matches contiguously.
fn find_fragment<S: AsRef<str>>(
    frag: &[Step],
    path: &[S],
    attrs: &[Vec<(String, String)>],
    from: usize,
) -> Option<usize> {
    if frag.len() > path.len() {
        return None;
    }
    (from..=path.len() - frag.len()).find(|&start| fragment_matches_at(frag, path, attrs, start))
}

/// True if any root-to-leaf path of `doc` satisfies `xpe` — the
/// document-level delivery decision a subscriber observes.
pub fn matches_document(xpe: &Xpe, doc: &Document) -> bool {
    // Walk the tree without materializing all paths.
    fn walk(
        xpe: &Xpe,
        elem: &xdn_xml::Element,
        prefix: &mut Vec<String>,
        attrs: &mut Vec<Vec<(String, String)>>,
    ) -> bool {
        prefix.push(elem.name().to_owned());
        attrs.push(elem.attributes().to_vec());
        let hit = if elem.is_leaf() {
            matches_path_with_attrs(xpe, prefix, attrs)
        } else {
            elem.child_elements().any(|c| walk(xpe, c, prefix, attrs))
        };
        prefix.pop();
        attrs.pop();
        hit
    }
    walk(xpe, doc.root(), &mut Vec::new(), &mut Vec::new())
}

/// True if the [`DocPath`] publication satisfies `xpe`, including its
/// attribute data.
pub fn matches_doc_path(xpe: &Xpe, path: &DocPath) -> bool {
    matches_path_with_attrs(xpe, &path.elements, &path.attributes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    fn m(expr: &str, path: &[&str]) -> bool {
        matches_path(&xpe(expr), path)
    }

    #[test]
    fn absolute_anchored_prefix() {
        assert!(m("/a/b", &["a", "b"]));
        assert!(m("/a/b", &["a", "b", "c"])); // path continues below
        assert!(!m("/a/b", &["x", "a", "b"]));
        assert!(!m("/a/b", &["a"]));
    }

    #[test]
    fn wildcards() {
        assert!(m("/a/*/c", &["a", "b", "c"]));
        assert!(m("/*/*", &["x", "y", "z"]));
        assert!(!m("/a/*/c", &["a", "c"]));
    }

    #[test]
    fn leading_descendant() {
        assert!(m("//b", &["a", "b"]));
        assert!(m("//b", &["b"]));
        assert!(m("//b/c", &["a", "b", "c"]));
        assert!(!m("//b/c", &["a", "c", "b"]));
    }

    #[test]
    fn inner_descendant_gap_at_least_one() {
        assert!(m("/a//b", &["a", "b"])); // descendant includes child
        assert!(m("/a//b", &["a", "x", "y", "b"]));
        assert!(!m("/a//b", &["a"]));
        // b must be strictly below a.
        assert!(!m("/a//a", &["a"]));
        assert!(m("/a//a", &["a", "a"]));
    }

    #[test]
    fn relative_floats() {
        assert!(m("b/c", &["a", "b", "c"]));
        assert!(m("b/c", &["b", "c"]));
        assert!(!m("b/c", &["a", "c", "b"]));
        assert!(m("d/a", &["x", "d", "a"]));
    }

    #[test]
    fn relative_leading_descendant() {
        assert!(m(".//c", &["a", "b", "c"]));
        assert!(m(".//c", &["c"]));
    }

    #[test]
    fn paper_descendant_example() {
        // §3.2: s = */a//d/*/c//b matches a = /a/*/e/*/d/*/c/b-shaped
        // publications; check against a concrete conforming path.
        assert!(m(
            "*/a//d/*/c//b",
            &["r", "a", "e", "q", "d", "x", "c", "b"]
        ));
    }

    #[test]
    fn greedy_placement_backtrack_free() {
        // Earliest placement of "b" must not prevent matching "b/c".
        assert!(m("/a//b/c", &["a", "b", "x", "b", "c"]));
        // Here the first candidate `b` (index 1) fails the fragment but
        // index 3 succeeds; find_fragment scans forward.
    }

    #[test]
    fn multiple_descendants() {
        assert!(m("/a//b//c", &["a", "x", "b", "y", "c"]));
        assert!(m("/a//b//c", &["a", "b", "c"]));
        assert!(!m("/a//b//c", &["a", "c", "b"]));
    }

    #[test]
    fn empty_path_never_matches() {
        let paths: [&str; 0] = [];
        assert!(!m("/a", &paths));
        assert!(!m("a", &paths));
    }

    #[test]
    fn document_matching() {
        let doc = xdn_xml::parse_document("<a><b><c/></b><d/></a>").unwrap();
        assert!(matches_document(&xpe("/a/b/c"), &doc));
        assert!(matches_document(&xpe("/a/d"), &doc));
        assert!(matches_document(&xpe("//c"), &doc));
        assert!(!matches_document(&xpe("/a/b/d"), &doc));
    }

    #[test]
    fn doc_path_matching() {
        let doc = xdn_xml::parse_document("<a><b><c/></b></a>").unwrap();
        let paths = xdn_xml::paths::extract_paths(&doc, xdn_xml::DocId(1));
        assert!(matches_doc_path(&xpe("/a//c"), &paths[0]));
        assert!(!matches_doc_path(&xpe("/a/c"), &paths[0]));
    }

    #[test]
    fn selected_node_may_be_interior() {
        // /a/b selects the b node; the path continues to c below it.
        assert!(m("/a/b", &["a", "b", "c", "d", "e"]));
        assert!(m("b", &["a", "b", "c"]));
    }
}
