//! Parser for the routed XPath fragment.

use crate::ast::{Axis, NodeTest, Predicate, Step, Xpe};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// An error produced while parsing an XPE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XpeParseError {
    message: String,
    offset: usize,
}

impl XpeParseError {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        XpeParseError {
            message: message.into(),
            offset,
        }
    }

    /// Byte offset at which parsing failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for XpeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid XPath expression: {} at offset {}",
            self.message, self.offset
        )
    }
}

impl Error for XpeParseError {}

impl FromStr for Xpe {
    type Err = XpeParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Xpe::parse(s)
    }
}

impl Xpe {
    /// Parses an XPE from its textual form.
    ///
    /// Accepted syntax (the fragment of §3.2): location steps that are
    /// element names or `*`, joined by `/` or `//`. A leading `/` or
    /// `//` makes the expression absolute; `.//x` denotes a relative
    /// expression whose first step uses the descendant axis.
    ///
    /// # Errors
    ///
    /// Returns [`XpeParseError`] on empty input, empty steps (`a//`),
    /// or invalid characters in an element name.
    ///
    /// ```
    /// use xdn_xpath::{Axis, Xpe};
    /// let x = Xpe::parse("/a/*//b")?;
    /// assert!(x.is_absolute());
    /// assert_eq!(x.steps()[2].axis, Axis::Descendant);
    /// # Ok::<(), xdn_xpath::XpeParseError>(())
    /// ```
    pub fn parse(input: &str) -> Result<Self, XpeParseError> {
        let s = input.trim();
        if s.is_empty() {
            return Err(XpeParseError::new("empty expression", 0));
        }
        let mut rest = s;
        let mut offset = input.len() - input.trim_start().len();
        let mut absolute = true;
        let mut next_axis = if let Some(r) = rest.strip_prefix(".//") {
            rest = r;
            offset += 3;
            absolute = false;
            Axis::Descendant
        } else if let Some(r) = rest.strip_prefix("//") {
            rest = r;
            offset += 2;
            Axis::Descendant
        } else if let Some(r) = rest.strip_prefix('/') {
            rest = r;
            offset += 1;
            Axis::Child
        } else {
            absolute = false;
            Axis::Child
        };

        let mut steps = Vec::new();
        loop {
            let end = rest.find(['/', '[']).unwrap_or(rest.len());
            let name = &rest[..end];
            if name.is_empty() {
                return Err(XpeParseError::new("empty location step", offset));
            }
            if name != "*"
                && !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
            {
                return Err(XpeParseError::new(format!("invalid step {name:?}"), offset));
            }
            let mut step = Step {
                axis: next_axis,
                test: NodeTest::from(name),
                predicates: Vec::new(),
            };
            offset += end;
            rest = &rest[end..];
            while rest.starts_with('[') {
                let close = rest
                    .find(']')
                    .ok_or_else(|| XpeParseError::new("unterminated predicate", offset))?;
                let body = &rest[1..close];
                step.predicates.push(parse_predicate(body, offset)?);
                offset += close + 1;
                rest = &rest[close + 1..];
            }
            steps.push(step);
            if rest.is_empty() {
                break;
            }
            if let Some(r) = rest.strip_prefix("//") {
                next_axis = Axis::Descendant;
                rest = r;
                offset += 2;
            } else if let Some(r) = rest.strip_prefix('/') {
                next_axis = Axis::Child;
                rest = r;
                offset += 1;
            }
            if rest.is_empty() {
                return Err(XpeParseError::new("trailing operator", offset));
            }
        }
        Ok(Xpe::new(absolute, steps))
    }
}

/// Parses the body of a `[...]` predicate: `@name` or `@name='value'`.
fn parse_predicate(body: &str, offset: usize) -> Result<Predicate, XpeParseError> {
    let Some(rest) = body.strip_prefix('@') else {
        return Err(XpeParseError::new(
            format!("unsupported predicate {body:?} (only @attr forms)"),
            offset,
        ));
    };
    let valid_name = |n: &str| {
        !n.is_empty()
            && n.chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
    };
    match rest.split_once('=') {
        None => {
            if !valid_name(rest) {
                return Err(XpeParseError::new(
                    format!("invalid attribute name {rest:?}"),
                    offset,
                ));
            }
            Ok(Predicate::HasAttr(rest.to_owned()))
        }
        Some((name, value)) => {
            if !valid_name(name) {
                return Err(XpeParseError::new(
                    format!("invalid attribute name {name:?}"),
                    offset,
                ));
            }
            let value = value
                .strip_prefix('\'')
                .and_then(|v| v.strip_suffix('\''))
                .or_else(|| value.strip_prefix('"').and_then(|v| v.strip_suffix('"')))
                .ok_or_else(|| XpeParseError::new("predicate value must be quoted", offset))?;
            Ok(Predicate::AttrEq(name.to_owned(), value.to_owned()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_absolute_simple() {
        let x = Xpe::parse("/a/b/c").unwrap();
        assert!(x.is_absolute());
        assert_eq!(x.len(), 3);
        assert!(x.steps().iter().all(|s| s.axis == Axis::Child));
    }

    #[test]
    fn parse_leading_descendant() {
        let x = Xpe::parse("//a/b").unwrap();
        assert!(x.is_absolute());
        assert_eq!(x.steps()[0].axis, Axis::Descendant);
        assert_eq!(x.steps()[1].axis, Axis::Child);
    }

    #[test]
    fn parse_relative() {
        let x = Xpe::parse("a/*//b").unwrap();
        assert!(!x.is_absolute());
        assert_eq!(x.steps()[0].axis, Axis::Child);
        assert!(x.steps()[1].test.is_wildcard());
        assert_eq!(x.steps()[2].axis, Axis::Descendant);
    }

    #[test]
    fn parse_relative_leading_descendant() {
        let x = Xpe::parse(".//a").unwrap();
        assert!(!x.is_absolute());
        assert_eq!(x.steps()[0].axis, Axis::Descendant);
    }

    #[test]
    fn parse_paper_examples() {
        // Expressions quoted verbatim in the paper.
        for src in [
            "/b/*/*/c/c/d",
            "/*/c/*/b/c",
            "*/a//d/*/c//b",
            "/a/*//*/d",
            "/a//b/c/d",
        ] {
            assert!(Xpe::parse(src).is_ok(), "failed to parse {src}");
        }
    }

    #[test]
    fn errors() {
        assert!(Xpe::parse("").is_err());
        assert!(Xpe::parse("   ").is_err());
        assert!(Xpe::parse("/").is_err());
        assert!(Xpe::parse("a//").is_err());
        assert!(Xpe::parse("/a/").is_err());
        assert!(Xpe::parse("/a b/c").is_err());
        assert!(Xpe::parse("///a").is_err());
    }

    #[test]
    fn error_reports_offset() {
        let err = Xpe::parse("/a/b c").unwrap_err();
        assert!(
            err.offset() >= 3,
            "offset {} should point at the bad step",
            err.offset()
        );
        assert!(err.to_string().contains("invalid"));
    }

    #[test]
    fn from_str_trait() {
        let x: Xpe = "/x/y".parse().unwrap();
        assert_eq!(x.len(), 2);
    }

    #[test]
    fn whitespace_trimmed() {
        let x = Xpe::parse("  /a/b  ").unwrap();
        assert_eq!(x.to_string(), "/a/b");
    }
}
